file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision.dir/mixed_precision.cpp.o"
  "CMakeFiles/mixed_precision.dir/mixed_precision.cpp.o.d"
  "mixed_precision"
  "mixed_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
