file(REMOVE_RECURSE
  "CMakeFiles/lstm_sequence.dir/lstm_sequence.cpp.o"
  "CMakeFiles/lstm_sequence.dir/lstm_sequence.cpp.o.d"
  "lstm_sequence"
  "lstm_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
