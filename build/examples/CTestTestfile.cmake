# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cnn_inference "/root/repo/build/examples/cnn_inference")
set_tests_properties(example_cnn_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transformer_attention "/root/repo/build/examples/transformer_attention")
set_tests_properties(example_transformer_attention PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lstm_sequence "/root/repo/build/examples/lstm_sequence")
set_tests_properties(example_lstm_sequence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mixed_precision "/root/repo/build/examples/mixed_precision")
set_tests_properties(example_mixed_precision PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_space "/root/repo/build/examples/design_space")
set_tests_properties(example_design_space PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
