file(REMOVE_RECURSE
  "CMakeFiles/bfree_sim.dir/event_queue.cc.o"
  "CMakeFiles/bfree_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/bfree_sim.dir/logging.cc.o"
  "CMakeFiles/bfree_sim.dir/logging.cc.o.d"
  "CMakeFiles/bfree_sim.dir/stats.cc.o"
  "CMakeFiles/bfree_sim.dir/stats.cc.o.d"
  "libbfree_sim.a"
  "libbfree_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
