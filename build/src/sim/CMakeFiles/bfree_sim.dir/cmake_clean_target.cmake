file(REMOVE_RECURSE
  "libbfree_sim.a"
)
