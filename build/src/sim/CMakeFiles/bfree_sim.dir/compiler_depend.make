# Empty compiler generated dependencies file for bfree_sim.
# This may be replaced when dependencies are built.
