# Empty compiler generated dependencies file for bfree_map.
# This may be replaced when dependencies are built.
