file(REMOVE_RECURSE
  "CMakeFiles/bfree_map.dir/attention_schedule.cc.o"
  "CMakeFiles/bfree_map.dir/attention_schedule.cc.o.d"
  "CMakeFiles/bfree_map.dir/controllers.cc.o"
  "CMakeFiles/bfree_map.dir/controllers.cc.o.d"
  "CMakeFiles/bfree_map.dir/detailed_sim.cc.o"
  "CMakeFiles/bfree_map.dir/detailed_sim.cc.o.d"
  "CMakeFiles/bfree_map.dir/detailed_slice_sim.cc.o"
  "CMakeFiles/bfree_map.dir/detailed_slice_sim.cc.o.d"
  "CMakeFiles/bfree_map.dir/exec_model.cc.o"
  "CMakeFiles/bfree_map.dir/exec_model.cc.o.d"
  "CMakeFiles/bfree_map.dir/kernel_compiler.cc.o"
  "CMakeFiles/bfree_map.dir/kernel_compiler.cc.o.d"
  "CMakeFiles/bfree_map.dir/mapping.cc.o"
  "CMakeFiles/bfree_map.dir/mapping.cc.o.d"
  "CMakeFiles/bfree_map.dir/placement.cc.o"
  "CMakeFiles/bfree_map.dir/placement.cc.o.d"
  "CMakeFiles/bfree_map.dir/softmax_sim.cc.o"
  "CMakeFiles/bfree_map.dir/softmax_sim.cc.o.d"
  "CMakeFiles/bfree_map.dir/task_sharing.cc.o"
  "CMakeFiles/bfree_map.dir/task_sharing.cc.o.d"
  "libbfree_map.a"
  "libbfree_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
