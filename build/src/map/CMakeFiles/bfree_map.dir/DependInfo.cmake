
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/attention_schedule.cc" "src/map/CMakeFiles/bfree_map.dir/attention_schedule.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/attention_schedule.cc.o.d"
  "/root/repo/src/map/controllers.cc" "src/map/CMakeFiles/bfree_map.dir/controllers.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/controllers.cc.o.d"
  "/root/repo/src/map/detailed_sim.cc" "src/map/CMakeFiles/bfree_map.dir/detailed_sim.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/detailed_sim.cc.o.d"
  "/root/repo/src/map/detailed_slice_sim.cc" "src/map/CMakeFiles/bfree_map.dir/detailed_slice_sim.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/detailed_slice_sim.cc.o.d"
  "/root/repo/src/map/exec_model.cc" "src/map/CMakeFiles/bfree_map.dir/exec_model.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/exec_model.cc.o.d"
  "/root/repo/src/map/kernel_compiler.cc" "src/map/CMakeFiles/bfree_map.dir/kernel_compiler.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/kernel_compiler.cc.o.d"
  "/root/repo/src/map/mapping.cc" "src/map/CMakeFiles/bfree_map.dir/mapping.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/mapping.cc.o.d"
  "/root/repo/src/map/placement.cc" "src/map/CMakeFiles/bfree_map.dir/placement.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/placement.cc.o.d"
  "/root/repo/src/map/softmax_sim.cc" "src/map/CMakeFiles/bfree_map.dir/softmax_sim.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/softmax_sim.cc.o.d"
  "/root/repo/src/map/task_sharing.cc" "src/map/CMakeFiles/bfree_map.dir/task_sharing.cc.o" "gcc" "src/map/CMakeFiles/bfree_map.dir/task_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/bfree_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bfree_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/bfree_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/bfree_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/bce/CMakeFiles/bfree_bce.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/bfree_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
