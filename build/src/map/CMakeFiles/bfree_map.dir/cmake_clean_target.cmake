file(REMOVE_RECURSE
  "libbfree_map.a"
)
