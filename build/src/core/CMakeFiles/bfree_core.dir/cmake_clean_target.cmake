file(REMOVE_RECURSE
  "libbfree_core.a"
)
