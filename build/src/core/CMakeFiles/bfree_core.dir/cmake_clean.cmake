file(REMOVE_RECURSE
  "CMakeFiles/bfree_core.dir/bfree.cc.o"
  "CMakeFiles/bfree_core.dir/bfree.cc.o.d"
  "CMakeFiles/bfree_core.dir/functional.cc.o"
  "CMakeFiles/bfree_core.dir/functional.cc.o.d"
  "CMakeFiles/bfree_core.dir/report.cc.o"
  "CMakeFiles/bfree_core.dir/report.cc.o.d"
  "CMakeFiles/bfree_core.dir/stats_export.cc.o"
  "CMakeFiles/bfree_core.dir/stats_export.cc.o.d"
  "libbfree_core.a"
  "libbfree_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
