# Empty dependencies file for bfree_core.
# This may be replaced when dependencies are built.
