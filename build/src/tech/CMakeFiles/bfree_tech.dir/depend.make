# Empty dependencies file for bfree_tech.
# This may be replaced when dependencies are built.
