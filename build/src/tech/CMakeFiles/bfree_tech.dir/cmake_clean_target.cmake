file(REMOVE_RECURSE
  "libbfree_tech.a"
)
