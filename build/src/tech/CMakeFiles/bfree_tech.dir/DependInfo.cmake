
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/access_breakdown.cc" "src/tech/CMakeFiles/bfree_tech.dir/access_breakdown.cc.o" "gcc" "src/tech/CMakeFiles/bfree_tech.dir/access_breakdown.cc.o.d"
  "/root/repo/src/tech/area_model.cc" "src/tech/CMakeFiles/bfree_tech.dir/area_model.cc.o" "gcc" "src/tech/CMakeFiles/bfree_tech.dir/area_model.cc.o.d"
  "/root/repo/src/tech/tech_params.cc" "src/tech/CMakeFiles/bfree_tech.dir/tech_params.cc.o" "gcc" "src/tech/CMakeFiles/bfree_tech.dir/tech_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
