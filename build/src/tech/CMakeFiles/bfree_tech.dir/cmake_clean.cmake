file(REMOVE_RECURSE
  "CMakeFiles/bfree_tech.dir/access_breakdown.cc.o"
  "CMakeFiles/bfree_tech.dir/access_breakdown.cc.o.d"
  "CMakeFiles/bfree_tech.dir/area_model.cc.o"
  "CMakeFiles/bfree_tech.dir/area_model.cc.o.d"
  "CMakeFiles/bfree_tech.dir/tech_params.cc.o"
  "CMakeFiles/bfree_tech.dir/tech_params.cc.o.d"
  "libbfree_tech.a"
  "libbfree_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
