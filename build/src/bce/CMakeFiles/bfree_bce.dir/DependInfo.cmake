
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bce/bce.cc" "src/bce/CMakeFiles/bfree_bce.dir/bce.cc.o" "gcc" "src/bce/CMakeFiles/bfree_bce.dir/bce.cc.o.d"
  "/root/repo/src/bce/config_block.cc" "src/bce/CMakeFiles/bfree_bce.dir/config_block.cc.o" "gcc" "src/bce/CMakeFiles/bfree_bce.dir/config_block.cc.o.d"
  "/root/repo/src/bce/isa.cc" "src/bce/CMakeFiles/bfree_bce.dir/isa.cc.o" "gcc" "src/bce/CMakeFiles/bfree_bce.dir/isa.cc.o.d"
  "/root/repo/src/bce/pipeline_sim.cc" "src/bce/CMakeFiles/bfree_bce.dir/pipeline_sim.cc.o" "gcc" "src/bce/CMakeFiles/bfree_bce.dir/pipeline_sim.cc.o.d"
  "/root/repo/src/bce/pipeline_trace.cc" "src/bce/CMakeFiles/bfree_bce.dir/pipeline_trace.cc.o" "gcc" "src/bce/CMakeFiles/bfree_bce.dir/pipeline_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/bfree_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bfree_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/bfree_lut.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
