file(REMOVE_RECURSE
  "libbfree_bce.a"
)
