# Empty dependencies file for bfree_bce.
# This may be replaced when dependencies are built.
