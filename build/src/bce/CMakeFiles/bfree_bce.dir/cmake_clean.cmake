file(REMOVE_RECURSE
  "CMakeFiles/bfree_bce.dir/bce.cc.o"
  "CMakeFiles/bfree_bce.dir/bce.cc.o.d"
  "CMakeFiles/bfree_bce.dir/config_block.cc.o"
  "CMakeFiles/bfree_bce.dir/config_block.cc.o.d"
  "CMakeFiles/bfree_bce.dir/isa.cc.o"
  "CMakeFiles/bfree_bce.dir/isa.cc.o.d"
  "CMakeFiles/bfree_bce.dir/pipeline_sim.cc.o"
  "CMakeFiles/bfree_bce.dir/pipeline_sim.cc.o.d"
  "CMakeFiles/bfree_bce.dir/pipeline_trace.cc.o"
  "CMakeFiles/bfree_bce.dir/pipeline_trace.cc.o.d"
  "libbfree_bce.a"
  "libbfree_bce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_bce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
