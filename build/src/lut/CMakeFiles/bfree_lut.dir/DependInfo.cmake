
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lut/division.cc" "src/lut/CMakeFiles/bfree_lut.dir/division.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/division.cc.o.d"
  "/root/repo/src/lut/fixed_point.cc" "src/lut/CMakeFiles/bfree_lut.dir/fixed_point.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/fixed_point.cc.o.d"
  "/root/repo/src/lut/lut_image.cc" "src/lut/CMakeFiles/bfree_lut.dir/lut_image.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/lut_image.cc.o.d"
  "/root/repo/src/lut/mult_lut.cc" "src/lut/CMakeFiles/bfree_lut.dir/mult_lut.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/mult_lut.cc.o.d"
  "/root/repo/src/lut/operand_analyzer.cc" "src/lut/CMakeFiles/bfree_lut.dir/operand_analyzer.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/operand_analyzer.cc.o.d"
  "/root/repo/src/lut/packing.cc" "src/lut/CMakeFiles/bfree_lut.dir/packing.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/packing.cc.o.d"
  "/root/repo/src/lut/pwl.cc" "src/lut/CMakeFiles/bfree_lut.dir/pwl.cc.o" "gcc" "src/lut/CMakeFiles/bfree_lut.dir/pwl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
