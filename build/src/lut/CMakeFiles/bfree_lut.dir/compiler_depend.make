# Empty compiler generated dependencies file for bfree_lut.
# This may be replaced when dependencies are built.
