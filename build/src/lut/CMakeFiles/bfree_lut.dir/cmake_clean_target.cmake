file(REMOVE_RECURSE
  "libbfree_lut.a"
)
