file(REMOVE_RECURSE
  "CMakeFiles/bfree_lut.dir/division.cc.o"
  "CMakeFiles/bfree_lut.dir/division.cc.o.d"
  "CMakeFiles/bfree_lut.dir/fixed_point.cc.o"
  "CMakeFiles/bfree_lut.dir/fixed_point.cc.o.d"
  "CMakeFiles/bfree_lut.dir/lut_image.cc.o"
  "CMakeFiles/bfree_lut.dir/lut_image.cc.o.d"
  "CMakeFiles/bfree_lut.dir/mult_lut.cc.o"
  "CMakeFiles/bfree_lut.dir/mult_lut.cc.o.d"
  "CMakeFiles/bfree_lut.dir/operand_analyzer.cc.o"
  "CMakeFiles/bfree_lut.dir/operand_analyzer.cc.o.d"
  "CMakeFiles/bfree_lut.dir/packing.cc.o"
  "CMakeFiles/bfree_lut.dir/packing.cc.o.d"
  "CMakeFiles/bfree_lut.dir/pwl.cc.o"
  "CMakeFiles/bfree_lut.dir/pwl.cc.o.d"
  "libbfree_lut.a"
  "libbfree_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
