# Empty compiler generated dependencies file for bfree_noc.
# This may be replaced when dependencies are built.
