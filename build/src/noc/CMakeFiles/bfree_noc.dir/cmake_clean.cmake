file(REMOVE_RECURSE
  "CMakeFiles/bfree_noc.dir/ring.cc.o"
  "CMakeFiles/bfree_noc.dir/ring.cc.o.d"
  "CMakeFiles/bfree_noc.dir/router.cc.o"
  "CMakeFiles/bfree_noc.dir/router.cc.o.d"
  "libbfree_noc.a"
  "libbfree_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
