file(REMOVE_RECURSE
  "libbfree_noc.a"
)
