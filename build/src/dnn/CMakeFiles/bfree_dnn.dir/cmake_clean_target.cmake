file(REMOVE_RECURSE
  "libbfree_dnn.a"
)
