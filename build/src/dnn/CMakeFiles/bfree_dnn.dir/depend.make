# Empty dependencies file for bfree_dnn.
# This may be replaced when dependencies are built.
