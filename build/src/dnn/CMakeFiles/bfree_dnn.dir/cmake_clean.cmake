file(REMOVE_RECURSE
  "CMakeFiles/bfree_dnn.dir/im2col.cc.o"
  "CMakeFiles/bfree_dnn.dir/im2col.cc.o.d"
  "CMakeFiles/bfree_dnn.dir/layer.cc.o"
  "CMakeFiles/bfree_dnn.dir/layer.cc.o.d"
  "CMakeFiles/bfree_dnn.dir/model_zoo.cc.o"
  "CMakeFiles/bfree_dnn.dir/model_zoo.cc.o.d"
  "CMakeFiles/bfree_dnn.dir/network.cc.o"
  "CMakeFiles/bfree_dnn.dir/network.cc.o.d"
  "CMakeFiles/bfree_dnn.dir/quantize.cc.o"
  "CMakeFiles/bfree_dnn.dir/quantize.cc.o.d"
  "CMakeFiles/bfree_dnn.dir/reference.cc.o"
  "CMakeFiles/bfree_dnn.dir/reference.cc.o.d"
  "libbfree_dnn.a"
  "libbfree_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
