
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/im2col.cc" "src/dnn/CMakeFiles/bfree_dnn.dir/im2col.cc.o" "gcc" "src/dnn/CMakeFiles/bfree_dnn.dir/im2col.cc.o.d"
  "/root/repo/src/dnn/layer.cc" "src/dnn/CMakeFiles/bfree_dnn.dir/layer.cc.o" "gcc" "src/dnn/CMakeFiles/bfree_dnn.dir/layer.cc.o.d"
  "/root/repo/src/dnn/model_zoo.cc" "src/dnn/CMakeFiles/bfree_dnn.dir/model_zoo.cc.o" "gcc" "src/dnn/CMakeFiles/bfree_dnn.dir/model_zoo.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/dnn/CMakeFiles/bfree_dnn.dir/network.cc.o" "gcc" "src/dnn/CMakeFiles/bfree_dnn.dir/network.cc.o.d"
  "/root/repo/src/dnn/quantize.cc" "src/dnn/CMakeFiles/bfree_dnn.dir/quantize.cc.o" "gcc" "src/dnn/CMakeFiles/bfree_dnn.dir/quantize.cc.o.d"
  "/root/repo/src/dnn/reference.cc" "src/dnn/CMakeFiles/bfree_dnn.dir/reference.cc.o" "gcc" "src/dnn/CMakeFiles/bfree_dnn.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/bfree_lut.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
