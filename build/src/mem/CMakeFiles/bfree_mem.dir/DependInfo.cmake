
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address.cc" "src/mem/CMakeFiles/bfree_mem.dir/address.cc.o" "gcc" "src/mem/CMakeFiles/bfree_mem.dir/address.cc.o.d"
  "/root/repo/src/mem/energy_account.cc" "src/mem/CMakeFiles/bfree_mem.dir/energy_account.cc.o" "gcc" "src/mem/CMakeFiles/bfree_mem.dir/energy_account.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/mem/CMakeFiles/bfree_mem.dir/main_memory.cc.o" "gcc" "src/mem/CMakeFiles/bfree_mem.dir/main_memory.cc.o.d"
  "/root/repo/src/mem/sram_cache.cc" "src/mem/CMakeFiles/bfree_mem.dir/sram_cache.cc.o" "gcc" "src/mem/CMakeFiles/bfree_mem.dir/sram_cache.cc.o.d"
  "/root/repo/src/mem/subarray.cc" "src/mem/CMakeFiles/bfree_mem.dir/subarray.cc.o" "gcc" "src/mem/CMakeFiles/bfree_mem.dir/subarray.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/bfree_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
