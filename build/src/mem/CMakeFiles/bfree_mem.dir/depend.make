# Empty dependencies file for bfree_mem.
# This may be replaced when dependencies are built.
