file(REMOVE_RECURSE
  "libbfree_mem.a"
)
