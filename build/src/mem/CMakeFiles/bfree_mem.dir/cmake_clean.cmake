file(REMOVE_RECURSE
  "CMakeFiles/bfree_mem.dir/address.cc.o"
  "CMakeFiles/bfree_mem.dir/address.cc.o.d"
  "CMakeFiles/bfree_mem.dir/energy_account.cc.o"
  "CMakeFiles/bfree_mem.dir/energy_account.cc.o.d"
  "CMakeFiles/bfree_mem.dir/main_memory.cc.o"
  "CMakeFiles/bfree_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/bfree_mem.dir/sram_cache.cc.o"
  "CMakeFiles/bfree_mem.dir/sram_cache.cc.o.d"
  "CMakeFiles/bfree_mem.dir/subarray.cc.o"
  "CMakeFiles/bfree_mem.dir/subarray.cc.o.d"
  "libbfree_mem.a"
  "libbfree_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
