# Empty compiler generated dependencies file for bfree_baselines.
# This may be replaced when dependencies are built.
