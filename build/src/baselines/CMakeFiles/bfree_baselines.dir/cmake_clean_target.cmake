file(REMOVE_RECURSE
  "libbfree_baselines.a"
)
