file(REMOVE_RECURSE
  "CMakeFiles/bfree_baselines.dir/bit_serial.cc.o"
  "CMakeFiles/bfree_baselines.dir/bit_serial.cc.o.d"
  "CMakeFiles/bfree_baselines.dir/cpu_gpu.cc.o"
  "CMakeFiles/bfree_baselines.dir/cpu_gpu.cc.o.d"
  "CMakeFiles/bfree_baselines.dir/eyeriss.cc.o"
  "CMakeFiles/bfree_baselines.dir/eyeriss.cc.o.d"
  "CMakeFiles/bfree_baselines.dir/neural_cache.cc.o"
  "CMakeFiles/bfree_baselines.dir/neural_cache.cc.o.d"
  "libbfree_baselines.a"
  "libbfree_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
