# Empty compiler generated dependencies file for test_clocked.
# This may be replaced when dependencies are built.
