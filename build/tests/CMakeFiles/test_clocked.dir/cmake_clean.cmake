file(REMOVE_RECURSE
  "CMakeFiles/test_clocked.dir/sim/test_clocked.cc.o"
  "CMakeFiles/test_clocked.dir/sim/test_clocked.cc.o.d"
  "test_clocked"
  "test_clocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
