# Empty dependencies file for test_softmax_sim.
# This may be replaced when dependencies are built.
