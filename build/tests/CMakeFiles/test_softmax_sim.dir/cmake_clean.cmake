file(REMOVE_RECURSE
  "CMakeFiles/test_softmax_sim.dir/map/test_softmax_sim.cc.o"
  "CMakeFiles/test_softmax_sim.dir/map/test_softmax_sim.cc.o.d"
  "test_softmax_sim"
  "test_softmax_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
