# Empty compiler generated dependencies file for test_network_consistency.
# This may be replaced when dependencies are built.
