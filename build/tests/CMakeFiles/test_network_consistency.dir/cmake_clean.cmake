file(REMOVE_RECURSE
  "CMakeFiles/test_network_consistency.dir/dnn/test_network_consistency.cc.o"
  "CMakeFiles/test_network_consistency.dir/dnn/test_network_consistency.cc.o.d"
  "test_network_consistency"
  "test_network_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
