# Empty dependencies file for test_detailed_pipeline.
# This may be replaced when dependencies are built.
