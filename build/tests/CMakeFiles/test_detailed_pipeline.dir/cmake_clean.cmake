file(REMOVE_RECURSE
  "CMakeFiles/test_detailed_pipeline.dir/integration/test_detailed_pipeline.cc.o"
  "CMakeFiles/test_detailed_pipeline.dir/integration/test_detailed_pipeline.cc.o.d"
  "test_detailed_pipeline"
  "test_detailed_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detailed_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
