# Empty dependencies file for test_operand_analyzer.
# This may be replaced when dependencies are built.
