file(REMOVE_RECURSE
  "CMakeFiles/test_operand_analyzer.dir/lut/test_operand_analyzer.cc.o"
  "CMakeFiles/test_operand_analyzer.dir/lut/test_operand_analyzer.cc.o.d"
  "test_operand_analyzer"
  "test_operand_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operand_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
