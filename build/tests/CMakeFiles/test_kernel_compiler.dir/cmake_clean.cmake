file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_compiler.dir/map/test_kernel_compiler.cc.o"
  "CMakeFiles/test_kernel_compiler.dir/map/test_kernel_compiler.cc.o.d"
  "test_kernel_compiler"
  "test_kernel_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
