file(REMOVE_RECURSE
  "CMakeFiles/test_task_sharing.dir/map/test_task_sharing.cc.o"
  "CMakeFiles/test_task_sharing.dir/map/test_task_sharing.cc.o.d"
  "test_task_sharing"
  "test_task_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
