# Empty compiler generated dependencies file for test_task_sharing.
# This may be replaced when dependencies are built.
