# Empty dependencies file for test_functional_seq.
# This may be replaced when dependencies are built.
