file(REMOVE_RECURSE
  "CMakeFiles/test_functional_seq.dir/core/test_functional_seq.cc.o"
  "CMakeFiles/test_functional_seq.dir/core/test_functional_seq.cc.o.d"
  "test_functional_seq"
  "test_functional_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
