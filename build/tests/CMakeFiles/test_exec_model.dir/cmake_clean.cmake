file(REMOVE_RECURSE
  "CMakeFiles/test_exec_model.dir/map/test_exec_model.cc.o"
  "CMakeFiles/test_exec_model.dir/map/test_exec_model.cc.o.d"
  "test_exec_model"
  "test_exec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
