file(REMOVE_RECURSE
  "CMakeFiles/test_logging_random.dir/sim/test_logging_random.cc.o"
  "CMakeFiles/test_logging_random.dir/sim/test_logging_random.cc.o.d"
  "test_logging_random"
  "test_logging_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
