# Empty compiler generated dependencies file for test_logging_random.
# This may be replaced when dependencies are built.
