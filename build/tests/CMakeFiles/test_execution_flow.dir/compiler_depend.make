# Empty compiler generated dependencies file for test_execution_flow.
# This may be replaced when dependencies are built.
