file(REMOVE_RECURSE
  "CMakeFiles/test_execution_flow.dir/integration/test_execution_flow.cc.o"
  "CMakeFiles/test_execution_flow.dir/integration/test_execution_flow.cc.o.d"
  "test_execution_flow"
  "test_execution_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
