# Empty dependencies file for test_division.
# This may be replaced when dependencies are built.
