file(REMOVE_RECURSE
  "CMakeFiles/test_division.dir/lut/test_division.cc.o"
  "CMakeFiles/test_division.dir/lut/test_division.cc.o.d"
  "test_division"
  "test_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
