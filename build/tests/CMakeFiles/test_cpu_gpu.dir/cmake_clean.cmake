file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_gpu.dir/baselines/test_cpu_gpu.cc.o"
  "CMakeFiles/test_cpu_gpu.dir/baselines/test_cpu_gpu.cc.o.d"
  "test_cpu_gpu"
  "test_cpu_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
