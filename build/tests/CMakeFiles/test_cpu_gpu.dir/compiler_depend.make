# Empty compiler generated dependencies file for test_cpu_gpu.
# This may be replaced when dependencies are built.
