file(REMOVE_RECURSE
  "CMakeFiles/test_bce.dir/bce/test_bce.cc.o"
  "CMakeFiles/test_bce.dir/bce/test_bce.cc.o.d"
  "test_bce"
  "test_bce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
