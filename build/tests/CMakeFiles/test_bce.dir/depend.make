# Empty dependencies file for test_bce.
# This may be replaced when dependencies are built.
