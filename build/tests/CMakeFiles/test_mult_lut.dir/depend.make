# Empty dependencies file for test_mult_lut.
# This may be replaced when dependencies are built.
