file(REMOVE_RECURSE
  "CMakeFiles/test_mult_lut.dir/lut/test_mult_lut.cc.o"
  "CMakeFiles/test_mult_lut.dir/lut/test_mult_lut.cc.o.d"
  "test_mult_lut"
  "test_mult_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mult_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
