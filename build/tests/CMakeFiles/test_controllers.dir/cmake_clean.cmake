file(REMOVE_RECURSE
  "CMakeFiles/test_controllers.dir/map/test_controllers.cc.o"
  "CMakeFiles/test_controllers.dir/map/test_controllers.cc.o.d"
  "test_controllers"
  "test_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
