# Empty dependencies file for test_bit_serial.
# This may be replaced when dependencies are built.
