file(REMOVE_RECURSE
  "CMakeFiles/test_bit_serial.dir/baselines/test_bit_serial.cc.o"
  "CMakeFiles/test_bit_serial.dir/baselines/test_bit_serial.cc.o.d"
  "test_bit_serial"
  "test_bit_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
