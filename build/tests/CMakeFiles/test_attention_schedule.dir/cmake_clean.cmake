file(REMOVE_RECURSE
  "CMakeFiles/test_attention_schedule.dir/map/test_attention_schedule.cc.o"
  "CMakeFiles/test_attention_schedule.dir/map/test_attention_schedule.cc.o.d"
  "test_attention_schedule"
  "test_attention_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
