# Empty compiler generated dependencies file for test_attention_schedule.
# This may be replaced when dependencies are built.
