# Empty dependencies file for test_detailed_slice_sim.
# This may be replaced when dependencies are built.
