file(REMOVE_RECURSE
  "CMakeFiles/test_detailed_slice_sim.dir/map/test_detailed_slice_sim.cc.o"
  "CMakeFiles/test_detailed_slice_sim.dir/map/test_detailed_slice_sim.cc.o.d"
  "test_detailed_slice_sim"
  "test_detailed_slice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detailed_slice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
