file(REMOVE_RECURSE
  "CMakeFiles/test_exec_properties.dir/map/test_exec_properties.cc.o"
  "CMakeFiles/test_exec_properties.dir/map/test_exec_properties.cc.o.d"
  "test_exec_properties"
  "test_exec_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
