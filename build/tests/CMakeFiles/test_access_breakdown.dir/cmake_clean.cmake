file(REMOVE_RECURSE
  "CMakeFiles/test_access_breakdown.dir/tech/test_access_breakdown.cc.o"
  "CMakeFiles/test_access_breakdown.dir/tech/test_access_breakdown.cc.o.d"
  "test_access_breakdown"
  "test_access_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
