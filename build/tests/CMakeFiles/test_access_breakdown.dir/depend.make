# Empty dependencies file for test_access_breakdown.
# This may be replaced when dependencies are built.
