# Empty dependencies file for test_detailed_sim.
# This may be replaced when dependencies are built.
