file(REMOVE_RECURSE
  "CMakeFiles/test_detailed_sim.dir/map/test_detailed_sim.cc.o"
  "CMakeFiles/test_detailed_sim.dir/map/test_detailed_sim.cc.o.d"
  "test_detailed_sim"
  "test_detailed_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detailed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
