# Empty dependencies file for test_subarray.
# This may be replaced when dependencies are built.
