file(REMOVE_RECURSE
  "CMakeFiles/test_subarray.dir/mem/test_subarray.cc.o"
  "CMakeFiles/test_subarray.dir/mem/test_subarray.cc.o.d"
  "test_subarray"
  "test_subarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
