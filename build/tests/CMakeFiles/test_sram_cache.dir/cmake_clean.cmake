file(REMOVE_RECURSE
  "CMakeFiles/test_sram_cache.dir/mem/test_sram_cache.cc.o"
  "CMakeFiles/test_sram_cache.dir/mem/test_sram_cache.cc.o.d"
  "test_sram_cache"
  "test_sram_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
