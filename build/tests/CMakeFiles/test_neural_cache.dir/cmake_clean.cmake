file(REMOVE_RECURSE
  "CMakeFiles/test_neural_cache.dir/baselines/test_neural_cache.cc.o"
  "CMakeFiles/test_neural_cache.dir/baselines/test_neural_cache.cc.o.d"
  "test_neural_cache"
  "test_neural_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neural_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
