file(REMOVE_RECURSE
  "CMakeFiles/test_eyeriss.dir/baselines/test_eyeriss.cc.o"
  "CMakeFiles/test_eyeriss.dir/baselines/test_eyeriss.cc.o.d"
  "test_eyeriss"
  "test_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
