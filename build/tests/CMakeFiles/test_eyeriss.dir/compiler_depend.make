# Empty compiler generated dependencies file for test_eyeriss.
# This may be replaced when dependencies are built.
