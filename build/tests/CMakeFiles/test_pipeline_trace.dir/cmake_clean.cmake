file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_trace.dir/bce/test_pipeline_trace.cc.o"
  "CMakeFiles/test_pipeline_trace.dir/bce/test_pipeline_trace.cc.o.d"
  "test_pipeline_trace"
  "test_pipeline_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
