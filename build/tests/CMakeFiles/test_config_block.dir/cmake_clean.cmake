file(REMOVE_RECURSE
  "CMakeFiles/test_config_block.dir/bce/test_config_block.cc.o"
  "CMakeFiles/test_config_block.dir/bce/test_config_block.cc.o.d"
  "test_config_block"
  "test_config_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
