# Empty dependencies file for test_config_block.
# This may be replaced when dependencies are built.
