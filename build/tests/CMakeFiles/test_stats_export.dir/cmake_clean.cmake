file(REMOVE_RECURSE
  "CMakeFiles/test_stats_export.dir/core/test_stats_export.cc.o"
  "CMakeFiles/test_stats_export.dir/core/test_stats_export.cc.o.d"
  "test_stats_export"
  "test_stats_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
