
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_detailed_conv.cc" "tests/CMakeFiles/test_detailed_conv.dir/integration/test_detailed_conv.cc.o" "gcc" "tests/CMakeFiles/test_detailed_conv.dir/integration/test_detailed_conv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfree_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bfree_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/bfree_map.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/bfree_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/bce/CMakeFiles/bfree_bce.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/bfree_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/bfree_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bfree_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/bfree_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
