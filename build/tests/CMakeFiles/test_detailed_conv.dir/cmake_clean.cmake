file(REMOVE_RECURSE
  "CMakeFiles/test_detailed_conv.dir/integration/test_detailed_conv.cc.o"
  "CMakeFiles/test_detailed_conv.dir/integration/test_detailed_conv.cc.o.d"
  "test_detailed_conv"
  "test_detailed_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detailed_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
