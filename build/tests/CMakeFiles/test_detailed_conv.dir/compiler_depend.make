# Empty compiler generated dependencies file for test_detailed_conv.
# This may be replaced when dependencies are built.
