file(REMOVE_RECURSE
  "CMakeFiles/test_lut_image.dir/lut/test_lut_image.cc.o"
  "CMakeFiles/test_lut_image.dir/lut/test_lut_image.cc.o.d"
  "test_lut_image"
  "test_lut_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lut_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
