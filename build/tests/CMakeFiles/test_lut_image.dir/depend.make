# Empty dependencies file for test_lut_image.
# This may be replaced when dependencies are built.
