file(REMOVE_RECURSE
  "CMakeFiles/fig12_inception_neuralcache.dir/fig12_inception_neuralcache.cpp.o"
  "CMakeFiles/fig12_inception_neuralcache.dir/fig12_inception_neuralcache.cpp.o.d"
  "fig12_inception_neuralcache"
  "fig12_inception_neuralcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_inception_neuralcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
