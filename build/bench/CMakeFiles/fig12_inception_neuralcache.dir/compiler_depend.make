# Empty compiler generated dependencies file for fig12_inception_neuralcache.
# This may be replaced when dependencies are built.
