file(REMOVE_RECURSE
  "CMakeFiles/extension_task_sharing.dir/extension_task_sharing.cpp.o"
  "CMakeFiles/extension_task_sharing.dir/extension_task_sharing.cpp.o.d"
  "extension_task_sharing"
  "extension_task_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_task_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
