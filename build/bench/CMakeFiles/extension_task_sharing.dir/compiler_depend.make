# Empty compiler generated dependencies file for extension_task_sharing.
# This may be replaced when dependencies are built.
