file(REMOVE_RECURSE
  "CMakeFiles/fig14_vgg16_bandwidth.dir/fig14_vgg16_bandwidth.cpp.o"
  "CMakeFiles/fig14_vgg16_bandwidth.dir/fig14_vgg16_bandwidth.cpp.o.d"
  "fig14_vgg16_bandwidth"
  "fig14_vgg16_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_vgg16_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
