# Empty compiler generated dependencies file for fig14_vgg16_bandwidth.
# This may be replaced when dependencies are built.
