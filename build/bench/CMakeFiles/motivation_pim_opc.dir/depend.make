# Empty dependencies file for motivation_pim_opc.
# This may be replaced when dependencies are built.
