file(REMOVE_RECURSE
  "CMakeFiles/motivation_pim_opc.dir/motivation_pim_opc.cpp.o"
  "CMakeFiles/motivation_pim_opc.dir/motivation_pim_opc.cpp.o.d"
  "motivation_pim_opc"
  "motivation_pim_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_pim_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
