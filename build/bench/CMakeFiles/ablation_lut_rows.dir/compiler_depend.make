# Empty compiler generated dependencies file for ablation_lut_rows.
# This may be replaced when dependencies are built.
