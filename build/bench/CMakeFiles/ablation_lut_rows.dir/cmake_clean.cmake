file(REMOVE_RECURSE
  "CMakeFiles/ablation_lut_rows.dir/ablation_lut_rows.cpp.o"
  "CMakeFiles/ablation_lut_rows.dir/ablation_lut_rows.cpp.o.d"
  "ablation_lut_rows"
  "ablation_lut_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lut_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
