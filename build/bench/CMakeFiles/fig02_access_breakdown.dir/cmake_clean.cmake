file(REMOVE_RECURSE
  "CMakeFiles/fig02_access_breakdown.dir/fig02_access_breakdown.cpp.o"
  "CMakeFiles/fig02_access_breakdown.dir/fig02_access_breakdown.cpp.o.d"
  "fig02_access_breakdown"
  "fig02_access_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_access_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
