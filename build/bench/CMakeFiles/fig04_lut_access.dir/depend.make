# Empty dependencies file for fig04_lut_access.
# This may be replaced when dependencies are built.
