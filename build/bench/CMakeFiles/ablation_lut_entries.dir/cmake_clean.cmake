file(REMOVE_RECURSE
  "CMakeFiles/ablation_lut_entries.dir/ablation_lut_entries.cpp.o"
  "CMakeFiles/ablation_lut_entries.dir/ablation_lut_entries.cpp.o.d"
  "ablation_lut_entries"
  "ablation_lut_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lut_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
