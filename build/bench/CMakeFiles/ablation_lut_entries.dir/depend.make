# Empty dependencies file for ablation_lut_entries.
# This may be replaced when dependencies are built.
