# Empty dependencies file for table3_lstm_bert.
# This may be replaced when dependencies are built.
