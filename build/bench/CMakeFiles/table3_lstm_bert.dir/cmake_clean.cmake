file(REMOVE_RECURSE
  "CMakeFiles/table3_lstm_bert.dir/table3_lstm_bert.cpp.o"
  "CMakeFiles/table3_lstm_bert.dir/table3_lstm_bert.cpp.o.d"
  "table3_lstm_bert"
  "table3_lstm_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_lstm_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
