file(REMOVE_RECURSE
  "CMakeFiles/area_report.dir/area_report.cpp.o"
  "CMakeFiles/area_report.dir/area_report.cpp.o.d"
  "area_report"
  "area_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
