# Empty dependencies file for area_report.
# This may be replaced when dependencies are built.
