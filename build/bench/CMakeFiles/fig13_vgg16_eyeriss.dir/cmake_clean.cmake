file(REMOVE_RECURSE
  "CMakeFiles/fig13_vgg16_eyeriss.dir/fig13_vgg16_eyeriss.cpp.o"
  "CMakeFiles/fig13_vgg16_eyeriss.dir/fig13_vgg16_eyeriss.cpp.o.d"
  "fig13_vgg16_eyeriss"
  "fig13_vgg16_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vgg16_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
