# Empty compiler generated dependencies file for fig13_vgg16_eyeriss.
# This may be replaced when dependencies are built.
