file(REMOVE_RECURSE
  "CMakeFiles/micro_bce.dir/micro_bce.cpp.o"
  "CMakeFiles/micro_bce.dir/micro_bce.cpp.o.d"
  "micro_bce"
  "micro_bce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
