# Empty dependencies file for micro_bce.
# This may be replaced when dependencies are built.
