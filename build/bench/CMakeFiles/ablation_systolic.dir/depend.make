# Empty dependencies file for ablation_systolic.
# This may be replaced when dependencies are built.
