file(REMOVE_RECURSE
  "CMakeFiles/ablation_systolic.dir/ablation_systolic.cpp.o"
  "CMakeFiles/ablation_systolic.dir/ablation_systolic.cpp.o.d"
  "ablation_systolic"
  "ablation_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
