# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/bfree_cli" "--network" "tiny" "--batch" "1")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_csv "/root/repo/build/tools/bfree_cli" "--network" "lstm" "--csv")
set_tests_properties(cli_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/bfree_cli" "--network" "tiny" "--stats")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_describe "/root/repo/build/tools/bfree_cli" "--network" "bert-base" "--describe")
set_tests_properties(cli_describe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baselines "/root/repo/build/tools/bfree_cli" "--network" "tiny" "--baseline" "all")
set_tests_properties(cli_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(trace_conv "/root/repo/build/tools/bfree_trace" "conv" "4,6,5" "3,3,7")
set_tests_properties(trace_conv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(trace_matmul "/root/repo/build/tools/bfree_trace" "matmul" "10,-3" "8")
set_tests_properties(trace_matmul PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
