
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/bfree_trace.cpp" "tools/CMakeFiles/bfree_trace.dir/bfree_trace.cpp.o" "gcc" "tools/CMakeFiles/bfree_trace.dir/bfree_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bce/CMakeFiles/bfree_bce.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bfree_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/bfree_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/lut/CMakeFiles/bfree_lut.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfree_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
