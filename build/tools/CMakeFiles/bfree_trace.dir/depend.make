# Empty dependencies file for bfree_trace.
# This may be replaced when dependencies are built.
