file(REMOVE_RECURSE
  "CMakeFiles/bfree_trace.dir/bfree_trace.cpp.o"
  "CMakeFiles/bfree_trace.dir/bfree_trace.cpp.o.d"
  "bfree_trace"
  "bfree_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
