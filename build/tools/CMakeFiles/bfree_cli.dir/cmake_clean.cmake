file(REMOVE_RECURSE
  "CMakeFiles/bfree_cli.dir/bfree_cli.cpp.o"
  "CMakeFiles/bfree_cli.dir/bfree_cli.cpp.o.d"
  "bfree_cli"
  "bfree_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
