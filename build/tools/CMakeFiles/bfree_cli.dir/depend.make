# Empty dependencies file for bfree_cli.
# This may be replaced when dependencies are built.
