/**
 * @file
 * bfree-lint: static semantic verification of compiled PIM programs.
 *
 * The paper states the invariants BFree's correctness rests on; this
 * pass checks them mechanically over a CompiledKernel before anything
 * executes, and over the raw artifacts (PimInstruction, ConfigBlock,
 * LutImage, LayerMapping, WeightPlacement, reduction chains)
 * independently. Violations become Diagnostics, never aborts.
 *
 * The canonical sub-array row layout the rules check against (CB
 * region / weight region / reserved LUT rows) is defined once in
 * tech/row_layout.hh, shared with the kernel compiler and the weight
 * placement engine; the row helpers below delegate to it.
 *
 * The rule catalogue lives in diagnostic.hh; DESIGN.md documents each
 * rule in prose.
 */

#ifndef BFREE_VERIFY_KERNEL_VERIFIER_HH
#define BFREE_VERIFY_KERNEL_VERIFIER_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bce/config_block.hh"
#include "bce/isa.hh"
#include "diagnostic.hh"
#include "lut/lut_image.hh"
#include "map/kernel_compiler.hh"
#include "map/placement.hh"
#include "tech/geometry.hh"

namespace bfree::verify {

/**
 * One systolic reduction chain: the sub-arrays of a sub-bank whose
 * BCEs forward partial sums downstream (Fig. 8/9(b)). Links are
 * (from, to) flat sub-array ids; a well-formed chain is acyclic,
 * unidirectional (out-degree <= 1) and connects every node to the
 * single sink that feeds the router.
 */
struct ReductionChain
{
    std::vector<unsigned> nodes;
    std::vector<std::pair<unsigned, unsigned>> links;
};

/**
 * Derive the reduction chains a mapping implies: active sub-arrays are
 * grouped into sub-banks of geom.subarraysPerSubBank nodes, linearly
 * chained in id order. Special-mode mappings reduce nothing and yield
 * no chains.
 */
std::vector<ReductionChain>
derive_reduction_chains(const map::LayerMapping &mapping,
                        const tech::CacheGeometry &geom);

/** Tunables of the verifier. */
struct VerifierOptions
{
    /** Derive and check the weight placement + reduction chains of a
     *  kernel's mapping (the most expensive rules; on by default). */
    bool checkPlacement = true;
};

/**
 * The static-analysis pass. Stateless apart from geometry/options, so
 * one instance can verify any number of kernels.
 */
class KernelVerifier
{
  public:
    explicit KernelVerifier(const tech::CacheGeometry &geom,
                            VerifierOptions options = {});

    // ------------------------------------------------------------------
    // Whole-kernel passes
    // ------------------------------------------------------------------
    /** Run every rule over @p kernel. */
    VerifyReport verify(const map::CompiledKernel &kernel) const;

    /** As above plus the kernel-vs-layer rules (MAC conservation,
     *  precision agreement). */
    VerifyReport verify(const map::CompiledKernel &kernel,
                        const dnn::Layer &layer) const;

    // ------------------------------------------------------------------
    // Artifact-level checks (append findings into @p report)
    // ------------------------------------------------------------------
    void checkInstruction(const bce::PimInstruction &inst,
                          VerifyReport &report,
                          const std::string &location = "instruction") const;

    void checkConfigBlock(const bce::ConfigBlock &cb, VerifyReport &report,
                          const std::string &location = "config block") const;

    /** Raw CB bytes as fetched from a sub-array (pipeline stage 1). */
    void checkConfigBytes(
        const std::array<std::uint8_t, bce::ConfigBlock::encoded_size> &bytes,
        VerifyReport &report,
        const std::string &location = "config bytes") const;

    /** LUT images of one kernel; images sharing a configPhase must
     *  together fit the 8-row/64-entry budget. */
    void checkLutImages(const std::vector<lut::LutImage> &images,
                        VerifyReport &report) const;

    void checkMapping(const map::LayerMapping &mapping,
                      VerifyReport &report,
                      const std::string &location = "mapping") const;

    void checkPlacement(const map::WeightPlacement &placement,
                        VerifyReport &report) const;

    void checkChains(const std::vector<ReductionChain> &chains,
                     const map::LayerMapping &mapping,
                     VerifyReport &report) const;

    /** Datapath legality of @p opcode under @p mode. */
    void checkMode(bce::PimOpcode opcode, map::ExecMode mode,
                   VerifyReport &report,
                   const std::string &location = "mode") const;

    void checkMacConservation(const map::CompiledKernel &kernel,
                              const dnn::Layer &layer,
                              VerifyReport &report) const;

    // ------------------------------------------------------------------
    // Canonical row layout (delegates to tech/row_layout.hh)
    // ------------------------------------------------------------------
    /** Rows in one sub-array (1024). */
    unsigned totalRows() const;

    /** First weight row (8: past the config-block region). */
    unsigned weightBaseRow() const;

    /** First reserved LUT row (1016). */
    unsigned firstLutRow() const;

    const tech::CacheGeometry &geometry() const { return geom; }
    const VerifierOptions &options() const { return opts; }

  private:
    tech::CacheGeometry geom;
    VerifierOptions opts;
};

/**
 * Validate that every value fits @p bits (signed two's-complement when
 * @p is_signed, else unsigned); violations report rule operand-range.
 * Used by bfree_trace to vet operand lists before tracing.
 */
void check_operand_range(const std::vector<int> &values, unsigned bits,
                         bool is_signed, VerifyReport &report,
                         const std::string &location);

} // namespace bfree::verify

#endif // BFREE_VERIFY_KERNEL_VERIFIER_HH
