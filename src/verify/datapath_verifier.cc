#include "datapath_verifier.hh"

#include <array>
#include <sstream>

#include "lut/datapath_table.hh"

namespace bfree::verify {

namespace {

using lut::DatapathTable;

/** Signed operand at plane coordinate @p i: i - 2^(bits-1). */
std::int32_t
operand_at(const DatapathPlaneView &v, std::size_t i)
{
    return static_cast<std::int32_t>(i)
           - (std::int32_t{1} << (v.bits - 1));
}

/** The bilinear feature fold of one class key (DESIGN.md section 15). */
std::uint32_t
folded_delta(unsigned key, std::uint32_t cycles_factor)
{
    const unsigned cA = key >> 4, cB = key & 0xF;
    const std::uint32_t pp = DatapathTable::class_feature_p[cA]
                             * DatapathTable::class_feature_p[cB];
    const std::uint32_t oo = DatapathTable::class_feature_o[cA]
                             * DatapathTable::class_feature_o[cB];
    const std::uint32_t ll = DatapathTable::class_feature_l[cA]
                             * DatapathTable::class_feature_l[cB];
    const std::uint32_t zz = DatapathTable::class_feature_z[cA]
                             * DatapathTable::class_feature_z[cB];
    return ll << DatapathTable::delta_lookups_shift
           | (pp - oo) << DatapathTable::delta_shifts_shift
           | (pp - zz) << DatapathTable::delta_adds_shift
           | (cycles_factor * pp) << DatapathTable::delta_cycles_shift;
}

/**
 * Shape pass: returns true when the planes the exactness checks read
 * are safe to index (claimed span matches the precision and every
 * present plane has the matching element count).
 */
bool
check_shape(const DatapathPlaneView &v, VerifyReport &report,
            const std::string &location)
{
    bool well_formed = true;

    if (!DatapathTable::coversBits(v.bits)) {
        std::ostringstream os;
        os << "table claims " << v.bits
           << "-bit operands; memoization covers 4- and 8-bit only";
        report.add(RuleId::LutPlaneShape, Severity::Error, location,
                   os.str(), "build tables only for coversBits() widths");
        return false;
    }

    const unsigned want_span = (2u << (v.bits - 1)) + 1;
    if (v.span != want_span) {
        std::ostringstream os;
        os << "plane span " << v.span << " != 2^" << v.bits
           << " + 1 = " << want_span;
        report.add(RuleId::LutPlaneShape, Severity::Error, location,
                   os.str(), "rebuild the table; the span is derived, "
                             "never set");
        well_formed = false;
    }

    const std::size_t want_entries = std::size_t{v.span} * v.span;
    if (v.productCount != want_entries) {
        std::ostringstream os;
        os << "product plane holds " << v.productCount
           << " entries; span " << v.span << " needs " << want_entries;
        report.add(RuleId::LutPlaneShape, Severity::Error, location,
                   os.str());
        well_formed = false;
    }
    if (v.deltaCount != want_entries) {
        std::ostringstream os;
        os << "delta plane holds " << v.deltaCount << " entries; span "
           << v.span << " needs " << want_entries;
        report.add(RuleId::LutPlaneShape, Severity::Error, location,
                   os.str());
        well_formed = false;
    }
    if (v.histogramExact && v.pairDeltaCount != 256) {
        std::ostringstream os;
        os << "histogram-exact table carries " << v.pairDeltaCount
           << " pair-delta entries; the class-key space needs 256";
        report.add(RuleId::LutPlaneShape, Severity::Error, location,
                   os.str());
        well_formed = false;
    }
    return well_formed;
}

/**
 * Exactness pass over well-formed planes: each claimed fast-path flag
 * is re-proven against the plane contents. One finding per lying flag
 * with the first offending pair named and the total mismatch count —
 * a poisoned LUT row disagrees on hundreds of pairs and per-pair
 * findings would drown the report.
 */
void
check_exactness(const DatapathPlaneView &v, VerifyReport &report,
                const std::string &location)
{
    const std::size_t n = std::size_t{v.span} * v.span;

    if (v.productsExact && v.products) {
        std::size_t bad = 0;
        std::size_t first = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::int32_t a = operand_at(v, i / v.span);
            const std::int32_t b = operand_at(v, i % v.span);
            if (v.products[i] != a * b) {
                if (bad == 0)
                    first = i;
                ++bad;
            }
        }
        if (bad != 0) {
            std::ostringstream os;
            os << "productsExact claimed, but " << bad << " of " << n
               << " products disagree with a*b (first: ("
               << operand_at(v, first / v.span) << ", "
               << operand_at(v, first % v.span) << ") holds "
               << v.products[first] << ")";
            report.add(RuleId::LutPlaneExact, Severity::Error, location,
                       os.str(),
                       "clear productsExact so kernels gather from the "
                       "product plane");
        }
    }

    if (!v.histogramExact)
        return;

    if (v.cyclesFactor > 1) {
        std::ostringstream os;
        os << "fold cycles factor " << v.cyclesFactor
           << " outside {0, 1}";
        report.add(RuleId::LutPlaneExact, Severity::Error, location,
                   os.str(),
                   "clear histogramExact so kernels gather deltas");
        return;
    }
    if (!v.deltas || !v.pairDeltas)
        return;

    // The delta plane must collapse onto the class keys...
    std::size_t bad = 0;
    std::size_t first = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t a = operand_at(v, i / v.span);
        const std::int32_t b = operand_at(v, i % v.span);
        const std::uint8_t key = DatapathTable::class_key(a, b);
        if (v.deltas[i] != v.pairDeltas[key]) {
            if (bad == 0)
                first = i;
            ++bad;
        }
    }
    if (bad != 0) {
        std::ostringstream os;
        os << "histogramExact claimed, but " << bad << " of " << n
           << " packed deltas disagree with their class key (first: ("
           << operand_at(v, first / v.span) << ", "
           << operand_at(v, first % v.span) << "))";
        report.add(RuleId::LutPlaneExact, Severity::Error, location,
                   os.str(),
                   "clear histogramExact so kernels gather deltas");
        return;
    }

    // ...and the class keys onto the bilinear feature fold the SIMD
    // kernels actually compute. Only keys that occur in the plane are
    // meaningful; unreachable keys hold 0 by construction.
    std::array<bool, 256> seen{};
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t a = operand_at(v, i / v.span);
        const std::int32_t b = operand_at(v, i % v.span);
        seen[DatapathTable::class_key(a, b)] = true;
    }
    for (unsigned key = 0; key < 256; ++key) {
        if (!seen[key])
            continue;
        const std::uint32_t expect = folded_delta(key, v.cyclesFactor);
        if (v.pairDeltas[key] != expect) {
            std::ostringstream os;
            os << "histogramExact claimed, but class key 0x" << std::hex
               << key << std::dec << " holds delta 0x" << std::hex
               << v.pairDeltas[key] << " where the feature fold gives 0x"
               << expect << std::dec;
            report.add(RuleId::LutPlaneExact, Severity::Error, location,
                       os.str(),
                       "clear histogramExact so kernels gather deltas");
            return;
        }
    }
}

} // namespace

DatapathPlaneView
view_of(const lut::DatapathTable &table)
{
    DatapathPlaneView v;
    v.bits = table.bits();
    v.span = table.span();
    v.products = table.products();
    v.productCount = table.entryCount();
    v.deltas = table.deltas();
    v.deltaCount = table.entryCount();
    v.pairDeltas = table.pairDeltas();
    v.pairDeltaCount = 256;
    v.productsExact = table.productsExact();
    v.histogramExact = table.histogramExact();
    v.cyclesFactor = table.cyclesFactor();
    return v;
}

void
verify_datapath_planes(const DatapathPlaneView &view, VerifyReport &report,
                       const std::string &location)
{
    if (check_shape(view, report, location))
        check_exactness(view, report, location);
}

VerifyReport
verify_datapath_table(const lut::DatapathTable &table,
                      const std::string &location)
{
    VerifyReport report;
    verify_datapath_planes(view_of(table), report, location);
    return report;
}

} // namespace bfree::verify
