/**
 * @file
 * Structured diagnostics for the static kernel verifier.
 *
 * Every invariant the verifier checks has a stable rule id; a failed
 * check produces a Diagnostic (rule, severity, location, message, fix
 * hint) instead of aborting the process. Tools and tests key off the
 * rule ids, so they are part of the public surface: renaming one is an
 * API break.
 *
 * This header is deliberately free of map/bce/lut dependencies so low
 * layers (compiled-kernel containers, run results) can carry a report
 * without pulling in the verifier itself.
 */

#ifndef BFREE_VERIFY_DIAGNOSTIC_HH
#define BFREE_VERIFY_DIAGNOSTIC_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bfree::verify {

/** How bad a finding is. */
enum class Severity
{
    Error,   ///< The artifact must not execute.
    Warning, ///< Executable, but almost certainly not what was meant.
    Note,    ///< Informational (e.g. a legal clamp was applied).
};

/** Printable severity name ("error", "warning", "note"). */
const char *severity_name(Severity severity);

/**
 * The rule catalogue. One id per checkable invariant; see DESIGN.md
 * for the prose description of each rule.
 */
enum class RuleId
{
    // Config-block rules.
    CbOpcodeByte,   ///< cb-opcode-byte: raw opcode byte is not a PimOpcode.
    CbPrecision,    ///< cb-precision: precision field not 4/8/16.
    CbRowRange,     ///< cb-row-range: weight row range malformed.
    CbIterations,   ///< cb-iterations: iteration field vs kernel steps.
    CbRoundTrip,    ///< cb-round-trip: encode/decode is not the identity.

    // Instruction rules.
    OpPrecision,    ///< op-precision: opcode/precision pair unsupported.
    InstShape,      ///< inst-shape: degenerate instruction dimensions.
    InstMacOverflow,///< inst-mac-overflow: MAC count overflows 64 bits.

    // LUT-image rules.
    LutOversize,         ///< lut-oversize: image exceeds the 64-entry region.
    LutPartitionConflict,///< lut-partition-conflict: co-resident images
                         ///< overflow the 8-row budget.
    WeightLutOverlap,    ///< weight-lut-overlap: weight rows collide with
                         ///< the reserved LUT rows.

    // Datapath-table (split-plane) rules.
    LutPlaneShape, ///< lut-plane-shape: plane extents inconsistent with
                   ///< the table's precision (span != 2^bits + 1, or
                   ///< product/delta/pair-delta plane sizes disagree).
    LutPlaneExact, ///< lut-plane-exact: an exactness flag lies — a
                   ///< productsExact table with a poisoned product, or
                   ///< a histogramExact table whose delta plane or
                   ///< factored fold disagrees with pairDeltas.

    // Kernel-vs-layer rules.
    MacConservation,///< mac-conservation: instruction MACs != layer MACs.

    // Placement rules.
    PlacementOccupancy, ///< placement-occupancy: sub-array budget violated.
    PlacementOverlap,   ///< placement-overlap: extents overlap in a pass.

    // Reduction-chain rules.
    ChainCyclic,       ///< chain-cyclic: reduction chain has a cycle.
    ChainFanout,       ///< chain-fanout: node forwards to >1 neighbour.
    ChainDisconnected, ///< chain-disconnected: active BCE unreachable.

    // Mode rules.
    ModeDatapath, ///< mode-datapath: opcode illegal on the mapped datapath.

    // Tool-input rules.
    OperandRange, ///< operand-range: operand does not fit the precision.

    // ------------------------------------------------------------------
    // Plan-level rules (plan_verifier; DESIGN.md section 13).
    // ------------------------------------------------------------------
    PlanEmpty,     ///< plan-empty: plan contains no layers.
    PlanPrecision, ///< plan-precision: layer precision disagrees with
                   ///< the plan's compiled precision (or is unsupported).

    // Region/interval rules over (slice, sub-bank, sub-array, row).
    RegionBounds,    ///< region-bounds: a placed region exits the
                     ///< geometry or the usable weight rows.
    RegionOverlap,   ///< region-overlap: two layers of one plan claim
                     ///< overlapping resident rows.
    RegionCrossPlan, ///< region-cross-plan: co-resident plans claim
                     ///< overlapping rows (multi-model residency).

    // Dataflow-graph rules over the producer/consumer graph.
    DataflowCycle,       ///< dataflow-cycle: the layer graph cycles.
    DataflowDangling,    ///< dataflow-dangling: consumer names a
                         ///< producer that does not exist.
    DataflowFanin,       ///< dataflow-fanin: producer/consumer element
                         ///< counts disagree.
    DataflowUnreachable, ///< dataflow-unreachable: a kernel's output
                         ///< feeds neither a consumer nor the plan
                         ///< output.

    // Capacity-ledger rules.
    CapacityRows,   ///< capacity-rows: resident sub-array/CB demand
                    ///< exceeds the fabric.
    CapacityFabric, ///< capacity-fabric: resident weight bytes exceed
                    ///< the fabric's usable capacity.
    CapacityArena,  ///< capacity-arena: the TensorArena ledger is
                    ///< inconsistent or over budget.
    PlanFrontend,   ///< plan-frontend: a layer's recorded conv
                    ///< front-end mode (fused/elided/legacy) is
                    ///< invalid for its kind or precision, or
                    ///< disagrees with the geometry policy.

    // Serving-config rules.
    ServeQueue,   ///< serve-queue: zero-capacity request queue.
    ServeBatch,   ///< serve-batch: batch bound zero or beyond what the
                  ///< queue can ever supply.
    ServeWindow,  ///< serve-window: batching window not inside the SLO
                  ///< deadline.
    ServeService, ///< serve-service: service-time model degenerate or
                  ///< its floor alone misses the SLO.
};

/** Stable kebab-case rule name (e.g. "cb-opcode-byte"). */
const char *rule_name(RuleId rule);

/** One finding. */
struct Diagnostic
{
    RuleId rule = RuleId::CbOpcodeByte;
    Severity severity = Severity::Error;
    std::string location; ///< Artifact coordinates ("fc6: instruction 0").
    std::string message;  ///< What is wrong.
    std::string fixHint;  ///< How to repair it (may be empty).

    /**
     * Aggregation key: the position of the finding's artifact in its
     * enclosing plan (e.g. the layer index). mergeFrom keeps findings
     * ordered by this key, so a plan report assembled from per-kernel
     * reports reads in layer order no matter which kernel was verified
     * first. add() leaves it 0; merge paths stamp it.
     */
    std::size_t sequence = 0;

    /** "error[cb-opcode-byte] fc6: instruction 0: ... (fix: ...)". */
    std::string toString() const;
};

/**
 * An ordered list of findings with the query helpers tools and tests
 * need. Checks append in rule-catalogue order within each artifact, so
 * output is deterministic.
 */
class VerifyReport
{
  public:
    /** Append one finding. */
    void add(RuleId rule, Severity severity, std::string location,
             std::string message, std::string fix_hint = "");

    /** Append every finding of @p other, prefixing @p location. */
    void merge(const VerifyReport &other, const std::string &location);

    /**
     * Move every finding of @p other into this report, prefixing
     * @p location and stamping @p sequence (e.g. the layer index of
     * the kernel the sub-report describes). Findings are kept sorted
     * by sequence, stably: two findings with the same key stay in
     * their source order. Merging per-kernel reports therefore yields
     * one and the same plan report regardless of the order the merges
     * happen in — the property the order-independence unit test pins.
     */
    void mergeFrom(VerifyReport &&other, const std::string &location,
                   std::size_t sequence);

    /** All findings, in check order. */
    const std::vector<Diagnostic> &diagnostics() const { return diags; }

    /** True when no Error-severity finding is present. */
    bool ok() const;

    std::size_t errorCount() const;
    std::size_t warningCount() const;

    /** True when a finding with @p rule is present. */
    bool has(RuleId rule) const;

    /** Findings with @p rule. */
    std::size_t count(RuleId rule) const;

    /** One line per finding plus a summary line. */
    std::string toString() const;

  private:
    std::vector<Diagnostic> diags;
};

} // namespace bfree::verify

#endif // BFREE_VERIFY_DIAGNOSTIC_HH
