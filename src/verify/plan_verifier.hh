/**
 * @file
 * Whole-plan static analysis: cross-kernel placement, dataflow,
 * capacity and serving-config verification.
 *
 * PR 2's KernelVerifier proves one CompiledKernel at a time; this pass
 * reasons about a whole compiled network — and about several networks
 * sharing the fabric — before anything executes:
 *
 *  1. **Region/interval analysis.** Every layer's weight extents,
 *     config-block region and LUT reservation become row intervals in
 *     an interval map over (slice, sub-bank, sub-array, row). The map
 *     proves the regions disjoint and inside the geometry; it accepts
 *     multiple plans at once, so multi-model residency is the same
 *     check with more owners (rules region-bounds, region-overlap,
 *     region-cross-plan).
 *
 *  2. **Dataflow-graph analysis.** The producer/consumer graph over
 *     layers is checked for cycles, dangling producers, fan-in element
 *     mismatches against the dnn::Layer shapes, and dead kernels whose
 *     output nothing consumes (rules dataflow-*). Per-layer reduction
 *     chains are checked by the kernel verifier and merged in.
 *
 *  3. **Capacity/energy ledger.** Static accounting of sub-arrays,
 *     config blocks and weight bytes demanded by a resident plan
 *     against the fabric, and of per-layer scratch against the
 *     TensorArena budget — surfacing the first layer that overflows
 *     (rules capacity-*).
 *
 *  4. **Serving-config audit.** A serve setup is rejected statically
 *     when its queue, batch bound, batching window or service-time
 *     model cannot possibly behave (rules serve-*). The config mirror
 *     lives here, not in src/serve, so the dependency keeps pointing
 *     serve -> verify.
 *
 * All analyses are pure: they allocate nothing on the fabric and never
 * touch weight values, so auditing VGG-16 costs what compiling its
 * kernels costs. Violations become Diagnostics, never aborts.
 */

#ifndef BFREE_VERIFY_PLAN_VERIFIER_HH
#define BFREE_VERIFY_PLAN_VERIFIER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/network_plan.hh"
#include "diagnostic.hh"
#include "dnn/network.hh"
#include "map/kernel_compiler.hh"
#include "map/placement.hh"
#include "sim/types.hh"
#include "tech/geometry.hh"

namespace bfree::verify {

// ----------------------------------------------------------------------
// Spatial layout: where a compiled plan sits on the fabric
// ----------------------------------------------------------------------

/** One layer compiled and offset to its residency base. */
struct PlacedKernel
{
    dnn::Layer layer;
    map::CompiledKernel kernel;

    /** Pass-0 weight extents (sub-array ids relative to the layer). */
    map::WeightPlacement placement;

    /** First flat sub-array of the fabric this layer's region uses. */
    unsigned baseSubarray = 0;

    /** Sub-arrays the layer occupies ([base, base + span)). */
    unsigned spanSubarrays = 0;
};

/** The spatial footprint of one plan on the fabric. */
struct PlanLayout
{
    std::string name;
    unsigned bits = 8;

    /**
     * True when the whole plan's weights stay loaded at once: layers
     * are packed side by side and their regions must be disjoint.
     * Streamed plans time-multiplex the region starting at
     * baseSubarray instead, so only their worst layer's span counts
     * as the static footprint.
     */
    bool resident = false;

    unsigned baseSubarray = 0;

    /** Fabric sub-arrays the plan claims ([base, base + span)). */
    unsigned spanSubarrays = 0;

    std::vector<PlacedKernel> kernels;
};

/**
 * Compile every layer of @p net and lay the plan out starting at
 * @p base_subarray. Purely static: weights are never materialized.
 * Residency comes from the mapper; a resident plan packs each
 * weight-bearing layer after the previous one, a streamed plan reuses
 * [base, base + worst-layer span).
 */
PlanLayout layout_network(const dnn::Network &net,
                          const tech::CacheGeometry &geom,
                          map::MapperOptions mapper_options = {},
                          unsigned base_subarray = 0);

/** As layout_network, over the network a compiled plan froze. */
PlanLayout layout_plan(const core::NetworkPlan &plan,
                       const tech::CacheGeometry &geom,
                       map::MapperOptions mapper_options = {},
                       unsigned base_subarray = 0);

/**
 * Assign consecutive base sub-arrays to @p layouts in order (first at
 * @p base_subarray, each next after the previous footprint), the
 * packing multi-model residency wants before verifyResidency checks
 * it. Offsets every kernel's base along with its plan.
 */
void pack_layouts(std::vector<PlanLayout> &layouts,
                  unsigned base_subarray = 0);

// ----------------------------------------------------------------------
// Dataflow graph
// ----------------------------------------------------------------------

/** One kernel in the producer/consumer graph. */
struct DataflowNode
{
    std::string name;
    std::size_t inElems = 0;  ///< Activation elements consumed.
    std::size_t outElems = 0; ///< Activation elements produced.

    /**
     * Indices of the producing nodes; empty means the node reads the
     * plan input. A node with several producers consumes their
     * concatenated outputs (fan-in), so its inElems must equal the
     * sum of the producers' outElems.
     */
    std::vector<std::size_t> producers;
};

/** The producer/consumer graph of one plan. */
struct DataflowGraph
{
    std::size_t inputElems = 0; ///< Elements the plan input supplies.
    std::vector<DataflowNode> nodes;

    /** Node whose output is the plan output (default: last node). */
    std::size_t outputNode = SIZE_MAX;
};

/** The linear chain graph of a flattened layer list. */
DataflowGraph dataflow_from_layers(const std::vector<dnn::Layer> &layers,
                                   std::size_t input_elems);

/** The chain graph of a compiled plan's frozen layers. */
DataflowGraph dataflow_from_plan(const core::NetworkPlan &plan);

// ----------------------------------------------------------------------
// Serving-config audit
// ----------------------------------------------------------------------

/**
 * Static mirror of serve::ServeConfig, kept free of src/serve types.
 * ServeEngine fills one from its config at construction and rejects
 * on errors; tests and tools can audit hypothetical configs directly.
 */
struct ServeAuditConfig
{
    std::size_t queueDepth = 0;   ///< Admission bound of the queue.
    std::size_t maxBatch = 0;     ///< Batch occupancy cap.
    sim::Tick windowTicks = 0;    ///< Partial-batch release window.
    std::uint64_t cyclesPerTick = 0; ///< Service-time scale.
    sim::Tick minServiceTicks = 0;   ///< Service-time floor.

    /** Advertised SLO deadline; max_tick means none. */
    sim::Tick sloDeadlineTicks = sim::max_tick;
};

/**
 * Statically audit @p cfg (rules serve-*): a zero-capacity queue, a
 * batch bound of zero or beyond the queue's depth (the merge bound
 * could never be reached), a batching window that already spends the
 * whole SLO deadline, and a degenerate service-time model are all
 * rejected before a single request is admitted.
 */
VerifyReport audit_serve_config(const ServeAuditConfig &cfg,
                                const std::string &location =
                                    "serve config");

// ----------------------------------------------------------------------
// The pass
// ----------------------------------------------------------------------

/** Tunables of the plan verifier. */
struct PlanVerifierOptions
{
    /** Re-run the per-kernel rule catalogue and merge its findings
     *  into the plan report (on by default). */
    bool checkKernels = true;

    /** Run the region/interval analysis. */
    bool checkRegions = true;

    /** Run the dataflow-graph analysis. */
    bool checkDataflow = true;

    /** Run the capacity ledger. */
    bool checkCapacity = true;

    /** Re-prove the split-plane datapath-table invariants for every
     *  memoizable precision the plan uses (rules lut-plane-*). */
    bool checkDatapath = true;

    /** Audit each layer's recorded conv front-end mode against its
     *  kind, precision and geometry (rule plan-frontend). */
    bool checkFrontend = true;
};

/**
 * The whole-plan static-analysis pass. Stateless apart from
 * geometry/options; one instance audits any number of plans.
 */
class PlanVerifier
{
  public:
    explicit PlanVerifier(const tech::CacheGeometry &geom,
                          PlanVerifierOptions options = {});

    // ------------------------------------------------------------------
    // Whole-plan passes
    // ------------------------------------------------------------------
    /**
     * Audit @p net end to end without weights: compile + lay out every
     * layer, then run every enabled analysis. @p expected_bits pins
     * the uniform precision the plan will compile at (0 accepts any
     * supported per-layer precision, e.g. mixed).
     */
    VerifyReport verifyNetwork(const dnn::Network &net,
                               unsigned expected_bits = 0,
                               map::MapperOptions mapper_options = {}) const;

    /** Audit a compiled plan: verifyNetwork over its frozen network
     *  plus the TensorArena ledger of its actual PlanStats. */
    VerifyReport verify(const core::NetworkPlan &plan,
                        map::MapperOptions mapper_options = {}) const;

    /**
     * Audit several plans placed on the fabric together: each layout's
     * own regions plus cross-plan disjointness and the aggregate
     * fabric capacity. The enabling check for multi-model residency.
     */
    VerifyReport
    verifyResidency(const std::vector<PlanLayout> &layouts) const;

    // ------------------------------------------------------------------
    // Individual analyses (append findings into @p report)
    // ------------------------------------------------------------------
    /** Interval-map pass over every layout's row regions. */
    void checkRegions(const std::vector<PlanLayout> &layouts,
                      VerifyReport &report) const;

    /** Graph pass: cycles, dangling producers, fan-in mismatches,
     *  dead kernels. */
    void checkDataflow(const DataflowGraph &graph, VerifyReport &report,
                       const std::string &location = "dataflow") const;

    /** Fabric ledger of one layout: sub-arrays/config blocks and
     *  weight bytes vs the fabric, first overflow named. */
    void checkCapacity(const PlanLayout &layout,
                       VerifyReport &report) const;

    /** TensorArena ledger: per-layer scratch and activations vs the
     *  plan's computed budget; @p arena_budget_bytes caps the whole
     *  arena when non-zero. */
    void checkArena(const core::PlanStats &stats,
                    const std::vector<core::PlannedLayer> &layers,
                    VerifyReport &report,
                    const std::string &location = "arena",
                    std::size_t arena_budget_bytes = 0) const;

    /**
     * Front-end-mode audit (rule plan-frontend): a fused or elided
     * mode on a non-conv layer or a > 8-bit conv is an error (no int8
     * patch pipeline exists there); a conv mode that disagrees with
     * what dnn::resolve_frontend would choose right now — geometry
     * policy plus any live BFREE_FORCE_FRONTEND override — is a
     * warning (every mode is still byte-exact, the plan just is not
     * running the front end its geometry prefers).
     */
    void checkFrontend(const std::vector<core::PlannedLayer> &layers,
                       unsigned plan_bits, VerifyReport &report,
                       const std::string &location = "frontend") const;

    const tech::CacheGeometry &geometry() const { return geom; }
    const PlanVerifierOptions &options() const { return opts; }

  private:
    tech::CacheGeometry geom;
    PlanVerifierOptions opts;
};

} // namespace bfree::verify

#endif // BFREE_VERIFY_PLAN_VERIFIER_HH
