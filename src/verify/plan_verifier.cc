#include "plan_verifier.hh"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "datapath_verifier.hh"
#include "dnn/im2col.hh"
#include "lut/datapath_table.hh"
#include "lut/mult_lut.hh"
#include "map/mapping.hh"
#include "tech/row_layout.hh"

namespace bfree::verify {

namespace {

/**
 * The ROM-seeded datapath table for @p bits the tiered engine will
 * memoize at run time, built once and shared by every audit: the
 * planes are a pure function of (bits, hardwired ROM), so re-deriving
 * the 66k-entry 8-bit plane per verified plan would be waste.
 */
const lut::DatapathTable &
audit_rom_table(unsigned bits)
{
    static const lut::MultLut rom;
    static const lut::DatapathTable t4 =
        lut::build_rom_datapath_table(4, rom);
    static const lut::DatapathTable t8 =
        lut::build_rom_datapath_table(8, rom);
    return bits == 4 ? t4 : t8;
}

// ----------------------------------------------------------------------
// Element accounting (mirrors core::NetworkPlan's dry planning pass)
// ----------------------------------------------------------------------

/** Activation elements @p l consumes. Matches plan_shapes: FC consumes
 *  its flattened feature vector (fcRows is a batching dimension the
 *  functional walk does not thread through the chain). */
std::size_t
consumed_elems(const dnn::Layer &l)
{
    switch (l.kind) {
      case dnn::LayerKind::Fc:
        return l.inFeatures;
      case dnn::LayerKind::LstmCell:
        return l.lstmInput;
      case dnn::LayerKind::Attention:
      case dnn::LayerKind::LayerNorm:
        return std::size_t(l.seqLen) * l.dModel;
      default:
        return l.input.elements();
    }
}

/** Activation elements @p l produces. */
std::size_t
produced_elems(const dnn::Layer &l)
{
    switch (l.kind) {
      case dnn::LayerKind::Fc:
        return l.outFeatures;
      case dnn::LayerKind::LstmCell:
        return l.lstmHidden;
      case dnn::LayerKind::Attention:
      case dnn::LayerKind::LayerNorm:
        return std::size_t(l.seqLen) * l.dModel;
      default:
        return l.outputShape().elements();
    }
}

/**
 * True when the flattened layer list chains shape-wise: each layer
 * consumes exactly what its predecessor produced. Branched topologies
 * (Inception) flatten to lists that do NOT chain; the linear dataflow
 * analysis is skipped for them (DESIGN.md section 13).
 */
bool
layers_chain(const dnn::Network &net)
{
    std::size_t elems = net.input().elements();
    for (const dnn::Layer &l : net.layers()) {
        if (consumed_elems(l) != elems)
            return false;
        elems = produced_elems(l);
    }
    return true;
}

// ----------------------------------------------------------------------
// Fabric coordinates
// ----------------------------------------------------------------------

/** Decode a flat sub-array id into (slice, bank, sub-bank, sub-array)
 *  coordinates for diagnostics. */
std::string
subarray_location(const tech::CacheGeometry &geom, unsigned sa)
{
    std::ostringstream os;
    const unsigned per_slice = geom.subarraysPerSlice();
    if (per_slice == 0 || sa >= geom.totalSubarrays()) {
        os << "sub-array " << sa << " (out of fabric)";
        return os.str();
    }
    const unsigned slice = sa / per_slice;
    const unsigned rem = sa % per_slice;
    const unsigned per_bank =
        geom.subBanksPerBank * geom.subarraysPerSubBank;
    os << "slice " << slice << " bank " << rem / per_bank << " sub-bank "
       << (rem / geom.subarraysPerSubBank) % geom.subBanksPerBank
       << " sub-array " << rem % geom.subarraysPerSubBank;
    return os.str();
}

// ----------------------------------------------------------------------
// Interval map
// ----------------------------------------------------------------------

/** One rectangular claim on the fabric: a run of sub-arrays crossed
 *  with a row range. */
struct RegionClaim
{
    unsigned saBegin = 0;
    unsigned saEnd = 0; ///< Exclusive.
    unsigned rowBegin = 0;
    unsigned rowEnd = 0; ///< Exclusive.
    std::size_t plan = 0;   ///< Index into the layout list.
    std::size_t layer = 0;  ///< Layer index inside the plan.
    std::string owner;      ///< "plan 'x' layer 'y' weights" etc.
};

bool
claims_overlap(const RegionClaim &a, const RegionClaim &b)
{
    return a.saBegin < b.saEnd && b.saBegin < a.saEnd
           && a.rowBegin < b.rowEnd && b.rowBegin < a.rowEnd;
}

std::string
overlap_location(const tech::CacheGeometry &geom, const RegionClaim &a,
                 const RegionClaim &b)
{
    const unsigned sa = std::max(a.saBegin, b.saBegin);
    std::ostringstream os;
    os << subarray_location(geom, sa) << " rows ["
       << std::max(a.rowBegin, b.rowBegin) << ", "
       << std::min(a.rowEnd, b.rowEnd) << ")";
    return os.str();
}

/** The replica-0 / pass-0 extents — the canonical static image of a
 *  layer. Replica/pass disjointness inside one layer is proven by the
 *  per-kernel verifier (placement-overlap, placement-occupancy); the
 *  plan verifier reasons about the canonical image across layers. */
std::vector<map::TileExtent>
canonical_extents(const map::WeightPlacement &placement)
{
    std::vector<map::TileExtent> out;
    for (const map::TileExtent &e : placement.extents) {
        if (e.replica == 0 && e.pass == 0)
            out.push_back(e);
    }
    return out;
}

} // namespace

// ----------------------------------------------------------------------
// Layout construction
// ----------------------------------------------------------------------

PlanLayout
layout_network(const dnn::Network &net, const tech::CacheGeometry &geom,
               map::MapperOptions mapper_options, unsigned base_subarray)
{
    const map::KernelCompiler compiler(geom, mapper_options);
    const map::Mapper mapper(geom, mapper_options);

    PlanLayout layout;
    layout.name = net.name();
    layout.resident = !net.layers().empty() && mapper.weightsResident(net);
    layout.baseSubarray = base_subarray;

    unsigned uniform_bits = 0;
    bool uniform = true;

    unsigned cursor = 0;     // Resident packing offset.
    unsigned worst_span = 0; // Streamed footprint.
    for (const dnn::Layer &layer : net.layers()) {
        if (uniform_bits == 0)
            uniform_bits = layer.precisionBits;
        else if (layer.precisionBits != uniform_bits)
            uniform = false;

        PlacedKernel pk;
        pk.layer = layer;
        pk.kernel = compiler.compile(layer);
        pk.baseSubarray = base_subarray + (layout.resident ? cursor : 0);

        const map::LayerMapping &m = pk.kernel.mapping;
        if (m.mode != map::ExecMode::SpecialMode && m.weightBytes > 0) {
            pk.placement = map::place_weights(m, geom);
            unsigned span = 0;
            for (const map::TileExtent &e :
                 canonical_extents(pk.placement))
                span = std::max(span, e.subarray + 1);
            pk.spanSubarrays = span;
        }

        if (layout.resident)
            cursor += pk.spanSubarrays;
        worst_span = std::max(worst_span, pk.spanSubarrays);
        layout.kernels.push_back(std::move(pk));
    }

    layout.bits = uniform ? uniform_bits : 0;
    layout.spanSubarrays = layout.resident ? cursor : worst_span;
    return layout;
}

PlanLayout
layout_plan(const core::NetworkPlan &plan, const tech::CacheGeometry &geom,
            map::MapperOptions mapper_options, unsigned base_subarray)
{
    PlanLayout layout = layout_network(plan.network(), geom,
                                       mapper_options, base_subarray);
    layout.bits = plan.bits();
    return layout;
}

void
pack_layouts(std::vector<PlanLayout> &layouts, unsigned base_subarray)
{
    unsigned cursor = base_subarray;
    for (PlanLayout &layout : layouts) {
        const unsigned old_base = layout.baseSubarray;
        layout.baseSubarray = cursor;
        for (PlacedKernel &pk : layout.kernels)
            pk.baseSubarray = cursor + (pk.baseSubarray - old_base);
        cursor += layout.spanSubarrays;
    }
}

// ----------------------------------------------------------------------
// Dataflow graphs
// ----------------------------------------------------------------------

DataflowGraph
dataflow_from_layers(const std::vector<dnn::Layer> &layers,
                     std::size_t input_elems)
{
    DataflowGraph graph;
    graph.inputElems = input_elems;
    graph.nodes.reserve(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
        DataflowNode node;
        node.name = layers[i].name;
        node.inElems = consumed_elems(layers[i]);
        node.outElems = produced_elems(layers[i]);
        if (i > 0)
            node.producers.push_back(i - 1);
        graph.nodes.push_back(std::move(node));
    }
    return graph;
}

DataflowGraph
dataflow_from_plan(const core::NetworkPlan &plan)
{
    DataflowGraph graph;
    graph.inputElems = plan.inputElems();
    const std::vector<core::PlannedLayer> &layers = plan.layers();
    graph.nodes.reserve(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
        DataflowNode node;
        node.name = layers[i].layer.name;
        node.inElems = layers[i].inElems;
        node.outElems = layers[i].outElems;
        if (i > 0)
            node.producers.push_back(i - 1);
        graph.nodes.push_back(std::move(node));
    }
    return graph;
}

// ----------------------------------------------------------------------
// Serving-config audit
// ----------------------------------------------------------------------

VerifyReport
audit_serve_config(const ServeAuditConfig &cfg,
                   const std::string &location)
{
    VerifyReport report;

    if (cfg.queueDepth == 0) {
        report.add(RuleId::ServeQueue, Severity::Error, location,
                   "request queue has zero capacity; every admission "
                   "would be rejected",
                   "set queueDepth >= 1");
    }

    if (cfg.maxBatch == 0) {
        report.add(RuleId::ServeBatch, Severity::Error, location,
                   "batch bound is zero; no batch could ever close",
                   "set maxBatch >= 1");
    } else if (cfg.queueDepth > 0 && cfg.maxBatch > cfg.queueDepth) {
        std::ostringstream os;
        os << "maxBatch " << cfg.maxBatch << " exceeds queueDepth "
           << cfg.queueDepth
           << "; the queue can never supply a full batch";
        report.add(RuleId::ServeBatch, Severity::Error, location,
                   os.str(), "lower maxBatch or deepen the queue");
    }

    if (cfg.cyclesPerTick == 0) {
        report.add(RuleId::ServeService, Severity::Error, location,
                   "cyclesPerTick is zero; service times would collapse "
                   "to the floor regardless of work",
                   "set cyclesPerTick >= 1");
    }
    if (cfg.minServiceTicks == 0) {
        report.add(RuleId::ServeService, Severity::Error, location,
                   "minServiceTicks is zero; zero-length service would "
                   "break the event ordering",
                   "set minServiceTicks >= 1");
    }

    if (cfg.sloDeadlineTicks != sim::max_tick) {
        if (cfg.windowTicks >= cfg.sloDeadlineTicks) {
            std::ostringstream os;
            os << "batching window of " << cfg.windowTicks
               << " ticks spends the whole SLO deadline of "
               << cfg.sloDeadlineTicks << " ticks before any compute";
            report.add(RuleId::ServeWindow, Severity::Error, location,
                       os.str(),
                       "shrink windowTicks below the deadline");
        }
        if (cfg.minServiceTicks > cfg.sloDeadlineTicks) {
            std::ostringstream os;
            os << "service-time floor of " << cfg.minServiceTicks
               << " ticks alone misses the SLO deadline of "
               << cfg.sloDeadlineTicks << " ticks";
            report.add(RuleId::ServeService, Severity::Error, location,
                       os.str(), "raise the deadline or lower the floor");
        } else if (cfg.windowTicks < cfg.sloDeadlineTicks
                   && cfg.windowTicks + cfg.minServiceTicks
                          > cfg.sloDeadlineTicks) {
            std::ostringstream os;
            os << "window (" << cfg.windowTicks << ") plus service floor ("
               << cfg.minServiceTicks << ") exceeds the SLO deadline of "
               << cfg.sloDeadlineTicks
               << " ticks; only immediately-full batches can meet it";
            report.add(RuleId::ServeWindow, Severity::Warning, location,
                       os.str(), "shrink the window or relax the SLO");
        }
    }

    return report;
}

// ----------------------------------------------------------------------
// The pass
// ----------------------------------------------------------------------

PlanVerifier::PlanVerifier(const tech::CacheGeometry &geometry,
                           PlanVerifierOptions options)
    : geom(geometry), opts(options)
{}

VerifyReport
PlanVerifier::verifyNetwork(const dnn::Network &net, unsigned expected_bits,
                            map::MapperOptions mapper_options) const
{
    VerifyReport report;

    if (net.layers().empty()) {
        report.add(RuleId::PlanEmpty, Severity::Error,
                   "network '" + net.name() + "'",
                   "plan contains no layers; nothing to execute",
                   "add at least one layer before compiling");
        return report;
    }

    std::vector<PlanLayout> layouts;
    layouts.push_back(layout_network(net, geom, mapper_options));
    PlanLayout &layout = layouts.front();

    // Per-kernel findings first: mergeFrom keeps them sorted by layer
    // index, and the plan-level add()s below then append after every
    // merged block (add() must never precede a mergeFrom — it would
    // break the sorted-by-sequence invariant the merge relies on).
    if (opts.checkKernels) {
        for (std::size_t i = 0; i < layout.kernels.size(); ++i) {
            PlacedKernel &pk = layout.kernels[i];
            report.mergeFrom(std::move(pk.kernel.diagnostics),
                             "layer '" + pk.layer.name + "'", i);
        }
    }

    // Precision audit: every layer must use a supported precision, and
    // when the caller pins the plan's compile precision (bfree_audit
    // does) every layer must agree with it.
    for (const dnn::Layer &layer : net.layers()) {
        const unsigned bits = layer.precisionBits;
        if (bits != 4 && bits != 8 && bits != 16) {
            std::ostringstream os;
            os << "unsupported operand precision " << bits << "-bit";
            report.add(RuleId::PlanPrecision, Severity::Error,
                       "layer '" + layer.name + "'", os.str(),
                       "use 4-, 8- or 16-bit operands");
        } else if (expected_bits != 0 && bits != expected_bits) {
            std::ostringstream os;
            os << bits << "-bit layer in a plan compiled at "
               << expected_bits << "-bit";
            report.add(RuleId::PlanPrecision, Severity::Error,
                       "layer '" + layer.name + "'", os.str(),
                       "setUniformPrecision before compiling");
        }
    }

    if (opts.checkRegions)
        checkRegions(layouts, report);

    // The linear dataflow analysis only applies when the flattened
    // layer list chains shape-wise; branched topologies (Inception)
    // are skipped (their per-kernel reduction chains are still checked
    // above). Hand-built graphs exercise the rules directly.
    if (opts.checkDataflow && layers_chain(net)) {
        const DataflowGraph graph =
            dataflow_from_layers(net.layers(), net.input().elements());
        checkDataflow(graph, report,
                      "network '" + net.name() + "' dataflow");
    }

    if (opts.checkCapacity)
        checkCapacity(layout, report);

    // Split-plane audit: re-prove the datapath-table invariants the
    // SIMD span kernels trust (rules lut-plane-*) for every memoizable
    // precision this plan executes at. The ROM-seeded table is the one
    // the verifier can reach statically; conv tables are seeded
    // against live LUT rows and are re-verified at dispatch through
    // their generation tags instead.
    if (opts.checkDatapath) {
        bool audited[17] = {};
        for (const dnn::Layer &layer : net.layers()) {
            const unsigned bits = layer.precisionBits;
            if (bits > 16 || audited[bits]
                || !lut::DatapathTable::coversBits(bits))
                continue;
            audited[bits] = true;
            std::ostringstream os;
            os << "datapath table (" << bits << "-bit ROM)";
            verify_datapath_planes(view_of(audit_rom_table(bits)),
                                   report, os.str());
        }
    }

    return report;
}

VerifyReport
PlanVerifier::verify(const core::NetworkPlan &plan,
                     map::MapperOptions mapper_options) const
{
    VerifyReport report =
        verifyNetwork(plan.network(), 0, mapper_options);

    // The compiled plan adds what the dry network walk cannot see: the
    // frozen per-layer element counts and the TensorArena sizing.
    if (opts.checkDataflow && !plan.layers().empty())
        checkDataflow(dataflow_from_plan(plan), report, "plan dataflow");
    if (opts.checkCapacity)
        checkArena(plan.stats(), plan.layers(), report);
    if (opts.checkFrontend)
        checkFrontend(plan.layers(), plan.bits(), report);
    return report;
}

VerifyReport
PlanVerifier::verifyResidency(const std::vector<PlanLayout> &layouts) const
{
    VerifyReport report;

    if (opts.checkRegions)
        checkRegions(layouts, report);
    if (opts.checkCapacity) {
        std::uint64_t demand = 0;
        for (const PlanLayout &layout : layouts) {
            checkCapacity(layout, report);
            demand += layout.spanSubarrays;
        }
        if (demand > geom.totalSubarrays()) {
            std::ostringstream os;
            os << "co-resident plans demand " << demand << " of "
               << geom.totalSubarrays() << " sub-arrays";
            report.add(RuleId::CapacityRows, Severity::Error,
                       "residency", os.str(),
                       "evict a plan or stream the largest one");
        }
    }
    return report;
}

void
PlanVerifier::checkRegions(const std::vector<PlanLayout> &layouts,
                           VerifyReport &report) const
{
    const unsigned fabric = geom.totalSubarrays();
    const unsigned rows = tech::total_rows(geom);
    const unsigned weight_base = tech::weight_base_row(geom);
    const unsigned lut_base = tech::first_lut_row(geom);
    const unsigned row_bytes = geom.rowBytes();

    std::vector<RegionClaim> claims;

    for (std::size_t li = 0; li < layouts.size(); ++li) {
        const PlanLayout &layout = layouts[li];
        const std::string plan_tag = "plan '" + layout.name + "'";

        // A streamed plan time-multiplexes its whole footprint, so for
        // overlap purposes it claims every row of [base, base + span).
        if (!layout.resident && layout.spanSubarrays > 0) {
            RegionClaim c;
            c.saBegin = layout.baseSubarray;
            c.saEnd = layout.baseSubarray + layout.spanSubarrays;
            c.rowBegin = 0;
            c.rowEnd = rows;
            c.plan = li;
            c.layer = 0;
            c.owner = plan_tag + " streamed footprint";
            claims.push_back(std::move(c));
        }

        for (std::size_t ki = 0; ki < layout.kernels.size(); ++ki) {
            const PlacedKernel &pk = layout.kernels[ki];
            if (pk.spanSubarrays == 0)
                continue; // Special-mode layer: no static region.
            const std::string tag =
                plan_tag + " layer '" + pk.layer.name + "'";

            // Weight extents of the canonical image, coalescing runs of
            // identical row ranges so full tiles become one claim.
            std::vector<RegionClaim> extents;
            for (const map::TileExtent &e :
                 canonical_extents(pk.placement)) {
                const unsigned sa = pk.baseSubarray + e.subarray;
                const unsigned row_begin =
                    static_cast<unsigned>(e.byteOffset / row_bytes);
                const unsigned row_end = static_cast<unsigned>(
                    (e.byteOffset + e.byteCount + row_bytes - 1)
                    / row_bytes);

                if (sa >= fabric) {
                    std::ostringstream os;
                    os << "weight extent lands in sub-array " << sa
                       << " but the fabric ends at " << fabric;
                    report.add(RuleId::RegionBounds, Severity::Error,
                               tag, os.str(),
                               "lower the base sub-array or shrink the "
                               "plan");
                } else if (row_begin < weight_base
                           || row_end > lut_base || row_begin >= row_end) {
                    std::ostringstream os;
                    os << "weight rows [" << row_begin << ", " << row_end
                       << ") exit the usable region [" << weight_base
                       << ", " << lut_base << ") at "
                       << subarray_location(geom, sa);
                    report.add(RuleId::RegionBounds, Severity::Error,
                               tag, os.str(),
                               "keep weights between the config block "
                               "and the LUT rows");
                }

                RegionClaim c;
                c.saBegin = sa;
                c.saEnd = sa + 1;
                c.rowBegin = row_begin;
                c.rowEnd = row_end;
                c.plan = li;
                c.layer = ki;
                c.owner = tag + " weights";
                if (!extents.empty() && extents.back().saEnd == sa
                    && extents.back().rowBegin == row_begin
                    && extents.back().rowEnd == row_end) {
                    ++extents.back().saEnd;
                } else {
                    extents.push_back(std::move(c));
                }
            }

            // Streamed layouts are covered by the plan-footprint claim;
            // only resident layers contribute fine-grained claims.
            if (!layout.resident)
                continue;

            for (RegionClaim &c : extents)
                claims.push_back(std::move(c));

            // The layer's config-block region and reserved LUT rows in
            // every sub-array it occupies.
            RegionClaim cb;
            cb.saBegin = pk.baseSubarray;
            cb.saEnd = pk.baseSubarray + pk.spanSubarrays;
            cb.rowBegin = 0;
            cb.rowEnd = weight_base;
            cb.plan = li;
            cb.layer = ki;
            cb.owner = tag + " config block";
            claims.push_back(std::move(cb));

            RegionClaim lut;
            lut.saBegin = pk.baseSubarray;
            lut.saEnd = pk.baseSubarray + pk.spanSubarrays;
            lut.rowBegin = lut_base;
            lut.rowEnd = rows;
            lut.plan = li;
            lut.layer = ki;
            lut.owner = tag + " LUT rows";
            claims.push_back(std::move(lut));
        }

        // The layout's own footprint must sit inside the fabric.
        if (layout.baseSubarray + std::uint64_t(layout.spanSubarrays)
            > fabric) {
            std::ostringstream os;
            os << "footprint [" << layout.baseSubarray << ", "
               << layout.baseSubarray + layout.spanSubarrays
               << ") exceeds the " << fabric << "-sub-array fabric";
            report.add(RuleId::RegionBounds, Severity::Error, plan_tag,
                       os.str(), "repack the layouts or free slices");
        }
    }

    // Pairwise sweep. Claim counts are small (full tiles coalesce into
    // sub-array runs), so the quadratic scan is fine.
    for (std::size_t a = 0; a < claims.size(); ++a) {
        for (std::size_t b = a + 1; b < claims.size(); ++b) {
            const RegionClaim &ca = claims[a];
            const RegionClaim &cb = claims[b];
            if (!claims_overlap(ca, cb))
                continue;
            if (ca.plan == cb.plan) {
                if (ca.layer == cb.layer)
                    continue; // Intra-layer claims never conflict here.
                if (!layouts[ca.plan].resident)
                    continue; // Streamed layers time-share the region.
                report.add(RuleId::RegionOverlap, Severity::Error,
                           overlap_location(geom, ca, cb),
                           ca.owner + " collides with " + cb.owner,
                           "repack the plan's layers disjointly");
            } else {
                report.add(RuleId::RegionCrossPlan, Severity::Error,
                           overlap_location(geom, ca, cb),
                           ca.owner + " collides with " + cb.owner,
                           "pack co-resident plans into disjoint "
                           "sub-array ranges");
            }
        }
    }
}

void
PlanVerifier::checkDataflow(const DataflowGraph &graph,
                            VerifyReport &report,
                            const std::string &location) const
{
    const std::size_t n = graph.nodes.size();
    if (n == 0)
        return;

    // Dangling producers: edges to nodes that do not exist.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t p : graph.nodes[i].producers) {
            if (p >= n) {
                std::ostringstream os;
                os << "consumes producer #" << p << " but the graph has "
                   << n << " nodes";
                report.add(RuleId::DataflowDangling, Severity::Error,
                           location + ": node '" + graph.nodes[i].name
                               + "'",
                           os.str(), "drop or repair the edge");
            }
        }
    }

    // Cycle detection: DFS over valid producer edges, reporting the
    // first back edge found.
    {
        std::vector<int> color(n, 0); // 0 white, 1 grey, 2 black.
        bool reported = false;
        for (std::size_t root = 0; root < n && !reported; ++root) {
            if (color[root] != 0)
                continue;
            // Iterative DFS with an explicit (node, next-edge) stack.
            std::vector<std::pair<std::size_t, std::size_t>> stack;
            stack.emplace_back(root, 0);
            color[root] = 1;
            while (!stack.empty() && !reported) {
                auto &[node, edge] = stack.back();
                const std::vector<std::size_t> &prods =
                    graph.nodes[node].producers;
                std::size_t next = n;
                while (edge < prods.size()) {
                    const std::size_t p = prods[edge++];
                    if (p >= n)
                        continue;
                    if (color[p] == 1) {
                        report.add(RuleId::DataflowCycle, Severity::Error,
                                   location + ": node '"
                                       + graph.nodes[node].name + "'",
                                   "producer chain through '"
                                       + graph.nodes[p].name
                                       + "' cycles back on itself",
                                   "break the cycle; inference plans "
                                   "must be acyclic");
                        reported = true;
                        break;
                    }
                    if (color[p] == 0) {
                        next = p;
                        break;
                    }
                }
                if (reported)
                    break;
                if (next != n) {
                    color[next] = 1;
                    stack.emplace_back(next, 0);
                } else {
                    color[node] = 2;
                    stack.pop_back();
                }
            }
        }
    }

    // Fan-in accounting: a node consumes the concatenation of its
    // producers' outputs (or the plan input when it has no producer).
    for (std::size_t i = 0; i < n; ++i) {
        const DataflowNode &node = graph.nodes[i];
        std::size_t supplied = 0;
        bool valid = true;
        if (node.producers.empty()) {
            supplied = graph.inputElems;
        } else {
            for (std::size_t p : node.producers) {
                if (p >= n) {
                    valid = false;
                    break;
                }
                supplied += graph.nodes[p].outElems;
            }
        }
        if (valid && supplied != node.inElems) {
            std::ostringstream os;
            os << "consumes " << node.inElems << " elements but its "
               << (node.producers.empty() ? "plan input supplies "
                                          : "producers supply ")
               << supplied;
            report.add(RuleId::DataflowFanin, Severity::Error,
                       location + ": node '" + node.name + "'", os.str(),
                       "fix the layer shapes or the edges");
        }
    }

    // Dead kernels: reverse reachability from the plan output. Any
    // node whose output feeds neither a consumer on the path to the
    // output nor the output itself computes for nothing.
    {
        const std::size_t out =
            graph.outputNode < n ? graph.outputNode : n - 1;
        std::vector<char> live(n, 0);
        std::vector<std::size_t> frontier{out};
        live[out] = 1;
        while (!frontier.empty()) {
            const std::size_t node = frontier.back();
            frontier.pop_back();
            for (std::size_t p : graph.nodes[node].producers) {
                if (p < n && !live[p]) {
                    live[p] = 1;
                    frontier.push_back(p);
                }
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (!live[i]) {
                report.add(RuleId::DataflowUnreachable, Severity::Error,
                           location + ": node '" + graph.nodes[i].name
                               + "'",
                           "output feeds neither the plan output nor "
                           "any consumer on the path to it",
                           "remove the dead kernel or wire its output");
            }
        }
    }
}

void
PlanVerifier::checkCapacity(const PlanLayout &layout,
                            VerifyReport &report) const
{
    const unsigned fabric = geom.totalSubarrays();
    const std::uint64_t fabric_bytes =
        std::uint64_t(fabric) * tech::usable_weight_bytes(geom);
    const std::string plan_tag = "plan '" + layout.name + "'";

    std::uint64_t rows_demand = 0;
    std::uint64_t bytes_demand = 0;
    bool rows_reported = false;
    bool bytes_reported = false;

    for (const PlacedKernel &pk : layout.kernels) {
        const map::LayerMapping &m = pk.kernel.mapping;
        if (m.mode == map::ExecMode::SpecialMode || m.weightBytes == 0)
            continue;
        const std::string tag =
            plan_tag + " layer '" + pk.layer.name + "'";

        if (!layout.resident) {
            // Streamed layers only need their own footprint at once.
            if (pk.spanSubarrays > fabric) {
                std::ostringstream os;
                os << "single layer needs " << pk.spanSubarrays << " of "
                   << fabric << " sub-arrays at once";
                report.add(RuleId::CapacityRows, Severity::Error, tag,
                           os.str(), "split the layer or add passes");
            }
            continue;
        }

        if (pk.placement.passes() > 1) {
            std::ostringstream os;
            os << "resident plan contains a layer streamed over "
               << pk.placement.passes() << " passes";
            report.add(RuleId::CapacityRows, Severity::Warning, tag,
                       os.str(),
                       "a resident plan should hold every layer in one "
                       "pass");
        }

        // Each packed sub-array carries a config block plus its share
        // of the layer's weight rows; the first layer that pushes the
        // running totals past the fabric is the finding.
        rows_demand += pk.spanSubarrays;
        if (!rows_reported && rows_demand > fabric) {
            std::ostringstream os;
            os << "first overflow: cumulative demand of " << rows_demand
               << " sub-arrays (and config blocks) exceeds the fabric's "
               << fabric;
            report.add(RuleId::CapacityRows, Severity::Error, tag,
                       os.str(), "stream the plan or shrink the model");
            rows_reported = true;
        }

        bytes_demand += m.weightBytes;
        if (!bytes_reported && bytes_demand > fabric_bytes) {
            std::ostringstream os;
            os << "first overflow: cumulative " << bytes_demand
               << " weight bytes exceed the fabric's usable "
               << fabric_bytes;
            report.add(RuleId::CapacityFabric, Severity::Error, tag,
                       os.str(), "stream the plan or lower precision");
            bytes_reported = true;
        }
    }
}

void
PlanVerifier::checkArena(const core::PlanStats &stats,
                         const std::vector<core::PlannedLayer> &layers,
                         VerifyReport &report, const std::string &location,
                         std::size_t arena_budget_bytes) const
{
    if (stats.arenaBytes
        != stats.activationBytes + stats.peakScratchBytes) {
        std::ostringstream os;
        os << "arena ledger inconsistent: " << stats.arenaBytes
           << " reserved != " << stats.activationBytes
           << " activation + " << stats.peakScratchBytes << " scratch";
        report.add(RuleId::CapacityArena, Severity::Error, location,
                   os.str(), "recompute the plan stats");
    }

    for (const core::PlannedLayer &pl : layers) {
        const std::string tag =
            location + ": layer '" + pl.layer.name + "'";
        if (pl.scratchBytes > stats.peakScratchBytes) {
            std::ostringstream os;
            os << "scratch of " << pl.scratchBytes
               << " bytes exceeds the plan's peak of "
               << stats.peakScratchBytes;
            report.add(RuleId::CapacityArena, Severity::Error, tag,
                       os.str(), "re-run the sizing pass");
        }
        if (std::max(pl.inElems, pl.outElems)
            > stats.maxActivationElems) {
            std::ostringstream os;
            os << "activation of "
               << std::max(pl.inElems, pl.outElems)
               << " elements exceeds the plan's maximum of "
               << stats.maxActivationElems;
            report.add(RuleId::CapacityArena, Severity::Error, tag,
                       os.str(), "re-run the sizing pass");
        }
    }

    if (arena_budget_bytes != 0 && stats.arenaBytes > arena_budget_bytes) {
        std::ostringstream os;
        os << "arena of " << stats.arenaBytes
           << " bytes exceeds the budget of " << arena_budget_bytes;
        report.add(RuleId::CapacityArena, Severity::Error, location,
                   os.str(), "raise the budget or shrink activations");
    }
}

void
PlanVerifier::checkFrontend(const std::vector<core::PlannedLayer> &layers,
                            unsigned plan_bits, VerifyReport &report,
                            const std::string &location) const
{
    for (const core::PlannedLayer &pl : layers) {
        const std::string tag =
            location + ": layer '" + pl.layer.name + "'";
        const bool conv = pl.layer.kind == dnn::LayerKind::Conv;
        if (pl.frontend != dnn::FrontendMode::Legacy
            && (!conv || plan_bits > 8)) {
            std::ostringstream os;
            os << "front-end mode '"
               << dnn::frontend_mode_name(pl.frontend) << "' on a "
               << (conv ? "wide-precision conv"
                        : dnn::layer_kind_name(pl.layer.kind))
               << " layer: only int8 convolutions have a fused or "
                  "elided front end";
            report.add(RuleId::PlanFrontend, Severity::Error, tag,
                       os.str(), "recompile the plan");
            continue;
        }
        if (!conv || plan_bits > 8)
            continue;
        // Every mode is byte-exact on an int8 conv; disagreeing with
        // the live policy (geometry + any BFREE_FORCE_FRONTEND
        // override) only costs performance, so it warns.
        const dnn::FrontendMode want =
            dnn::resolve_frontend(pl.layer, plan_bits);
        if (pl.frontend != want) {
            std::ostringstream os;
            os << "front-end mode '"
               << dnn::frontend_mode_name(pl.frontend)
               << "' but the layer's geometry resolves to '"
               << dnn::frontend_mode_name(want) << "'";
            report.add(RuleId::PlanFrontend, Severity::Warning, tag,
                       os.str(),
                       "recompile, or clear BFREE_FORCE_FRONTEND");
        }
    }
}

} // namespace bfree::verify
