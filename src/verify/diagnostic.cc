#include "diagnostic.hh"

#include <algorithm>
#include <sstream>
#include <utility>

namespace bfree::verify {

const char *
severity_name(Severity severity)
{
    switch (severity) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    return "?";
}

const char *
rule_name(RuleId rule)
{
    switch (rule) {
      case RuleId::CbOpcodeByte:
        return "cb-opcode-byte";
      case RuleId::CbPrecision:
        return "cb-precision";
      case RuleId::CbRowRange:
        return "cb-row-range";
      case RuleId::CbIterations:
        return "cb-iterations";
      case RuleId::CbRoundTrip:
        return "cb-round-trip";
      case RuleId::OpPrecision:
        return "op-precision";
      case RuleId::InstShape:
        return "inst-shape";
      case RuleId::InstMacOverflow:
        return "inst-mac-overflow";
      case RuleId::LutOversize:
        return "lut-oversize";
      case RuleId::LutPartitionConflict:
        return "lut-partition-conflict";
      case RuleId::WeightLutOverlap:
        return "weight-lut-overlap";
      case RuleId::LutPlaneShape:
        return "lut-plane-shape";
      case RuleId::LutPlaneExact:
        return "lut-plane-exact";
      case RuleId::MacConservation:
        return "mac-conservation";
      case RuleId::PlacementOccupancy:
        return "placement-occupancy";
      case RuleId::PlacementOverlap:
        return "placement-overlap";
      case RuleId::ChainCyclic:
        return "chain-cyclic";
      case RuleId::ChainFanout:
        return "chain-fanout";
      case RuleId::ChainDisconnected:
        return "chain-disconnected";
      case RuleId::ModeDatapath:
        return "mode-datapath";
      case RuleId::OperandRange:
        return "operand-range";
      case RuleId::PlanEmpty:
        return "plan-empty";
      case RuleId::PlanPrecision:
        return "plan-precision";
      case RuleId::RegionBounds:
        return "region-bounds";
      case RuleId::RegionOverlap:
        return "region-overlap";
      case RuleId::RegionCrossPlan:
        return "region-cross-plan";
      case RuleId::DataflowCycle:
        return "dataflow-cycle";
      case RuleId::DataflowDangling:
        return "dataflow-dangling";
      case RuleId::DataflowFanin:
        return "dataflow-fanin";
      case RuleId::DataflowUnreachable:
        return "dataflow-unreachable";
      case RuleId::CapacityRows:
        return "capacity-rows";
      case RuleId::CapacityFabric:
        return "capacity-fabric";
      case RuleId::CapacityArena:
        return "capacity-arena";
      case RuleId::PlanFrontend:
        return "plan-frontend";
      case RuleId::ServeQueue:
        return "serve-queue";
      case RuleId::ServeBatch:
        return "serve-batch";
      case RuleId::ServeWindow:
        return "serve-window";
      case RuleId::ServeService:
        return "serve-service";
    }
    return "?";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severity_name(severity) << "[" << rule_name(rule) << "]";
    if (!location.empty())
        os << " " << location;
    os << ": " << message;
    if (!fixHint.empty())
        os << " (fix: " << fixHint << ")";
    return os.str();
}

void
VerifyReport::add(RuleId rule, Severity severity, std::string location,
                  std::string message, std::string fix_hint)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    d.location = std::move(location);
    d.message = std::move(message);
    d.fixHint = std::move(fix_hint);
    diags.push_back(std::move(d));
}

void
VerifyReport::merge(const VerifyReport &other, const std::string &location)
{
    for (const Diagnostic &d : other.diags) {
        Diagnostic copy = d;
        if (!location.empty()) {
            copy.location = copy.location.empty()
                                ? location
                                : location + ": " + copy.location;
        }
        diags.push_back(std::move(copy));
    }
}

void
VerifyReport::mergeFrom(VerifyReport &&other, const std::string &location,
                        std::size_t sequence)
{
    // Findings of one source report share a key, so the insertion
    // point is found once: past every finding with key <= sequence.
    // upper_bound keeps the vector sorted by key; distinct keys make
    // the final order independent of the merge order.
    const auto at = std::upper_bound(
        diags.begin(), diags.end(), sequence,
        [](std::size_t key, const Diagnostic &d) {
            return key < d.sequence;
        });
    const std::size_t pos = static_cast<std::size_t>(at - diags.begin());

    std::vector<Diagnostic> incoming = std::move(other.diags);
    other.diags.clear();
    for (Diagnostic &d : incoming) {
        if (!location.empty()) {
            d.location = d.location.empty()
                             ? location
                             : location + ": " + d.location;
        }
        d.sequence = sequence;
    }
    diags.insert(diags.begin() + static_cast<std::ptrdiff_t>(pos),
                 std::make_move_iterator(incoming.begin()),
                 std::make_move_iterator(incoming.end()));
}

bool
VerifyReport::ok() const
{
    return errorCount() == 0;
}

std::size_t
VerifyReport::errorCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

std::size_t
VerifyReport::warningCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        n += d.severity == Severity::Warning ? 1 : 0;
    return n;
}

bool
VerifyReport::has(RuleId rule) const
{
    return count(rule) > 0;
}

std::size_t
VerifyReport::count(RuleId rule) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        n += d.rule == rule ? 1 : 0;
    return n;
}

std::string
VerifyReport::toString() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diags)
        os << d.toString() << "\n";
    os << errorCount() << " error(s), " << warningCount()
       << " warning(s)\n";
    return os.str();
}

} // namespace bfree::verify
