/**
 * @file
 * Static verification of split-plane datapath tables.
 *
 * The tiered execution engine trusts three structural claims a
 * lut::DatapathTable makes about itself: its plane extents match its
 * precision, productsExact() really means every product equals a*b,
 * and histogramExact() really means the delta plane collapses onto the
 * 256-entry class-keyed pairDeltas() table (and that table onto the
 * bilinear feature fold). The SIMD span kernels pick their fast paths
 * off these flags without re-checking, so a table that lies produces
 * silently wrong statistics — exactly the failure class a static
 * auditor exists for.
 *
 * The checks run over a raw DatapathPlaneView rather than the table
 * class itself so tests can synthesize broken fixtures (a poisoned
 * product behind a lying productsExact flag, a truncated plane) that
 * DatapathTable::build could never emit.
 */

#ifndef BFREE_VERIFY_DATAPATH_VERIFIER_HH
#define BFREE_VERIFY_DATAPATH_VERIFIER_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "diagnostic.hh"

namespace bfree::lut {
class DatapathTable;
}

namespace bfree::verify {

/**
 * A borrowed, flag-annotated view of one table's planes. Pointers are
 * not owned; the view must not outlive the table (or fixture buffers)
 * it was built from.
 */
struct DatapathPlaneView
{
    unsigned bits = 0; ///< Operand precision the table claims.
    unsigned span = 0; ///< Claimed extent of one plane axis.

    const std::int32_t *products = nullptr;
    std::size_t productCount = 0;

    const std::uint32_t *deltas = nullptr;
    std::size_t deltaCount = 0;

    /** The 256-entry class-keyed delta table (may be null when the
     *  table does not claim histogramExact). */
    const std::uint32_t *pairDeltas = nullptr;
    std::size_t pairDeltaCount = 0;

    bool productsExact = false;
    bool histogramExact = false;
    std::uint32_t cyclesFactor = 0; ///< Claimed fold cycles factor.
};

/** The borrowed view of a built table. */
DatapathPlaneView view_of(const lut::DatapathTable &table);

/**
 * Append split-plane findings for @p view into @p report:
 *
 *  - lut-plane-shape: span != 2^bits + 1, a precision outside the
 *    memoized domain, or product/delta/pair-delta plane sizes that
 *    disagree with the span.
 *  - lut-plane-exact: productsExact over a plane holding a poisoned
 *    product, or histogramExact over a delta plane (or pair-delta
 *    fold) that does not actually collapse onto the class keys.
 *
 * Exactness checks need well-formed planes, so they are skipped when
 * a shape finding was already recorded for the plane they read.
 */
void verify_datapath_planes(const DatapathPlaneView &view,
                            VerifyReport &report,
                            const std::string &location);

/** Convenience wrapper: verify a built table's own planes. */
VerifyReport verify_datapath_table(const lut::DatapathTable &table,
                                   const std::string &location =
                                       "datapath table");

} // namespace bfree::verify

#endif // BFREE_VERIFY_DATAPATH_VERIFIER_HH
