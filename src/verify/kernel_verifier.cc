#include "kernel_verifier.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>

#include "tech/row_layout.hh"

namespace bfree::verify {

namespace {

/** True for the precisions the nibble-decomposed LUT path supports. */
bool
supported_precision(unsigned bits)
{
    return bits == 4 || bits == 8 || bits == 16;
}

/** True for opcodes lowered to GEMM-shaped instructions. */
bool
is_gemm_opcode(bce::PimOpcode op)
{
    return op == bce::PimOpcode::Conv || op == bce::PimOpcode::Matmul;
}

std::string
inst_location(const std::string &prefix, const bce::PimInstruction &inst)
{
    std::ostringstream os;
    os << prefix << " `" << inst.toString() << "`";
    return os.str();
}

/** Rows a LUT image occupies (images are row-aligned). */
unsigned
image_rows(const lut::LutImage &image, unsigned row_bytes)
{
    return static_cast<unsigned>((image.size() + row_bytes - 1)
                                 / row_bytes);
}

} // namespace

std::vector<ReductionChain>
derive_reduction_chains(const map::LayerMapping &mapping,
                        const tech::CacheGeometry &geom)
{
    std::vector<ReductionChain> chains;
    if (mapping.mode == map::ExecMode::SpecialMode
        || mapping.activeSubarrays == 0)
        return chains;

    const unsigned span = std::max(1u, geom.subarraysPerSubBank);
    for (unsigned base = 0; base < mapping.activeSubarrays; base += span) {
        ReductionChain chain;
        const unsigned end =
            std::min(mapping.activeSubarrays, base + span);
        for (unsigned id = base; id < end; ++id) {
            chain.nodes.push_back(id);
            if (id + 1 < end)
                chain.links.emplace_back(id, id + 1);
        }
        chains.push_back(std::move(chain));
    }
    return chains;
}

KernelVerifier::KernelVerifier(const tech::CacheGeometry &geom,
                               VerifierOptions options)
    : geom(geom), opts(options)
{}

unsigned
KernelVerifier::totalRows() const
{
    return tech::total_rows(geom);
}

unsigned
KernelVerifier::weightBaseRow() const
{
    return tech::weight_base_row(geom);
}

unsigned
KernelVerifier::firstLutRow() const
{
    return tech::first_lut_row(geom);
}

void
KernelVerifier::checkInstruction(const bce::PimInstruction &inst,
                                 VerifyReport &report,
                                 const std::string &location) const
{
    if (!supported_precision(inst.precisionBits)) {
        report.add(RuleId::OpPrecision, Severity::Error,
                   inst_location(location, inst),
                   "precision " + std::to_string(inst.precisionBits)
                       + "-bit is not expressible by nibble "
                         "decomposition over the 49-entry odd x odd "
                         "table",
                   "use 4, 8 or 16-bit operands");
    }

    if (is_gemm_opcode(inst.opcode)) {
        if (inst.rows == 0 || inst.cols == 0 || inst.inner == 0) {
            report.add(RuleId::InstShape, Severity::Error,
                       inst_location(location, inst),
                       "GEMM instruction with a zero dimension performs "
                       "no work",
                       "drop the instruction or fix rows/cols/inner");
        }
    } else {
        if (inst.rows == 0) {
            report.add(RuleId::InstShape, Severity::Error,
                       inst_location(location, inst),
                       "element-wise instruction covers zero elements",
                       "set rows to the element count");
        }
        if (inst.cols != 0 || inst.inner != 0) {
            report.add(RuleId::InstShape, Severity::Error,
                       inst_location(location, inst),
                       "element-wise instruction must leave cols/inner "
                       "zero",
                       "encode the element count in rows only");
        }
    }

    if (inst.rows != 0 && inst.cols != 0 && inst.inner != 0) {
        const std::uint64_t rc =
            std::uint64_t(inst.cols) * inst.inner; // < 2^64, no overflow
        if (inst.rows > std::numeric_limits<std::uint64_t>::max() / rc) {
            report.add(RuleId::InstMacOverflow, Severity::Error,
                       inst_location(location, inst),
                       "rows x cols x inner overflows the 64-bit MAC "
                       "counter",
                       "split the layer into smaller instructions");
        }
    }
}

void
KernelVerifier::checkConfigBlock(const bce::ConfigBlock &cb,
                                 VerifyReport &report,
                                 const std::string &location) const
{
    if (!supported_precision(cb.precisionBits)) {
        report.add(RuleId::CbPrecision, Severity::Error, location,
                   "precision field holds "
                       + std::to_string(cb.precisionBits)
                       + ", which no BCE datapath implements",
                   "program 4, 8 or 16");
    }

    // Round trip through the sub-array byte layout. A CB whose opcode
    // enum value has no encoding (e.g. forged by a buggy lowering)
    // comes back different or not at all.
    const auto bytes = cb.encode();
    const auto decoded = bce::ConfigBlock::decode(bytes);
    if (!decoded) {
        report.add(RuleId::CbRoundTrip, Severity::Error, location,
                   "config block does not survive the sub-array byte "
                   "layout: opcode value "
                       + std::to_string(
                             static_cast<unsigned>(cb.opcode))
                       + " has no encoding",
                   "use a PimOpcode enumerator");
    } else if (!(*decoded == cb)) {
        report.add(RuleId::CbRoundTrip, Severity::Error, location,
                   "encode/decode round trip altered the config block",
                   "check the field packing against encoded_size");
    }

    // Weight row range against the canonical sub-array layout. An
    // empty range (startRow == endRow) means "no weights" and is
    // exempt from the layout rules.
    if (cb.startRow > cb.endRow) {
        report.add(RuleId::CbRowRange, Severity::Error, location,
                   "weight row range [" + std::to_string(cb.startRow)
                       + ", " + std::to_string(cb.endRow)
                       + ") is inverted",
                   "startRow must not exceed endRow");
    } else if (cb.startRow < cb.endRow) {
        if (cb.endRow > totalRows()) {
            report.add(RuleId::CbRowRange, Severity::Error, location,
                       "weight rows end at " + std::to_string(cb.endRow)
                           + " but the sub-array has "
                           + std::to_string(totalRows()) + " rows",
                       "shrink the tile or raise weightTiles");
        }
        if (cb.startRow < weightBaseRow()) {
            report.add(RuleId::CbRowRange, Severity::Error, location,
                       "weight rows start at "
                           + std::to_string(cb.startRow)
                           + ", inside the config-block region (rows "
                             "[0, "
                           + std::to_string(weightBaseRow()) + "))",
                       "start the weight region at row "
                           + std::to_string(weightBaseRow()));
        }
        if (cb.endRow > firstLutRow() && cb.endRow <= totalRows()) {
            report.add(RuleId::WeightLutOverlap, Severity::Error,
                       location,
                       "weight rows reach "
                           + std::to_string(cb.endRow)
                           + ", colliding with the reserved LUT rows ["
                           + std::to_string(firstLutRow()) + ", "
                           + std::to_string(totalRows()) + ")",
                       "cap the weight region at row "
                           + std::to_string(firstLutRow()));
        }
    }
}

void
KernelVerifier::checkConfigBytes(
    const std::array<std::uint8_t, bce::ConfigBlock::encoded_size> &bytes,
    VerifyReport &report, const std::string &location) const
{
    const auto decoded = bce::ConfigBlock::decode(bytes);
    if (!decoded) {
        report.add(RuleId::CbOpcodeByte, Severity::Error, location,
                   "opcode byte "
                       + std::to_string(static_cast<unsigned>(bytes[0]))
                       + " is not a PIM opcode",
                   "re-program the config block; the BCE must not "
                   "fetch it");
        return;
    }
    checkConfigBlock(*decoded, report, location);
}

void
KernelVerifier::checkLutImages(const std::vector<lut::LutImage> &images,
                               VerifyReport &report) const
{
    const unsigned budget_bytes = geom.lutBytesPerSubarray();
    const unsigned budget_rows = geom.lutRowsPerSubarray();
    const unsigned row_bytes = geom.rowBytes();

    // Per-image bound.
    for (const lut::LutImage &image : images) {
        if (!image.fits(budget_bytes)) {
            report.add(RuleId::LutOversize, Severity::Error,
                       "LUT image '" + image.name + "'",
                       std::to_string(image.size())
                           + " bytes exceed the "
                           + std::to_string(budget_bytes)
                           + "-byte decoupled-bitline region",
                       "shrink the table or split it across "
                       "configuration phases");
        }
    }

    // Partition-conflict bound: images sharing a configuration phase
    // are co-resident and each starts on a fresh row, so their row
    // counts add up against the 8-row budget.
    std::map<unsigned, std::vector<const lut::LutImage *>> phases;
    for (const lut::LutImage &image : images)
        phases[image.configPhase].push_back(&image);
    for (const auto &[phase, group] : phases) {
        unsigned rows = 0;
        std::string names;
        for (const lut::LutImage *image : group) {
            rows += image_rows(*image, row_bytes);
            names += (names.empty() ? "'" : ", '") + image->name + "'";
        }
        if (group.size() > 1 && rows > budget_rows) {
            report.add(RuleId::LutPartitionConflict, Severity::Error,
                       "configuration phase " + std::to_string(phase),
                       "co-resident images " + names + " need "
                           + std::to_string(rows)
                           + " LUT rows but a sub-array reserves only "
                           + std::to_string(budget_rows),
                       "move an image to its own configuration phase");
        }
    }
}

void
KernelVerifier::checkMapping(const map::LayerMapping &mapping,
                             VerifyReport &report,
                             const std::string &location) const
{
    const unsigned total = geom.totalSubarrays();

    if (mapping.activeSubarrays == 0) {
        report.add(RuleId::PlacementOccupancy, Severity::Error, location,
                   "mapping activates zero sub-arrays",
                   "every kernel needs at least one BCE");
        return;
    }
    if (mapping.activeSubarrays > total) {
        report.add(RuleId::PlacementOccupancy, Severity::Error, location,
                   "mapping activates "
                       + std::to_string(mapping.activeSubarrays)
                       + " sub-arrays but the cache has "
                       + std::to_string(total),
                   "reduce duplication or weightTiles");
    }
    if (mapping.mode != map::ExecMode::SpecialMode) {
        const std::uint64_t expected =
            std::uint64_t(mapping.weightTiles) * mapping.duplication;
        if (expected != mapping.activeSubarrays) {
            report.add(RuleId::PlacementOccupancy, Severity::Error,
                       location,
                       "activeSubarrays ("
                           + std::to_string(mapping.activeSubarrays)
                           + ") != weightTiles x duplication ("
                           + std::to_string(expected) + ")",
                       "keep the occupancy identity when editing "
                       "mappings");
        }
        if (mapping.weightTiles == 0) {
            report.add(RuleId::PlacementOccupancy, Severity::Error,
                       location,
                       "compute-mode mapping has zero weight tiles",
                       "tile the weights over at least one sub-array");
        }
    }
}

void
KernelVerifier::checkPlacement(const map::WeightPlacement &placement,
                               VerifyReport &report) const
{
    const unsigned total = geom.totalSubarrays();
    const std::size_t data_floor = weightBaseRow() * geom.rowBytes();
    const std::size_t lut_floor =
        static_cast<std::size_t>(firstLutRow()) * geom.rowBytes();

    for (const map::TileExtent &e : placement.extents) {
        const std::string loc = "extent (sub-array "
                                + std::to_string(e.subarray) + ", pass "
                                + std::to_string(e.pass) + ")";
        if (e.subarray >= total) {
            report.add(RuleId::PlacementOccupancy, Severity::Error, loc,
                       "targets a sub-array beyond the cache's "
                           + std::to_string(total),
                       "re-run the mapper with the real geometry");
        }
        if (e.byteOffset < data_floor) {
            report.add(RuleId::PlacementOccupancy, Severity::Error, loc,
                       "starts at byte " + std::to_string(e.byteOffset)
                           + ", inside the config-block region (first "
                           + std::to_string(data_floor) + " bytes)",
                       "place weights at or above byte "
                           + std::to_string(data_floor));
        }
        if (e.byteOffset + e.byteCount > lut_floor) {
            report.add(RuleId::WeightLutOverlap, Severity::Error, loc,
                       "ends at byte "
                           + std::to_string(e.byteOffset + e.byteCount)
                           + ", overlapping the reserved LUT rows "
                             "(bytes ["
                           + std::to_string(lut_floor) + ", "
                           + std::to_string(geom.subarrayBytes()) + "))",
                       "cap extents at byte "
                           + std::to_string(lut_floor));
        }
    }

    // Pairwise overlap inside one (sub-array, pass).
    std::vector<const map::TileExtent *> sorted;
    sorted.reserve(placement.extents.size());
    for (const map::TileExtent &e : placement.extents)
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const map::TileExtent *a, const map::TileExtent *b) {
                  return std::tie(a->subarray, a->pass, a->byteOffset)
                         < std::tie(b->subarray, b->pass,
                                    b->byteOffset);
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        const map::TileExtent &prev = *sorted[i - 1];
        const map::TileExtent &cur = *sorted[i];
        if (prev.subarray == cur.subarray && prev.pass == cur.pass
            && prev.byteOffset + prev.byteCount > cur.byteOffset) {
            report.add(RuleId::PlacementOverlap, Severity::Error,
                       "sub-array " + std::to_string(cur.subarray)
                           + ", pass " + std::to_string(cur.pass),
                       "extents of replicas "
                           + std::to_string(prev.replica) + " and "
                           + std::to_string(cur.replica)
                           + " overlap at byte "
                           + std::to_string(cur.byteOffset),
                       "give each replica tile a disjoint range");
        }
    }

    // Every replica must cover the full weight blob.
    for (unsigned r = 0; r < placement.replicas; ++r) {
        std::uint64_t covered = 0;
        for (const map::TileExtent &e : placement.extents)
            if (e.replica == r)
                covered += e.byteCount;
        if (covered != placement.weightBytes) {
            report.add(RuleId::PlacementOccupancy, Severity::Error,
                       "replica " + std::to_string(r),
                       "extents cover " + std::to_string(covered)
                           + " of " + std::to_string(placement.weightBytes)
                           + " weight bytes",
                       "placement must tile the blob exactly once per "
                       "replica");
        }
    }
}

void
KernelVerifier::checkChains(const std::vector<ReductionChain> &chains,
                            const map::LayerMapping &mapping,
                            VerifyReport &report) const
{
    std::uint64_t covered = 0;

    for (std::size_t c = 0; c < chains.size(); ++c) {
        const ReductionChain &chain = chains[c];
        const std::string loc = "reduction chain " + std::to_string(c);
        covered += chain.nodes.size();

        std::map<unsigned, std::size_t> index;
        for (std::size_t i = 0; i < chain.nodes.size(); ++i)
            index[chain.nodes[i]] = i;

        std::vector<std::vector<std::size_t>> out(chain.nodes.size());
        std::vector<std::size_t> parent(chain.nodes.size(), SIZE_MAX);
        bool links_ok = true;
        for (const auto &[from, to] : chain.links) {
            const auto fi = index.find(from);
            const auto ti = index.find(to);
            if (fi == index.end() || ti == index.end()) {
                report.add(RuleId::ChainDisconnected, Severity::Error,
                           loc,
                           "link " + std::to_string(from) + " -> "
                               + std::to_string(to)
                               + " references a sub-array outside the "
                                 "chain",
                           "links may only join the chain's own nodes");
                links_ok = false;
                continue;
            }
            out[fi->second].push_back(ti->second);
        }

        for (std::size_t i = 0; i < out.size(); ++i) {
            if (out[i].size() > 1) {
                report.add(RuleId::ChainFanout, Severity::Error, loc,
                           "sub-array "
                               + std::to_string(chain.nodes[i])
                               + " forwards partial sums to "
                               + std::to_string(out[i].size())
                               + " neighbours; the systolic chain is "
                                 "unidirectional",
                           "keep out-degree at most one");
            }
        }

        // Cycle detection (iterative colouring).
        enum class Colour { White, Grey, Black };
        std::vector<Colour> colour(out.size(), Colour::White);
        bool cyclic = false;
        for (std::size_t root = 0; root < out.size() && !cyclic;
             ++root) {
            if (colour[root] != Colour::White)
                continue;
            std::vector<std::pair<std::size_t, std::size_t>> stack;
            stack.emplace_back(root, 0);
            colour[root] = Colour::Grey;
            while (!stack.empty() && !cyclic) {
                auto &[node, next] = stack.back();
                if (next < out[node].size()) {
                    const std::size_t succ = out[node][next++];
                    if (colour[succ] == Colour::Grey)
                        cyclic = true;
                    else if (colour[succ] == Colour::White) {
                        colour[succ] = Colour::Grey;
                        stack.emplace_back(succ, 0);
                    }
                } else {
                    colour[node] = Colour::Black;
                    stack.pop_back();
                }
            }
        }
        if (cyclic) {
            report.add(RuleId::ChainCyclic, Severity::Error, loc,
                       "reduction chain contains a cycle; partial sums "
                       "would circulate forever",
                       "order the chain so sums flow toward one sink");
        }

        // Weak connectivity: every BCE's partial sum must be able to
        // reach the rest of the chain. (Skip if links were already
        // malformed — the union-find would double-report.)
        if (links_ok && chain.nodes.size() > 1) {
            std::vector<std::size_t> uf(chain.nodes.size());
            for (std::size_t i = 0; i < uf.size(); ++i)
                uf[i] = i;
            auto find = [&uf](std::size_t x) {
                while (uf[x] != x)
                    x = uf[x] = uf[uf[x]];
                return x;
            };
            for (const auto &[from, to] : chain.links)
                uf[find(index.at(from))] = find(index.at(to));
            for (std::size_t i = 0; i < uf.size(); ++i) {
                if (find(i) != find(0)) {
                    report.add(
                        RuleId::ChainDisconnected, Severity::Error, loc,
                        "sub-array " + std::to_string(chain.nodes[i])
                            + " is not connected to the chain's "
                              "reduction path",
                        "link every active BCE into the chain");
                    break;
                }
            }
        }
    }

    if (mapping.mode != map::ExecMode::SpecialMode
        && covered != mapping.activeSubarrays) {
        report.add(RuleId::ChainDisconnected, Severity::Error,
                   "reduction chains",
                   "chains cover " + std::to_string(covered)
                       + " sub-arrays but the mapping activates "
                       + std::to_string(mapping.activeSubarrays)
                       + "; every active BCE must reduce through a "
                         "chain",
                   "chain each active sub-array exactly once");
    }
}

void
KernelVerifier::checkMode(bce::PimOpcode opcode, map::ExecMode mode,
                          VerifyReport &report,
                          const std::string &location) const
{
    const char *op = bce::opcode_name(opcode);
    switch (mode) {
      case map::ExecMode::MatmulMode:
        if (!bce::is_matmul_mode(opcode)) {
            report.add(RuleId::ModeDatapath, Severity::Error, location,
                       std::string("opcode '") + op
                           + "' cannot execute on the matmul-mode "
                             "broadcast datapath",
                       "lower the layer to matmul or map it to "
                       "conv/special mode");
        }
        break;
      case map::ExecMode::ConvMode:
        // The conv-mode systolic datapath executes any MAC opcode
        // (forcing conv mode on an FC layer is a legal ablation); it
        // has no special-function path.
        if (!is_gemm_opcode(opcode)) {
            report.add(RuleId::ModeDatapath, Severity::Error, location,
                       std::string("opcode '") + op
                           + "' cannot execute on the conv-mode "
                             "systolic MAC datapath",
                       "map special-function kernels to special mode");
        }
        break;
      case map::ExecMode::SpecialMode:
        if (is_gemm_opcode(opcode)) {
            report.add(RuleId::ModeDatapath, Severity::Error, location,
                       std::string("MAC opcode '") + op
                           + "' mapped to the special-function datapath",
                       "map MAC kernels to conv or matmul mode");
        }
        break;
    }
}

void
KernelVerifier::checkMacConservation(const map::CompiledKernel &kernel,
                                     const dnn::Layer &layer,
                                     VerifyReport &report) const
{
    const std::uint64_t compiled = kernel.totalMacs();
    const std::uint64_t expected =
        layer.isComputeLayer() ? layer.macs() : 0;
    if (compiled != expected) {
        report.add(RuleId::MacConservation, Severity::Error,
                   "layer '" + layer.name + "'",
                   "instruction stream performs "
                       + std::to_string(compiled) + " MACs but the layer "
                       + (layer.isComputeLayer() ? "defines "
                                                 : "is special and "
                                                   "defines ")
                       + std::to_string(expected),
                   "the lowering must neither drop nor invent work");
    }
}

VerifyReport
KernelVerifier::verify(const map::CompiledKernel &kernel) const
{
    VerifyReport report;

    for (std::size_t i = 0; i < kernel.instructions.size(); ++i)
        checkInstruction(kernel.instructions[i], report,
                         "instruction " + std::to_string(i));

    checkConfigBlock(kernel.configBlock, report);

    // The CB's 16-bit iteration field must hold the clamped step
    // count; the controller re-programs it once per pass.
    const std::uint64_t expected_iters =
        std::min<std::uint64_t>(kernel.totalSteps, 0xFFFF);
    if (kernel.configBlock.iterations != expected_iters) {
        report.add(RuleId::CbIterations, Severity::Error, "config block",
                   "iteration field holds "
                       + std::to_string(kernel.configBlock.iterations)
                       + " but the kernel's step count clamps to "
                       + std::to_string(expected_iters),
                   "program min(totalSteps, 0xFFFF)");
    } else if (kernel.totalSteps > 0xFFFF) {
        report.add(RuleId::CbIterations, Severity::Note, "config block",
                   std::to_string(kernel.totalSteps)
                       + " steps exceed the 16-bit iteration field; the "
                         "controller must re-arm the CB across passes");
    }

    checkLutImages(kernel.lutImages, report);
    checkMapping(kernel.mapping, report);
    checkMode(kernel.configBlock.opcode, kernel.mapping.mode, report);

    if (opts.checkPlacement
        && kernel.mapping.mode != map::ExecMode::SpecialMode
        && kernel.mapping.weightBytes > 0) {
        checkPlacement(map::place_weights(kernel.mapping, geom), report);
        checkChains(derive_reduction_chains(kernel.mapping, geom),
                    kernel.mapping, report);
    }
    return report;
}

VerifyReport
KernelVerifier::verify(const map::CompiledKernel &kernel,
                       const dnn::Layer &layer) const
{
    VerifyReport report = verify(kernel);
    checkMacConservation(kernel, layer, report);
    return report;
}

void
check_operand_range(const std::vector<int> &values, unsigned bits,
                    bool is_signed, VerifyReport &report,
                    const std::string &location)
{
    if (bits == 0 || bits > 16) {
        report.add(RuleId::OperandRange, Severity::Error, location,
                   std::to_string(bits)
                       + "-bit operands are outside the datapath's "
                         "supported widths");
        return;
    }
    const long lo = is_signed ? -(1L << (bits - 1)) : 0L;
    const long hi =
        is_signed ? (1L << (bits - 1)) - 1 : (1L << bits) - 1;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] < lo || values[i] > hi) {
            report.add(RuleId::OperandRange, Severity::Error,
                       location + "[" + std::to_string(i) + "]",
                       std::to_string(values[i]) + " does not fit "
                           + (is_signed ? "signed " : "unsigned ")
                           + std::to_string(bits) + "-bit storage ["
                           + std::to_string(lo) + ", "
                           + std::to_string(hi) + "]",
                       "quantize the operand or raise the precision");
        }
    }
}

} // namespace bfree::verify
