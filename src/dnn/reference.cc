#include "reference.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bfree::dnn {

FloatTensor
reference_conv(const Layer &layer, const FloatTensor &input,
               const std::vector<float> &weights,
               const std::vector<float> &bias)
{
    const FeatureShape out = layer.outputShape();
    const unsigned in_c = layer.input.c;
    if (weights.size() != std::size_t(layer.outChannels) * in_c
                              * layer.kernelH * layer.kernelW)
        bfree_panic("conv '", layer.name, "': weight count mismatch");
    if (bias.size() != layer.outChannels)
        bfree_panic("conv '", layer.name, "': bias count mismatch");

    FloatTensor output({out.c, out.h, out.w});
    for (unsigned k = 0; k < out.c; ++k) {
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow) {
                float acc = bias[k];
                for (unsigned c = 0; c < in_c; ++c) {
                    for (unsigned r = 0; r < layer.kernelH; ++r) {
                        for (unsigned s = 0; s < layer.kernelW; ++s) {
                            const int ih = static_cast<int>(
                                               oh * layer.strideH + r)
                                           - static_cast<int>(layer.padH);
                            const int iw = static_cast<int>(
                                               ow * layer.strideW + s)
                                           - static_cast<int>(layer.padW);
                            if (ih < 0 || iw < 0
                                || ih >= static_cast<int>(layer.input.h)
                                || iw >= static_cast<int>(layer.input.w))
                                continue;
                            const std::size_t widx =
                                ((std::size_t(k) * in_c + c)
                                     * layer.kernelH
                                 + r) * layer.kernelW
                                + s;
                            acc += weights[widx]
                                   * input.at(c, ih, iw);
                        }
                    }
                }
                output.at(k, oh, ow) = acc;
            }
        }
    }
    return output;
}

FloatTensor
reference_fc(const Layer &layer, const FloatTensor &input,
             const std::vector<float> &weights,
             const std::vector<float> &bias)
{
    if (input.size() != layer.inFeatures)
        bfree_panic("fc '", layer.name, "': input size ", input.size(),
                    " != ", layer.inFeatures);
    if (weights.size()
        != std::size_t(layer.inFeatures) * layer.outFeatures)
        bfree_panic("fc '", layer.name, "': weight count mismatch");

    FloatTensor output({layer.outFeatures, 1, 1});
    for (unsigned o = 0; o < layer.outFeatures; ++o) {
        float acc = bias[o];
        for (unsigned i = 0; i < layer.inFeatures; ++i)
            acc += weights[std::size_t(o) * layer.inFeatures + i]
                   * input[i];
        output[o] = acc;
    }
    return output;
}

namespace {

template <typename Reduce>
FloatTensor
pool_impl(const Layer &layer, const FloatTensor &input, float init,
          Reduce reduce, bool average)
{
    const FeatureShape out = layer.outputShape();
    FloatTensor output({out.c, out.h, out.w});
    for (unsigned c = 0; c < out.c; ++c) {
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow) {
                float acc = init;
                unsigned valid = 0;
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s) {
                        const int ih = static_cast<int>(
                                           oh * layer.strideH + r)
                                       - static_cast<int>(layer.padH);
                        const int iw = static_cast<int>(
                                           ow * layer.strideW + s)
                                       - static_cast<int>(layer.padW);
                        if (ih < 0 || iw < 0
                            || ih >= static_cast<int>(layer.input.h)
                            || iw >= static_cast<int>(layer.input.w))
                            continue;
                        acc = reduce(acc, input.at(c, ih, iw));
                        ++valid;
                    }
                }
                output.at(c, oh, ow) =
                    average && valid > 0 ? acc / valid : acc;
            }
        }
    }
    return output;
}

} // namespace

FloatTensor
reference_max_pool(const Layer &layer, const FloatTensor &input)
{
    return pool_impl(
        layer, input, -std::numeric_limits<float>::infinity(),
        [](float a, float b) { return std::max(a, b); }, false);
}

FloatTensor
reference_avg_pool(const Layer &layer, const FloatTensor &input)
{
    return pool_impl(
        layer, input, 0.0f, [](float a, float b) { return a + b; }, true);
}

FloatTensor
reference_activation(LayerKind kind, const FloatTensor &input)
{
    FloatTensor output(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i) {
        const float x = input[i];
        switch (kind) {
          case LayerKind::Relu:
            output[i] = std::max(0.0f, x);
            break;
          case LayerKind::Sigmoid:
            output[i] = 1.0f / (1.0f + std::exp(-x));
            break;
          case LayerKind::Tanh:
            output[i] = std::tanh(x);
            break;
          default:
            bfree_panic("unsupported activation kind");
        }
    }
    return output;
}

FloatTensor
reference_softmax(const FloatTensor &input)
{
    FloatTensor output(input.shape());
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < input.size(); ++i)
        max_v = std::max(max_v, input[i]);
    float denom = 0.0f;
    for (std::size_t i = 0; i < input.size(); ++i) {
        output[i] = std::exp(input[i] - max_v);
        denom += output[i];
    }
    for (std::size_t i = 0; i < input.size(); ++i)
        output[i] /= denom;
    return output;
}

LstmState
reference_lstm_step(const Layer &layer, const std::vector<float> &x,
                    const LstmState &prev,
                    const std::vector<float> &weights,
                    const std::vector<float> &bias)
{
    const unsigned in = layer.lstmInput;
    const unsigned hid = layer.lstmHidden;
    const unsigned cols = in + hid;
    if (x.size() != in || prev.h.size() != hid || prev.c.size() != hid)
        bfree_panic("lstm '", layer.name, "': state size mismatch");
    if (weights.size() != std::size_t(4) * hid * cols
        || bias.size() != std::size_t(4) * hid)
        bfree_panic("lstm '", layer.name, "': weight size mismatch");

    auto gate = [&](unsigned g, unsigned j) {
        float acc = bias[g * hid + j];
        const std::size_t row = (std::size_t(g) * hid + j) * cols;
        for (unsigned i = 0; i < in; ++i)
            acc += weights[row + i] * x[i];
        for (unsigned i = 0; i < hid; ++i)
            acc += weights[row + in + i] * prev.h[i];
        return acc;
    };
    auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };

    LstmState next;
    next.h.resize(hid);
    next.c.resize(hid);
    for (unsigned j = 0; j < hid; ++j) {
        const float i_g = sigmoid(gate(0, j));
        const float f_g = sigmoid(gate(1, j));
        const float g_g = std::tanh(gate(2, j));
        const float o_g = sigmoid(gate(3, j));
        next.c[j] = f_g * prev.c[j] + i_g * g_g;
        next.h[j] = o_g * std::tanh(next.c[j]);
    }
    return next;
}

FloatTensor
reference_matmul(const FloatTensor &a, const FloatTensor &b)
{
    if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0))
        bfree_panic("matmul shape mismatch");
    const std::size_t m = a.dim(0);
    const std::size_t k = a.dim(1);
    const std::size_t n = b.dim(1);
    FloatTensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += a.at(i, p) * b.at(p, j);
            c.at(i, j) = acc;
        }
    }
    return c;
}

FloatTensor
reference_attention(const Layer &layer, const FloatTensor &input,
                    const std::vector<float> &wq,
                    const std::vector<float> &wk,
                    const std::vector<float> &wv,
                    const std::vector<float> &wo)
{
    const unsigned s = layer.seqLen;
    const unsigned d = layer.dModel;
    if (input.rank() != 2 || input.dim(0) != s || input.dim(1) != d)
        bfree_panic("attention '", layer.name, "': input must be [s][d]");
    const std::size_t dd = std::size_t(d) * d;
    if (wq.size() != dd || wk.size() != dd || wv.size() != dd
        || wo.size() != dd)
        bfree_panic("attention '", layer.name,
                    "': projection weights must be d x d");

    auto project = [&](const std::vector<float> &w) {
        FloatTensor out({s, d});
        for (unsigned i = 0; i < s; ++i)
            for (unsigned j = 0; j < d; ++j) {
                float acc = 0.0f;
                for (unsigned p = 0; p < d; ++p)
                    acc += input.at(i, p) * w[std::size_t(p) * d + j];
                out.at(i, j) = acc;
            }
        return out;
    };

    const FloatTensor q = project(wq);
    const FloatTensor k = project(wk);
    const FloatTensor v = project(wv);

    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    FloatTensor context({s, d});
    std::vector<float> row(s);
    for (unsigned i = 0; i < s; ++i) {
        float max_v = -std::numeric_limits<float>::infinity();
        for (unsigned j = 0; j < s; ++j) {
            float acc = 0.0f;
            for (unsigned p = 0; p < d; ++p)
                acc += q.at(i, p) * k.at(j, p);
            row[j] = acc * scale;
            max_v = std::max(max_v, row[j]);
        }
        float denom = 0.0f;
        for (unsigned j = 0; j < s; ++j) {
            row[j] = std::exp(row[j] - max_v);
            denom += row[j];
        }
        for (unsigned j = 0; j < s; ++j)
            row[j] /= denom;
        for (unsigned p = 0; p < d; ++p) {
            float acc = 0.0f;
            for (unsigned j = 0; j < s; ++j)
                acc += row[j] * v.at(j, p);
            context.at(i, p) = acc;
        }
    }

    FloatTensor out({s, d});
    for (unsigned i = 0; i < s; ++i)
        for (unsigned j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (unsigned p = 0; p < d; ++p)
                acc += context.at(i, p) * wo[std::size_t(p) * d + j];
            out.at(i, j) = acc;
        }
    return out;
}

} // namespace bfree::dnn
