/**
 * @file
 * A minimal dense tensor for the functional executors.
 *
 * Layout is row-major over an arbitrary rank (networks here use CHW or
 * NCHW). The class is deliberately small: the repository's heavy
 * lifting is architectural modelling, and the functional path only
 * needs correct, readable reference math.
 */

#ifndef BFREE_DNN_TENSOR_HH
#define BFREE_DNN_TENSOR_HH

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace bfree::dnn {

/** Dense row-major tensor of T. */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(std::vector<std::size_t> shape)
        : _shape(std::move(shape)), _data(count(_shape), T{})
    {}

    Tensor(std::vector<std::size_t> shape, T fill)
        : _shape(std::move(shape)), _data(count(_shape), fill)
    {}

    /** Number of elements implied by @p shape. */
    static std::size_t
    count(const std::vector<std::size_t> &shape)
    {
        return std::accumulate(shape.begin(), shape.end(),
                               std::size_t{1}, std::multiplies<>());
    }

    const std::vector<std::size_t> &shape() const { return _shape; }
    std::size_t rank() const { return _shape.size(); }
    std::size_t size() const { return _data.size(); }

    /** Dimension @p i of the shape. */
    std::size_t
    dim(std::size_t i) const
    {
        if (i >= _shape.size())
            bfree_panic("tensor dim ", i, " out of rank ", _shape.size());
        return _shape[i];
    }

    T *data() { return _data.data(); }
    const T *data() const { return _data.data(); }

    T &operator[](std::size_t flat) { return _data[flat]; }
    const T &operator[](std::size_t flat) const { return _data[flat]; }

    /** 3-D CHW accessor. */
    T &
    at(std::size_t c, std::size_t h, std::size_t w)
    {
        return _data[flatIndex(c, h, w)];
    }

    const T &
    at(std::size_t c, std::size_t h, std::size_t w) const
    {
        return _data[flatIndex(c, h, w)];
    }

    /** 2-D accessor (matrices). */
    T &
    at(std::size_t r, std::size_t c)
    {
        return _data[flatIndex2(r, c)];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        return _data[flatIndex2(r, c)];
    }

    /** Fill with uniform random values in [lo, hi] (reproducible). */
    void
    fillUniform(sim::Rng &rng, double lo, double hi)
    {
        for (T &v : _data)
            v = static_cast<T>(rng.uniformReal(lo, hi));
    }

  private:
    std::size_t
    flatIndex(std::size_t c, std::size_t h, std::size_t w) const
    {
        if (_shape.size() != 3)
            bfree_panic("CHW accessor on rank-", _shape.size(), " tensor");
        if (c >= _shape[0] || h >= _shape[1] || w >= _shape[2])
            bfree_panic("tensor index (", c, ",", h, ",", w,
                        ") out of shape");
        return (c * _shape[1] + h) * _shape[2] + w;
    }

    std::size_t
    flatIndex2(std::size_t r, std::size_t c) const
    {
        if (_shape.size() != 2)
            bfree_panic("matrix accessor on rank-", _shape.size(),
                        " tensor");
        if (r >= _shape[0] || c >= _shape[1])
            bfree_panic("matrix index (", r, ",", c, ") out of shape");
        return r * _shape[1] + c;
    }

    std::vector<std::size_t> _shape;
    std::vector<T> _data;
};

using FloatTensor = Tensor<float>;
using Int32Tensor = Tensor<std::int32_t>;
using Int8Tensor = Tensor<std::int8_t>;

} // namespace bfree::dnn

#endif // BFREE_DNN_TENSOR_HH
