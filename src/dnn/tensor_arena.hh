/**
 * @file
 * A bump-pointer scratch arena for steady-state inference.
 *
 * The execution-plan layer (core::NetworkPlan) sizes one arena with a
 * dry planning pass at compile time; every subsequent run then serves
 * all of its scratch — im2col patches, quantized input rows, int32
 * accumulators, pooling windows, softmax doubles — from this single
 * block with zero heap allocations. Layers release their scratch by
 * rewinding to a marker, so one worst-case-layer region is ping-ponged
 * across the whole network.
 *
 * The arena is intentionally dumb: allocation is an aligned pointer
 * bump, release is a pointer rewind, and exceeding the reserved
 * capacity is a programming error (the planning pass was wrong) that
 * panics rather than falling back to the heap.
 */

#ifndef BFREE_DNN_TENSOR_ARENA_HH
#define BFREE_DNN_TENSOR_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>

namespace bfree::dnn {

/** Single-block bump allocator with marker-based release. */
class TensorArena
{
  public:
    /** Every allocation starts on a 64-byte boundary (cache line). */
    static constexpr std::size_t alignment = 64;

    /** Bytes an allocation of @p n elements of T occupies, including
     *  the padding that keeps the next allocation aligned. The planning
     *  pass and the runtime both size requests through this one
     *  function, so they can never disagree. */
    template <typename T>
    static constexpr std::size_t
    paddedBytes(std::size_t n)
    {
        const std::size_t raw = n * sizeof(T);
        return (raw + alignment - 1) / alignment * alignment;
    }

    TensorArena() = default;

    TensorArena(const TensorArena &) = delete;
    TensorArena &operator=(const TensorArena &) = delete;

    /**
     * Ensure the backing block holds at least @p bytes. Growing
     * discards the current contents and resets the bump pointer; a
     * request within the current capacity is a no-op (the steady-state
     * path). This is the only heap allocation the arena ever makes.
     */
    void reserve(std::size_t bytes);

    /**
     * Allocate @p n elements of T, aligned, zero-initialization NOT
     * performed. Panics when the reserved capacity would be exceeded.
     */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        return static_cast<T *>(allocBytes(paddedBytes<T>(n)));
    }

    /** Opaque rewind point (the current bump offset). */
    using Marker = std::size_t;

    Marker mark() const { return off; }

    /** Rewind to @p m, releasing everything allocated after it. */
    void release(Marker m);

    /** Rewind to empty; capacity and high-water mark are kept. */
    void reset() { off = 0; }

    std::size_t capacity() const { return cap; }
    std::size_t used() const { return off; }

    /** Largest offset ever bumped to since construction. */
    std::size_t highWater() const { return high; }

    /**
     * Restart the high-water mark at the current bump offset, so the
     * next highWater() reading reflects only allocations made after
     * this call. Lets a re-planned network (e.g. a front-end mode
     * change that elides the quantized plane) measure its own peak
     * instead of inheriting the old plan's.
     */
    void resetHighWater() { high = off; }

    /** Arena allocations served so far (not heap allocations). */
    std::uint64_t allocCount() const { return count; }

  private:
    void *allocBytes(std::size_t bytes);

    std::unique_ptr<std::byte[]> block;
    std::size_t cap = 0;
    std::size_t off = 0;
    std::size_t high = 0;
    std::uint64_t count = 0;
};

} // namespace bfree::dnn

#endif // BFREE_DNN_TENSOR_ARENA_HH
