/**
 * @file
 * Layer descriptors for the workloads of Table II.
 *
 * A Layer captures the shape parameters the mapping and timing models
 * need: MAC count, parameter count, input/output feature-map sizes, and
 * the operator class (which selects conv vs matmul vs special-function
 * execution on BFree). One struct covers all operator kinds with
 * factory functions enforcing the relevant fields.
 */

#ifndef BFREE_DNN_LAYER_HH
#define BFREE_DNN_LAYER_HH

#include <cstdint>
#include <string>

namespace bfree::dnn {

/** Operator classes used across the evaluated networks. */
enum class LayerKind
{
    Conv,      ///< 2-D convolution.
    Fc,        ///< Fully connected / linear.
    MaxPool,   ///< Max pooling.
    AvgPool,   ///< Average pooling.
    Relu,      ///< Rectified linear activation.
    Sigmoid,   ///< Logistic activation.
    Tanh,      ///< Hyperbolic tangent activation.
    Softmax,   ///< Softmax over the channel dimension.
    LstmCell,  ///< One LSTM timestep (4 gates).
    Attention, ///< One multi-head self-attention block.
    LayerNorm, ///< Layer normalization.
    EwAdd,     ///< Element-wise residual add.
};

/** Printable kind name. */
const char *layer_kind_name(LayerKind kind);

/** A CHW feature-map shape. */
struct FeatureShape
{
    unsigned c = 0;
    unsigned h = 0;
    unsigned w = 0;

    std::uint64_t
    elements() const
    {
        return std::uint64_t(c) * h * w;
    }

    bool operator==(const FeatureShape &) const = default;
};

/**
 * One network layer.
 */
struct Layer
{
    LayerKind kind = LayerKind::Conv;
    std::string name;

    /** Input feature map (CHW); for FC, c = inFeatures, h = w = 1. */
    FeatureShape input;

    // Convolution / pooling parameters.
    unsigned outChannels = 0;
    unsigned kernelH = 1;
    unsigned kernelW = 1;
    unsigned strideH = 1;
    unsigned strideW = 1;
    unsigned padH = 0;
    unsigned padW = 0;

    // Fully connected.
    unsigned inFeatures = 0;
    unsigned outFeatures = 0;
    /** Independent rows a FC applies to (e.g. sequence positions). */
    unsigned fcRows = 1;

    // LSTM.
    unsigned lstmInput = 0;
    unsigned lstmHidden = 0;

    // Attention.
    unsigned seqLen = 0;
    unsigned dModel = 0;
    unsigned numHeads = 1;

    /** Operand precision used on BFree (4 or 8 bits). */
    unsigned precisionBits = 8;

    // ------------------------------------------------------------------
    // Derived quantities
    // ------------------------------------------------------------------
    /** Output feature-map shape. */
    FeatureShape outputShape() const;

    /** Multiply-accumulate operations in one inference of this layer. */
    std::uint64_t macs() const;

    /** Learned parameter count (weights + biases). */
    std::uint64_t params() const;

    /** Weight bytes at this layer's precision. */
    std::uint64_t weightBytes() const;

    /** Input activation bytes (1 byte per element at <= 8-bit). */
    std::uint64_t inputBytes() const;

    /** Output activation bytes. */
    std::uint64_t outputBytes() const;

    /** Non-MAC special-function evaluations (activations etc.). */
    std::uint64_t specialOps() const;

    /** True for layers executed on the MAC datapath. */
    bool isComputeLayer() const;
};

// ----------------------------------------------------------------------
// Factories
// ----------------------------------------------------------------------
Layer make_conv(std::string name, FeatureShape input, unsigned out_c,
                unsigned kernel, unsigned stride, unsigned pad);

/** Asymmetric-kernel convolution (Inception 1x7 / 7x1 factorizations). */
Layer make_conv2(std::string name, FeatureShape input, unsigned out_c,
                 unsigned kernel_h, unsigned kernel_w, unsigned stride,
                 unsigned pad_h, unsigned pad_w);

Layer make_fc(std::string name, unsigned in_features,
              unsigned out_features);

Layer make_pool(std::string name, LayerKind kind, FeatureShape input,
                unsigned kernel, unsigned stride, unsigned pad = 0);

Layer make_activation(std::string name, LayerKind kind,
                      FeatureShape input);

Layer make_lstm_cell(std::string name, unsigned input_size,
                     unsigned hidden_size);

Layer make_attention(std::string name, unsigned seq_len, unsigned d_model,
                     unsigned num_heads);

Layer make_layer_norm(std::string name, unsigned seq_len,
                      unsigned d_model);

Layer make_ew_add(std::string name, FeatureShape input);

} // namespace bfree::dnn

#endif // BFREE_DNN_LAYER_HH
