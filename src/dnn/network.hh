/**
 * @file
 * A network is an ordered list of layers plus workload-level summaries
 * (the columns of Table II: layers, params, mults).
 */

#ifndef BFREE_DNN_NETWORK_HH
#define BFREE_DNN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "layer.hh"

namespace bfree::dnn {

/**
 * An inference workload.
 */
class Network
{
  public:
    Network(std::string name, FeatureShape input_shape)
        : _name(std::move(name)), inputShape(input_shape)
    {}

    const std::string &name() const { return _name; }
    const FeatureShape &input() const { return inputShape; }

    /** Append a layer. */
    void add(Layer layer) { _layers.push_back(std::move(layer)); }

    const std::vector<Layer> &layers() const { return _layers; }
    std::vector<Layer> &layers() { return _layers; }

    /** Layers executed on the MAC datapath (the paper's layer count). */
    std::size_t computeLayerCount() const;

    /** Total learned parameters. */
    std::uint64_t totalParams() const;

    /** Total multiply-accumulates per inference. */
    std::uint64_t totalMacs() const;

    /** Total weight bytes at the configured per-layer precisions. */
    std::uint64_t totalWeightBytes() const;

    /** Set every layer's operand precision. */
    void setUniformPrecision(unsigned bits);

    /**
     * Repetitions of the per-timestep / per-sequence work (e.g. LSTM
     * runs its cell once per sequence step). Defaults to 1.
     */
    unsigned timesteps = 1;

    /**
     * The layer count the original publication reports (network depth),
     * which differs from the flattened operator count for branched
     * architectures: Inception-v3 is "48 layers deep" but flattens to
     * ~95 convolutions.
     */
    unsigned reportedDepth = 0;

  private:
    std::string _name;
    FeatureShape inputShape;
    std::vector<Layer> _layers;
};

} // namespace bfree::dnn

#endif // BFREE_DNN_NETWORK_HH
