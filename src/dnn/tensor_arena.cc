#include "tensor_arena.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::dnn {

void
TensorArena::reserve(std::size_t bytes)
{
    if (bytes <= cap)
        return;
    // new[] of std::byte returns storage aligned for std::max_align_t;
    // over-allocate so the base can be rounded up to the arena
    // alignment without losing capacity.
    block = std::make_unique<std::byte[]>(bytes + alignment);
    cap = bytes;
    off = 0;
}

void
TensorArena::release(Marker m)
{
    if (m > off)
        bfree_panic("arena release to marker ", m, " beyond offset ",
                    off);
    off = m;
}

void *
TensorArena::allocBytes(std::size_t bytes)
{
    // Round a raw byte request up to the arena granule: every span the
    // arena hands out must start on a 64-byte boundary or the SIMD
    // span kernels downstream would fault on aligned loads. alloc<T>
    // already pads via paddedBytes; this keeps direct callers honest.
    bytes = (bytes + alignment - 1) / alignment * alignment;
    if (off + bytes > cap)
        bfree_panic("arena overflow: ", off + bytes, " bytes requested, ",
                    cap, " reserved (planning pass undersized?)");
    const auto base = reinterpret_cast<std::uintptr_t>(block.get());
    const std::uintptr_t aligned =
        (base + alignment - 1) / alignment * alignment;
    void *p = reinterpret_cast<void *>(aligned + off);
    if (reinterpret_cast<std::uintptr_t>(p) % alignment != 0)
        bfree_panic("arena handed out a span at ", p, " that misses the ",
                    alignment, "-byte alignment contract (offset ", off,
                    "); SIMD kernels require aligned spans");
    off += bytes;
    high = std::max(high, off);
    ++count;
    return p;
}

} // namespace bfree::dnn
