#include "quantize.hh"

#include <algorithm>
#include <cmath>

namespace bfree::dnn {

SymQuant
choose_sym(const float *data, std::size_t n, unsigned bits)
{
    float peak = 1e-9f;
    for (std::size_t i = 0; i < n; ++i)
        peak = std::max(peak, std::abs(data[i]));
    SymQuant s;
    s.limit = (1 << (bits - 1)) - 1;
    s.scale = peak / s.limit;
    return s;
}

QuantizedWeights
freeze_weights(const float *w, std::size_t n, unsigned bits)
{
    QuantizedWeights out;
    out.scale = choose_sym(w, n, bits);
    out.bits = bits;
    if (bits <= 8) {
        out.q8.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out.q8[i] = static_cast<std::int8_t>(out.scale.q(w[i]));
    } else {
        out.q32.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out.q32[i] = out.scale.q(w[i]);
    }
    return out;
}

QuantizedWeights
freeze_weights_transposed(const float *w, std::size_t k, std::size_t n,
                          unsigned bits)
{
    QuantizedWeights out;
    out.scale = choose_sym(w, k * n, bits);
    out.bits = bits;
    if (bits <= 8) {
        out.q8.resize(k * n);
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t p = 0; p < k; ++p)
                out.q8[j * k + p] =
                    static_cast<std::int8_t>(out.scale.q(w[p * n + j]));
    } else {
        out.q32.resize(k * n);
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t p = 0; p < k; ++p)
                out.q32[j * k + p] = out.scale.q(w[p * n + j]);
    }
    return out;
}

QuantizedTensor
quantize_tensor(const FloatTensor &input, unsigned bits)
{
    float lo = 0.0f;
    float hi = 0.0f;
    for (std::size_t i = 0; i < input.size(); ++i) {
        lo = std::min(lo, input[i]);
        hi = std::max(hi, input[i]);
    }

    QuantizedTensor out;
    out.qp = lut::choose_quant_params(lo, hi, bits);
    out.values = Int8Tensor(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i)
        out.values[i] = static_cast<std::int8_t>(
            lut::quantize(input[i], out.qp));
    return out;
}

std::vector<std::int8_t>
quantize_weights(const std::vector<float> &w, lut::QuantParams &qp,
                 unsigned bits)
{
    float lo = 0.0f;
    float hi = 0.0f;
    for (float v : w) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    qp = lut::choose_quant_params(lo, hi, bits);

    std::vector<std::int8_t> out(w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        out[i] = static_cast<std::int8_t>(lut::quantize(w[i], qp));
    return out;
}

FloatTensor
dequantize_tensor(const QuantizedTensor &input)
{
    FloatTensor out(input.values.shape());
    for (std::size_t i = 0; i < input.values.size(); ++i)
        out[i] = static_cast<float>(
            lut::dequantize(input.values[i], input.qp));
    return out;
}

void
apply_mixed_precision(Network &net)
{
    // Identify first and last compute layers: these keep 8 bits.
    std::size_t first = net.layers().size();
    std::size_t last = 0;
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
        if (net.layers()[i].isComputeLayer()) {
            first = std::min(first, i);
            last = i;
        }
    }
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
        Layer &l = net.layers()[i];
        if (!l.isComputeLayer())
            continue;
        l.precisionBits = (i == first || i == last) ? 8 : 4;
    }
}

double
fraction_macs_at_4bit(const Network &net)
{
    std::uint64_t total = 0;
    std::uint64_t at4 = 0;
    for (const Layer &l : net.layers()) {
        total += l.macs();
        if (l.precisionBits == 4)
            at4 += l.macs();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(at4)
                            / static_cast<double>(total);
}

} // namespace bfree::dnn
