#include "quantize.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/cpuid.hh"
#include "sim/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BFREE_X86_QUANTIZE 1
#endif

namespace bfree::dnn {

namespace {

void
quantize_span_scalar(const SymQuant &sq, const float *src, std::size_t n,
                     std::int8_t *dst)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::int8_t>(sq.q(src[i]));
}

#ifdef BFREE_X86_QUANTIZE

/**
 * The vector rounding core, shared by the variants via macro (callees
 * of a target("...") function do not inherit the attribute): given a
 * double vector x = v / scale, produce lround(x) lane-wise.
 * Truncate toward zero, take the exact fractional remainder f = x - y
 * (exact because y matches x's exponent), and add copysign(1, x)
 * where |f| >= 0.5. This is round-half-away-from-zero with no
 * double-rounding hazard: the tempting trunc(x + copysign(0.5, x))
 * misrounds values one ulp below a .5 boundary, because the add
 * itself rounds.
 */

__attribute__((target("sse4.2"))) void
quantize_span_sse42(const SymQuant &sq, const float *src, std::size_t n,
                    std::int8_t *dst)
{
    const __m128d vscale = _mm_set1_pd(sq.scale);
    const __m128d vhalf = _mm_set1_pd(0.5);
    const __m128d vone = _mm_set1_pd(1.0);
    const __m128d vsign = _mm_set1_pd(-0.0);
    const __m128d vmax = _mm_set1_pd(static_cast<double>(sq.limit));
    const __m128d vmin = _mm_set1_pd(-static_cast<double>(sq.limit));

#define BFREE_QROUND_PD_128(d, out)                                      \
    do {                                                                 \
        const __m128d x_ = _mm_div_pd(d, vscale);                        \
        const __m128d y_ = _mm_round_pd(                                 \
            x_, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);                 \
        const __m128d f_ = _mm_sub_pd(x_, y_);                           \
        const __m128d af_ = _mm_andnot_pd(vsign, f_);                    \
        const __m128d m_ = _mm_cmpge_pd(af_, vhalf);                     \
        const __m128d step_ = _mm_and_pd(                                \
            m_, _mm_or_pd(_mm_and_pd(x_, vsign), vone));                 \
        __m128d r_ = _mm_add_pd(y_, step_);                              \
        r_ = _mm_min_pd(_mm_max_pd(r_, vmin), vmax);                     \
        (out) = _mm_cvtpd_epi32(r_);                                     \
    } while (0)

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 v =
            _mm_loadu_ps(src + i);
        __m128i r0, r1;
        BFREE_QROUND_PD_128(_mm_cvtps_pd(v), r0);
        BFREE_QROUND_PD_128(_mm_cvtps_pd(_mm_movehl_ps(v, v)), r1);
        const __m128i r32 = _mm_unpacklo_epi64(r0, r1);
        const __m128i r16 = _mm_packs_epi32(r32, r32);
        const __m128i r8 = _mm_packs_epi16(r16, r16);
        const int word = _mm_cvtsi128_si32(r8);
        std::memcpy(dst + i, &word, 4);
    }
#undef BFREE_QROUND_PD_128
    quantize_span_scalar(sq, src + i, n - i, dst + i);
}

__attribute__((target("avx2"))) void
quantize_span_avx2(const SymQuant &sq, const float *src, std::size_t n,
                   std::int8_t *dst)
{
    const __m256d vscale = _mm256_set1_pd(sq.scale);
    const __m256d vhalf = _mm256_set1_pd(0.5);
    const __m256d vone = _mm256_set1_pd(1.0);
    const __m256d vsign = _mm256_set1_pd(-0.0);
    const __m256d vmax = _mm256_set1_pd(static_cast<double>(sq.limit));
    const __m256d vmin = _mm256_set1_pd(-static_cast<double>(sq.limit));

#define BFREE_QROUND_PD_256(d, out)                                      \
    do {                                                                 \
        const __m256d x_ = _mm256_div_pd(d, vscale);                     \
        const __m256d y_ = _mm256_round_pd(                              \
            x_, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);                 \
        const __m256d f_ = _mm256_sub_pd(x_, y_);                        \
        const __m256d af_ = _mm256_andnot_pd(vsign, f_);                 \
        const __m256d m_ = _mm256_cmp_pd(af_, vhalf, _CMP_GE_OQ);        \
        const __m256d step_ = _mm256_and_pd(                             \
            m_, _mm256_or_pd(_mm256_and_pd(x_, vsign), vone));           \
        __m256d r_ = _mm256_add_pd(y_, step_);                           \
        r_ = _mm256_min_pd(_mm256_max_pd(r_, vmin), vmax);               \
        (out) = _mm256_cvtpd_epi32(r_);                                  \
    } while (0)

    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(src + i);
        __m128i r0, r1;
        BFREE_QROUND_PD_256(
            _mm256_cvtps_pd(_mm256_castps256_ps128(v)), r0);
        BFREE_QROUND_PD_256(
            _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), r1);
        const __m128i r16 = _mm_packs_epi32(r0, r1);
        const __m128i r8 = _mm_packs_epi16(r16, r16);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + i), r8);
    }
#undef BFREE_QROUND_PD_256
    quantize_span_scalar(sq, src + i, n - i, dst + i);
}

// GCC 12 false positive through the _mm*_undefined_*() masked-fallback
// operands inside the AVX-512 intrinsic headers (GCC PR105593).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
quantize_span_avx512(const SymQuant &sq, const float *src, std::size_t n,
                     std::int8_t *dst)
{
    const __m512d vscale = _mm512_set1_pd(sq.scale);
    const __m512d vhalf = _mm512_set1_pd(0.5);
    const __m512d vone = _mm512_set1_pd(1.0);
    const __m512i vsign = _mm512_set1_epi64(
        static_cast<long long>(0x8000000000000000ull));
    const __m512d vmax = _mm512_set1_pd(static_cast<double>(sq.limit));
    const __m512d vmin = _mm512_set1_pd(-static_cast<double>(sq.limit));

    // The pd logical ops are AVX512DQ, which the dispatch trio does
    // not guarantee; do sign manipulation in the integer domain (F).
#define BFREE_QROUND_PD_512(d, out)                                      \
    do {                                                                 \
        const __m512d x_ = _mm512_div_pd(d, vscale);                     \
        const __m512d y_ = _mm512_roundscale_pd(                         \
            x_, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);                 \
        const __m512d f_ = _mm512_sub_pd(x_, y_);                        \
        const __m512d af_ = _mm512_castsi512_pd(_mm512_andnot_si512(     \
            vsign, _mm512_castpd_si512(f_)));                            \
        const __mmask8 m_ =                                              \
            _mm512_cmp_pd_mask(af_, vhalf, _CMP_GE_OQ);                  \
        const __m512d one_ = _mm512_castsi512_pd(_mm512_or_si512(        \
            _mm512_and_si512(_mm512_castpd_si512(x_), vsign),            \
            _mm512_castpd_si512(vone)));                                 \
        __m512d r_ = _mm512_mask_add_pd(y_, m_, y_, one_);               \
        r_ = _mm512_min_pd(_mm512_max_pd(r_, vmin), vmax);               \
        (out) = _mm512_cvtpd_epi32(r_);                                  \
    } while (0)

    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 v = _mm512_loadu_ps(src + i);
        __m256i r0, r1;
        BFREE_QROUND_PD_512(
            _mm512_cvtps_pd(_mm512_castps512_ps256(v)), r0);
        BFREE_QROUND_PD_512(
            _mm512_cvtps_pd(_mm256_castsi256_ps(
                _mm512_extracti64x4_epi64(_mm512_castps_si512(v), 1))),
            r1);
        const __m512i r32 = _mm512_inserti64x4(
            _mm512_zextsi256_si512(r0), r1, 1);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm512_cvtsepi32_epi8(r32));
    }
#undef BFREE_QROUND_PD_512
    quantize_span_scalar(sq, src + i, n - i, dst + i);
}

#pragma GCC diagnostic pop

#endif // BFREE_X86_QUANTIZE

} // namespace

QuantizeSpanFn
quantize_span_fn()
{
    switch (sim::active_simd_level()) {
#ifdef BFREE_X86_QUANTIZE
      case sim::SimdLevel::Avx512:
        return &quantize_span_avx512;
      case sim::SimdLevel::Avx2:
        return &quantize_span_avx2;
      case sim::SimdLevel::Sse42:
        return &quantize_span_sse42;
#endif
      default:
        return &quantize_span_scalar;
    }
}

void
quantize_span(const SymQuant &sq, const float *src, std::size_t n,
              std::int8_t *dst)
{
    if (sq.limit > 127)
        bfree_panic("quantize_span: limit ", sq.limit,
                    " exceeds the int8 domain");
    quantize_span_fn()(sq, src, n, dst);
}

SymQuant
choose_sym(const float *data, std::size_t n, unsigned bits)
{
    float peak = 1e-9f;
    for (std::size_t i = 0; i < n; ++i)
        peak = std::max(peak, std::abs(data[i]));
    SymQuant s;
    s.limit = (1 << (bits - 1)) - 1;
    s.scale = peak / s.limit;
    return s;
}

QuantizedWeights
freeze_weights(const float *w, std::size_t n, unsigned bits)
{
    QuantizedWeights out;
    out.scale = choose_sym(w, n, bits);
    out.bits = bits;
    if (bits <= 8) {
        out.q8.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out.q8[i] = static_cast<std::int8_t>(out.scale.q(w[i]));
    } else {
        out.q32.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out.q32[i] = out.scale.q(w[i]);
    }
    return out;
}

QuantizedWeights
freeze_weights_transposed(const float *w, std::size_t k, std::size_t n,
                          unsigned bits)
{
    QuantizedWeights out;
    out.scale = choose_sym(w, k * n, bits);
    out.bits = bits;
    if (bits <= 8) {
        out.q8.resize(k * n);
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t p = 0; p < k; ++p)
                out.q8[j * k + p] =
                    static_cast<std::int8_t>(out.scale.q(w[p * n + j]));
    } else {
        out.q32.resize(k * n);
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t p = 0; p < k; ++p)
                out.q32[j * k + p] = out.scale.q(w[p * n + j]);
    }
    return out;
}

QuantizedTensor
quantize_tensor(const FloatTensor &input, unsigned bits)
{
    float lo = 0.0f;
    float hi = 0.0f;
    for (std::size_t i = 0; i < input.size(); ++i) {
        lo = std::min(lo, input[i]);
        hi = std::max(hi, input[i]);
    }

    QuantizedTensor out;
    out.qp = lut::choose_quant_params(lo, hi, bits);
    out.values = Int8Tensor(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i)
        out.values[i] = static_cast<std::int8_t>(
            lut::quantize(input[i], out.qp));
    return out;
}

std::vector<std::int8_t>
quantize_weights(const std::vector<float> &w, lut::QuantParams &qp,
                 unsigned bits)
{
    float lo = 0.0f;
    float hi = 0.0f;
    for (float v : w) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    qp = lut::choose_quant_params(lo, hi, bits);

    std::vector<std::int8_t> out(w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        out[i] = static_cast<std::int8_t>(lut::quantize(w[i], qp));
    return out;
}

FloatTensor
dequantize_tensor(const QuantizedTensor &input)
{
    FloatTensor out(input.values.shape());
    for (std::size_t i = 0; i < input.values.size(); ++i)
        out[i] = static_cast<float>(
            lut::dequantize(input.values[i], input.qp));
    return out;
}

void
apply_mixed_precision(Network &net)
{
    // Identify first and last compute layers: these keep 8 bits.
    std::size_t first = net.layers().size();
    std::size_t last = 0;
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
        if (net.layers()[i].isComputeLayer()) {
            first = std::min(first, i);
            last = i;
        }
    }
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
        Layer &l = net.layers()[i];
        if (!l.isComputeLayer())
            continue;
        l.precisionBits = (i == first || i == last) ? 8 : 4;
    }
}

double
fraction_macs_at_4bit(const Network &net)
{
    std::uint64_t total = 0;
    std::uint64_t at4 = 0;
    for (const Layer &l : net.layers()) {
        total += l.macs();
        if (l.precisionBits == 4)
            at4 += l.macs();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(at4)
                            / static_cast<double>(total);
}

} // namespace bfree::dnn
