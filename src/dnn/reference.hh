/**
 * @file
 * Float reference executors.
 *
 * Ground-truth implementations of every operator, used to validate the
 * quantized LUT-based BFree execution path. These are straightforward
 * loop nests — clarity over speed.
 */

#ifndef BFREE_DNN_REFERENCE_HH
#define BFREE_DNN_REFERENCE_HH

#include <vector>

#include "layer.hh"
#include "tensor.hh"

namespace bfree::dnn {

/** Direct convolution. Weights are [outC][inC][kH][kW] flattened. */
FloatTensor reference_conv(const Layer &layer, const FloatTensor &input,
                           const std::vector<float> &weights,
                           const std::vector<float> &bias);

/** Fully connected: out = W x in + b, W is [out][in] flattened. */
FloatTensor reference_fc(const Layer &layer, const FloatTensor &input,
                         const std::vector<float> &weights,
                         const std::vector<float> &bias);

/** Max pooling. */
FloatTensor reference_max_pool(const Layer &layer,
                               const FloatTensor &input);

/** Average pooling. */
FloatTensor reference_avg_pool(const Layer &layer,
                               const FloatTensor &input);

/** Element-wise activation (ReLU / sigmoid / tanh). */
FloatTensor reference_activation(LayerKind kind, const FloatTensor &input);

/** Softmax over the whole tensor (used on logits). */
FloatTensor reference_softmax(const FloatTensor &input);

/** One LSTM timestep state. */
struct LstmState
{
    std::vector<float> h; ///< Hidden state.
    std::vector<float> c; ///< Cell state.
};

/**
 * One LSTM cell step. Gate weights are packed [i, f, g, o] each of
 * shape [hidden][input + hidden]; biases likewise.
 */
LstmState reference_lstm_step(const Layer &layer,
                              const std::vector<float> &x,
                              const LstmState &prev,
                              const std::vector<float> &weights,
                              const std::vector<float> &bias);

/**
 * Single-head scaled dot-product self-attention over a [seq][d] input
 * with packed Q/K/V/O projection weights (each [d][d]).
 */
FloatTensor reference_attention(const Layer &layer,
                                const FloatTensor &input,
                                const std::vector<float> &wq,
                                const std::vector<float> &wk,
                                const std::vector<float> &wv,
                                const std::vector<float> &wo);

/** Matrix multiply helper: C[m][n] = A[m][k] * B[k][n]. */
FloatTensor reference_matmul(const FloatTensor &a, const FloatTensor &b);

} // namespace bfree::dnn

#endif // BFREE_DNN_REFERENCE_HH
