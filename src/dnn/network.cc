#include "network.hh"

namespace bfree::dnn {

std::size_t
Network::computeLayerCount() const
{
    std::size_t n = 0;
    for (const Layer &l : _layers)
        if (l.isComputeLayer())
            ++n;
    return n;
}

std::uint64_t
Network::totalParams() const
{
    std::uint64_t total = 0;
    for (const Layer &l : _layers)
        total += l.params();
    return total;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const Layer &l : _layers)
        total += l.macs();
    return total;
}

std::uint64_t
Network::totalWeightBytes() const
{
    std::uint64_t total = 0;
    for (const Layer &l : _layers)
        total += l.weightBytes();
    return total;
}

void
Network::setUniformPrecision(unsigned bits)
{
    for (Layer &l : _layers)
        l.precisionBits = bits;
}

} // namespace bfree::dnn
