#include "model_zoo.hh"

#include "sim/logging.hh"

namespace bfree::dnn {

namespace {

/** Append a conv layer and return its output shape. */
FeatureShape
add_conv(Network &net, const std::string &name, FeatureShape in,
         unsigned out_c, unsigned k, unsigned stride, unsigned pad)
{
    Layer l = make_conv(name, in, out_c, k, stride, pad);
    const FeatureShape out = l.outputShape();
    net.add(std::move(l));
    return out;
}

FeatureShape
add_conv2(Network &net, const std::string &name, FeatureShape in,
          unsigned out_c, unsigned kh, unsigned kw, unsigned stride,
          unsigned ph, unsigned pw)
{
    Layer l = make_conv2(name, in, out_c, kh, kw, stride, ph, pw);
    const FeatureShape out = l.outputShape();
    net.add(std::move(l));
    return out;
}

FeatureShape
add_pool(Network &net, const std::string &name, LayerKind kind,
         FeatureShape in, unsigned k, unsigned stride, unsigned pad = 0)
{
    Layer l = make_pool(name, kind, in, k, stride, pad);
    const FeatureShape out = l.outputShape();
    net.add(std::move(l));
    return out;
}

} // namespace

Network
make_vgg16()
{
    Network net("VGG-16", {3, 224, 224});
    FeatureShape s = net.input();

    auto block = [&](unsigned stage, unsigned out_c, unsigned convs) {
        for (unsigned i = 0; i < convs; ++i) {
            s = add_conv(net,
                         "conv" + std::to_string(stage) + "_"
                             + std::to_string(i + 1),
                         s, out_c, 3, 1, 1);
            net.add(make_activation("relu" + std::to_string(stage) + "_"
                                        + std::to_string(i + 1),
                                    LayerKind::Relu, s));
        }
        s = add_pool(net, "pool" + std::to_string(stage),
                     LayerKind::MaxPool, s, 2, 2);
    };

    block(1, 64, 2);
    block(2, 128, 2);
    block(3, 256, 3);
    block(4, 512, 3);
    block(5, 512, 3);

    net.add(make_fc("fc6", 512 * 7 * 7, 4096));
    net.add(make_activation("relu6", LayerKind::Relu, {4096, 1, 1}));
    net.add(make_fc("fc7", 4096, 4096));
    net.add(make_activation("relu7", LayerKind::Relu, {4096, 1, 1}));
    net.add(make_fc("fc8", 4096, 1000));
    net.add(make_activation("prob", LayerKind::Softmax, {1000, 1, 1}));
    net.reportedDepth = 16;
    return net;
}

namespace {

/** Inception-A block (Mixed_5b/5c/5d): 35x35 grid. */
FeatureShape
inception_a(Network &net, const std::string &prefix, FeatureShape in,
            unsigned pool_proj)
{
    // Branch 1: 1x1 64.
    add_conv(net, prefix + ".b1x1", in, 64, 1, 1, 0);
    // Branch 2: 1x1 48 -> 5x5 64.
    FeatureShape b2 = add_conv(net, prefix + ".b5x5_1", in, 48, 1, 1, 0);
    add_conv(net, prefix + ".b5x5_2", b2, 64, 5, 1, 2);
    // Branch 3: 1x1 64 -> 3x3 96 -> 3x3 96.
    FeatureShape b3 = add_conv(net, prefix + ".b3x3dbl_1", in, 64, 1, 1,
                               0);
    b3 = add_conv(net, prefix + ".b3x3dbl_2", b3, 96, 3, 1, 1);
    add_conv(net, prefix + ".b3x3dbl_3", b3, 96, 3, 1, 1);
    // Branch 4: avg pool -> 1x1 pool_proj.
    FeatureShape b4 =
        add_pool(net, prefix + ".pool", LayerKind::AvgPool, in, 3, 1, 1);
    add_conv(net, prefix + ".pool_proj", b4, pool_proj, 1, 1, 0);

    return {64 + 64 + 96 + pool_proj, in.h, in.w};
}

/** Reduction-A block (Mixed_6a): 35x35 -> 17x17. */
FeatureShape
reduction_a(Network &net, const std::string &prefix, FeatureShape in)
{
    FeatureShape out1 = add_conv(net, prefix + ".b3x3", in, 384, 3, 2, 0);
    FeatureShape b2 = add_conv(net, prefix + ".b3x3dbl_1", in, 64, 1, 1,
                               0);
    b2 = add_conv(net, prefix + ".b3x3dbl_2", b2, 96, 3, 1, 1);
    FeatureShape out2 =
        add_conv(net, prefix + ".b3x3dbl_3", b2, 96, 3, 2, 0);
    FeatureShape out3 =
        add_pool(net, prefix + ".pool", LayerKind::MaxPool, in, 3, 2);
    return {out1.c + out2.c + out3.c, out1.h, out1.w};
}

/** Inception-B block (Mixed_6b..6e): 17x17, factorized 7x7 convs. */
FeatureShape
inception_b(Network &net, const std::string &prefix, FeatureShape in,
            unsigned c7)
{
    add_conv(net, prefix + ".b1x1", in, 192, 1, 1, 0);

    FeatureShape b2 = add_conv(net, prefix + ".b7x7_1", in, c7, 1, 1, 0);
    b2 = add_conv2(net, prefix + ".b7x7_2", b2, c7, 1, 7, 1, 0, 3);
    add_conv2(net, prefix + ".b7x7_3", b2, 192, 7, 1, 1, 3, 0);

    FeatureShape b3 =
        add_conv(net, prefix + ".b7x7dbl_1", in, c7, 1, 1, 0);
    b3 = add_conv2(net, prefix + ".b7x7dbl_2", b3, c7, 7, 1, 1, 3, 0);
    b3 = add_conv2(net, prefix + ".b7x7dbl_3", b3, c7, 1, 7, 1, 0, 3);
    b3 = add_conv2(net, prefix + ".b7x7dbl_4", b3, c7, 7, 1, 1, 3, 0);
    add_conv2(net, prefix + ".b7x7dbl_5", b3, 192, 1, 7, 1, 0, 3);

    FeatureShape b4 =
        add_pool(net, prefix + ".pool", LayerKind::AvgPool, in, 3, 1, 1);
    add_conv(net, prefix + ".pool_proj", b4, 192, 1, 1, 0);

    return {192 * 4, in.h, in.w};
}

/** Reduction-B block (Mixed_7a): 17x17 -> 8x8. */
FeatureShape
reduction_b(Network &net, const std::string &prefix, FeatureShape in)
{
    FeatureShape b1 = add_conv(net, prefix + ".b3x3_1", in, 192, 1, 1, 0);
    FeatureShape out1 =
        add_conv(net, prefix + ".b3x3_2", b1, 320, 3, 2, 0);

    FeatureShape b2 =
        add_conv(net, prefix + ".b7x7x3_1", in, 192, 1, 1, 0);
    b2 = add_conv2(net, prefix + ".b7x7x3_2", b2, 192, 1, 7, 1, 0, 3);
    b2 = add_conv2(net, prefix + ".b7x7x3_3", b2, 192, 7, 1, 1, 3, 0);
    FeatureShape out2 =
        add_conv(net, prefix + ".b7x7x3_4", b2, 192, 3, 2, 0);

    FeatureShape out3 =
        add_pool(net, prefix + ".pool", LayerKind::MaxPool, in, 3, 2);
    return {out1.c + out2.c + out3.c, out1.h, out1.w};
}

/** Inception-C block (Mixed_7b/7c): 8x8, expanded filter bank. */
FeatureShape
inception_c(Network &net, const std::string &prefix, FeatureShape in)
{
    add_conv(net, prefix + ".b1x1", in, 320, 1, 1, 0);

    FeatureShape b2 = add_conv(net, prefix + ".b3x3_1", in, 384, 1, 1, 0);
    add_conv2(net, prefix + ".b3x3_2a", b2, 384, 1, 3, 1, 0, 1);
    add_conv2(net, prefix + ".b3x3_2b", b2, 384, 3, 1, 1, 1, 0);

    FeatureShape b3 =
        add_conv(net, prefix + ".b3x3dbl_1", in, 448, 1, 1, 0);
    b3 = add_conv(net, prefix + ".b3x3dbl_2", b3, 384, 3, 1, 1);
    add_conv2(net, prefix + ".b3x3dbl_3a", b3, 384, 1, 3, 1, 0, 1);
    add_conv2(net, prefix + ".b3x3dbl_3b", b3, 384, 3, 1, 1, 1, 0);

    FeatureShape b4 =
        add_pool(net, prefix + ".pool", LayerKind::AvgPool, in, 3, 1, 1);
    add_conv(net, prefix + ".pool_proj", b4, 192, 1, 1, 0);

    return {320 + 2 * 384 + 2 * 384 + 192, in.h, in.w};
}

} // namespace

Network
make_inception_v3()
{
    Network net("Inception-v3", {3, 299, 299});

    // Stem.
    FeatureShape s = add_conv(net, "conv1a", net.input(), 32, 3, 2, 0);
    s = add_conv(net, "conv2a", s, 32, 3, 1, 0);
    s = add_conv(net, "conv2b", s, 64, 3, 1, 1);
    s = add_pool(net, "pool1", LayerKind::MaxPool, s, 3, 2);
    s = add_conv(net, "conv3b", s, 80, 1, 1, 0);
    s = add_conv(net, "conv4a", s, 192, 3, 1, 0);
    s = add_pool(net, "pool2", LayerKind::MaxPool, s, 3, 2);

    // 35x35 Inception-A stack.
    s = inception_a(net, "mixed5b", s, 32);
    s = inception_a(net, "mixed5c", s, 64);
    s = inception_a(net, "mixed5d", s, 64);

    // Reduction to 17x17.
    s = reduction_a(net, "mixed6a", s);

    // 17x17 Inception-B stack.
    s = inception_b(net, "mixed6b", s, 128);
    s = inception_b(net, "mixed6c", s, 160);
    s = inception_b(net, "mixed6d", s, 160);
    s = inception_b(net, "mixed6e", s, 192);

    // Reduction to 8x8.
    s = reduction_b(net, "mixed7a", s);

    // 8x8 Inception-C stack.
    s = inception_c(net, "mixed7b", s);
    s = inception_c(net, "mixed7c", s);

    s = add_pool(net, "pool3", LayerKind::AvgPool, s, 8, 1);
    net.add(make_fc("fc", s.c, 1000));
    net.add(make_activation("prob", LayerKind::Softmax, {1000, 1, 1}));
    net.reportedDepth = 48;
    return net;
}

Network
make_lstm(unsigned input_size, unsigned hidden_size, unsigned timesteps)
{
    Network net("LSTM-" + std::to_string(hidden_size),
                {input_size, 1, 1});
    net.add(make_lstm_cell("cell", input_size, hidden_size));
    net.timesteps = timesteps;
    net.reportedDepth = 1;
    return net;
}

void
append_bert_encoder(Network &net, unsigned layer_index, unsigned seq_len,
                    unsigned d_model, unsigned num_heads)
{
    const std::string p = "enc" + std::to_string(layer_index);

    net.add(make_attention(p + ".attn", seq_len, d_model, num_heads));
    net.add(make_ew_add(p + ".attn_res", {d_model, seq_len, 1}));
    net.add(make_layer_norm(p + ".attn_ln", seq_len, d_model));

    // Feed-forward: d -> 4d -> d, applied to every sequence position.
    Layer ff1 = make_fc(p + ".ff1", d_model, 4 * d_model);
    ff1.input = {d_model, seq_len, 1};
    ff1.fcRows = seq_len;
    net.add(ff1);
    net.add(make_activation(p + ".gelu", LayerKind::Tanh,
                            {4 * d_model, seq_len, 1}));
    Layer ff2 = make_fc(p + ".ff2", 4 * d_model, d_model);
    ff2.input = {4 * d_model, seq_len, 1};
    ff2.fcRows = seq_len;
    net.add(ff2);
    net.add(make_ew_add(p + ".ff_res", {d_model, seq_len, 1}));
    net.add(make_layer_norm(p + ".ff_ln", seq_len, d_model));
}

Network
make_bert_base(unsigned seq_len)
{
    Network net("BERT-base", {768, seq_len, 1});
    for (unsigned i = 0; i < 12; ++i)
        append_bert_encoder(net, i, seq_len, 768, 12);
    net.reportedDepth = 12;
    return net;
}

Network
make_bert_large(unsigned seq_len)
{
    Network net("BERT-large", {1024, seq_len, 1});
    for (unsigned i = 0; i < 24; ++i)
        append_bert_encoder(net, i, seq_len, 1024, 16);
    net.reportedDepth = 24;
    return net;
}

Network
make_tiny_cnn()
{
    Network net("TinyCNN", {1, 8, 8});
    FeatureShape s = add_conv(net, "conv1", net.input(), 4, 3, 1, 1);
    net.add(make_activation("relu1", LayerKind::Relu, s));
    s = add_pool(net, "pool1", LayerKind::MaxPool, s, 2, 2);
    s = add_conv(net, "conv2", s, 8, 3, 1, 1);
    net.add(make_activation("relu2", LayerKind::Relu, s));
    s = add_pool(net, "pool2", LayerKind::MaxPool, s, 2, 2);
    net.add(make_fc("fc", s.c * s.h * s.w, 10));
    net.add(make_activation("prob", LayerKind::Softmax, {10, 1, 1}));
    return net;
}

} // namespace bfree::dnn
