/**
 * @file
 * Convolution-to-matrix-multiplication transformation (Section IV-B).
 *
 * BFree chooses between direct convolution and the im2col matrix
 * formulation per layer: the matrix form exploits the matmul-mode BCE
 * (4 MACs/cycle) but replicates input elements, costing storage
 * proportional to kernel area / stride^2. The mapping layer uses
 * storage_expansion() for the mode decision; the functional transform
 * backs the conv == matmul equivalence tests.
 */

#ifndef BFREE_DNN_IM2COL_HH
#define BFREE_DNN_IM2COL_HH

#include <cstdint>
#include <vector>

#include "layer.hh"
#include "tensor.hh"

namespace bfree::dnn {

/**
 * Unroll the input feature map of @p layer into the im2col matrix of
 * shape [outH*outW][inC*kH*kW] (each row holds the receptive field of
 * one output position).
 */
FloatTensor im2col(const Layer &layer, const FloatTensor &input);

/**
 * Fill one im2col patch (length inC*kH*kW) for output position
 * (@p oh, @p ow) from a pre-quantized [c][h][w] int8 feature map.
 * Each (channel, kernel-row) contributes one contiguous kernelW-byte
 * run of the source row — copied as a span, with zero-fill where the
 * receptive field hangs over the padding — so the extraction is
 * memory-bandwidth work instead of a per-element index walk. Combined
 * with quantize_span over the whole input once, this is byte-identical
 * to the legacy per-element quantize-in-the-loop patch fill (the
 * quantizer is a pure function, and a padded tap quantizes to 0).
 */
void im2col_patch_i8(const Layer &layer, const std::int8_t *qin,
                     unsigned oh, unsigned ow, std::int8_t *patch);

/**
 * Reshape conv weights [outC][inC][kH][kW] into the [inC*kH*kW][outC]
 * matrix used by the matmul formulation.
 */
FloatTensor weights_to_matrix(const Layer &layer,
                              const std::vector<float> &weights);

/**
 * Ratio of unrolled input storage to the original feature map
 * (>= 1; the wasted-copies factor the paper mentions in Fig. 9(c)).
 */
double storage_expansion(const Layer &layer);

/** Bytes of the unrolled input matrix at the layer's precision. */
std::uint64_t unrolled_input_bytes(const Layer &layer);

} // namespace bfree::dnn

#endif // BFREE_DNN_IM2COL_HH
