/**
 * @file
 * Convolution-to-matrix-multiplication transformation (Section IV-B).
 *
 * BFree chooses between direct convolution and the im2col matrix
 * formulation per layer: the matrix form exploits the matmul-mode BCE
 * (4 MACs/cycle) but replicates input elements, costing storage
 * proportional to kernel area / stride^2. The mapping layer uses
 * storage_expansion() for the mode decision; the functional transform
 * backs the conv == matmul equivalence tests.
 */

#ifndef BFREE_DNN_IM2COL_HH
#define BFREE_DNN_IM2COL_HH

#include <cstdint>
#include <vector>

#include "layer.hh"
#include "quantize.hh"
#include "tensor.hh"

namespace bfree::dnn {

/**
 * Unroll the input feature map of @p layer into the im2col matrix of
 * shape [outH*outW][inC*kH*kW] (each row holds the receptive field of
 * one output position).
 */
FloatTensor im2col(const Layer &layer, const FloatTensor &input);

/**
 * Fill one im2col patch (length inC*kH*kW) for output position
 * (@p oh, @p ow) from a pre-quantized [c][h][w] int8 feature map.
 * Each (channel, kernel-row) contributes one contiguous kernelW-byte
 * run of the source row — copied as a span, with zero-fill where the
 * receptive field hangs over the padding — so the extraction is
 * memory-bandwidth work instead of a per-element index walk. Combined
 * with quantize_span over the whole input once, this is byte-identical
 * to the legacy per-element quantize-in-the-loop patch fill (the
 * quantizer is a pure function, and a padded tap quantizes to 0).
 */
void im2col_patch_i8(const Layer &layer, const std::int8_t *qin,
                     unsigned oh, unsigned ow, std::int8_t *patch);

// ---------------------------------------------------------------------
// Front-end mode: how a conv layer's int8 patches are produced
// ---------------------------------------------------------------------

/**
 * The three ways the 8-bit conv front half can feed the span kernels.
 * All three produce byte-identical patches (and therefore identical
 * outputs and BCE statistics) for any conv layer at <= 8 bits — only
 * the work done per image differs — so any mode may be forced anywhere
 * for differential testing.
 */
enum class FrontendMode
{
    /** Quantize the whole input plane, then row-run patch copies
     *  (im2col_patch_i8). The pre-PR-10 pipeline; also the only mode
     *  for > 8-bit layers and non-conv layers. */
    Legacy = 0,
    /** Quantize straight into the patch (im2col_quantize_patch); the
     *  intermediate quantized plane and its arena allocation
     *  disappear. Chosen when receptive fields do not overlap (stride
     *  >= kernel), where every tap is quantized exactly once. */
    Fused = 1,
    /** Quantize the plane once, then address patches through a strided
     *  SpanView (bce::simd::materialize_span_view) instead of per-run
     *  memcpy calls. Chosen for overlapping windows (stride < kernel,
     *  including 1x1 at stride 1 on multi-tap channels), where the
     *  plane quantization is amortized across windows and the copy
     *  loop is the cost to kill. */
    Elided = 2,
};

/** Human-readable name ("legacy", "fused", "elided"). */
const char *frontend_mode_name(FrontendMode mode);

/**
 * The geometry policy: which front end fits @p layer at @p bits.
 * Non-conv layers and > 8-bit precisions are always Legacy; disjoint
 * receptive fields choose Fused; overlapping ones choose Elided.
 */
FrontendMode choose_frontend(const Layer &layer, unsigned bits);

/**
 * The mode the plan compiler records: choose_frontend unless the
 * BFREE_FORCE_FRONTEND environment override (legacy|fused|elided) or a
 * force_frontend() pin says otherwise. Overrides only apply where a
 * non-legacy mode is valid (conv at <= 8 bits); an unknown value is
 * fatal at first use, mirroring BFREE_FORCE_ISA.
 */
FrontendMode resolve_frontend(const Layer &layer, unsigned bits);

/** Pin the front-end mode programmatically (tests/benchmarks). */
void force_frontend(FrontendMode mode);

/** Drop a force_frontend pin and re-resolve from the environment. */
void reset_frontend();

/**
 * The fused front half: fill one int8 patch for output position
 * (@p oh, @p ow) directly from the fp32 feature map @p in, quantizing
 * each contiguous (channel, kernel-row) run through the per-ISA
 * quantize-span core (quantize_span_fn) on the way — one pass, no
 * intermediate quantized plane. Byte-identical to quantize_span +
 * im2col_patch_i8 because SymQuant::q is pure and a padded tap
 * quantizes to 0. Requires @p sq.limit <= 127 (checked).
 */
void im2col_quantize_patch(const Layer &layer, const SymQuant &sq,
                           const float *in, unsigned oh, unsigned ow,
                           std::int8_t *patch);

// ---------------------------------------------------------------------
// Im2col elision: strided patch addressing over the quantized plane
// ---------------------------------------------------------------------

/**
 * Shape of the elided front end for one conv layer: every patch is
 * nRuns runs of runLen bytes, each run a window into an addressed
 * plane — the quantized input itself for pad-free layers, or a
 * zero-padded copy staged ONCE per image for padded ones. Run i of
 * the patch at output position (oh, ow) starts at plane byte
 *
 *     offsets[i] + oh * strideH * rowBytes + ow * strideW
 *
 * with offsets filled once per layer by elided_offsets: the (oh, ow)
 * shift is uniform across runs, so per output row only the view base
 * moves — no per-row staging or offset rebuild. The executor sizes
 * its arena scratch from these fields; plan_shapes uses the same
 * struct so the ledger cannot disagree.
 */
struct ElisionLayout
{
    /** True when padding forces the reads through a staged zero-padded
     *  plane copy (padded columns and clipped rows become literal zero
     *  bytes there). Pad-free layers read the plane in place. */
    bool staged = false;
    /** Row stride of the addressed plane: inW + 2*padW staged, inW
     *  in place. */
    std::size_t rowBytes = 0;
    /** Rows per channel of the addressed plane: inH + 2*padH staged,
     *  inH in place. */
    std::size_t planeRows = 0;
    std::size_t nRuns = 0;       ///< inC * kernelH runs per patch.
    std::size_t runLen = 0;      ///< kernelW bytes per run.
    /** inC * planeRows * rowBytes when staged, else 0. */
    std::size_t stagingBytes = 0;
};

/** The elided addressing shape of @p layer (conv only). */
ElisionLayout elision_layout(const Layer &layer);

/**
 * Stage the whole zero-padded plane once per image: for each channel,
 * planeRows rows of rowBytes with the padW columns and padH rows as
 * literal zero bytes around the quantized input rows. Only meaningful
 * for staged layouts.
 */
void stage_plane_i8(const Layer &layer, const std::int8_t *qin,
                    std::int8_t *staging);

/**
 * Fill the per-run byte offsets of the (oh, ow) = (0, 0) patch into
 * the addressed plane: offsets[i = (c, r)] = (c * planeRows + r) *
 * rowBytes. Valid for staged and in-place layouts alike (rowBytes and
 * planeRows differ); output position (oh, ow) adds the uniform
 * oh * strideH * rowBytes + ow * strideW.
 */
void elided_offsets(const Layer &layer, std::int32_t *offsets);

/**
 * Reshape conv weights [outC][inC][kH][kW] into the [inC*kH*kW][outC]
 * matrix used by the matmul formulation.
 */
FloatTensor weights_to_matrix(const Layer &layer,
                              const std::vector<float> &weights);

/**
 * Ratio of unrolled input storage to the original feature map
 * (>= 1; the wasted-copies factor the paper mentions in Fig. 9(c)).
 */
double storage_expansion(const Layer &layer);

/** Bytes of the unrolled input matrix at the layer's precision. */
std::uint64_t unrolled_input_bytes(const Layer &layer);

} // namespace bfree::dnn

#endif // BFREE_DNN_IM2COL_HH
