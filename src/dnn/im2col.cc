#include "im2col.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace bfree::dnn {

namespace {

/**
 * The clipped column window of one kernel row at horizontal output
 * position @p ow: taps [s0, s1) land inside the source row, the rest
 * is padding. iw0 is the (possibly negative) source column of tap 0.
 */
struct RowRun
{
    int iw0;
    int s0;
    int s1;
};

RowRun
row_run(const Layer &layer, unsigned ow)
{
    RowRun rr;
    rr.iw0 = static_cast<int>(ow * layer.strideW)
             - static_cast<int>(layer.padW);
    const int kw = static_cast<int>(layer.kernelW);
    const int inw = static_cast<int>(layer.input.w);
    rr.s0 = std::clamp(-rr.iw0, 0, kw);
    rr.s1 = std::clamp(inw - rr.iw0, rr.s0, kw);
    return rr;
}

} // namespace

FloatTensor
im2col(const Layer &layer, const FloatTensor &input)
{
    if (layer.kind != LayerKind::Conv)
        bfree_panic("im2col requires a convolution layer");

    const FeatureShape out = layer.outputShape();
    const std::size_t rows = std::size_t(out.h) * out.w;
    const std::size_t cols =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t kW = layer.kernelW;

    // Each (channel, kernel-row) of a patch is one contiguous span of
    // the source row (plus zero padding at the clipped edges), so the
    // unroll is row-run copies, not a per-element index walk. An
    // all-bits-zero float is 0.0f, so the pad fill can be memset.
    FloatTensor matrix({rows, cols});
    const float *in = input.data();
    float *dst = matrix.data();
    for (unsigned oh = 0; oh < out.h; ++oh) {
        for (unsigned ow = 0; ow < out.w; ++ow) {
            const RowRun rr = row_run(layer, ow);
            for (unsigned c = 0; c < layer.input.c; ++c) {
                const float *plane = in + c * inHW;
                for (unsigned r = 0; r < layer.kernelH; ++r, dst += kW) {
                    const int ih =
                        static_cast<int>(oh * layer.strideH + r)
                        - static_cast<int>(layer.padH);
                    if (ih < 0
                        || ih >= static_cast<int>(layer.input.h)) {
                        std::memset(dst, 0, kW * sizeof(float));
                        continue;
                    }
                    if (rr.s0 > 0)
                        std::memset(dst, 0, rr.s0 * sizeof(float));
                    if (rr.s1 > rr.s0)
                        std::memcpy(dst + rr.s0,
                                    plane + std::size_t(ih) * inW
                                        + rr.iw0 + rr.s0,
                                    (rr.s1 - rr.s0) * sizeof(float));
                    if (static_cast<int>(kW) > rr.s1)
                        std::memset(dst + rr.s1, 0,
                                    (kW - rr.s1) * sizeof(float));
                }
            }
        }
    }
    return matrix;
}

void
im2col_patch_i8(const Layer &layer, const std::int8_t *qin, unsigned oh,
                unsigned ow, std::int8_t *patch)
{
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t kW = layer.kernelW;
    const RowRun rr = row_run(layer, ow);

    for (unsigned c = 0; c < layer.input.c; ++c) {
        const std::int8_t *plane = qin + c * inHW;
        for (unsigned r = 0; r < layer.kernelH; ++r, patch += kW) {
            const int ih = static_cast<int>(oh * layer.strideH + r)
                           - static_cast<int>(layer.padH);
            if (ih < 0 || ih >= static_cast<int>(layer.input.h)) {
                std::memset(patch, 0, kW);
                continue;
            }
            if (rr.s0 > 0)
                std::memset(patch, 0, rr.s0);
            if (rr.s1 > rr.s0)
                std::memcpy(patch + rr.s0,
                            plane + std::size_t(ih) * inW + rr.iw0
                                + rr.s0,
                            rr.s1 - rr.s0);
            if (static_cast<int>(kW) > rr.s1)
                std::memset(patch + rr.s1, 0, kW - rr.s1);
        }
    }
}

FloatTensor
weights_to_matrix(const Layer &layer, const std::vector<float> &weights)
{
    const std::size_t cols = layer.outChannels;
    const std::size_t rows =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    if (weights.size() != rows * cols)
        bfree_panic("weights_to_matrix: weight count mismatch");

    FloatTensor matrix({rows, cols});
    for (unsigned k = 0; k < layer.outChannels; ++k)
        for (std::size_t r = 0; r < rows; ++r)
            matrix.at(r, k) = weights[std::size_t(k) * rows + r];
    return matrix;
}

double
storage_expansion(const Layer &layer)
{
    if (layer.kind != LayerKind::Conv)
        return 1.0;
    const FeatureShape out = layer.outputShape();
    const double unrolled = static_cast<double>(out.h) * out.w
                            * layer.input.c * layer.kernelH
                            * layer.kernelW;
    return unrolled / static_cast<double>(layer.input.elements());
}

std::uint64_t
unrolled_input_bytes(const Layer &layer)
{
    const FeatureShape out = layer.outputShape();
    return std::uint64_t(out.h) * out.w * layer.input.c * layer.kernelH
           * layer.kernelW * (layer.precisionBits <= 8 ? 1 : 2);
}

} // namespace bfree::dnn
