#include "im2col.hh"

#include "sim/logging.hh"

namespace bfree::dnn {

FloatTensor
im2col(const Layer &layer, const FloatTensor &input)
{
    if (layer.kind != LayerKind::Conv)
        bfree_panic("im2col requires a convolution layer");

    const FeatureShape out = layer.outputShape();
    const std::size_t rows = std::size_t(out.h) * out.w;
    const std::size_t cols =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;

    FloatTensor matrix({rows, cols});
    for (unsigned oh = 0; oh < out.h; ++oh) {
        for (unsigned ow = 0; ow < out.w; ++ow) {
            const std::size_t row = std::size_t(oh) * out.w + ow;
            std::size_t col = 0;
            for (unsigned c = 0; c < layer.input.c; ++c) {
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s, ++col) {
                        const int ih =
                            static_cast<int>(oh * layer.strideH + r)
                            - static_cast<int>(layer.padH);
                        const int iw =
                            static_cast<int>(ow * layer.strideW + s)
                            - static_cast<int>(layer.padW);
                        if (ih < 0 || iw < 0
                            || ih >= static_cast<int>(layer.input.h)
                            || iw >= static_cast<int>(layer.input.w)) {
                            matrix.at(row, col) = 0.0f;
                        } else {
                            matrix.at(row, col) = input.at(c, ih, iw);
                        }
                    }
                }
            }
        }
    }
    return matrix;
}

FloatTensor
weights_to_matrix(const Layer &layer, const std::vector<float> &weights)
{
    const std::size_t cols = layer.outChannels;
    const std::size_t rows =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    if (weights.size() != rows * cols)
        bfree_panic("weights_to_matrix: weight count mismatch");

    FloatTensor matrix({rows, cols});
    for (unsigned k = 0; k < layer.outChannels; ++k)
        for (std::size_t r = 0; r < rows; ++r)
            matrix.at(r, k) = weights[std::size_t(k) * rows + r];
    return matrix;
}

double
storage_expansion(const Layer &layer)
{
    if (layer.kind != LayerKind::Conv)
        return 1.0;
    const FeatureShape out = layer.outputShape();
    const double unrolled = static_cast<double>(out.h) * out.w
                            * layer.input.c * layer.kernelH
                            * layer.kernelW;
    return unrolled / static_cast<double>(layer.input.elements());
}

std::uint64_t
unrolled_input_bytes(const Layer &layer)
{
    const FeatureShape out = layer.outputShape();
    return std::uint64_t(out.h) * out.w * layer.input.c * layer.kernelH
           * layer.kernelW * (layer.precisionBits <= 8 ? 1 : 2);
}

} // namespace bfree::dnn
