#include "im2col.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "sim/logging.hh"

namespace bfree::dnn {

namespace {

/**
 * The clipped column window of one kernel row at horizontal output
 * position @p ow: taps [s0, s1) land inside the source row, the rest
 * is padding. iw0 is the (possibly negative) source column of tap 0.
 */
struct RowRun
{
    int iw0;
    int s0;
    int s1;
};

RowRun
row_run(const Layer &layer, unsigned ow)
{
    RowRun rr;
    rr.iw0 = static_cast<int>(ow * layer.strideW)
             - static_cast<int>(layer.padW);
    const int kw = static_cast<int>(layer.kernelW);
    const int inw = static_cast<int>(layer.input.w);
    rr.s0 = std::clamp(-rr.iw0, 0, kw);
    rr.s1 = std::clamp(inw - rr.iw0, rr.s0, kw);
    return rr;
}

} // namespace

FloatTensor
im2col(const Layer &layer, const FloatTensor &input)
{
    if (layer.kind != LayerKind::Conv)
        bfree_panic("im2col requires a convolution layer");

    const FeatureShape out = layer.outputShape();
    const std::size_t rows = std::size_t(out.h) * out.w;
    const std::size_t cols =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t kW = layer.kernelW;

    // Each (channel, kernel-row) of a patch is one contiguous span of
    // the source row (plus zero padding at the clipped edges), so the
    // unroll is row-run copies, not a per-element index walk. An
    // all-bits-zero float is 0.0f, so the pad fill can be memset.
    FloatTensor matrix({rows, cols});
    const float *in = input.data();
    float *dst = matrix.data();
    for (unsigned oh = 0; oh < out.h; ++oh) {
        for (unsigned ow = 0; ow < out.w; ++ow) {
            const RowRun rr = row_run(layer, ow);
            for (unsigned c = 0; c < layer.input.c; ++c) {
                const float *plane = in + c * inHW;
                for (unsigned r = 0; r < layer.kernelH; ++r, dst += kW) {
                    const int ih =
                        static_cast<int>(oh * layer.strideH + r)
                        - static_cast<int>(layer.padH);
                    if (ih < 0
                        || ih >= static_cast<int>(layer.input.h)) {
                        std::memset(dst, 0, kW * sizeof(float));
                        continue;
                    }
                    if (rr.s0 > 0)
                        std::memset(dst, 0, rr.s0 * sizeof(float));
                    if (rr.s1 > rr.s0)
                        std::memcpy(dst + rr.s0,
                                    plane + std::size_t(ih) * inW
                                        + rr.iw0 + rr.s0,
                                    (rr.s1 - rr.s0) * sizeof(float));
                    if (static_cast<int>(kW) > rr.s1)
                        std::memset(dst + rr.s1, 0,
                                    (kW - rr.s1) * sizeof(float));
                }
            }
        }
    }
    return matrix;
}

void
im2col_patch_i8(const Layer &layer, const std::int8_t *qin, unsigned oh,
                unsigned ow, std::int8_t *patch)
{
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t kW = layer.kernelW;
    const RowRun rr = row_run(layer, ow);

    for (unsigned c = 0; c < layer.input.c; ++c) {
        const std::int8_t *plane = qin + c * inHW;
        for (unsigned r = 0; r < layer.kernelH; ++r, patch += kW) {
            const int ih = static_cast<int>(oh * layer.strideH + r)
                           - static_cast<int>(layer.padH);
            if (ih < 0 || ih >= static_cast<int>(layer.input.h)) {
                std::memset(patch, 0, kW);
                continue;
            }
            if (rr.s0 > 0)
                std::memset(patch, 0, rr.s0);
            if (rr.s1 > rr.s0)
                std::memcpy(patch + rr.s0,
                            plane + std::size_t(ih) * inW + rr.iw0
                                + rr.s0,
                            rr.s1 - rr.s0);
            if (static_cast<int>(kW) > rr.s1)
                std::memset(patch + rr.s1, 0, kW - rr.s1);
        }
    }
}

// ---------------------------------------------------------------------
// Front-end mode selection
// ---------------------------------------------------------------------

namespace {

/** The one resolved override; std::nullopt until first use, a held
 *  std::nullopt value meaning "no override, use the policy". */
std::optional<std::optional<FrontendMode>> resolvedFrontend;

std::optional<FrontendMode>
resolve_frontend_from_environment()
{
    const char *mode = std::getenv("BFREE_FORCE_FRONTEND");
    if (mode == nullptr || mode[0] == '\0')
        return std::nullopt;
    if (!std::strcmp(mode, "legacy"))
        return FrontendMode::Legacy;
    if (!std::strcmp(mode, "fused"))
        return FrontendMode::Fused;
    if (!std::strcmp(mode, "elided"))
        return FrontendMode::Elided;
    bfree_fatal("BFREE_FORCE_FRONTEND=", mode, " is not a known "
                "front-end mode (expected legacy, fused or elided)");
}

} // namespace

const char *
frontend_mode_name(FrontendMode mode)
{
    switch (mode) {
      case FrontendMode::Legacy:
        return "legacy";
      case FrontendMode::Fused:
        return "fused";
      case FrontendMode::Elided:
        return "elided";
    }
    return "unknown";
}

FrontendMode
choose_frontend(const Layer &layer, unsigned bits)
{
    if (layer.kind != LayerKind::Conv || bits > 8)
        return FrontendMode::Legacy;
    // 1x1 convolutions are pure implicit GEMM: the patch is one byte
    // per channel, gathered from the plane with a strided view. The
    // plane quantization runs vectorized once; fusing would quantize
    // taps one at a time through the scalar core.
    if (layer.kernelW == 1 && layer.kernelH == 1)
        return FrontendMode::Elided;
    // Disjoint receptive fields (stride >= kernel in both axes): each
    // tap lands in exactly one patch, so quantizing straight into the
    // patch does the plane's work with no duplication — and the plane
    // allocation disappears.
    if (layer.strideW >= layer.kernelW && layer.strideH >= layer.kernelH)
        return FrontendMode::Fused;
    // Overlapping windows: the plane quantization is amortized across
    // windows; kill the per-run memcpy overhead with the strided view.
    return FrontendMode::Elided;
}

FrontendMode
resolve_frontend(const Layer &layer, unsigned bits)
{
    // Non-conv and wide-precision layers have no int8 patch pipeline
    // to reroute: the override does not apply there.
    if (layer.kind != LayerKind::Conv || bits > 8)
        return FrontendMode::Legacy;
    if (!resolvedFrontend)
        resolvedFrontend = resolve_frontend_from_environment();
    if (*resolvedFrontend)
        return **resolvedFrontend;
    return choose_frontend(layer, bits);
}

void
force_frontend(FrontendMode mode)
{
    resolvedFrontend = std::optional<FrontendMode>(mode);
}

void
reset_frontend()
{
    resolvedFrontend = resolve_frontend_from_environment();
}

void
im2col_quantize_patch(const Layer &layer, const SymQuant &sq,
                      const float *in, unsigned oh, unsigned ow,
                      std::int8_t *patch)
{
    if (sq.limit > 127)
        bfree_panic("im2col_quantize_patch: limit ", sq.limit,
                    " exceeds the int8 domain");
    const QuantizeSpanFn quantize = quantize_span_fn();
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t kW = layer.kernelW;
    const RowRun rr = row_run(layer, ow);

    // The row-run structure of im2col_patch_i8, with the source runs
    // read from the fp32 plane and pushed through the per-ISA
    // quantize core on the way into the patch. Padding still fills
    // literal zeros: a padded tap quantizes to 0 for every scale.
    for (unsigned c = 0; c < layer.input.c; ++c) {
        const float *plane = in + c * inHW;
        for (unsigned r = 0; r < layer.kernelH; ++r, patch += kW) {
            const int ih = static_cast<int>(oh * layer.strideH + r)
                           - static_cast<int>(layer.padH);
            if (ih < 0 || ih >= static_cast<int>(layer.input.h)) {
                std::memset(patch, 0, kW);
                continue;
            }
            if (rr.s0 > 0)
                std::memset(patch, 0, rr.s0);
            if (rr.s1 > rr.s0)
                quantize(sq,
                         plane + std::size_t(ih) * inW + rr.iw0 + rr.s0,
                         rr.s1 - rr.s0, patch + rr.s0);
            if (static_cast<int>(kW) > rr.s1)
                std::memset(patch + rr.s1, 0, kW - rr.s1);
        }
    }
}

ElisionLayout
elision_layout(const Layer &layer)
{
    if (layer.kind != LayerKind::Conv)
        bfree_panic("elision_layout requires a convolution layer");
    ElisionLayout el;
    el.staged = layer.padW > 0 || layer.padH > 0;
    el.rowBytes = std::size_t(layer.input.w) + 2 * layer.padW;
    el.planeRows = std::size_t(layer.input.h) + 2 * layer.padH;
    el.nRuns = std::size_t(layer.input.c) * layer.kernelH;
    el.runLen = layer.kernelW;
    el.stagingBytes = el.staged ? std::size_t(layer.input.c)
                                      * el.planeRows * el.rowBytes
                                : 0;
    return el;
}

void
stage_plane_i8(const Layer &layer, const std::int8_t *qin,
               std::int8_t *staging)
{
    const std::size_t inW = layer.input.w;
    const std::size_t inH = layer.input.h;
    const std::size_t inHW = inH * inW;
    const std::size_t padW = layer.padW;
    const std::size_t padH = layer.padH;
    const std::size_t rowBytes = inW + 2 * padW;
    const std::size_t planeRows = inH + 2 * padH;

    // The whole zero-padded plane, once per image: inC * planeRows
    // long memcpy/memset rows, amortized across every output position
    // of the image.
    for (unsigned c = 0; c < layer.input.c; ++c) {
        const std::int8_t *plane = qin + c * inHW;
        for (std::size_t row = 0; row < planeRows;
             ++row, staging += rowBytes) {
            if (row < padH || row >= padH + inH) {
                std::memset(staging, 0, rowBytes);
                continue;
            }
            if (padW > 0) {
                std::memset(staging, 0, padW);
                std::memset(staging + padW + inW, 0, padW);
            }
            std::memcpy(staging + padW, plane + (row - padH) * inW,
                        inW);
        }
    }
}

void
elided_offsets(const Layer &layer, std::int32_t *offsets)
{
    const ElisionLayout el = elision_layout(layer);

    // Run i = (c, r) of the (0, 0) patch starts at addressed-plane
    // byte (c * planeRows + r) * rowBytes; every other output
    // position is a uniform base shift on top.
    std::size_t i = 0;
    for (unsigned c = 0; c < layer.input.c; ++c)
        for (unsigned r = 0; r < layer.kernelH; ++r, ++i)
            offsets[i] = static_cast<std::int32_t>(
                (c * el.planeRows + r) * el.rowBytes);
}

FloatTensor
weights_to_matrix(const Layer &layer, const std::vector<float> &weights)
{
    const std::size_t cols = layer.outChannels;
    const std::size_t rows =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    if (weights.size() != rows * cols)
        bfree_panic("weights_to_matrix: weight count mismatch");

    FloatTensor matrix({rows, cols});
    for (unsigned k = 0; k < layer.outChannels; ++k)
        for (std::size_t r = 0; r < rows; ++r)
            matrix.at(r, k) = weights[std::size_t(k) * rows + r];
    return matrix;
}

double
storage_expansion(const Layer &layer)
{
    if (layer.kind != LayerKind::Conv)
        return 1.0;
    const FeatureShape out = layer.outputShape();
    const double unrolled = static_cast<double>(out.h) * out.w
                            * layer.input.c * layer.kernelH
                            * layer.kernelW;
    return unrolled / static_cast<double>(layer.input.elements());
}

std::uint64_t
unrolled_input_bytes(const Layer &layer)
{
    const FeatureShape out = layer.outputShape();
    return std::uint64_t(out.h) * out.w * layer.input.c * layer.kernelH
           * layer.kernelW * (layer.precisionBits <= 8 ? 1 : 2);
}

} // namespace bfree::dnn
