/**
 * @file
 * Builders for the evaluated networks (Table II):
 *
 *   Network       Layers  Params  Mults    Dataset
 *   Inception-v3  48      24M     4.7G     ImageNet
 *   VGG-16        16      138M    15.5G    ImageNet
 *   LSTM          1       4.3M    4.35M    TIMIT
 *   BERT-base     12      87M     11.1G    MRPC
 *   BERT-large    24      324M    39.5G    MRPC
 *
 * The builders reconstruct each architecture from its publication;
 * tests assert the derived parameter/MAC totals land on the paper's
 * numbers. A small test CNN is included for functional end-to-end
 * validation at laptop scale.
 */

#ifndef BFREE_DNN_MODEL_ZOO_HH
#define BFREE_DNN_MODEL_ZOO_HH

#include "network.hh"

namespace bfree::dnn {

/** VGG-16 at 224x224x3 (Simonyan & Zisserman). */
Network make_vgg16();

/** Inception-v3 at 299x299x3 (Szegedy et al.). */
Network make_inception_v3();

/**
 * The paper's LSTM: one cell with 1024 hidden units on TIMIT acoustic
 * features, run over a 300-step sequence.
 */
Network make_lstm(unsigned input_size = 39, unsigned hidden_size = 1024,
                  unsigned timesteps = 300);

/** BERT-base encoder stack: 12 layers, d=768, 12 heads, seq 128. */
Network make_bert_base(unsigned seq_len = 128);

/** BERT-large encoder stack: 24 layers, d=1024, 16 heads, seq 128. */
Network make_bert_large(unsigned seq_len = 128);

/**
 * A small quantization-friendly CNN (8x8 input, two conv layers, one
 * FC) used by the functional end-to-end tests and the quickstart.
 */
Network make_tiny_cnn();

/** One BERT encoder block's layers appended to @p net. */
void append_bert_encoder(Network &net, unsigned layer_index,
                         unsigned seq_len, unsigned d_model,
                         unsigned num_heads);

} // namespace bfree::dnn

#endif // BFREE_DNN_MODEL_ZOO_HH
