#include "layer.hh"

#include "sim/logging.hh"

namespace bfree::dnn {

const char *
layer_kind_name(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:
        return "conv";
      case LayerKind::Fc:
        return "fc";
      case LayerKind::MaxPool:
        return "maxpool";
      case LayerKind::AvgPool:
        return "avgpool";
      case LayerKind::Relu:
        return "relu";
      case LayerKind::Sigmoid:
        return "sigmoid";
      case LayerKind::Tanh:
        return "tanh";
      case LayerKind::Softmax:
        return "softmax";
      case LayerKind::LstmCell:
        return "lstm";
      case LayerKind::Attention:
        return "attention";
      case LayerKind::LayerNorm:
        return "layernorm";
      case LayerKind::EwAdd:
        return "ewadd";
    }
    return "?";
}

namespace {

unsigned
conv_out_dim(unsigned in, unsigned kernel, unsigned stride, unsigned pad)
{
    const unsigned padded = in + 2 * pad;
    if (padded < kernel)
        bfree_fatal("kernel ", kernel, " larger than padded input ",
                    padded);
    return (padded - kernel) / stride + 1;
}

} // namespace

FeatureShape
Layer::outputShape() const
{
    switch (kind) {
      case LayerKind::Conv:
        return {outChannels,
                conv_out_dim(input.h, kernelH, strideH, padH),
                conv_out_dim(input.w, kernelW, strideW, padW)};
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        return {input.c, conv_out_dim(input.h, kernelH, strideH, padH),
                conv_out_dim(input.w, kernelW, strideW, padW)};
      case LayerKind::Fc:
        return {outFeatures, 1, 1};
      case LayerKind::LstmCell:
        return {lstmHidden, 1, 1};
      case LayerKind::Attention:
      case LayerKind::LayerNorm:
        return {dModel, seqLen, 1};
      case LayerKind::Relu:
      case LayerKind::Sigmoid:
      case LayerKind::Tanh:
      case LayerKind::Softmax:
      case LayerKind::EwAdd:
        return input;
    }
    return input;
}

std::uint64_t
Layer::macs() const
{
    switch (kind) {
      case LayerKind::Conv: {
        const FeatureShape out = outputShape();
        return std::uint64_t(out.h) * out.w * out.c * input.c * kernelH
               * kernelW;
      }
      case LayerKind::Fc:
        return std::uint64_t(fcRows) * inFeatures * outFeatures;
      case LayerKind::LstmCell:
        // Four gates, each (input + recurrent) matvec.
        return 4ULL * (std::uint64_t(lstmInput) + lstmHidden)
               * lstmHidden;
      case LayerKind::Attention: {
        // Q, K, V and output projections plus the two seq x seq
        // score/context products.
        const std::uint64_t d = dModel;
        const std::uint64_t s = seqLen;
        return 4 * s * d * d + 2 * s * s * d;
      }
      default:
        return 0;
    }
}

std::uint64_t
Layer::params() const
{
    switch (kind) {
      case LayerKind::Conv:
        return std::uint64_t(outChannels) * input.c * kernelH * kernelW
               + outChannels; // + bias
      case LayerKind::Fc:
        return std::uint64_t(inFeatures) * outFeatures + outFeatures;
      case LayerKind::LstmCell:
        return 4ULL
                   * ((std::uint64_t(lstmInput) + lstmHidden) * lstmHidden)
               + 4ULL * lstmHidden;
      case LayerKind::Attention:
        return 4ULL * dModel * dModel + 4ULL * dModel;
      case LayerKind::LayerNorm:
        return 2ULL * dModel;
      default:
        return 0;
    }
}

std::uint64_t
Layer::weightBytes() const
{
    // 4-bit weights pack two to a byte.
    return params() * precisionBits / 8;
}

std::uint64_t
Layer::inputBytes() const
{
    switch (kind) {
      case LayerKind::Fc:
        return std::uint64_t(fcRows) * inFeatures;
      case LayerKind::LstmCell:
        return lstmInput + lstmHidden;
      case LayerKind::Attention:
      case LayerKind::LayerNorm:
        return std::uint64_t(seqLen) * dModel;
      default:
        return input.elements();
    }
}

std::uint64_t
Layer::outputBytes() const
{
    if (kind == LayerKind::Fc)
        return std::uint64_t(fcRows) * outFeatures;
    return outputShape().elements();
}

std::uint64_t
Layer::specialOps() const
{
    switch (kind) {
      case LayerKind::Relu:
      case LayerKind::Sigmoid:
      case LayerKind::Tanh:
        return input.elements();
      case LayerKind::Softmax:
        return 2 * input.elements(); // exp + divide per element
      case LayerKind::MaxPool:
      case LayerKind::AvgPool: {
        const FeatureShape out = outputShape();
        return out.elements() * kernelH * kernelW;
      }
      case LayerKind::LstmCell:
        return 5ULL * lstmHidden; // 3 sigmoid + 2 tanh evaluations
      case LayerKind::Attention:
        return 2ULL * seqLen * seqLen; // softmax over score rows
      case LayerKind::LayerNorm:
        return 3ULL * std::uint64_t(seqLen) * dModel;
      case LayerKind::EwAdd:
        return input.elements();
      default:
        return 0;
    }
}

bool
Layer::isComputeLayer() const
{
    return macs() > 0;
}

// ----------------------------------------------------------------------
// Factories
// ----------------------------------------------------------------------
Layer
make_conv(std::string name, FeatureShape input, unsigned out_c,
          unsigned kernel, unsigned stride, unsigned pad)
{
    return make_conv2(std::move(name), input, out_c, kernel, kernel,
                      stride, pad, pad);
}

Layer
make_conv2(std::string name, FeatureShape input, unsigned out_c,
           unsigned kernel_h, unsigned kernel_w, unsigned stride,
           unsigned pad_h, unsigned pad_w)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.name = std::move(name);
    l.input = input;
    l.outChannels = out_c;
    l.kernelH = kernel_h;
    l.kernelW = kernel_w;
    l.strideH = stride;
    l.strideW = stride;
    l.padH = pad_h;
    l.padW = pad_w;
    return l;
}

Layer
make_fc(std::string name, unsigned in_features, unsigned out_features)
{
    Layer l;
    l.kind = LayerKind::Fc;
    l.name = std::move(name);
    l.input = {in_features, 1, 1};
    l.inFeatures = in_features;
    l.outFeatures = out_features;
    return l;
}

Layer
make_pool(std::string name, LayerKind kind, FeatureShape input,
          unsigned kernel, unsigned stride, unsigned pad)
{
    if (kind != LayerKind::MaxPool && kind != LayerKind::AvgPool)
        bfree_fatal("make_pool requires a pooling kind");
    Layer l;
    l.kind = kind;
    l.name = std::move(name);
    l.input = input;
    l.kernelH = kernel;
    l.kernelW = kernel;
    l.strideH = stride;
    l.strideW = stride;
    l.padH = pad;
    l.padW = pad;
    return l;
}

Layer
make_activation(std::string name, LayerKind kind, FeatureShape input)
{
    if (kind != LayerKind::Relu && kind != LayerKind::Sigmoid
        && kind != LayerKind::Tanh && kind != LayerKind::Softmax)
        bfree_fatal("make_activation requires an activation kind");
    Layer l;
    l.kind = kind;
    l.name = std::move(name);
    l.input = input;
    return l;
}

Layer
make_lstm_cell(std::string name, unsigned input_size,
               unsigned hidden_size)
{
    Layer l;
    l.kind = LayerKind::LstmCell;
    l.name = std::move(name);
    l.input = {input_size + hidden_size, 1, 1};
    l.lstmInput = input_size;
    l.lstmHidden = hidden_size;
    return l;
}

Layer
make_attention(std::string name, unsigned seq_len, unsigned d_model,
               unsigned num_heads)
{
    Layer l;
    l.kind = LayerKind::Attention;
    l.name = std::move(name);
    l.input = {d_model, seq_len, 1};
    l.seqLen = seq_len;
    l.dModel = d_model;
    l.numHeads = num_heads;
    return l;
}

Layer
make_layer_norm(std::string name, unsigned seq_len, unsigned d_model)
{
    Layer l;
    l.kind = LayerKind::LayerNorm;
    l.name = std::move(name);
    l.input = {d_model, seq_len, 1};
    l.seqLen = seq_len;
    l.dModel = d_model;
    return l;
}

Layer
make_ew_add(std::string name, FeatureShape input)
{
    Layer l;
    l.kind = LayerKind::EwAdd;
    l.name = std::move(name);
    l.input = input;
    return l;
}

} // namespace bfree::dnn
