/**
 * @file
 * Tensor quantization and per-layer precision configuration.
 *
 * The paper executes networks at 8-bit, 4-bit, or layer-wise mixed
 * precision (learned with the competitive-collaborative method of Khan
 * et al.; Fig. 14 shows ~50% execution-time reduction on VGG-16 when
 * most layers drop to 4-bit with ~1% accuracy loss). This module
 * quantizes tensors for the functional path and builds the precision
 * assignments the timing model consumes.
 */

#ifndef BFREE_DNN_QUANTIZE_HH
#define BFREE_DNN_QUANTIZE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "lut/fixed_point.hh"
#include "network.hh"
#include "tensor.hh"

namespace bfree::dnn {

/**
 * Symmetric per-tensor quantizer: round-to-nearest onto
 * [-limit, limit] with a data-derived scale. The functional executor
 * and the detailed cache driver both quantize through this exact
 * struct, which is what makes their float outputs bit-identical (same
 * rounding, same clamp, same dequant arithmetic).
 */
struct SymQuant
{
    double scale = 1.0;
    std::int32_t limit = 127;

    std::int32_t
    q(float v) const
    {
        const auto r = static_cast<std::int64_t>(
            std::lround(v / scale));
        return static_cast<std::int32_t>(
            std::clamp<std::int64_t>(r, -limit, limit));
    }
};

/** Pick the symmetric quantizer for @p n floats at @p bits precision. */
SymQuant choose_sym(const float *data, std::size_t n, unsigned bits);

/**
 * Quantize @p n floats through @p sq into int8, the vectorized span
 * form of calling SymQuant::q element by element. Dispatches on the
 * active SIMD level (sim/cpuid) and is byte-identical to the scalar
 * loop at every level: the SIMD variants reproduce lround's
 * round-half-away-from-zero in double precision exactly (truncate,
 * then step by the sign where |fraction| >= 0.5 — note that adding
 * 0.5 before truncating would double-round near ties). Source and
 * destination may be arbitrarily aligned. Requires limit <= 127 (the
 * int8 freeze domain).
 */
void quantize_span(const SymQuant &sq, const float *src, std::size_t n,
                   std::int8_t *dst);

/** The signature every per-ISA quantize-span core shares. */
using QuantizeSpanFn = void (*)(const SymQuant &sq, const float *src,
                                std::size_t n, std::int8_t *dst);

/**
 * The quantize-span core the active SIMD level resolves to — the same
 * function quantize_span would call, without the per-call dispatch
 * switch or the limit check. Fused kernels that quantize many short
 * runs per patch (im2col_quantize_patch) resolve this once per layer
 * and call the core per run; the caller owns the limit <= 127 check.
 */
QuantizeSpanFn quantize_span_fn();

/**
 * A weight tensor frozen at compile time: the chosen symmetric scale
 * plus every element pushed through SymQuant::q once, up front. q() is
 * a pure function, so consuming the frozen values is bit-identical to
 * re-quantizing at every use — that identity is what lets the
 * execution-plan layer hoist all weight quantization out of the
 * steady-state path. Narrow precisions (<= 8 bits) land in q8; wider
 * ones in q32 (the layouts the batched BCE kernels consume).
 */
struct QuantizedWeights
{
    SymQuant scale;
    unsigned bits = 8;
    std::vector<std::int8_t> q8;    ///< bits <= 8 (int8 span kernels).
    std::vector<std::int32_t> q32;  ///< bits > 8 (scalar datapath).

    bool narrow() const { return bits <= 8; }
    std::size_t count() const { return narrow() ? q8.size() : q32.size(); }
    std::size_t frozenBytes() const
    {
        return narrow() ? q8.size() : q32.size() * sizeof(std::int32_t);
    }
};

/**
 * Freeze @p n weights in storage order. The scale is chosen by
 * choose_sym over exactly this span (order-independent: it only reads
 * the peak magnitude).
 */
QuantizedWeights freeze_weights(const float *w, std::size_t n,
                                unsigned bits);

/**
 * Freeze a row-major [k][n] matrix into the transposed-B layout the
 * blocked matmul tile consumes: element (j, p) of the result is
 * q(w[p * n + j]), rows contiguous per output column. The scale is
 * chosen over the same k * n floats as the in-order variant.
 */
QuantizedWeights freeze_weights_transposed(const float *w, std::size_t k,
                                           std::size_t n, unsigned bits);

/** A tensor together with its quantization parameters. */
struct QuantizedTensor
{
    Int8Tensor values{};
    lut::QuantParams qp;
};

/** Quantize a float tensor to @p bits with range taken from the data. */
QuantizedTensor quantize_tensor(const FloatTensor &input, unsigned bits);

/** Quantize a flat weight vector. */
std::vector<std::int8_t> quantize_weights(const std::vector<float> &w,
                                          lut::QuantParams &qp,
                                          unsigned bits);

/** Dequantize back to float. */
FloatTensor dequantize_tensor(const QuantizedTensor &input);

/**
 * Apply the paper's mixed-precision policy to @p net: layers stay
 * 8-bit when they are range-sensitive (first/last compute layers),
 * everything else drops to 4-bit.
 */
void apply_mixed_precision(Network &net);

/** Fraction of MACs executed at 4-bit under the current assignment. */
double fraction_macs_at_4bit(const Network &net);

} // namespace bfree::dnn

#endif // BFREE_DNN_QUANTIZE_HH
