#include "address.hh"

#include "sim/logging.hh"

namespace bfree::mem {

Location
AddressMap::decode(std::uint64_t addr) const
{
    if (addr >= capacity())
        bfree_panic("address ", addr, " exceeds cache capacity ",
                    capacity());

    Location loc;
    loc.byte = static_cast<unsigned>(addr % geom.rowBytes());
    addr /= geom.rowBytes();
    loc.row = static_cast<unsigned>(addr % geom.rowsPerPartition);
    addr /= geom.rowsPerPartition;
    loc.partition =
        static_cast<unsigned>(addr % geom.partitionsPerSubarray);
    addr /= geom.partitionsPerSubarray;
    loc.subarray =
        static_cast<unsigned>(addr % geom.subarraysPerSubBank);
    addr /= geom.subarraysPerSubBank;
    loc.subBank = static_cast<unsigned>(addr % geom.subBanksPerBank);
    addr /= geom.subBanksPerBank;
    loc.bank = static_cast<unsigned>(addr % geom.banksPerSlice);
    addr /= geom.banksPerSlice;
    loc.slice = static_cast<unsigned>(addr);
    return loc;
}

std::uint64_t
AddressMap::encode(const Location &loc) const
{
    std::uint64_t addr = loc.slice;
    addr = addr * geom.banksPerSlice + loc.bank;
    addr = addr * geom.subBanksPerBank + loc.subBank;
    addr = addr * geom.subarraysPerSubBank + loc.subarray;
    addr = addr * geom.partitionsPerSubarray + loc.partition;
    addr = addr * geom.rowsPerPartition + loc.row;
    addr = addr * geom.rowBytes() + loc.byte;
    return addr;
}

unsigned
AddressMap::subarrayIndex(const Location &loc) const
{
    unsigned index = loc.slice;
    index = index * geom.banksPerSlice + loc.bank;
    index = index * geom.subBanksPerBank + loc.subBank;
    index = index * geom.subarraysPerSubBank + loc.subarray;
    return index;
}

} // namespace bfree::mem
