#include "subarray.hh"

#include <cstring>

#include "sim/logging.hh"

namespace bfree::mem {

Subarray::Subarray(const tech::CacheGeometry &geom,
                   const tech::TechParams &tech, EnergyAccount &energy)
    : geom(geom), tech(tech), energy(&energy),
      data(geom.subarrayBytes(), 0),
      lut(geom.lutBytesPerSubarray(), 0)
{}

void
Subarray::chargeAccesses(std::size_t offset, std::size_t len, bool is_read)
{
    const std::size_t row_bytes = geom.rowBytes();
    const std::size_t first_row = offset / row_bytes;
    const std::size_t last_row = (offset + len - 1) / row_bytes;
    const std::size_t rows = last_row - first_row + 1;

    energy->addPj(EnergyCategory::SubarrayAccess,
                  tech.subarrayAccessPj * static_cast<double>(rows));
    if (is_read)
        _stats.reads += rows;
    else
        _stats.writes += rows;
}

void
Subarray::read(std::size_t offset, std::uint8_t *out, std::size_t len)
{
    if (offset + len > data.size())
        bfree_panic("sub-array read [", offset, ", ", offset + len,
                    ") exceeds capacity ", data.size());
    std::memcpy(out, data.data() + offset, len);
    chargeAccesses(offset, len, true);
}

void
Subarray::write(std::size_t offset, const std::uint8_t *in, std::size_t len)
{
    if (offset + len > data.size())
        bfree_panic("sub-array write [", offset, ", ", offset + len,
                    ") exceeds capacity ", data.size());
    std::memcpy(data.data() + offset, in, len);
    chargeAccesses(offset, len, false);
}

std::uint8_t
Subarray::peek(std::size_t offset) const
{
    if (offset >= data.size())
        bfree_panic("sub-array peek at ", offset, " out of range");
    return data[offset];
}

void
Subarray::loadLut(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() > lut.size())
        bfree_fatal("LUT image of ", bytes.size(),
                    " bytes does not fit the ", lut.size(),
                    "-byte LUT region");
    std::copy(bytes.begin(), bytes.end(), lut.begin());
    ++_lutGeneration;

    // Configuration-phase loads drive the full bitline (writes are not
    // on the decoupled path).
    const std::size_t rows =
        (bytes.size() + geom.rowBytes() - 1) / geom.rowBytes();
    energy->addPj(EnergyCategory::SubarrayAccess,
                  tech.subarrayAccessPj * static_cast<double>(rows));
    _stats.lutWrites += rows;
}

std::uint8_t
Subarray::lutRead(std::size_t offset)
{
    if (offset >= lut.size())
        bfree_panic("LUT read at ", offset, " exceeds LUT region of ",
                    lut.size(), " bytes");
    if (_pimMode) {
        // lut_en = 1: local precharge, decoupled bitline.
        energy->addPj(EnergyCategory::LutAccess, tech.lutAccessPj());
    } else {
        // lut_en = 0: the row reads like any other data row.
        energy->addPj(EnergyCategory::SubarrayAccess,
                      tech.subarrayAccessPj);
    }
    ++_stats.lutReads;
    return lut[offset];
}

std::uint8_t
Subarray::lutPeek(std::size_t offset) const
{
    if (offset >= lut.size())
        bfree_panic("LUT read at ", offset, " exceeds LUT region of ",
                    lut.size(), " bytes");
    return lut[offset];
}

void
Subarray::scratchWrite(std::size_t offset, std::uint8_t value)
{
    if (offset >= lut.size())
        bfree_panic("scratch write at ", offset,
                    " exceeds the reduced-cost region of ", lut.size(),
                    " bytes");
    lut[offset] = value;
    ++_lutGeneration;
    energy->addPj(EnergyCategory::LutAccess, tech.lutAccessPj());
    ++_stats.lutWrites;
}

double
Subarray::accessLatencyNs() const
{
    return tech.subarrayPeriodNs() * tech.subarrayAccessCycles;
}

double
Subarray::lutLatencyNs() const
{
    return _pimMode ? tech.lutAccessNs() : accessLatencyNs();
}

} // namespace bfree::mem
