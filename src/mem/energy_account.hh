/**
 * @file
 * Energy bookkeeping shared by every timing model.
 *
 * All dynamic and static energy contributions are accumulated into named
 * categories so benches can print the paper's breakdowns directly
 * (e.g. Fig. 12(d): sub-array access + BCE dominate the cache energy
 * once DRAM is excluded).
 */

#ifndef BFREE_MEM_ENERGY_ACCOUNT_HH
#define BFREE_MEM_ENERGY_ACCOUNT_HH

#include <array>
#include <cstddef>
#include <string>

namespace bfree::mem {

/** Energy categories tracked across the model. */
enum class EnergyCategory : std::size_t
{
    DramTransfer,   ///< Main-memory data movement.
    SubarrayAccess, ///< Full-bitline sub-array reads/writes.
    LutAccess,      ///< Decoupled-bitline LUT-row reads/writes.
    BceCompute,     ///< BCE datapath (ROM MACs, adders, shifters).
    Interconnect,   ///< Slice H-tree traversals.
    Router,         ///< Systolic router hops.
    Controller,     ///< Cache/slice controller activity.
    Leakage,        ///< Static energy integrated over runtime.
    NumCategories,
};

/** Number of categories (for iteration). */
constexpr std::size_t num_energy_categories =
    static_cast<std::size_t>(EnergyCategory::NumCategories);

/** Printable category name. */
const char *energy_category_name(EnergyCategory cat);

/**
 * A per-category energy accumulator in joules.
 */
class EnergyAccount
{
  public:
    /** Add @p picojoules to @p cat. */
    void
    addPj(EnergyCategory cat, double picojoules)
    {
        joules_[static_cast<std::size_t>(cat)] += picojoules * 1e-12;
    }

    /** Add @p j joules to @p cat. */
    void
    addJoules(EnergyCategory cat, double j)
    {
        joules_[static_cast<std::size_t>(cat)] += j;
    }

    /** Energy in joules accumulated in @p cat. */
    double
    joules(EnergyCategory cat) const
    {
        return joules_[static_cast<std::size_t>(cat)];
    }

    /** Total across all categories. */
    double
    total() const
    {
        double sum = 0.0;
        for (double j : joules_)
            sum += j;
        return sum;
    }

    /** Total excluding DRAM (the paper's Fig. 12(d) view). */
    double
    totalExcludingDram() const
    {
        return total() - joules(EnergyCategory::DramTransfer);
    }

    /** Merge another account into this one. */
    EnergyAccount &
    operator+=(const EnergyAccount &other)
    {
        for (std::size_t i = 0; i < num_energy_categories; ++i)
            joules_[i] += other.joules_[i];
        return *this;
    }

    /** Reset all categories to zero. */
    void reset() { joules_.fill(0.0); }

  private:
    std::array<double, num_energy_categories> joules_{};
};

} // namespace bfree::mem

#endif // BFREE_MEM_ENERGY_ACCOUNT_HH
