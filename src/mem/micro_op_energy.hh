/**
 * @file
 * Bulk conversion of integer micro-op tallies into energy.
 *
 * The legacy datapath charged a floating-point addPj() on every
 * micro-op, which both dominated the simulator's hot loop and made the
 * accumulated joules depend on the exact interleaving of operations.
 * The tiered engine instead keeps the authoritative record in integer
 * counters (micro-op counts, cycles per BCE mode, LUT-row reads) and
 * converts them to picojoules here, in one closed-form expression per
 * energy category, once per flush. Because the conversion is a pure
 * function of the integers, two execution engines that agree on every
 * count agree on every joule — bit for bit.
 */

#ifndef BFREE_MEM_MICRO_OP_ENERGY_HH
#define BFREE_MEM_MICRO_OP_ENERGY_HH

#include <array>
#include <cstdint>

#include "energy_account.hh"
#include "tech/tech_params.hh"

namespace bfree::mem {

/**
 * The integer tallies one flush converts. Deltas, not totals: the BCE
 * snapshots its cumulative counters at each flush and hands the
 * difference here.
 */
struct BceEnergyTallies
{
    std::uint64_t romLookups = 0;  ///< Hardwired multiply-ROM reads.
    std::uint64_t lutReadsPim = 0; ///< Decoupled-bitline LUT-row reads.
    std::uint64_t lutReadsCache = 0; ///< LUT-row reads with lut_en = 0.
    std::uint64_t specialLutEvents = 0; ///< PWL / division table fetches.
    /** Datapath cycles per BceMode (Conv, Matmul, Special). */
    std::array<std::uint64_t, 3> cyclesByMode{};
};

/**
 * Converts BCE micro-op tallies to energy and books them into an
 * EnergyAccount. Stateless apart from the technology scalars.
 */
class MicroOpEnergyModel
{
  public:
    explicit MicroOpEnergyModel(const tech::TechParams &tech)
        : tech(tech)
    {}

    /** BCE-datapath energy (ROM MACs + per-mode cycle power) in pJ. */
    double bceComputePj(const BceEnergyTallies &delta) const;

    /** Decoupled-bitline LUT traffic (conv-path reads + special-function
     *  alpha/beta fetches) in pJ. */
    double lutAccessPj(const BceEnergyTallies &delta) const;

    /** Full-bitline cost of LUT-row reads issued in cache mode, in pJ. */
    double subarrayAccessPj(const BceEnergyTallies &delta) const;

    /** Convert @p delta and book every category into @p account. */
    void deposit(const BceEnergyTallies &delta,
                 EnergyAccount &account) const;

  private:
    tech::TechParams tech;
};

} // namespace bfree::mem

#endif // BFREE_MEM_MICRO_OP_ENERGY_HH
