/**
 * @file
 * Physical address mapping for the modelled LLC.
 *
 * Flat cache byte addresses decompose hierarchically as
 * slice : bank : sub-bank : sub-array : partition : row : byte, matching
 * the Fig. 1 organization. Data within a sub-bank is striped across its
 * sub-arrays row-slice by row-slice for normal cache accesses; the PIM
 * mapping layer instead places whole operand tiles per sub-array, so
 * both views are provided.
 */

#ifndef BFREE_MEM_ADDRESS_HH
#define BFREE_MEM_ADDRESS_HH

#include <cstdint>

#include "tech/geometry.hh"

namespace bfree::mem {

/** Fully decoded location of one byte in the cache. */
struct Location
{
    unsigned slice = 0;
    unsigned bank = 0;
    unsigned subBank = 0;
    unsigned subarray = 0;  ///< Within the sub-bank.
    unsigned partition = 0; ///< Within the sub-array.
    unsigned row = 0;       ///< Within the partition.
    unsigned byte = 0;      ///< Within the row.

    bool operator==(const Location &) const = default;
};

/**
 * Bidirectional flat-address <-> Location mapping.
 */
class AddressMap
{
  public:
    explicit AddressMap(const tech::CacheGeometry &geom) : geom(geom) {}

    /** Total mappable bytes. */
    std::uint64_t capacity() const { return geom.totalBytes(); }

    /** Decode a flat byte address. Panics when out of range. */
    Location decode(std::uint64_t addr) const;

    /** Encode a location back to its flat byte address. */
    std::uint64_t encode(const Location &loc) const;

    /** Flat index of a sub-array in [0, totalSubarrays). */
    unsigned subarrayIndex(const Location &loc) const;

    /** Geometry this map was built from. */
    const tech::CacheGeometry &geometry() const { return geom; }

  private:
    tech::CacheGeometry geom;
};

} // namespace bfree::mem

#endif // BFREE_MEM_ADDRESS_HH
