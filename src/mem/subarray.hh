/**
 * @file
 * Functional + cost model of one 8 KB BFree sub-array.
 *
 * The sub-array stores ordinary data in its 4 partitions and keeps a
 * separate 64-byte LUT region (2 reserved rows per partition with
 * decoupled bitlines and a local precharge). Reads and writes report
 * their energy into an EnergyAccount: a full-bitline access costs
 * subarrayAccessPj per 64-bit row slice, while a LUT access costs 231x
 * less and completes 3x faster (Fig. 4). The BFree design leaves the
 * bit-cells and peripherals untouched, so cache-mode behaviour is
 * unchanged (lut_en = 0 reconnects the full bitline).
 */

#ifndef BFREE_MEM_SUBARRAY_HH
#define BFREE_MEM_SUBARRAY_HH

#include <cstdint>
#include <vector>

#include "energy_account.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::mem {

/** Access statistics of one sub-array. */
struct SubarrayStats
{
    std::uint64_t reads = 0;     ///< Full-bitline row-slice reads.
    std::uint64_t writes = 0;    ///< Full-bitline row-slice writes.
    std::uint64_t lutReads = 0;  ///< Decoupled LUT-row reads.
    std::uint64_t lutWrites = 0; ///< LUT loads (full-cost writes).
};

/**
 * One sub-array: byte-accurate storage plus access-cost reporting.
 */
class Subarray
{
  public:
    Subarray(const tech::CacheGeometry &geom, const tech::TechParams &tech,
             EnergyAccount &energy);

    /** Data capacity in bytes (8 KB). */
    std::size_t capacity() const { return data.size(); }

    /** LUT region capacity in bytes (64). */
    std::size_t lutCapacity() const { return lut.size(); }

    // ------------------------------------------------------------------
    // Cache-mode data path (full bitline cost)
    // ------------------------------------------------------------------
    /** Read @p len bytes at @p offset. Cost: one access per row slice. */
    void read(std::size_t offset, std::uint8_t *out, std::size_t len);

    /** Write @p len bytes at @p offset. Cost: one access per row slice. */
    void write(std::size_t offset, const std::uint8_t *in,
               std::size_t len);

    /** Convenience single-byte peek without cost (debug/verification). */
    std::uint8_t peek(std::size_t offset) const;

    // ------------------------------------------------------------------
    // PIM-mode LUT path (decoupled bitline cost)
    // ------------------------------------------------------------------
    /**
     * The lut_en signal (Fig. 4(b)): in cache mode (false) a single
     * bitline runs across the entire column and LUT-row reads pay the
     * full access cost; in PIM mode (true) the local precharge
     * decouples the LUT rows. BFree preserves normal cache behaviour —
     * the bit-cells and peripherals are untouched.
     */
    void setPimMode(bool enabled) { _pimMode = enabled; }

    /** True when the decoupled-bitline LUT path is active. */
    bool pimModeEnabled() const { return _pimMode; }

    /**
     * Load a LUT image into the reserved rows. Loading pays full access
     * cost (it happens once per kernel in the configuration phase).
     */
    void loadLut(const std::vector<std::uint8_t> &bytes);

    /** Read one LUT byte (reduced cost in PIM mode, full cost in
     *  cache mode). */
    std::uint8_t lutRead(std::size_t offset);

    /**
     * Read one LUT byte without any accounting. The BCE's multiply
     * path uses this together with noteLutReads() so the per-read
     * bookkeeping stays integer-only in the hot loop; the energy is
     * converted in bulk at flush time (mem/micro_op_energy).
     */
    std::uint8_t lutPeek(std::size_t offset) const;

    /** Record @p n LUT-row reads in the access counters (stats only;
     *  the caller owns the deferred energy conversion). */
    void noteLutReads(std::uint64_t n) { _stats.lutReads += n; }

    /**
     * Monotonic counter bumped whenever the LUT-row bytes change
     * (loadLut / scratchWrite). Memoized datapath tables seeded from
     * the rows record the generation they saw and rebuild on mismatch.
     */
    std::uint64_t lutGeneration() const { return _lutGeneration; }

    /**
     * Read/write an intermediate value in the reduced-access-cost rows
     * (the paper reuses them for partial products during matmul).
     */
    std::uint8_t scratchRead(std::size_t offset) { return lutRead(offset); }
    void scratchWrite(std::size_t offset, std::uint8_t value);

    /** Per-sub-array counters. */
    const SubarrayStats &stats() const { return _stats; }

    /** Latency of a full access in ns. */
    double accessLatencyNs() const;

    /** Latency of a LUT access in ns (mode dependent). */
    double lutLatencyNs() const;

  private:
    /** Charge one full-bitline access per touched row slice. */
    void chargeAccesses(std::size_t offset, std::size_t len, bool is_read);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    EnergyAccount *energy;
    std::vector<std::uint8_t> data;
    std::vector<std::uint8_t> lut;
    SubarrayStats _stats;
    std::uint64_t _lutGeneration = 0;
    bool _pimMode = true;
};

} // namespace bfree::mem

#endif // BFREE_MEM_SUBARRAY_HH
