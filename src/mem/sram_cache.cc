#include "sram_cache.hh"

#include "sim/logging.hh"

namespace bfree::mem {

SramCache::SramCache(const tech::CacheGeometry &geom,
                     const tech::TechParams &tech)
    : geom(geom), tech(tech), amap(geom),
      access(tech::slice_access_breakdown(geom, tech))
{
    arrays.reserve(geom.totalSubarrays());
    for (unsigned i = 0; i < geom.totalSubarrays(); ++i)
        arrays.push_back(
            std::make_unique<Subarray>(geom, tech, account));
}

Subarray &
SramCache::subarray(unsigned index)
{
    if (index >= arrays.size())
        bfree_panic("sub-array index ", index, " out of range (",
                    arrays.size(), ")");
    return *arrays[index];
}

const Subarray &
SramCache::subarray(unsigned index) const
{
    if (index >= arrays.size())
        bfree_panic("sub-array index ", index, " out of range (",
                    arrays.size(), ")");
    return *arrays[index];
}

void
SramCache::chargeInterconnect(std::size_t bytes)
{
    const double route =
        tech::slice_route_mm(geom, tech);
    const double pj = static_cast<double>(bytes) * 8.0 * route
                          * tech.wireEnergyPjPerBitPerMm
                      + tech.busDriverPj;
    account.addPj(EnergyCategory::Interconnect, pj);
}

void
SramCache::read(std::uint64_t addr, std::uint8_t *out, std::size_t len)
{
    for (std::size_t i = 0; i < len;) {
        const Location loc = amap.decode(addr + i);
        Subarray &sa = subarray(amap.subarrayIndex(loc));
        const std::size_t sa_offset =
            (loc.partition * geom.rowsPerPartition + loc.row)
                * geom.rowBytes()
            + loc.byte;
        const std::size_t chunk =
            std::min<std::size_t>(len - i, geom.rowBytes() - loc.byte);
        sa.read(sa_offset, out + i, chunk);
        i += chunk;
    }
    chargeInterconnect(len);
}

void
SramCache::write(std::uint64_t addr, const std::uint8_t *in,
                 std::size_t len)
{
    for (std::size_t i = 0; i < len;) {
        const Location loc = amap.decode(addr + i);
        Subarray &sa = subarray(amap.subarrayIndex(loc));
        const std::size_t sa_offset =
            (loc.partition * geom.rowsPerPartition + loc.row)
                * geom.rowBytes()
            + loc.byte;
        const std::size_t chunk =
            std::min<std::size_t>(len - i, geom.rowBytes() - loc.byte);
        sa.write(sa_offset, in + i, chunk);
        i += chunk;
    }
    chargeInterconnect(len);
}

void
SramCache::broadcastLut(const std::vector<std::uint8_t> &bytes)
{
    for (auto &sa : arrays)
        sa->loadLut(bytes);
}

SubarrayStats
SramCache::aggregateStats() const
{
    SubarrayStats total;
    for (const auto &sa : arrays) {
        total.reads += sa->stats().reads;
        total.writes += sa->stats().writes;
        total.lutReads += sa->stats().lutReads;
        total.lutWrites += sa->stats().lutWrites;
    }
    return total;
}

double
SramCache::cacheAccessLatencyNs() const
{
    return access.totalLatencyNs();
}

} // namespace bfree::mem
