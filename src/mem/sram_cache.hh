/**
 * @file
 * The modelled last-level SRAM cache: a container of sub-arrays with
 * functional whole-cache load/store and kernel LUT configuration.
 *
 * In PIM mode the cache does not behave as a cache (no tags/replacement
 * are modelled): the BFree controllers place weights and LUT images at
 * explicit physical locations, exactly as the paper's configuration
 * phase does (Fig. 11). Normal cache-mode reads/writes are still
 * available for completeness and cost the full slice traversal.
 */

#ifndef BFREE_MEM_SRAM_CACHE_HH
#define BFREE_MEM_SRAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "address.hh"
#include "energy_account.hh"
#include "subarray.hh"
#include "tech/access_breakdown.hh"

namespace bfree::mem {

/**
 * The full LLC as an array of sub-array models.
 */
class SramCache
{
  public:
    SramCache(const tech::CacheGeometry &geom,
              const tech::TechParams &tech);

    /** Geometry of this cache. */
    const tech::CacheGeometry &geometry() const { return geom; }

    /** The shared energy account. */
    EnergyAccount &energy() { return account; }
    const EnergyAccount &energy() const { return account; }

    /** Address mapping helper. */
    const AddressMap &addressMap() const { return amap; }

    /** Sub-array by flat index in [0, totalSubarrays). */
    Subarray &subarray(unsigned index);
    const Subarray &subarray(unsigned index) const;

    /** Number of sub-arrays. */
    unsigned numSubarrays() const
    { return static_cast<unsigned>(arrays.size()); }

    // ------------------------------------------------------------------
    // Cache-mode functional access (pays sub-array + interconnect cost)
    // ------------------------------------------------------------------
    /** Read @p len bytes at flat address @p addr. */
    void read(std::uint64_t addr, std::uint8_t *out, std::size_t len);

    /** Write @p len bytes at flat address @p addr. */
    void write(std::uint64_t addr, const std::uint8_t *in,
               std::size_t len);

    // ------------------------------------------------------------------
    // PIM configuration
    // ------------------------------------------------------------------
    /** Load one LUT image into every sub-array (broadcast). */
    void broadcastLut(const std::vector<std::uint8_t> &bytes);

    /** Aggregate access statistics over all sub-arrays. */
    SubarrayStats aggregateStats() const;

    /** Latency of one cache-mode access (slice traversal), ns. */
    double cacheAccessLatencyNs() const;

  private:
    /** Charge the H-tree traversal for @p bytes of cache-mode data. */
    void chargeInterconnect(std::size_t bytes);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    AddressMap amap;
    EnergyAccount account;
    std::vector<std::unique_ptr<Subarray>> arrays;
    tech::SliceAccessBreakdown access;
};

} // namespace bfree::mem

#endif // BFREE_MEM_SRAM_CACHE_HH
