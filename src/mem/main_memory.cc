#include "main_memory.hh"

namespace bfree::mem {

double
MainMemory::stream(double bytes)
{
    totalBytes += bytes;
    energy->addJoules(EnergyCategory::DramTransfer,
                      params.streamJoules(bytes));
    return params.streamSeconds(bytes);
}

} // namespace bfree::mem
