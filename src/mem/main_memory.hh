/**
 * @file
 * Main-memory channel model (DRAM / eDRAM / HBM).
 *
 * Weight and feature streaming time is bandwidth-bound in BFree; the
 * paper's Fig. 14 sweeps the channel technology to show the input-load
 * bottleneck. The model is a sustained-bandwidth pipe with per-byte
 * transfer energy and background power, which matches how the paper
 * treats main memory.
 */

#ifndef BFREE_MEM_MAIN_MEMORY_HH
#define BFREE_MEM_MAIN_MEMORY_HH

#include <cstdint>

#include "energy_account.hh"
#include "tech/tech_params.hh"

namespace bfree::mem {

/**
 * A bandwidth/energy model of one main-memory channel.
 */
class MainMemory
{
  public:
    MainMemory(const tech::MainMemoryParams &params,
               EnergyAccount &energy)
        : params(params), energy(&energy)
    {}

    /** Channel parameters. */
    const tech::MainMemoryParams &parameters() const { return params; }

    /**
     * Stream @p bytes through the channel: returns the transfer time in
     * seconds and charges the transfer energy.
     */
    double stream(double bytes);

    /** Transfer time only (no energy side effect). */
    double
    streamSeconds(double bytes) const
    {
        return params.streamSeconds(bytes);
    }

    /** Total bytes streamed so far. */
    double bytesTransferred() const { return totalBytes; }

  private:
    tech::MainMemoryParams params;
    EnergyAccount *energy;
    double totalBytes = 0.0;
};

} // namespace bfree::mem

#endif // BFREE_MEM_MAIN_MEMORY_HH
