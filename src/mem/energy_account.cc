#include "energy_account.hh"

namespace bfree::mem {

const char *
energy_category_name(EnergyCategory cat)
{
    switch (cat) {
      case EnergyCategory::DramTransfer:
        return "dram";
      case EnergyCategory::SubarrayAccess:
        return "sa_access";
      case EnergyCategory::LutAccess:
        return "lut_access";
      case EnergyCategory::BceCompute:
        return "bce";
      case EnergyCategory::Interconnect:
        return "interconnect";
      case EnergyCategory::Router:
        return "router";
      case EnergyCategory::Controller:
        return "controller";
      case EnergyCategory::Leakage:
        return "leakage";
      case EnergyCategory::NumCategories:
        break;
    }
    return "?";
}

} // namespace bfree::mem
