#include "micro_op_energy.hh"

namespace bfree::mem {

namespace {

double
mode_mw(const tech::TechParams &tech, std::size_t mode)
{
    // Index order matches bce::BceMode: Conv, Matmul, Special.
    switch (mode) {
      case 0:
        return tech.bceConvModeMw;
      case 1:
        return tech.bceMatmulModeMw;
      default:
        return tech.bceOtherModeMw;
    }
}

} // namespace

double
MicroOpEnergyModel::bceComputePj(const BceEnergyTallies &delta) const
{
    double pj = tech.bceMacPj * static_cast<double>(delta.romLookups);
    for (std::size_t m = 0; m < delta.cyclesByMode.size(); ++m)
        pj += tech.bceEnergyPerCyclePj(mode_mw(tech, m))
              * static_cast<double>(delta.cyclesByMode[m]);
    return pj;
}

double
MicroOpEnergyModel::lutAccessPj(const BceEnergyTallies &delta) const
{
    return tech.lutAccessPj()
           * static_cast<double>(delta.lutReadsPim
                                 + delta.specialLutEvents);
}

double
MicroOpEnergyModel::subarrayAccessPj(const BceEnergyTallies &delta) const
{
    return tech.subarrayAccessPj
           * static_cast<double>(delta.lutReadsCache);
}

void
MicroOpEnergyModel::deposit(const BceEnergyTallies &delta,
                            EnergyAccount &account) const
{
    const double bce = bceComputePj(delta);
    if (bce != 0.0)
        account.addPj(EnergyCategory::BceCompute, bce);
    const double lut = lutAccessPj(delta);
    if (lut != 0.0)
        account.addPj(EnergyCategory::LutAccess, lut);
    const double sa = subarrayAccessPj(delta);
    if (sa != 0.0)
        account.addPj(EnergyCategory::SubarrayAccess, sa);
}

} // namespace bfree::mem
