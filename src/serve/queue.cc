#include "serve/queue.hh"

#include "sim/logging.hh"

namespace bfree::serve {

const char *
admit_result_name(AdmitResult r)
{
    switch (r) {
      case AdmitResult::Admitted:
        return "admitted";
      case AdmitResult::RejectedQueueFull:
        return "queue_full";
      case AdmitResult::RejectedClosed:
        return "closed";
      case AdmitResult::RejectedZeroDeadline:
        return "zero_deadline";
    }
    return "unknown";
}

RequestQueue::RequestQueue(std::size_t maxDepth) : bound(maxDepth)
{
    if (maxDepth == 0)
        bfree_fatal("request queue needs a depth bound >= 1");
}

AdmitResult
RequestQueue::tryEnqueue(Request &r, sim::Tick now)
{
    if (r.deadlineTicks == 0)
        return AdmitResult::RejectedZeroDeadline;
    std::lock_guard<std::mutex> lock(mutex);
    if (isClosed)
        return AdmitResult::RejectedClosed;
    if (waiting.size() >= bound)
        return AdmitResult::RejectedQueueFull;
    r.enqueueTick = now;
    waiting.push_back(std::move(r));
    return AdmitResult::Admitted;
}

std::size_t
RequestQueue::popUpTo(std::size_t maxCount, std::vector<Request> &out)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t popped = 0;
    while (popped < maxCount && !waiting.empty()) {
        out.push_back(std::move(waiting.front()));
        waiting.pop_front();
        ++popped;
    }
    return popped;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return waiting.size();
}

sim::Tick
RequestQueue::oldestEnqueueTick() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return waiting.empty() ? sim::max_tick : waiting.front().enqueueTick;
}

void
RequestQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex);
    isClosed = true;
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return isClosed;
}

} // namespace bfree::serve
