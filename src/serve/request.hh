/**
 * @file
 * The unit of work a serving front-end moves around: one inference
 * request with its lifecycle timestamps.
 *
 * Timestamps are serve-clock ticks (see clock.hh), stamped at the
 * three lifecycle points the SLO accounting needs: admission into the
 * queue, dispatch as part of a batch, and completion when the batch's
 * modelled service time elapses. Latencies derive from the stamps
 * (queue wait = dispatch - enqueue, total = complete - enqueue), so a
 * replayed trace reproduces every latency bit-for-bit.
 */

#ifndef BFREE_SERVE_REQUEST_HH
#define BFREE_SERVE_REQUEST_HH

#include <cstdint>
#include <limits>

#include "dnn/tensor.hh"
#include "sim/types.hh"

namespace bfree::serve {

/** Sentinel: the request has no deadline. */
constexpr sim::Tick no_deadline = std::numeric_limits<sim::Tick>::max();

/** One inference request travelling queue -> batch -> completion. */
struct Request
{
    /** Caller-assigned id; batch logs and outputs are keyed by it. */
    std::uint64_t id = 0;

    /** Input activations; must match the plan's inputElems. */
    dnn::FloatTensor input;

    /**
     * Relative deadline in ticks from enqueue; no_deadline disables
     * the SLO check. An explicit 0 can never be met (service takes at
     * least one tick) and is rejected at admission.
     */
    sim::Tick deadlineTicks = no_deadline;

    /** Lifecycle stamps, filled in by the serving engine. */
    sim::Tick enqueueTick = 0;
    sim::Tick dispatchTick = 0;
    sim::Tick completeTick = 0;

    /** True when the request has a deadline and missed it. */
    bool
    missedDeadline() const
    {
        return deadlineTicks != no_deadline
               && completeTick > enqueueTick + deadlineTicks;
    }
};

} // namespace bfree::serve

#endif // BFREE_SERVE_REQUEST_HH
