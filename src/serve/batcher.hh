/**
 * @file
 * The continuous batcher: merges queued arrivals into the next batch.
 *
 * Classic fixed fan-out serves whatever was present when the server
 * went idle; continuous batching instead lets every request that
 * arrived while the previous batch was in flight join the next one,
 * up to a configured occupancy. Two triggers release a batch:
 *
 *  - the queue holds maxBatch requests (a full batch is never delayed);
 *  - the oldest waiting request has waited windowTicks (a lone request
 *    is never starved — when the window expires it goes out alone).
 *
 * Both triggers are suppressed while a batch is in flight; at the
 * in-flight batch's completion tick everything waiting merges into the
 * next batch. The batcher holds no clock of its own: every decision is
 * a pure function of (now, queue contents, in-flight state), so a
 * replayed trace reproduces batch compositions byte-for-byte.
 */

#ifndef BFREE_SERVE_BATCHER_HH
#define BFREE_SERVE_BATCHER_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

#include "serve/queue.hh"
#include "serve/request.hh"

namespace bfree::serve {

/** Batch-forming knobs. */
struct BatcherConfig
{
    /** Occupancy cap per dispatched batch. */
    std::size_t maxBatch = 8;

    /** Ticks the oldest request may wait before a partial batch goes
     *  out anyway. */
    sim::Tick windowTicks = 64;
};

/** Decides when the next batch forms and what goes into it. */
class ContinuousBatcher
{
  public:
    ContinuousBatcher(RequestQueue &queue, BatcherConfig cfg);

    const BatcherConfig &config() const { return cfg; }

    /** True while a dispatched batch has not yet completed at @p now. */
    bool busy(sim::Tick now) const { return now < inFlightUntil; }

    /** Completion tick of the most recently dispatched batch (0 when
     *  nothing has been dispatched yet); the server is busy while
     *  now < busyUntil(). */
    sim::Tick
    busyUntil() const
    {
        return inFlightUntil;
    }

    /**
     * Earliest tick >= @p now at which a batch could be released,
     * given what is queued right now; max_tick when nothing waits.
     * The replay engine advances its clock to the minimum of this and
     * the next arrival.
     */
    sim::Tick nextDispatchTick(sim::Tick now) const;

    /**
     * Release a batch at @p now if a trigger fires: pops up to
     * maxBatch requests (FIFO), stamps their dispatchTick and returns
     * them. Returns an empty vector when no trigger fires (in flight,
     * empty queue, or partial batch still inside its window).
     */
    std::vector<Request> tryForm(sim::Tick now);

    /** Mark the just-dispatched batch in flight until @p completeTick. */
    void noteDispatch(sim::Tick completeTick);

  private:
    RequestQueue &queue;
    const BatcherConfig cfg;

    /** Completion tick of the batch in flight; 0 when idle. */
    sim::Tick inFlightUntil = 0;
};

} // namespace bfree::serve

#endif // BFREE_SERVE_BATCHER_HH
