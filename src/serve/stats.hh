/**
 * @file
 * SLO accounting for the serving front-end, on the sim::stats package.
 *
 * One ServeStats group holds everything the open-loop methodology
 * reports: admission counters by outcome, batch counters and occupancy,
 * and the three latency histograms (queue wait, service, total) the
 * percentile readouts interpolate from. Being ordinary sim stats, the
 * group dumps through StatGroup::dumpAll (so the CI 1-vs-8-thread
 * byte-diff covers histogram stats) and merges through
 * StatGroup::mergeFrom (shard-and-fold aggregation).
 */

#ifndef BFREE_SERVE_STATS_HH
#define BFREE_SERVE_STATS_HH

#include <cstddef>

#include "sim/stats.hh"
#include "sim/types.hh"

#include "serve/queue.hh"
#include "serve/request.hh"

namespace bfree::serve {

/** Histogram shape knobs (fixed bounds keep merges associative). */
struct ServeStatsConfig
{
    /** Upper edge of the latency histograms, in ticks (samples above
     *  clamp into the last bin; percentiles then saturate there). */
    double latencyHistMaxTicks = 1 << 20;

    /** Bins of each latency histogram. */
    std::size_t latencyBins = 128;

    /** Upper edge (exclusive) of the batch-occupancy histogram; set
     *  it to maxBatch + 1 so each occupancy gets its own bin. */
    std::size_t occupancyBins = 65;
};

/** The serving front-end's statistics group. */
class ServeStats : public sim::StatGroup
{
  public:
    /** A root group named "serve". */
    explicit ServeStats(const ServeStatsConfig &cfg = {})
        : sim::StatGroup("serve"), cfg_(cfg)
    {}

    /** A child group named "serve" under @p parent. */
    ServeStats(sim::StatGroup &parent, const ServeStatsConfig &cfg = {})
        : sim::StatGroup(parent, "serve"), cfg_(cfg)
    {}

    /** Account one admission outcome. */
    void recordAdmission(AdmitResult r);

    /** Account one dispatched batch of @p occupancy requests. */
    void recordDispatch(std::size_t occupancy);

    /** Account one completed request (stamps must be filled in). */
    void recordCompletion(const Request &r);

    /** Total latency percentile in ticks (p in [0, 1]). */
    double
    latencyPercentile(double p) const
    {
        return latencyTicks.percentile(p);
    }

    /** Queue-wait percentile in ticks. */
    double
    queueWaitPercentile(double p) const
    {
        return queueWaitTicks.percentile(p);
    }

  private:
    /** Kept before the stats so their initializers can read it. */
    const ServeStatsConfig cfg_;

  public:
    // Counters (public: read in tests and report emitters).
    sim::Scalar offered{*this, "offered", "admission attempts"};
    sim::Scalar admitted{*this, "admitted", "requests entering the queue"};
    sim::Scalar rejectedFull{*this, "rejected_queue_full",
                             "rejected: queue at its depth bound"};
    sim::Scalar rejectedClosed{*this, "rejected_closed",
                               "rejected: queue closed"};
    sim::Scalar rejectedZeroDeadline{
        *this, "rejected_zero_deadline",
        "rejected: deadline impossible to meet"};
    sim::Scalar completed{*this, "completed",
                          "requests served to completion"};
    sim::Scalar deadlineMisses{*this, "deadline_misses",
                               "completed after their deadline"};
    sim::Scalar batches{*this, "batches", "batches dispatched"};
    sim::Scalar batchedRequests{*this, "batched_requests",
                                "requests across all batches"};

    // Distributions.
    sim::Histogram queueWaitTicks{
        *this, "queue_wait_ticks", "ticks from enqueue to dispatch", 0.0,
        cfg_.latencyHistMaxTicks, cfg_.latencyBins};
    sim::Histogram serviceTicks{
        *this, "service_ticks", "ticks from dispatch to completion", 0.0,
        cfg_.latencyHistMaxTicks, cfg_.latencyBins};
    sim::Histogram latencyTicks{
        *this, "latency_ticks", "ticks from enqueue to completion", 0.0,
        cfg_.latencyHistMaxTicks, cfg_.latencyBins};
    sim::Histogram batchOccupancy{
        *this, "batch_occupancy", "requests per dispatched batch", 0.0,
        static_cast<double>(cfg_.occupancyBins), cfg_.occupancyBins};

  private:
    // Derived at dump time so the listing carries the percentiles.
    sim::Formula p50_{*this, "latency_p50_ticks",
                      "total latency 50th percentile",
                      [this] { return latencyTicks.percentile(0.50); }};
    sim::Formula p95_{*this, "latency_p95_ticks",
                      "total latency 95th percentile",
                      [this] { return latencyTicks.percentile(0.95); }};
    sim::Formula p99_{*this, "latency_p99_ticks",
                      "total latency 99th percentile",
                      [this] { return latencyTicks.percentile(0.99); }};
    sim::Formula missRate_{
        *this, "deadline_miss_rate",
        "deadline misses over completed requests", [this] {
            const double done = completed.value();
            return done > 0.0 ? deadlineMisses.value() / done : 0.0;
        }};
    sim::Formula meanOccupancy_{
        *this, "mean_batch_occupancy", "requests per batch, mean",
        [this] {
            const double b = batches.value();
            return b > 0.0 ? batchedRequests.value() / b : 0.0;
        }};
};

} // namespace bfree::serve

#endif // BFREE_SERVE_STATS_HH
