#include "serve/server.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "verify/plan_verifier.hh"

namespace bfree::serve {

ServeEngine::ServeEngine(const core::NetworkPlan &plan, ServeConfig cfg)
    : plan(plan), cfg(cfg), stats_(cfg.stats)
{
    // Reject-on-serve: a config the static audit finds inconsistent, or
    // a plan that failed its verify-on-compile audit, never admits a
    // request.
    verify::ServeAuditConfig audit;
    audit.queueDepth = this->cfg.queueDepth;
    audit.maxBatch = this->cfg.batcher.maxBatch;
    audit.windowTicks = this->cfg.batcher.windowTicks;
    audit.cyclesPerTick = this->cfg.cyclesPerTick;
    audit.minServiceTicks = this->cfg.minServiceTicks;
    audit.sloDeadlineTicks = this->cfg.sloDeadlineTicks;
    const verify::VerifyReport report =
        verify::audit_serve_config(audit);
    if (!report.ok())
        bfree_fatal("serve engine rejected its config:\n",
                    report.toString());
    if (!plan.diagnostics().ok())
        bfree_fatal("serve engine rejected plan '",
                    plan.network().name(),
                    "' (failed verify-on-compile):\n",
                    plan.diagnostics().toString());
}

ReplayReport
ServeEngine::replay(const ArrivalTrace &trace)
{
    RequestQueue queue(cfg.queueDepth);
    ContinuousBatcher batcher(queue, cfg.batcher);
    VirtualClock clock;
    std::ostringstream log;

    ReplayReport rep;
    rep.outputs.resize(trace.size());
    rep.served.reserve(trace.size());

    core::BatchOptions batchOpts;
    batchOpts.threads = cfg.threads;
    batchOpts.geom = cfg.geom;
    batchOpts.tech = cfg.tech;
    batchOpts.tier = cfg.tier;

    // The in-flight batch: requests dispatched but not yet complete at
    // virtual time. Their outputs are computed at dispatch (host time)
    // and delivered at the batch's modelled completion tick.
    std::vector<Request> inflight;
    std::vector<dnn::FloatTensor> inflightOut;
    bool busy = false;

    auto completeInflight = [&](sim::Tick at) {
        for (std::size_t i = 0; i < inflight.size(); ++i) {
            Request &r = inflight[i];
            r.completeTick = at;
            stats_.recordCompletion(r);
            rep.outputs[r.id] = std::move(inflightOut[i]);
            rep.served.push_back(std::move(r));
        }
        inflight.clear();
        inflightOut.clear();
        busy = false;
        rep.endTick = at;
    };

    std::size_t ai = 0; // next un-admitted arrival
    std::uint64_t batchSeq = 0;

    while (true) {
        // Earliest next event: in-flight completion, next arrival, or
        // a batch release (full queue / window expiry).
        sim::Tick next = sim::max_tick;
        if (busy)
            next = std::min(next, batcher.busyUntil());
        if (ai < trace.arrivals.size())
            next = std::min(next, trace.arrivals[ai].tick);
        if (!busy)
            next = std::min(next, batcher.nextDispatchTick(clock.now()));
        if (next == sim::max_tick)
            break;
        clock.advanceTo(std::max(next, clock.now()));
        const sim::Tick now = clock.now();

        // Fixed intra-tick order keeps the schedule deterministic:
        // 1) a batch completing at this tick frees the server;
        if (busy && batcher.busyUntil() <= now)
            completeInflight(batcher.busyUntil());

        // 2) this tick's arrivals go through admission (they may join
        //    a batch formed at this same tick);
        while (ai < trace.arrivals.size()
               && trace.arrivals[ai].tick <= now) {
            const Arrival &a = trace.arrivals[ai];
            Request r;
            r.id = ai;
            r.deadlineTicks = a.deadlineTicks;
            r.input = make_request_input(plan, a.inputSeed);
            const AdmitResult res = queue.tryEnqueue(r, now);
            stats_.recordAdmission(res);
            if (res != AdmitResult::Admitted) {
                log << "reject req " << ai << " @" << now << " "
                    << admit_result_name(res) << "\n";
            }
            ++ai;
        }

        // 3) the batcher may release the next batch.
        std::vector<Request> batch = batcher.tryForm(now);
        if (batch.empty())
            continue;

        std::vector<const dnn::FloatTensor *> ptrs;
        ptrs.reserve(batch.size());
        for (const Request &r : batch)
            ptrs.push_back(&r.input);
        core::BatchResult br =
            core::run_functional_batch(plan, ptrs, batchOpts);
        rep.datapathStats += br.stats;
        rep.energyJoules += br.energy.total();

        const sim::Tick service =
            std::max(cfg.minServiceTicks,
                     static_cast<sim::Tick>(br.stats.cycles
                                            / cfg.cyclesPerTick));
        const sim::Tick doneAt = now + service;
        batcher.noteDispatch(doneAt);
        busy = true;
        stats_.recordDispatch(batch.size());

        log << "batch " << batchSeq++ << " dispatch@" << now << " size "
            << batch.size() << " reqs [";
        for (std::size_t i = 0; i < batch.size(); ++i)
            log << (i ? "," : "") << batch[i].id;
        log << "] service " << service << " complete@" << doneAt << "\n";

        inflight = std::move(batch);
        inflightOut = std::move(br.outputs);
    }

    rep.batchLog = log.str();
    return rep;
}

} // namespace bfree::serve
