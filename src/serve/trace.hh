/**
 * @file
 * Arrival traces for open-loop load generation.
 *
 * A trace is the complete, immutable description of an offered load:
 * when each request arrives, which synthetic input it carries (as a
 * seed, so the tensor itself is derived on demand) and its relative
 * deadline. Traces are produced by seeded generators — Poisson for
 * memoryless open-loop load, bursty for the pathological case — and
 * replayed by the ServeEngine. Because the trace is data, not a
 * stream of wall-clock events, the same trace replays to the same
 * schedule on any machine at any thread count.
 */

#ifndef BFREE_SERVE_TRACE_HH
#define BFREE_SERVE_TRACE_HH

#include <cstdint>
#include <vector>

#include "core/network_plan.hh"
#include "dnn/tensor.hh"
#include "sim/random.hh"
#include "sim/types.hh"

#include "serve/request.hh"

namespace bfree::serve {

/** One arrival in a trace. */
struct Arrival
{
    /** Absolute arrival tick. */
    sim::Tick tick = 0;

    /** Seed the request's input tensor derives from. */
    std::uint64_t inputSeed = 0;

    /** Relative deadline (no_deadline = unconstrained). */
    sim::Tick deadlineTicks = no_deadline;
};

/** A whole offered load, sorted by arrival tick. */
struct ArrivalTrace
{
    std::vector<Arrival> arrivals;

    std::size_t size() const { return arrivals.size(); }

    /** Last arrival tick (0 for an empty trace). */
    sim::Tick horizon() const;
};

/**
 * Poisson (memoryless) arrivals: @p n requests whose inter-arrival
 * gaps are exponential with mean @p meanGapTicks, rounded up so time
 * always advances. Input seeds are drawn from the same @p rng, so one
 * seed reproduces the whole trace, inputs included.
 */
ArrivalTrace poisson_trace(sim::Rng &rng, std::size_t n,
                           double meanGapTicks,
                           sim::Tick deadlineTicks = no_deadline);

/**
 * Bursty arrivals: bursts of @p burstSize back-to-back requests (one
 * tick apart) separated by exponential gaps with mean
 * @p meanBurstGapTicks. The worst case for a bounded queue: offered
 * load arrives faster than any batcher can drain within a burst.
 */
ArrivalTrace bursty_trace(sim::Rng &rng, std::size_t n,
                          std::size_t burstSize,
                          double meanBurstGapTicks,
                          sim::Tick deadlineTicks = no_deadline);

/**
 * The synthetic input tensor for @p seed, shaped for @p plan: a
 * deterministic function of the seed alone, so the parity tests can
 * regenerate the exact tensors a replay served.
 */
dnn::FloatTensor make_request_input(const core::NetworkPlan &plan,
                                    std::uint64_t seed);

} // namespace bfree::serve

#endif // BFREE_SERVE_TRACE_HH
