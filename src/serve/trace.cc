#include "serve/trace.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bfree::serve {

sim::Tick
ArrivalTrace::horizon() const
{
    return arrivals.empty() ? 0 : arrivals.back().tick;
}

namespace {

/** Exponential gap with mean @p mean, rounded up to >= 1 tick. */
sim::Tick
exponential_gap(sim::Rng &rng, double mean)
{
    // uniformReal is in [0, 1); 1-u is in (0, 1], so the log is finite.
    const double u = rng.uniformReal(0.0, 1.0);
    const double gap = -mean * std::log(1.0 - u);
    return std::max<sim::Tick>(1, static_cast<sim::Tick>(std::ceil(gap)));
}

} // namespace

ArrivalTrace
poisson_trace(sim::Rng &rng, std::size_t n, double meanGapTicks,
              sim::Tick deadlineTicks)
{
    if (meanGapTicks <= 0.0)
        bfree_fatal("poisson_trace needs a positive mean gap, got ",
                    meanGapTicks);
    ArrivalTrace trace;
    trace.arrivals.reserve(n);
    sim::Tick now = 0;
    for (std::size_t i = 0; i < n; ++i) {
        now += exponential_gap(rng, meanGapTicks);
        Arrival a;
        a.tick = now;
        a.inputSeed = static_cast<std::uint64_t>(
            rng.uniformInt(0, std::numeric_limits<std::int64_t>::max()));
        a.deadlineTicks = deadlineTicks;
        trace.arrivals.push_back(a);
    }
    return trace;
}

ArrivalTrace
bursty_trace(sim::Rng &rng, std::size_t n, std::size_t burstSize,
             double meanBurstGapTicks, sim::Tick deadlineTicks)
{
    if (burstSize == 0)
        bfree_fatal("bursty_trace needs a burst size >= 1");
    if (meanBurstGapTicks <= 0.0)
        bfree_fatal("bursty_trace needs a positive mean burst gap, got ",
                    meanBurstGapTicks);
    ArrivalTrace trace;
    trace.arrivals.reserve(n);
    sim::Tick burstStart = 0;
    while (trace.arrivals.size() < n) {
        burstStart += exponential_gap(rng, meanBurstGapTicks);
        for (std::size_t b = 0;
             b < burstSize && trace.arrivals.size() < n; ++b) {
            Arrival a;
            a.tick = burstStart + b; // back-to-back, one tick apart
            a.inputSeed = static_cast<std::uint64_t>(rng.uniformInt(
                0, std::numeric_limits<std::int64_t>::max()));
            a.deadlineTicks = deadlineTicks;
            trace.arrivals.push_back(a);
        }
        // Keep the next burst strictly after this one's tail.
        burstStart += burstSize;
    }
    return trace;
}

dnn::FloatTensor
make_request_input(const core::NetworkPlan &plan, std::uint64_t seed)
{
    const dnn::FeatureShape &in = plan.network().input();
    dnn::FloatTensor t({in.c, in.h, in.w});
    sim::Rng rng(seed);
    t.fillUniform(rng, -1.0, 1.0);
    return t;
}

} // namespace bfree::serve
