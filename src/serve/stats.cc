#include "serve/stats.hh"

namespace bfree::serve {

void
ServeStats::recordAdmission(AdmitResult r)
{
    ++offered;
    switch (r) {
      case AdmitResult::Admitted:
        ++admitted;
        break;
      case AdmitResult::RejectedQueueFull:
        ++rejectedFull;
        break;
      case AdmitResult::RejectedClosed:
        ++rejectedClosed;
        break;
      case AdmitResult::RejectedZeroDeadline:
        ++rejectedZeroDeadline;
        break;
    }
}

void
ServeStats::recordDispatch(std::size_t occupancy)
{
    ++batches;
    batchedRequests += static_cast<double>(occupancy);
    batchOccupancy.sample(static_cast<double>(occupancy));
}

void
ServeStats::recordCompletion(const Request &r)
{
    ++completed;
    queueWaitTicks.sample(
        static_cast<double>(r.dispatchTick - r.enqueueTick));
    serviceTicks.sample(
        static_cast<double>(r.completeTick - r.dispatchTick));
    latencyTicks.sample(
        static_cast<double>(r.completeTick - r.enqueueTick));
    if (r.missedDeadline())
        ++deadlineMisses;
}

} // namespace bfree::serve
