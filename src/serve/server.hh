/**
 * @file
 * The serving front-end: trace replay over queue -> batcher -> plan.
 *
 * ServeEngine drives open-loop load (an ArrivalTrace) through the
 * admission-controlled RequestQueue and the ContinuousBatcher, and
 * dispatches each formed batch to the compiled core::NetworkPlan via
 * the pointer-batch run_functional_batch hook. Time is virtual
 * (serve/clock.hh): the engine advances its clock from event to event
 * — next arrival, in-flight completion, batch-window expiry — and a
 * batch's modelled service time is its deterministic BCE cycle count
 * scaled by cyclesPerTick. Nothing observable reads wall-clock or
 * scheduling order:
 *
 *  - batch compositions depend only on the trace and the config;
 *  - outputs are bit-identical to running the same inputs through
 *    run_functional_batch directly (the dispatch IS that call);
 *  - stats and the batch log are byte-identical for any worker-thread
 *    count, because the only parallelism is inside the batch runner,
 *    whose totals are thread-count-invariant by construction (PR 5).
 *
 * The engine therefore doubles as its own test harness: replaying a
 * fixed-seed trace twice, or at --threads 1 vs 8, must produce the
 * same bytes, and CI diffs exactly that.
 */

#ifndef BFREE_SERVE_SERVER_HH
#define BFREE_SERVE_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bce/bce.hh"
#include "core/functional.hh"
#include "core/network_plan.hh"
#include "sim/types.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

#include "serve/batcher.hh"
#include "serve/clock.hh"
#include "serve/queue.hh"
#include "serve/request.hh"
#include "serve/stats.hh"
#include "serve/trace.hh"

namespace bfree::serve {

/** Everything a serving run is parameterized by. */
struct ServeConfig
{
    /** Admission bound of the request queue. */
    std::size_t queueDepth = 64;

    /** Batch-forming policy. */
    BatcherConfig batcher;

    /** Worker threads of the batch dispatch pool (0 = hardware). */
    unsigned threads = 0;

    /**
     * Service-time scale: modelled BCE cycles per serve tick. The
     * service time of a batch is its summed per-input cycle count
     * divided by this (at least minServiceTicks), so the latency
     * distribution is a pure function of the workload.
     */
    std::uint64_t cyclesPerTick = 1000;

    /** Floor of any batch's service time. */
    sim::Tick minServiceTicks = 1;

    /**
     * Advertised SLO deadline in ticks (sim::max_tick = none). Only
     * read by the static serve-config audit: a batching window or
     * service floor that cannot fit inside it is rejected at engine
     * construction (rules serve-window / serve-service).
     */
    sim::Tick sloDeadlineTicks = sim::max_tick;

    /** Histogram shapes of the stats group. */
    ServeStatsConfig stats;

    /** Datapath construction knobs (forwarded to the batch runner). */
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    bce::ExecTier tier = bce::ExecTier::Tiered;
};

/** Everything one replay produced. */
struct ReplayReport
{
    /**
     * Completed requests in completion order, stamps filled in
     * (inputs still attached). Rejected requests appear in the batch
     * log and the stats, not here.
     */
    std::vector<Request> served;

    /**
     * Outputs indexed by request id (== trace index). A request that
     * was rejected or never completed leaves an empty tensor.
     */
    std::vector<dnn::FloatTensor> outputs;

    /**
     * The deterministic schedule record: one line per admission
     * rejection and per dispatched batch (composition, service time,
     * completion tick). Byte-identical across runs and thread counts
     * for the same trace + config.
     */
    std::string batchLog;

    /** Summed datapath activity across every dispatched batch. */
    bce::BceStats datapathStats;

    /** Summed datapath energy (joules) across every dispatched batch. */
    double energyJoules = 0.0;

    /** Virtual tick at which the last request completed. */
    sim::Tick endTick = 0;
};

/** Serves a compiled plan against arrival traces. */
class ServeEngine
{
  public:
    /** @p plan must outlive the engine; the config is copied. */
    ServeEngine(const core::NetworkPlan &plan, ServeConfig cfg = {});

    const ServeConfig &config() const { return cfg; }

    /**
     * Replay @p trace to completion (every admitted request served)
     * and return the schedule, outputs and datapath totals. Stats
     * accumulate into stats() across calls; reset with
     * stats().resetAll() for independent runs.
     */
    ReplayReport replay(const ArrivalTrace &trace);

    /** The engine's SLO accounting group. */
    ServeStats &stats() { return stats_; }
    const ServeStats &stats() const { return stats_; }

  private:
    const core::NetworkPlan &plan;
    const ServeConfig cfg;
    ServeStats stats_;
};

} // namespace bfree::serve

#endif // BFREE_SERVE_SERVER_HH
