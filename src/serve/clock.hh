/**
 * @file
 * The serving layer's injected clock.
 *
 * Nothing in src/serve reads wall-clock time. Every component takes a
 * VirtualClock supplied by its driver — the trace-replay engine in
 * steady control of simulated time, or a test advancing it by hand —
 * so every scheduling decision (admission stamp, window expiry, batch
 * dispatch, completion) is a pure function of the arrival trace and
 * the configuration, replayable byte-for-byte.
 *
 * Serve ticks are an abstract scheduler unit, not the picosecond
 * sim::Tick of the event engine: the replay engine maps modelled BCE
 * cycles onto them through ServeConfig::cyclesPerTick. The underlying
 * integer type is shared (sim::Tick) so arithmetic and sentinels
 * (max_tick) carry over.
 */

#ifndef BFREE_SERVE_CLOCK_HH
#define BFREE_SERVE_CLOCK_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace bfree::serve {

/** A monotonically advancing virtual clock owned by the driver. */
class VirtualClock
{
  public:
    explicit VirtualClock(sim::Tick start = 0) : tick(start) {}

    /** Current virtual time. */
    sim::Tick now() const { return tick; }

    /** Jump forward to @p t; going backwards is a bug in the driver. */
    void
    advanceTo(sim::Tick t)
    {
        if (t < tick)
            bfree_panic("serve clock moved backwards: ", tick, " -> ", t);
        tick = t;
    }

    /** Advance by @p delta ticks. */
    void advanceBy(sim::Tick delta) { tick += delta; }

  private:
    sim::Tick tick;
};

} // namespace bfree::serve

#endif // BFREE_SERVE_CLOCK_HH
