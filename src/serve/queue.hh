/**
 * @file
 * A bounded, thread-safe request queue with admission control.
 *
 * The queue is the only mutable state shared between producers (load
 * generators, RPC handlers) and the batcher, so it owns the one lock
 * in the serving layer. Admission is decided under that lock and the
 * outcome is returned to the caller with a reason — a full queue
 * rejects (bounded memory, bounded queueing delay), a closed queue
 * rejects (drain for shutdown), and a zero-tick deadline rejects
 * (service takes at least one tick, so admitting it manufactures a
 * guaranteed SLO miss).
 *
 * Replay determinism does not come from the lock: the trace-replay
 * engine feeds the queue from a single driver thread in trace order,
 * so FIFO order is the arrival order by construction. The lock makes
 * the same queue safe for live multi-producer use (exercised under
 * TSan in tests/serve).
 */

#ifndef BFREE_SERVE_QUEUE_HH
#define BFREE_SERVE_QUEUE_HH

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "sim/types.hh"

#include "serve/request.hh"

namespace bfree::serve {

/** Admission outcome; everything but Admitted is a rejection. */
enum class AdmitResult
{
    Admitted,
    RejectedQueueFull,
    RejectedClosed,
    RejectedZeroDeadline,
};

/** Stable lower-case token for logs and stats. */
const char *admit_result_name(AdmitResult r);

/** Bounded FIFO of admitted requests. */
class RequestQueue
{
  public:
    /** @param maxDepth Admission bound; 0 is a configuration error. */
    explicit RequestQueue(std::size_t maxDepth);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Admit @p r at time @p now, stamping its enqueueTick on success.
     * On rejection @p r is left untouched (the caller may retry or
     * account it).
     */
    AdmitResult tryEnqueue(Request &r, sim::Tick now);

    /**
     * Pop up to @p maxCount requests in FIFO order into @p out
     * (appended). Returns the number popped.
     */
    std::size_t popUpTo(std::size_t maxCount, std::vector<Request> &out);

    /** Requests currently waiting. */
    std::size_t depth() const;

    /** Admission bound this queue was built with. */
    std::size_t maxDepth() const { return bound; }

    /**
     * Enqueue tick of the oldest waiting request; max_tick when the
     * queue is empty. The batcher's window timer reads this.
     */
    sim::Tick oldestEnqueueTick() const;

    /** Stop admitting; waiting requests can still be drained. */
    void close();

    /** True once close() has been called. */
    bool closed() const;

  private:
    const std::size_t bound;
    mutable std::mutex mutex;
    std::deque<Request> waiting;
    bool isClosed = false;
};

} // namespace bfree::serve

#endif // BFREE_SERVE_QUEUE_HH
