#include "serve/batcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::serve {

ContinuousBatcher::ContinuousBatcher(RequestQueue &queue,
                                     BatcherConfig cfg)
    : queue(queue), cfg(cfg)
{
    if (cfg.maxBatch == 0)
        bfree_fatal("continuous batcher needs maxBatch >= 1");
}

sim::Tick
ContinuousBatcher::nextDispatchTick(sim::Tick now) const
{
    const std::size_t depth = queue.depth();
    if (depth == 0)
        return sim::max_tick;
    // A full batch releases immediately; a partial one when the oldest
    // request's window expires (which may already have passed).
    sim::Tick trigger = now;
    if (depth < cfg.maxBatch) {
        const sim::Tick oldest = queue.oldestEnqueueTick();
        trigger = std::max(now, oldest + cfg.windowTicks);
    }
    // Either way, not before the in-flight batch completes.
    return std::max(trigger, inFlightUntil);
}

std::vector<Request>
ContinuousBatcher::tryForm(sim::Tick now)
{
    std::vector<Request> batch;
    if (busy(now))
        return batch;
    const std::size_t depth = queue.depth();
    if (depth == 0)
        return batch;
    const bool full = depth >= cfg.maxBatch;
    const bool windowExpired =
        now >= queue.oldestEnqueueTick() + cfg.windowTicks;
    if (!full && !windowExpired)
        return batch;
    queue.popUpTo(cfg.maxBatch, batch);
    for (Request &r : batch)
        r.dispatchTick = now;
    return batch;
}

void
ContinuousBatcher::noteDispatch(sim::Tick completeTick)
{
    inFlightUntil = completeTick;
}

} // namespace bfree::serve
