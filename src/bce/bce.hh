/**
 * @file
 * The BFree Compute Engine (Section III-A, Fig. 3/6/7).
 *
 * One BCE sits at the edge of each sub-array. It is a three-stage
 * in-order pipeline:
 *
 *   1. fetch/decode the config block (CB) metadata,
 *   2. generate LUT addresses from the operands and operation,
 *   3. accumulate/process partial results into the output registers.
 *
 * The model is simultaneously functional and timed: every operation
 * computes the exact integer result through the LUT datapath (operand
 * analyzer + 49-entry table) while accumulating cycle counts and
 * micro-op statistics. Functional correctness of the LUT path is
 * therefore tested by the same code that produces performance numbers.
 *
 * Execution is tiered (ExecTier). The Legacy tier runs the full operand
 * decomposition on every multiply — it is the reference. The Tiered
 * engine memoizes the decomposition into flat datapath tables (one per
 * mode/precision, seeded BY the legacy path over the whole operand
 * space) and exposes batched span kernels, turning a steady-state MAC
 * into one table read plus integer adds. Both tiers are bit- and
 * stat-exact by construction.
 *
 * Energy is not booked per micro-op. The hot loops keep integer tallies
 * only (cycles per mode, ROM lookups, LUT-row reads, special-function
 * table events); flushEnergy() converts the tallies accumulated since
 * the previous flush into joules in bulk (mem/micro_op_energy) and
 * deposits them into the EnergyAccount. Callers must flush before
 * reading the account.
 *
 * Throughput matches the paper:
 *   - conv mode:   0.5 8-bit MAC/cycle  (1 MUX, 1 adder, 2 shifters)
 *   - matmul mode: 4   8-bit MAC/cycle  (switch MUX + hardwired ROM,
 *                                        8 multiplies every 2 cycles)
 *   - 4-bit operands double both rates.
 */

#ifndef BFREE_BCE_BCE_HH
#define BFREE_BCE_BCE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "config_block.hh"
#include "isa.hh"
#include "lut/datapath_table.hh"
#include "lut/division.hh"
#include "lut/fixed_point.hh"
#include "lut/mult_lut.hh"
#include "lut/operand_analyzer.hh"
#include "lut/pwl.hh"
#include "mem/energy_account.hh"
#include "mem/micro_op_energy.hh"
#include "mem/subarray.hh"

namespace bfree::bce {

/** Datapath configuration of the BCE. */
enum class BceMode
{
    Conv,    ///< Fig. 6 sequential dot-product pipeline.
    Matmul,  ///< Fig. 7 broadcast pipeline with the hardwired ROM.
    Special, ///< Activation / pooling / division / requantize.
};

/** Width of the input/output register files (Fig. 7: 8 operands). */
constexpr unsigned bce_vector_width = 8;

/** Aggregate BCE statistics. All integers: the authoritative record the
 *  bulk energy conversion is derived from. */
struct BceStats
{
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;
    std::uint64_t configLoads = 0;
    lut::MicroOpCounts counts;
    /** cycles split per BceMode (Conv, Matmul, Special): each mode
     *  draws different datapath power. */
    std::array<std::uint64_t, 3> cyclesByMode{};
    std::uint64_t lutReadsPim = 0;   ///< Conv-path LUT reads, lut_en = 1.
    std::uint64_t lutReadsCache = 0; ///< Conv-path LUT reads, lut_en = 0.
    std::uint64_t specialLutEvents = 0; ///< PWL / division table fetches.

    /** Component-wise accumulate (batch runs merge per-input deltas). */
    BceStats &
    operator+=(const BceStats &o)
    {
        cycles += o.cycles;
        macs += o.macs;
        configLoads += o.configLoads;
        counts += o.counts;
        for (std::size_t i = 0; i < cyclesByMode.size(); ++i)
            cyclesByMode[i] += o.cyclesByMode[i];
        lutReadsPim += o.lutReadsPim;
        lutReadsCache += o.lutReadsCache;
        specialLutEvents += o.specialLutEvents;
        return *this;
    }

    /** Component-wise difference: the activity between two snapshots. */
    BceStats
    operator-(const BceStats &o) const
    {
        BceStats d;
        d.cycles = cycles - o.cycles;
        d.macs = macs - o.macs;
        d.configLoads = configLoads - o.configLoads;
        d.counts = counts - o.counts;
        for (std::size_t i = 0; i < cyclesByMode.size(); ++i)
            d.cyclesByMode[i] = cyclesByMode[i] - o.cyclesByMode[i];
        d.lutReadsPim = lutReadsPim - o.lutReadsPim;
        d.lutReadsCache = lutReadsCache - o.lutReadsCache;
        d.specialLutEvents = specialLutEvents - o.specialLutEvents;
        return d;
    }
};

/**
 * The per-sub-array compute engine.
 */
class Bce
{
  public:
    /**
     * @param subarray Sub-array this BCE is attached to; supplies the
     *                 LUT rows and weight storage.
     */
    Bce(mem::Subarray &subarray, const tech::TechParams &tech,
        mem::EnergyAccount &energy);

    /** Current datapath mode. */
    BceMode mode() const { return _mode; }

    /** Switch datapath mode (reconfiguration, takes one cycle). */
    void setMode(BceMode mode);

    /** Select the execution tier (exact either way; see file header). */
    void setTier(ExecTier tier) { _tier = tier; }

    /** Active execution tier. */
    ExecTier tier() const { return _tier; }

    /**
     * Load the 49-entry multiply image into the sub-array LUT rows;
     * required before conv-mode execution.
     */
    void loadMultLutImage();

    /** Stage 1: fetch and decode a config block (one cycle). */
    void loadConfig(const ConfigBlock &cb);

    /** Most recently decoded config block. */
    const ConfigBlock &config() const { return cb; }

    // ------------------------------------------------------------------
    // Arithmetic (functional + timed)
    // ------------------------------------------------------------------
    /**
     * Multiply two signed operands of @p bits precision through the
     * LUT path of the current mode: matmul mode fetches partial
     * products from the hardwired ROM; conv/special mode reads the
     * sub-array LUT rows.
     */
    std::int64_t multiply(std::int32_t a, std::int32_t b, unsigned bits);

    /**
     * Conv-mode dot product: weights are read from the sub-array at
     * @p weight_offset, inputs arrive from the stream register.
     * Returns the exact int32 dot product.
     */
    std::int32_t dotProduct(std::size_t weight_offset,
                            const std::int8_t *inputs, std::size_t len,
                            unsigned bits);

    /**
     * Conv-mode dot product over two host-resident operand spans (an
     * im2col patch against a filter row). Identical arithmetic and
     * accounting to dotProduct() minus the sub-array weight fetch:
     * per-element multiply micro-ops, len-1 accumulator adds,
     * len * bits/4 cycles, len MACs. The Tiered engine serves each
     * element from the memoized conv table.
     */
    std::int32_t dotProductSpan(const std::int8_t *weights,
                                const std::int8_t *inputs,
                                std::size_t len, unsigned bits);

    /**
     * Matmul-mode broadcast step: one A operand against @p n <= 8
     * B operands, accumulating into @p acc (Fig. 7). Consumes
     * bits/4 cycles regardless of n.
     */
    void broadcastMac(std::int32_t a, const std::int8_t *b, std::size_t n,
                      std::int32_t *acc, unsigned bits);

    /**
     * Matmul-mode dot product over two spans: exactly equivalent to
     * len single-lane broadcastMac() steps (per element: ROM micro-ops,
     * one lane add, bits/4 cycles, one MAC). Returns the int32
     * accumulator.
     */
    std::int32_t matmulDotSpan(const std::int8_t *a,
                               const std::int8_t *b, std::size_t len,
                               unsigned bits);

    /**
     * Blocked matmul tile: A is m x k row-major, BT is the transposed
     * B tile (n x k row-major, so both operands stream contiguously),
     * and out (m x n row-major) is accumulated in place:
     * out[i][j] += dot(A[i], BT[j]). Equivalent to m*n matmulDotSpan()
     * calls.
     */
    void matmulTile(const std::int8_t *a, const std::int8_t *bt,
                    std::int32_t *out, std::size_t m, std::size_t k,
                    std::size_t n, unsigned bits);

    /** Accumulate a partial sum arriving from the systolic neighbour. */
    std::int32_t accumulateIncoming(std::int32_t local,
                                    std::int32_t incoming);

    // ------------------------------------------------------------------
    // Special functions
    // ------------------------------------------------------------------
    /** Evaluate a PWL table (sigmoid/tanh/exp); two cycles. */
    double evaluatePwl(const lut::PwlTable &table, double x);

    /** LUT division (Section III-C2); four cycles. */
    double divide(double x, double y, const lut::DivisionLut &div);

    /** Max reduction over @p n values (ReLU / max pooling). */
    std::int32_t maxReduce(const std::int32_t *values, std::size_t n);

    /** Average pooling: accumulate then LUT-divide. */
    double avgPool(const std::int32_t *values, std::size_t n,
                   const lut::DivisionLut &div);

    /** gemmlowp requantization on the BCE datapath; three cycles. */
    std::int32_t requantize(std::int32_t acc,
                            const lut::RequantScale &scale,
                            std::int32_t zero_point, unsigned out_bits);

    // ------------------------------------------------------------------
    // Rates and statistics
    // ------------------------------------------------------------------
    /** MAC throughput per cycle for a mode/precision pair. */
    static double macsPerCycle(BceMode mode, unsigned bits);

    /** Cycles consumed so far. */
    std::uint64_t cycles() const { return stats_.cycles; }

    /** MACs executed so far. */
    std::uint64_t macs() const { return stats_.macs; }

    /** Full statistics. */
    const BceStats &stats() const { return stats_; }

    /**
     * Convert the integer tallies accumulated since the previous flush
     * into joules and deposit them into the EnergyAccount. Must be
     * called before the account is read; idempotent when nothing new
     * has been tallied.
     */
    void flushEnergy();

    /** The attached sub-array. */
    mem::Subarray &subarray() { return *sa; }

    /** Times a conv-mode datapath table has been (re)seeded — lets
     *  tests prove a LUT-row rewrite mid-batch forces a reseed and a
     *  matching generation does not. */
    std::uint64_t convTableSeeds() const { return convSeeds_; }

  private:
    /** Tally @p n datapath cycles against the current mode. */
    void chargeCycles(std::uint64_t n);

    /** Record conv-path LUT-row reads (mode-dependent cost category). */
    void noteConvLutReads(std::uint64_t n);

    /** 4-bit multiply with partial products from the sub-array LUT;
     *  micro-ops land in @p counts (no stats/energy side effects, so
     *  the same code both executes and seeds memo tables). */
    std::int64_t lutMultiply4(unsigned a, unsigned b,
                              lut::MicroOpCounts &counts);

    /** Signed multiply routed through the sub-array LUT rows;
     *  side-effect-free except for @p counts. */
    std::int64_t multiplyViaSubarrayLut(std::int32_t a, std::int32_t b,
                                        unsigned bits,
                                        lut::MicroOpCounts &counts);

    /** Memoized conv-mode table for @p bits (4 or 8); reseeded from the
     *  legacy path whenever the sub-array LUT generation moves. */
    const lut::DatapathTable &convTable(unsigned bits);

    /** Memoized matmul-mode (hardwired ROM) table for @p bits. */
    const lut::DatapathTable &romTable(unsigned bits);

    mem::Subarray *sa;
    tech::TechParams tech;
    mem::EnergyAccount *energy;
    lut::MultLut rom; ///< Hardwired multiply ROM inside the BCE.
    ConfigBlock cb;
    BceMode _mode = BceMode::Conv;
    ExecTier _tier = ExecTier::Legacy;
    BceStats stats_;
    mem::BceEnergyTallies flushed_; ///< Tallies already converted.
    lut::DatapathTable convTable4_, convTable8_;
    lut::DatapathTable romTable4_, romTable8_;
    std::uint64_t convSeeds_ = 0; ///< Conv-table (re)seed count.
    bool multLutLoaded = false;
};

} // namespace bfree::bce

#endif // BFREE_BCE_BCE_HH
