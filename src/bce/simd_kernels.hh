/**
 * @file
 * Vectorized span kernels over the SoA datapath tables.
 *
 * These kernels are the steady-state inner loops of the tiered
 * execution engine: given two int8 operand spans and a memoized
 * lut::DatapathTable, they produce the wrapped int32 accumulator plus
 * the summed micro-op tallies — exactly the values the scalar tiered
 * loop in bce.cc used to accumulate element by element, so the caller
 * books identical statistics (and therefore identical energy) no
 * matter which ISA variant ran.
 *
 * Two tally strategies exist, selectable with BFREE_TIERED_TALLY and
 * verified byte-identical against each other and the scalar loop:
 *
 *  - HISTOGRAM (default, the gather-free steady state): products come
 *    from a SIMD widening multiply and the micro-op tallies from the
 *    table's verified 256-bin class-pair collapse
 *    (DatapathTable::pairDeltas). The fold is computed in factored
 *    form — four per-class feature dot products accumulated with byte
 *    shuffles and maddubs, mathematically identical to materializing
 *    the 256-bin histogram and folding it against pairDeltas(), but
 *    without the store-forwarding stalls a binned counter array
 *    suffers on skewed class distributions. Eligible only when the
 *    table reports productsExact() AND histogramExact(); anything
 *    else — a poisoned LUT row, a reference whose counts defeat the
 *    class collapse, 4-bit clamp/strict spans — takes the gather
 *    path.
 *
 *  - GATHER (the fallback, also forceable for differential testing):
 *    the per-element delta-plane gather of the original SoA engine,
 *    with software prefetch on the operand streams.
 *
 * Variant selection is runtime CPU dispatch (sim/cpuid): one binary
 * carries scalar, SSE4.2, AVX2, AVX-512 and NEON paths, and CI pins
 * each via BFREE_FORCE_SCALAR / BFREE_FORCE_ISA / BFREE_TIERED_TALLY
 * to differentially verify them all on one host.
 */

#ifndef BFREE_BCE_SIMD_KERNELS_HH
#define BFREE_BCE_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "lut/datapath_table.hh"

namespace bfree::bce::simd {

/** Everything a span kernel accumulates. */
struct SpanSums
{
    /** Wrapped int32 sum of per-pair products (identical to the
     *  truncated int64 accumulation of the scalar loop). */
    std::int32_t acc = 0;
    std::uint64_t lookups = 0; ///< LUT-row or ROM reads (table source).
    std::uint64_t shifts = 0;
    std::uint64_t adds = 0;    ///< Intra-multiply adds only.
    std::uint64_t cycles = 0;
    /** False when MatmulStrict found an out-of-domain operand; the
     *  caller must reproduce the legacy analyzer panic. */
    bool inRange = true;
    std::size_t firstOutOfRange = 0;
};

/** Domain handling for operands outside [-2^(bits-1), +2^(bits-1)]. */
enum class SpanSemantics
{
    /** Conv spans clamp 4-bit operands to [-8, 7] like the legacy
     *  dotProduct. */
    ConvClamp,
    /** Matmul spans must refuse out-of-domain operands (the legacy
     *  analyzer panics); the kernel reports the first offender. */
    MatmulStrict,
};

/** Micro-op tally strategy for the dispatched span kernels. */
enum class TallyMode
{
    /** Gather-free class tally from pairDeltas() where the table
     *  qualifies; the default. */
    Histogram = 0,
    /** Per-element delta-plane gather everywhere (the fallback path,
     *  pinnable for differential testing and ablation). */
    Gather = 1,
};

/** Human-readable name ("histogram", "gather"). */
const char *tally_mode_name(TallyMode mode);

/**
 * The tally strategy the dispatcher uses: Histogram unless the
 * BFREE_TIERED_TALLY environment override says otherwise. Resolved
 * once and cached; an unknown value is fatal at first use.
 */
TallyMode active_tally_mode();

/** Pin the tally mode programmatically (tests/benchmarks). */
void force_tally_mode(TallyMode mode);

/** Drop a force_tally_mode pin and re-resolve from the environment. */
void reset_tally_mode();

/**
 * Run the dispatched span kernel: sum of products and micro-op
 * tallies for a[i] * b[i], i in [0, len), served from @p table.
 * The table must be valid and cover both operand spans' precision.
 */
SpanSums run_span(const lut::DatapathTable &table, const std::int8_t *a,
                  const std::int8_t *b, std::size_t len,
                  SpanSemantics semantics);

/**
 * A strided view of an int8 operand span: the logical span is nRuns
 * runs of runLen bytes each, run i starting at base + offsets[i] (or
 * base + i * stride when offsets is null). This is how the elided
 * conv front end addresses im2col patches in place over the quantized
 * input plane — base advances by strideW per output position, the
 * offsets/stride describe the (channel, kernel-row) runs — without
 * materializing a patch per (position, filter) pair.
 */
struct SpanView
{
    const std::int8_t *base = nullptr;
    /** Per-run byte offsets from base; null selects the uniform
     *  stride addressing below. */
    const std::int32_t *offsets = nullptr;
    /** Run-to-run byte stride when offsets is null. */
    std::size_t stride = 0;
    std::size_t nRuns = 0;
    std::size_t runLen = 0;

    /** Slack bytes slack8 callers reserve past source and dest. */
    static constexpr std::size_t slackBytes = 8;

    /**
     * The caller guarantees slackBytes readable bytes from every run's
     * start in the source AND slackBytes writable bytes from every
     * run's start in the destination (i.e. both buffers carry >= 8
     * bytes of slack past the last touched byte). Lets short runs copy
     * a full 8-byte word each — earlier runs' overshoot is overwritten
     * by later runs, the last run's lands in the slack — roughly
     * halving the cost of the 3-byte runs a 3x3 conv produces. With
     * slack8 false every write is exact-width.
     */
    bool slack8 = false;

    std::size_t len() const { return nRuns * runLen; }
};

/**
 * Compact @p view into the contiguous @p dst span (len() bytes) that
 * run_span consumes. Exactly the bytes im2col_patch_i8 would have
 * copied, but with the per-run layer-geometry branching hoisted out:
 * the inner loop is fixed-width loads/stores specialized per run
 * length, roughly an order of magnitude cheaper than the per-run
 * clip-and-memcpy walk for the 3-byte runs a 3x3 conv produces.
 * Without view.slack8 it writes exactly len() bytes — no padding, no
 * overshoot; with it, up to 8 - runLen bytes past len() are clobbered
 * (the slack the caller reserved).
 */
void materialize_span_view(const SpanView &view, std::int8_t *dst);

/**
 * Materialize @p nPatches consecutive patches in one call: patch j
 * reads its runs at view.base + j * srcStep and writes to
 * dst + j * dstStep. For the stride-1 conv row this transposes the
 * loop — each run's sources across the row are consecutive bytes, so
 * the run offset is loaded once per row instead of once per patch —
 * which is worth ~2x over nPatches separate materialize_span_view
 * calls. Slack requirements (view.slack8) are per patch, i.e. 8 bytes
 * past every run start of every patch on both sides.
 */
void materialize_span_block(const SpanView &view, std::size_t nPatches,
                            std::size_t srcStep, std::int8_t *dst,
                            std::size_t dstStep);

} // namespace bfree::bce::simd

#endif // BFREE_BCE_SIMD_KERNELS_HH
