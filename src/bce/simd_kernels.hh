/**
 * @file
 * Vectorized span kernels over the SoA datapath tables.
 *
 * These kernels are the steady-state inner loops of the tiered
 * execution engine: given two int8 operand spans and a memoized
 * lut::DatapathTable, they produce the wrapped int32 accumulator plus
 * the summed micro-op tallies — exactly the values the scalar tiered
 * loop in bce.cc used to accumulate element by element, so the caller
 * books identical statistics (and therefore identical energy) no
 * matter which ISA variant ran.
 *
 * Products are computed with a SIMD widening multiply whenever the
 * table's product plane is exact (DatapathTable::productsExact, the
 * pristine-LUT steady state); a poisoned table instead gathers from
 * the product plane, preserving bit-exactness against the legacy
 * scalar decomposition in both regimes. The packed micro-op deltas
 * are accumulated with a blocked tally pass: byte fields are summed
 * in wide lanes and spilled to 64-bit totals before any lane can
 * saturate.
 *
 * Variant selection is runtime CPU dispatch (sim/cpuid): one binary
 * carries scalar, SSE4.2, AVX2 and NEON paths, and CI pins each via
 * BFREE_FORCE_SCALAR / BFREE_FORCE_ISA to differentially verify them
 * all on one host.
 */

#ifndef BFREE_BCE_SIMD_KERNELS_HH
#define BFREE_BCE_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "lut/datapath_table.hh"

namespace bfree::bce::simd {

/** Everything a span kernel accumulates. */
struct SpanSums
{
    /** Wrapped int32 sum of per-pair products (identical to the
     *  truncated int64 accumulation of the scalar loop). */
    std::int32_t acc = 0;
    std::uint64_t lookups = 0; ///< LUT-row or ROM reads (table source).
    std::uint64_t shifts = 0;
    std::uint64_t adds = 0;    ///< Intra-multiply adds only.
    std::uint64_t cycles = 0;
    /** False when MatmulStrict found an out-of-domain operand; the
     *  caller must reproduce the legacy analyzer panic. */
    bool inRange = true;
    std::size_t firstOutOfRange = 0;
};

/** Domain handling for operands outside [-2^(bits-1), +2^(bits-1)]. */
enum class SpanSemantics
{
    /** Conv spans clamp 4-bit operands to [-8, 7] like the legacy
     *  dotProduct. */
    ConvClamp,
    /** Matmul spans must refuse out-of-domain operands (the legacy
     *  analyzer panics); the kernel reports the first offender. */
    MatmulStrict,
};

/**
 * Run the dispatched span kernel: sum of products and micro-op
 * tallies for a[i] * b[i], i in [0, len), served from @p table.
 * The table must be valid and cover both operand spans' precision.
 */
SpanSums run_span(const lut::DatapathTable &table, const std::int8_t *a,
                  const std::int8_t *b, std::size_t len,
                  SpanSemantics semantics);

} // namespace bfree::bce::simd

#endif // BFREE_BCE_SIMD_KERNELS_HH
