/**
 * @file
 * Vectorized span kernels over the SoA datapath tables.
 *
 * These kernels are the steady-state inner loops of the tiered
 * execution engine: given two int8 operand spans and a memoized
 * lut::DatapathTable, they produce the wrapped int32 accumulator plus
 * the summed micro-op tallies — exactly the values the scalar tiered
 * loop in bce.cc used to accumulate element by element, so the caller
 * books identical statistics (and therefore identical energy) no
 * matter which ISA variant ran.
 *
 * Two tally strategies exist, selectable with BFREE_TIERED_TALLY and
 * verified byte-identical against each other and the scalar loop:
 *
 *  - HISTOGRAM (default, the gather-free steady state): products come
 *    from a SIMD widening multiply and the micro-op tallies from the
 *    table's verified 256-bin class-pair collapse
 *    (DatapathTable::pairDeltas). The fold is computed in factored
 *    form — four per-class feature dot products accumulated with byte
 *    shuffles and maddubs, mathematically identical to materializing
 *    the 256-bin histogram and folding it against pairDeltas(), but
 *    without the store-forwarding stalls a binned counter array
 *    suffers on skewed class distributions. Eligible only when the
 *    table reports productsExact() AND histogramExact(); anything
 *    else — a poisoned LUT row, a reference whose counts defeat the
 *    class collapse, 4-bit clamp/strict spans — takes the gather
 *    path.
 *
 *  - GATHER (the fallback, also forceable for differential testing):
 *    the per-element delta-plane gather of the original SoA engine,
 *    with software prefetch on the operand streams.
 *
 * Variant selection is runtime CPU dispatch (sim/cpuid): one binary
 * carries scalar, SSE4.2, AVX2, AVX-512 and NEON paths, and CI pins
 * each via BFREE_FORCE_SCALAR / BFREE_FORCE_ISA / BFREE_TIERED_TALLY
 * to differentially verify them all on one host.
 */

#ifndef BFREE_BCE_SIMD_KERNELS_HH
#define BFREE_BCE_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "lut/datapath_table.hh"

namespace bfree::bce::simd {

/** Everything a span kernel accumulates. */
struct SpanSums
{
    /** Wrapped int32 sum of per-pair products (identical to the
     *  truncated int64 accumulation of the scalar loop). */
    std::int32_t acc = 0;
    std::uint64_t lookups = 0; ///< LUT-row or ROM reads (table source).
    std::uint64_t shifts = 0;
    std::uint64_t adds = 0;    ///< Intra-multiply adds only.
    std::uint64_t cycles = 0;
    /** False when MatmulStrict found an out-of-domain operand; the
     *  caller must reproduce the legacy analyzer panic. */
    bool inRange = true;
    std::size_t firstOutOfRange = 0;
};

/** Domain handling for operands outside [-2^(bits-1), +2^(bits-1)]. */
enum class SpanSemantics
{
    /** Conv spans clamp 4-bit operands to [-8, 7] like the legacy
     *  dotProduct. */
    ConvClamp,
    /** Matmul spans must refuse out-of-domain operands (the legacy
     *  analyzer panics); the kernel reports the first offender. */
    MatmulStrict,
};

/** Micro-op tally strategy for the dispatched span kernels. */
enum class TallyMode
{
    /** Gather-free class tally from pairDeltas() where the table
     *  qualifies; the default. */
    Histogram = 0,
    /** Per-element delta-plane gather everywhere (the fallback path,
     *  pinnable for differential testing and ablation). */
    Gather = 1,
};

/** Human-readable name ("histogram", "gather"). */
const char *tally_mode_name(TallyMode mode);

/**
 * The tally strategy the dispatcher uses: Histogram unless the
 * BFREE_TIERED_TALLY environment override says otherwise. Resolved
 * once and cached; an unknown value is fatal at first use.
 */
TallyMode active_tally_mode();

/** Pin the tally mode programmatically (tests/benchmarks). */
void force_tally_mode(TallyMode mode);

/** Drop a force_tally_mode pin and re-resolve from the environment. */
void reset_tally_mode();

/**
 * Run the dispatched span kernel: sum of products and micro-op
 * tallies for a[i] * b[i], i in [0, len), served from @p table.
 * The table must be valid and cover both operand spans' precision.
 */
SpanSums run_span(const lut::DatapathTable &table, const std::int8_t *a,
                  const std::int8_t *b, std::size_t len,
                  SpanSemantics semantics);

} // namespace bfree::bce::simd

#endif // BFREE_BCE_SIMD_KERNELS_HH
