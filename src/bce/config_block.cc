#include "config_block.hh"

namespace bfree::bce {

std::array<std::uint8_t, ConfigBlock::encoded_size>
ConfigBlock::encode() const
{
    std::array<std::uint8_t, encoded_size> bytes{};
    bytes[0] = static_cast<std::uint8_t>(opcode);
    bytes[1] = precisionBits;
    bytes[2] = static_cast<std::uint8_t>(iterations & 0xFF);
    bytes[3] = static_cast<std::uint8_t>(iterations >> 8);
    bytes[4] = static_cast<std::uint8_t>(startRow & 0xFF);
    bytes[5] = static_cast<std::uint8_t>(startRow >> 8);
    bytes[6] = static_cast<std::uint8_t>(endRow & 0xFF);
    bytes[7] = static_cast<std::uint8_t>(endRow >> 8);
    return bytes;
}

std::optional<ConfigBlock>
ConfigBlock::decode(const std::array<std::uint8_t, encoded_size> &bytes)
{
    if (bytes[0] > static_cast<std::uint8_t>(PimOpcode::LayerNorm))
        return std::nullopt;

    ConfigBlock cb;
    cb.opcode = static_cast<PimOpcode>(bytes[0]);
    cb.precisionBits = bytes[1];
    cb.iterations =
        static_cast<std::uint16_t>(bytes[2] | (bytes[3] << 8));
    cb.startRow = static_cast<std::uint16_t>(bytes[4] | (bytes[5] << 8));
    cb.endRow = static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
    return cb;
}

} // namespace bfree::bce
