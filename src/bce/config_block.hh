/**
 * @file
 * Per-sub-array configuration block (CB).
 *
 * The CB lives in reduced-access-cost rows of the sub-array and carries
 * the metadata a BCE needs to execute its share of a kernel: opcode,
 * precision, iteration count, and the start/end addresses of the weight
 * region (Fig. 3). It is written by the slice controller during the
 * configuration phase and fetched by the BCE's first pipeline stage.
 */

#ifndef BFREE_BCE_CONFIG_BLOCK_HH
#define BFREE_BCE_CONFIG_BLOCK_HH

#include <array>
#include <cstdint>
#include <optional>

#include "isa.hh"

namespace bfree::bce {

/** Decoded config-block contents. */
struct ConfigBlock
{
    PimOpcode opcode = PimOpcode::Matmul;
    std::uint8_t precisionBits = 8;
    std::uint16_t iterations = 0;  ///< Compute steps for this sub-array.
    std::uint16_t startRow = 0;    ///< First weight row in the sub-array.
    std::uint16_t endRow = 0;      ///< One past the last weight row.

    bool operator==(const ConfigBlock &) const = default;

    /** Serialized CB size in bytes. */
    static constexpr std::size_t encoded_size = 8;

    /** Pack into the byte layout stored in the sub-array. */
    std::array<std::uint8_t, encoded_size> encode() const;

    /** Unpack. Returns std::nullopt on a malformed opcode byte —
     *  callers surface that as a cb-opcode-byte lint diagnostic
     *  rather than aborting. */
    static std::optional<ConfigBlock> decode(
        const std::array<std::uint8_t, encoded_size> &bytes);
};

} // namespace bfree::bce

#endif // BFREE_BCE_CONFIG_BLOCK_HH
