#include "isa.hh"

#include <sstream>

namespace bfree::bce {

const char *
opcode_name(PimOpcode op)
{
    switch (op) {
      case PimOpcode::Conv:
        return "conv";
      case PimOpcode::Matmul:
        return "matmul";
      case PimOpcode::MaxPool:
        return "maxpool";
      case PimOpcode::AvgPool:
        return "avgpool";
      case PimOpcode::Relu:
        return "relu";
      case PimOpcode::Sigmoid:
        return "sigmoid";
      case PimOpcode::Tanh:
        return "tanh";
      case PimOpcode::Exp:
        return "exp";
      case PimOpcode::Softmax:
        return "softmax";
      case PimOpcode::Divide:
        return "divide";
      case PimOpcode::EwAdd:
        return "ewadd";
      case PimOpcode::EwMul:
        return "ewmul";
      case PimOpcode::Requantize:
        return "requantize";
      case PimOpcode::LayerNorm:
        return "layernorm";
    }
    return "?";
}

bool
is_matmul_mode(PimOpcode op)
{
    return op == PimOpcode::Matmul;
}

std::string
PimInstruction::toString() const
{
    std::ostringstream os;
    os << opcode_name(opcode) << " " << rows << "x" << cols << "x" << inner
       << " @" << precisionBits << "b";
    return os.str();
}

} // namespace bfree::bce
