/**
 * @file
 * Event-driven model of the BCE's three-stage in-order pipeline
 * (Section III-A): (1) CB fetch/decode, (2) LUT address generation,
 * (3) accumulate/writeback.
 *
 * The functional Bce charges aggregate cycles; this model resolves the
 * pipeline cycle by cycle to expose fill/drain latency and the one
 * structural hazard the design has — the single sub-array LUT read
 * port shared by consecutive odd x odd operations in stage 2. Tests
 * pin the steady-state throughput (one micro-op per cycle when no
 * hazard), the 3-cycle latency, and the stall arithmetic.
 */

#ifndef BFREE_BCE_PIPELINE_SIM_HH
#define BFREE_BCE_PIPELINE_SIM_HH

#include <cstdint>
#include <vector>

namespace bfree::bce {

/** Stage-2 resource a micro-op needs. */
enum class UopResource
{
    None,    ///< Decode-only (bypass multiply by 0/1).
    Shifter, ///< Power-of-two path.
    LutPort, ///< Sub-array LUT read (odd x odd).
    RomPort, ///< Hardwired multiply-ROM read.
};

/** One micro-op fed to the pipeline. */
struct PipelineUop
{
    UopResource resource = UopResource::Shifter;
    /** Stage-2 occupancy in cycles (LUT reads take lutPortCycles). */
    unsigned stage2Cycles = 1;
};

/** Result of a pipeline run. */
struct PipelineRunResult
{
    std::uint64_t cycles = 0;     ///< First issue to last writeback.
    std::uint64_t stallCycles = 0;///< Cycles lost to structural hazards.
    std::uint64_t retired = 0;    ///< Micro-ops completed.

    double
    ipc() const
    {
        return cycles > 0 ? static_cast<double>(retired) / cycles : 0.0;
    }
};

/**
 * The three-stage pipeline simulator.
 */
class BcePipelineSim
{
  public:
    /**
     * @param lut_port_cycles Occupancy of the shared LUT port per
     *        lookup (1 at the decoupled-bitline design point; 3 if
     *        the rows shared the full bitline — the Fig. 4 latency
     *        ratio surfacing as pipeline stalls).
     */
    explicit BcePipelineSim(unsigned lut_port_cycles = 1)
        : lutPortCycles(lut_port_cycles)
    {}

    /** Run a micro-op stream through the pipeline to completion. */
    PipelineRunResult run(const std::vector<PipelineUop> &uops) const;

    /** Pipeline depth (fill latency of the first micro-op). */
    static constexpr unsigned depth = 3;

  private:
    unsigned lutPortCycles;
};

/**
 * Closed form: cycles = depth + N - 1 + total stage-2 stalls, where a
 * micro-op whose stage-2 occupancy is c > 1 stalls the next issue by
 * c - 1 cycles.
 */
std::uint64_t pipeline_formula(const std::vector<PipelineUop> &uops,
                               unsigned lut_port_cycles);

} // namespace bfree::bce

#endif // BFREE_BCE_PIPELINE_SIM_HH
