/**
 * @file
 * The PIM instruction set (Section IV-C).
 *
 * BFree adds in-memory kernel instructions, dispatched to the cache
 * controller; one instruction executes one kernel (a network layer).
 * The slice controller expands a kernel into per-sub-array config-block
 * programs that the BCEs fetch and decode in their first pipeline stage.
 */

#ifndef BFREE_BCE_ISA_HH
#define BFREE_BCE_ISA_HH

#include <cstdint>
#include <string>

namespace bfree::bce {

/**
 * Execution tier of the BCE datapath model.
 *
 * Both tiers compute bit-identical products and accumulate identical
 * micro-op statistics (and therefore identical derived energy): the
 * tiered engine is memoized from the legacy scalar decomposition, never
 * re-derived. Legacy remains the reference; Tiered trades a one-time
 * table build per (mode, precision) for constant-time steady-state MACs.
 */
enum class ExecTier : std::uint8_t
{
    Legacy, ///< Reference path: full operand decomposition per multiply.
    Tiered, ///< Memoized datapath tables + batched span kernels.
};

/** Kernel-level PIM opcodes. */
enum class PimOpcode : std::uint8_t
{
    Conv,       ///< Direct convolution (systolic, conv mode).
    Matmul,     ///< Matrix-matrix multiply (matmul mode).
    MaxPool,    ///< Max pooling via the BCE comparator.
    AvgPool,    ///< Average pooling: accumulate + LUT division.
    Relu,       ///< max(0, x) via the comparator.
    Sigmoid,    ///< PWL LUT evaluation.
    Tanh,       ///< PWL LUT evaluation.
    Exp,        ///< PWL LUT evaluation.
    Softmax,    ///< exp LUT + reduction + LUT division.
    Divide,     ///< Element-wise LUT division.
    EwAdd,      ///< Element-wise add.
    EwMul,      ///< Element-wise multiply.
    Requantize, ///< gemmlowp scale + shift + saturate.
    LayerNorm,  ///< Mean/variance normalization (transformers).
};

/** Printable opcode mnemonic. */
const char *opcode_name(PimOpcode op);

/** True for opcodes executed on the matmul-mode datapath. */
bool is_matmul_mode(PimOpcode op);

/**
 * One kernel instruction as seen by the cache controller.
 */
struct PimInstruction
{
    PimOpcode opcode = PimOpcode::Matmul;
    unsigned precisionBits = 8; ///< Operand precision (4, 8 or 16).
    std::uint32_t rows = 0;     ///< Output rows (or elements for 1-D ops).
    std::uint32_t cols = 0;     ///< Output columns.
    std::uint32_t inner = 0;    ///< Reduction length (K).
    std::uint64_t weightBase = 0; ///< Flat address of the weight tile.
    std::uint64_t outputBase = 0; ///< Flat address of the output tile.

    /** Multiply-accumulate count this instruction performs. */
    std::uint64_t
    macs() const
    {
        return std::uint64_t(rows) * cols * inner;
    }

    std::string toString() const;
};

} // namespace bfree::bce

#endif // BFREE_BCE_ISA_HH
