/**
 * @file
 * Cycle-by-cycle BCE pipeline traces (Fig. 6 and Fig. 7).
 *
 * The paper walks through the execution of a small matrix multiply on
 * the conv-mode pipeline (Fig. 6): cycle 0 decodes the config block,
 * cycle 1 streams the first input column and reads the first weight
 * row, cycles 2..N perform one multiply step per cycle — a shift for a
 * power-of-two operand, a pair of shifts plus an add for an even
 * operand split into two powers of two, a LUT access when both odd
 * parts are >= 3 — and the final cycle writes the output register
 * back.
 *
 * This module generates that trace programmatically from operand
 * values, so tests can assert the exact sequence the paper prints, and
 * tools can dump readable pipeline diagrams. The matmul-mode variant
 * reproduces Fig. 7's two-timescale broadcast (LS-4 pass, MS-4 pass,
 * eight products per pass).
 */

#ifndef BFREE_BCE_PIPELINE_TRACE_HH
#define BFREE_BCE_PIPELINE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lut/mult_lut.hh"

namespace bfree::bce {

/** What the datapath did in one cycle. */
enum class TraceAction
{
    DecodeConfig,   ///< Stage 1: CB fetch + decode.
    LoadOperands,   ///< Stream input column + read weight row.
    Shift,          ///< Single shifter pass (power-of-two operand).
    ShiftAddPair,   ///< Two shifts + add (even operand = 2^a + 2^b).
    LutAccess,      ///< Odd x odd product fetched from the LUT rows.
    Bypass,         ///< Multiply by 0/1 resolved at decode.
    Accumulate,     ///< Partial sum added into the output register.
    Writeback,      ///< Output register stored.
    BroadcastLs4,   ///< Fig. 7: low nibble selects the ROM page.
    BroadcastMs4,   ///< Fig. 7: high nibble pass.
    LoadNextRow,    ///< Fig. 7: next B row into the input register.
};

/** Printable action mnemonic. */
const char *trace_action_name(TraceAction action);

/** One trace record. */
struct TraceEvent
{
    std::uint32_t cycle = 0;
    TraceAction action = TraceAction::DecodeConfig;
    std::string detail;

    bool operator==(const TraceEvent &) const = default;
};

/** A complete pipeline trace plus the computed result. */
struct PipelineTrace
{
    std::vector<TraceEvent> events;
    std::int64_t result = 0;
    std::uint32_t cycles = 0;

    /** Events recorded for a given cycle. */
    std::vector<TraceEvent> at(std::uint32_t cycle) const;

    /** Number of events with a given action. */
    std::size_t count(TraceAction action) const;

    /** Render as a readable multi-line diagram. */
    std::string toString() const;
};

/**
 * Trace one conv-mode dot-product step (Fig. 6): multiply the weight
 * vector @p weights (4-bit unsigned values, as in the figure) by the
 * streamed inputs @p inputs and accumulate. Even composite operands
 * use the figure's powers-of-two split.
 */
PipelineTrace trace_conv_dot(const std::vector<unsigned> &weights,
                             const std::vector<unsigned> &inputs,
                             const lut::MultLut &lut);

/**
 * Trace matmul-mode broadcast steps (Fig. 7): each 8-bit A operand
 * takes one LS-4 and one MS-4 pass against up to eight B operands,
 * then the next B row loads.
 */
PipelineTrace trace_matmul_broadcast(
    const std::vector<std::int32_t> &a_operands,
    const std::vector<std::vector<std::int8_t>> &b_rows,
    const lut::MultLut &lut);

/**
 * Split an even value into its two largest powers of two when it is
 * the sum of exactly two (6 = 4 + 2, 12 = 8 + 4, 10 = 8 + 2); other
 * values return an empty vector (they take the odd x 2^k path).
 */
std::vector<unsigned> pow2_pair_split(unsigned v);

} // namespace bfree::bce

#endif // BFREE_BCE_PIPELINE_TRACE_HH
