#include "pipeline_sim.hh"

#include <algorithm>

namespace bfree::bce {

namespace {

unsigned
stage2_occupancy(const PipelineUop &uop, unsigned lut_port_cycles)
{
    unsigned cycles = std::max(1u, uop.stage2Cycles);
    if (uop.resource == UopResource::LutPort)
        cycles = std::max(cycles, lut_port_cycles);
    return cycles;
}

} // namespace

PipelineRunResult
BcePipelineSim::run(const std::vector<PipelineUop> &uops) const
{
    PipelineRunResult r;
    if (uops.empty())
        return r;

    // In-order issue: stage 2 is the only multi-cycle stage, so the
    // pipeline advances one micro-op per cycle except when the LUT/ROM
    // port (or a long shift chain) holds stage 2.
    std::uint64_t issue = 0;        // cycle the uop enters stage 1
    std::uint64_t stage2_free = 1;  // first cycle stage 2 is available
    std::uint64_t last_writeback = 0;

    for (const PipelineUop &uop : uops) {
        const unsigned occupancy = stage2_occupancy(uop, lutPortCycles);

        // Enter stage 2 the cycle after issue, or when the port frees.
        const std::uint64_t stage2_start =
            std::max(issue + 1, stage2_free);
        stage2_free = stage2_start + occupancy;

        last_writeback = stage2_start + occupancy; // stage 3
        ++r.retired;

        // Next uop issues as soon as stage 1 clears (one per cycle)
        // unless stage 2 back-pressures.
        issue = std::max(issue + 1, stage2_free - 1);
    }

    r.cycles = last_writeback + 1; // inclusive of the final writeback
    // Stalls: everything beyond the hazard-free depth + N - 1.
    r.stallCycles =
        r.cycles - (BcePipelineSim::depth + uops.size() - 1);
    return r;
}

std::uint64_t
pipeline_formula(const std::vector<PipelineUop> &uops,
                 unsigned lut_port_cycles)
{
    if (uops.empty())
        return 0;
    std::uint64_t extra = 0;
    for (const PipelineUop &uop : uops)
        extra += stage2_occupancy(uop, lut_port_cycles) - 1;
    return BcePipelineSim::depth + uops.size() - 1 + extra;
}

} // namespace bfree::bce
