#include "bce.hh"

#include <cstdlib>

#include "lut/lut_image.hh"
#include "sim/logging.hh"

namespace bfree::bce {

Bce::Bce(mem::Subarray &subarray, const tech::TechParams &tech,
         mem::EnergyAccount &energy)
    : sa(&subarray), tech(tech), energy(&energy)
{}

void
Bce::chargeCycles(std::uint64_t n)
{
    stats_.cycles += n;
    double mode_mw = tech.bceOtherModeMw;
    if (_mode == BceMode::Conv)
        mode_mw = tech.bceConvModeMw;
    else if (_mode == BceMode::Matmul)
        mode_mw = tech.bceMatmulModeMw;
    energy->addPj(mem::EnergyCategory::BceCompute,
                  tech.bceEnergyPerCyclePj(mode_mw)
                      * static_cast<double>(n));
}

void
Bce::setMode(BceMode mode)
{
    if (mode == _mode)
        return;
    _mode = mode;
    chargeCycles(1);
}

void
Bce::loadMultLutImage()
{
    if (multLutLoaded)
        return;
    const lut::LutImage image = lut::serialize(lut::MultLut{});
    sa->loadLut(image.bytes);
    multLutLoaded = true;
}

void
Bce::loadConfig(const ConfigBlock &new_cb)
{
    cb = new_cb;
    ++stats_.configLoads;
    chargeCycles(1);
}

std::int64_t
Bce::lutMultiply4(unsigned a, unsigned b)
{
    if (!multLutLoaded)
        bfree_panic("conv-mode multiply before the LUT image was loaded");

    using lut::OperandClass;
    const OperandClass ca = lut::classify_operand(a);
    const OperandClass cb_class = lut::classify_operand(b);
    if (ca == OperandClass::Zero || cb_class == OperandClass::Zero)
        return 0;

    const lut::OddDecomposition da = lut::decompose_odd(a);
    const lut::OddDecomposition db = lut::decompose_odd(b);
    const unsigned total_shift = da.shift + db.shift;

    std::int64_t product = 0;
    if (da.odd == 1 && db.odd == 1) {
        product = std::int64_t{1} << total_shift;
        if (total_shift > 0)
            ++stats_.counts.shifts;
    } else if (da.odd == 1 || db.odd == 1) {
        const unsigned odd = da.odd == 1 ? db.odd : da.odd;
        product = std::int64_t{odd} << total_shift;
        if (total_shift > 0)
            ++stats_.counts.shifts;
    } else {
        const std::size_t offset =
            lut::MultLut::operandIndex(da.odd) * lut::num_odd_operands
            + lut::MultLut::operandIndex(db.odd);
        const std::uint8_t value = sa->lutRead(offset);
        ++stats_.counts.lutLookups;
        product = std::int64_t{value} << total_shift;
        if (total_shift > 0)
            ++stats_.counts.shifts;
    }
    return product;
}

std::int64_t
Bce::multiplyViaSubarrayLut(std::int32_t a, std::int32_t b, unsigned bits)
{
    const unsigned nibbles = bits / 4;
    const bool negative = (a < 0) != (b < 0);
    const auto ua = static_cast<std::uint32_t>(std::abs(a));
    const auto ub = static_cast<std::uint32_t>(std::abs(b));

    std::int64_t product = 0;
    bool first = true;
    for (unsigned i = 0; i < nibbles; ++i) {
        const unsigned na = (ua >> (4 * i)) & 0xF;
        if (na == 0)
            continue;
        for (unsigned j = 0; j < nibbles; ++j) {
            const unsigned nb = (ub >> (4 * j)) & 0xF;
            if (nb == 0)
                continue;
            product += lutMultiply4(na, nb) << (4 * (i + j));
            if (!first)
                ++stats_.counts.adds;
            first = false;
        }
    }
    return negative ? -product : product;
}

std::int64_t
Bce::multiply(std::int32_t a, std::int32_t b, unsigned bits)
{
    if (bits != 4 && bits != 8 && bits != 16)
        bfree_fatal("unsupported BCE multiply precision: ", bits);

    if (_mode == BceMode::Matmul) {
        // Hardwired ROM path; the analyzer counts ROM lookups.
        lut::MultResult r = lut::multiply_signed(
            a, b, bits, rom, lut::LookupSource::BceRom);
        stats_.counts += r.counts;
        energy->addPj(mem::EnergyCategory::BceCompute,
                      tech.bceMacPj
                          * static_cast<double>(r.counts.romLookups));
        return r.product;
    }
    return multiplyViaSubarrayLut(a, b, bits);
}

std::int32_t
Bce::dotProduct(std::size_t weight_offset, const std::int8_t *inputs,
                std::size_t len, unsigned bits)
{
    if (_mode != BceMode::Conv)
        bfree_panic("dotProduct requires conv mode");

    const unsigned bytes_per_weight = bits <= 8 ? 1 : 2;
    std::vector<std::uint8_t> weights(len * bytes_per_weight);
    sa->read(weight_offset, weights.data(), weights.size());

    std::int64_t acc = 0;
    for (std::size_t i = 0; i < len; ++i) {
        std::int32_t w = 0;
        if (bytes_per_weight == 1) {
            w = static_cast<std::int8_t>(weights[i]);
        } else {
            w = static_cast<std::int16_t>(
                weights[2 * i] | (weights[2 * i + 1] << 8));
        }
        std::int32_t in = inputs[i];
        if (bits == 4) {
            // 4-bit operands arrive sign-extended in the int8 stream.
            w = std::clamp(w, -8, 7);
            in = std::clamp<std::int32_t>(in, -8, 7);
        }
        acc += multiplyViaSubarrayLut(w, in, bits);
        if (i > 0)
            ++stats_.counts.adds;
    }

    // Conv-mode rate: bits/4 cycles per MAC (0.5 MAC/cycle at 8-bit).
    chargeCycles(len * (bits / 4));
    stats_.macs += len;
    return static_cast<std::int32_t>(acc);
}

void
Bce::broadcastMac(std::int32_t a, const std::int8_t *b, std::size_t n,
                  std::int32_t *acc, unsigned bits)
{
    if (_mode != BceMode::Matmul)
        bfree_panic("broadcastMac requires matmul mode");
    if (n > bce_vector_width)
        bfree_panic("broadcastMac width ", n, " exceeds the register file "
                    "width ", bce_vector_width);

    for (std::size_t i = 0; i < n; ++i) {
        lut::MultResult r = lut::multiply_signed(
            a, b[i], bits, rom, lut::LookupSource::BceRom);
        stats_.counts += r.counts;
        energy->addPj(mem::EnergyCategory::BceCompute,
                      tech.bceMacPj
                          * static_cast<double>(r.counts.romLookups));
        acc[i] += static_cast<std::int32_t>(r.product);
        ++stats_.counts.adds;
    }

    // One LS-4/MS-4 pass per operand nibble, independent of n (Fig. 7).
    chargeCycles(bits / 4);
    stats_.macs += n;
}

std::int32_t
Bce::accumulateIncoming(std::int32_t local, std::int32_t incoming)
{
    ++stats_.counts.adds;
    // The add shares the pipeline's writeback cycle; no extra cycle.
    return local + incoming;
}

double
Bce::evaluatePwl(const lut::PwlTable &table, double x)
{
    lut::MicroOpCounts counts;
    const double y = table.evaluate(x, &counts);
    stats_.counts += counts;
    // The alpha/beta fetch reads the sub-array LUT rows.
    energy->addPj(mem::EnergyCategory::LutAccess, tech.lutAccessPj());
    chargeCycles(counts.cycles);
    return y;
}

double
Bce::divide(double x, double y, const lut::DivisionLut &div)
{
    lut::MicroOpCounts counts;
    const double q = div.divide(x, y, &counts);
    stats_.counts += counts;
    energy->addPj(mem::EnergyCategory::LutAccess, tech.lutAccessPj());
    chargeCycles(counts.cycles);
    return q;
}

std::int32_t
Bce::maxReduce(const std::int32_t *values, std::size_t n)
{
    if (n == 0)
        bfree_panic("maxReduce over an empty window");
    std::int32_t best = values[0];
    for (std::size_t i = 1; i < n; ++i) {
        if (values[i] > best)
            best = values[i];
        ++stats_.counts.adds; // comparator shares the adder
    }
    chargeCycles(n > 1 ? n - 1 : 1);
    return best;
}

double
Bce::avgPool(const std::int32_t *values, std::size_t n,
             const lut::DivisionLut &div)
{
    if (n == 0)
        bfree_panic("avgPool over an empty window");
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += values[i];
        if (i > 0)
            ++stats_.counts.adds;
    }
    chargeCycles(n > 1 ? n - 1 : 1);
    const bool negative = sum < 0;
    const double q = divide(static_cast<double>(std::llabs(sum)),
                            static_cast<double>(n), div);
    return negative ? -q : q;
}

std::int32_t
Bce::requantize(std::int32_t acc, const lut::RequantScale &scale,
                std::int32_t zero_point, unsigned out_bits)
{
    const std::int32_t out =
        lut::requantize(acc, scale, zero_point, out_bits);
    // One ROM multiply, one shift, one saturating add.
    ++stats_.counts.romLookups;
    ++stats_.counts.shifts;
    ++stats_.counts.adds;
    energy->addPj(mem::EnergyCategory::BceCompute, tech.bceMacPj);
    chargeCycles(3);
    return out;
}

double
Bce::macsPerCycle(BceMode mode, unsigned bits)
{
    if (bits != 4 && bits != 8 && bits != 16)
        bfree_fatal("unsupported precision: ", bits);
    const double steps = bits / 4.0; // nibble passes per operand
    switch (mode) {
      case BceMode::Conv:
        return 1.0 / steps; // 0.5 MAC/cycle at 8-bit
      case BceMode::Matmul:
        return bce_vector_width / steps; // 4 MACs/cycle at 8-bit
      case BceMode::Special:
        return 0.0;
    }
    return 0.0;
}

} // namespace bfree::bce
