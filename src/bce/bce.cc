#include "bce.hh"

#include <algorithm>
#include <cstdlib>

#include "lut/lut_image.hh"
#include "sim/logging.hh"
#include "simd_kernels.hh"

namespace bfree::bce {

Bce::Bce(mem::Subarray &subarray, const tech::TechParams &tech,
         mem::EnergyAccount &energy)
    : sa(&subarray), tech(tech), energy(&energy)
{}

void
Bce::chargeCycles(std::uint64_t n)
{
    stats_.cycles += n;
    stats_.cyclesByMode[static_cast<std::size_t>(_mode)] += n;
}

void
Bce::noteConvLutReads(std::uint64_t n)
{
    if (n == 0)
        return;
    // lut_en decides the cost category a read will flush into.
    if (sa->pimModeEnabled())
        stats_.lutReadsPim += n;
    else
        stats_.lutReadsCache += n;
    sa->noteLutReads(n);
}

void
Bce::flushEnergy()
{
    mem::BceEnergyTallies now;
    now.romLookups = stats_.counts.romLookups;
    now.lutReadsPim = stats_.lutReadsPim;
    now.lutReadsCache = stats_.lutReadsCache;
    now.specialLutEvents = stats_.specialLutEvents;
    now.cyclesByMode = stats_.cyclesByMode;

    mem::BceEnergyTallies delta;
    delta.romLookups = now.romLookups - flushed_.romLookups;
    delta.lutReadsPim = now.lutReadsPim - flushed_.lutReadsPim;
    delta.lutReadsCache = now.lutReadsCache - flushed_.lutReadsCache;
    delta.specialLutEvents =
        now.specialLutEvents - flushed_.specialLutEvents;
    for (std::size_t m = 0; m < now.cyclesByMode.size(); ++m)
        delta.cyclesByMode[m] =
            now.cyclesByMode[m] - flushed_.cyclesByMode[m];

    mem::MicroOpEnergyModel(tech).deposit(delta, *energy);
    flushed_ = now;
}

void
Bce::setMode(BceMode mode)
{
    if (mode == _mode)
        return;
    _mode = mode;
    chargeCycles(1);
}

void
Bce::loadMultLutImage()
{
    if (multLutLoaded)
        return;
    const lut::LutImage image = lut::serialize(lut::MultLut{});
    sa->loadLut(image.bytes);
    multLutLoaded = true;
}

void
Bce::loadConfig(const ConfigBlock &new_cb)
{
    cb = new_cb;
    ++stats_.configLoads;
    chargeCycles(1);
}

std::int64_t
Bce::lutMultiply4(unsigned a, unsigned b, lut::MicroOpCounts &counts)
{
    if (!multLutLoaded)
        bfree_panic("conv-mode multiply before the LUT image was loaded");

    using lut::OperandClass;
    const OperandClass ca = lut::classify_operand(a);
    const OperandClass cb_class = lut::classify_operand(b);
    if (ca == OperandClass::Zero || cb_class == OperandClass::Zero)
        return 0;

    const lut::OddDecomposition da = lut::decompose_odd(a);
    const lut::OddDecomposition db = lut::decompose_odd(b);
    const unsigned total_shift = da.shift + db.shift;

    std::int64_t product = 0;
    if (da.odd == 1 && db.odd == 1) {
        product = std::int64_t{1} << total_shift;
        if (total_shift > 0)
            ++counts.shifts;
    } else if (da.odd == 1 || db.odd == 1) {
        const unsigned odd = da.odd == 1 ? db.odd : da.odd;
        product = std::int64_t{odd} << total_shift;
        if (total_shift > 0)
            ++counts.shifts;
    } else {
        const std::size_t offset =
            lut::MultLut::operandIndex(da.odd) * lut::num_odd_operands
            + lut::MultLut::operandIndex(db.odd);
        const std::uint8_t value = sa->lutPeek(offset);
        ++counts.lutLookups;
        product = std::int64_t{value} << total_shift;
        if (total_shift > 0)
            ++counts.shifts;
    }
    return product;
}

std::int64_t
Bce::multiplyViaSubarrayLut(std::int32_t a, std::int32_t b, unsigned bits,
                            lut::MicroOpCounts &counts)
{
    const unsigned nibbles = bits / 4;
    const bool negative = (a < 0) != (b < 0);
    const auto ua = static_cast<std::uint32_t>(std::abs(a));
    const auto ub = static_cast<std::uint32_t>(std::abs(b));

    std::int64_t product = 0;
    bool first = true;
    for (unsigned i = 0; i < nibbles; ++i) {
        const unsigned na = (ua >> (4 * i)) & 0xF;
        if (na == 0)
            continue;
        for (unsigned j = 0; j < nibbles; ++j) {
            const unsigned nb = (ub >> (4 * j)) & 0xF;
            if (nb == 0)
                continue;
            product += lutMultiply4(na, nb, counts) << (4 * (i + j));
            if (!first)
                ++counts.adds;
            first = false;
        }
    }
    return negative ? -product : product;
}

const lut::DatapathTable &
Bce::convTable(unsigned bits)
{
    lut::DatapathTable &t = bits == 4 ? convTable4_ : convTable8_;
    if (!t.valid() || t.generation != sa->lutGeneration()) {
        if (!multLutLoaded)
            bfree_panic(
                "conv-mode multiply before the LUT image was loaded");
        // Seed from the legacy scalar path over the whole operand
        // space; the table can only ever reproduce the reference.
        t = lut::DatapathTable::build(
            bits, [this, bits](std::int32_t a, std::int32_t b) {
                lut::MultResult r;
                r.product = multiplyViaSubarrayLut(a, b, bits, r.counts);
                return r;
            });
        t.generation = sa->lutGeneration();
        ++convSeeds_;
    }
    return t;
}

const lut::DatapathTable &
Bce::romTable(unsigned bits)
{
    lut::DatapathTable &t = bits == 4 ? romTable4_ : romTable8_;
    if (!t.valid())
        t = lut::build_rom_datapath_table(bits, rom);
    return t;
}

std::int64_t
Bce::multiply(std::int32_t a, std::int32_t b, unsigned bits)
{
    if (bits != 4 && bits != 8 && bits != 16)
        bfree_fatal("unsupported BCE multiply precision: ", bits);

    if (_mode == BceMode::Matmul) {
        // Hardwired ROM path; the analyzer counts ROM lookups.
        lut::MultResult r = lut::multiply_signed(
            a, b, bits, rom, lut::LookupSource::BceRom);
        stats_.counts += r.counts;
        return r.product;
    }
    lut::MicroOpCounts c;
    const std::int64_t product = multiplyViaSubarrayLut(a, b, bits, c);
    stats_.counts += c;
    noteConvLutReads(c.lutLookups);
    return product;
}

std::int32_t
Bce::dotProduct(std::size_t weight_offset, const std::int8_t *inputs,
                std::size_t len, unsigned bits)
{
    if (_mode != BceMode::Conv)
        bfree_panic("dotProduct requires conv mode");

    const unsigned bytes_per_weight = bits <= 8 ? 1 : 2;
    std::vector<std::uint8_t> weights(len * bytes_per_weight);
    sa->read(weight_offset, weights.data(), weights.size());

    if (bytes_per_weight == 1)
        return dotProductSpan(
            reinterpret_cast<const std::int8_t *>(weights.data()), inputs,
            len, bits);

    std::int64_t acc = 0;
    for (std::size_t i = 0; i < len; ++i) {
        const auto w = static_cast<std::int32_t>(static_cast<std::int16_t>(
            weights[2 * i] | (weights[2 * i + 1] << 8)));
        lut::MicroOpCounts c;
        acc += multiplyViaSubarrayLut(w, inputs[i], bits, c);
        stats_.counts += c;
        noteConvLutReads(c.lutLookups);
        if (i > 0)
            ++stats_.counts.adds;
    }

    // Conv-mode rate: bits/4 cycles per MAC (0.5 MAC/cycle at 8-bit).
    chargeCycles(len * (bits / 4));
    stats_.macs += len;
    return static_cast<std::int32_t>(acc);
}

std::int32_t
Bce::dotProductSpan(const std::int8_t *weights, const std::int8_t *inputs,
                    std::size_t len, unsigned bits)
{
    if (_mode != BceMode::Conv)
        bfree_panic("dotProduct requires conv mode");

    std::int64_t acc = 0;
    if (_tier == ExecTier::Tiered && lut::DatapathTable::coversBits(bits)) {
        // The dispatched SIMD kernel returns exactly the sums the
        // scalar loop would have accumulated element by element.
        const lut::DatapathTable &t = convTable(bits);
        const simd::SpanSums s = simd::run_span(
            t, weights, inputs, len, simd::SpanSemantics::ConvClamp);
        acc = s.acc;
        stats_.counts.lutLookups += s.lookups;
        stats_.counts.shifts += s.shifts;
        stats_.counts.adds += s.adds + (len > 0 ? len - 1 : 0);
        noteConvLutReads(s.lookups);
    } else {
        for (std::size_t i = 0; i < len; ++i) {
            std::int32_t w = weights[i];
            std::int32_t in = inputs[i];
            if (bits == 4) {
                w = std::clamp(w, -8, 7);
                in = std::clamp(in, -8, 7);
            }
            lut::MicroOpCounts c;
            acc += multiplyViaSubarrayLut(w, in, bits, c);
            stats_.counts += c;
            noteConvLutReads(c.lutLookups);
            if (i > 0)
                ++stats_.counts.adds;
        }
    }

    chargeCycles(len * (bits / 4));
    stats_.macs += len;
    return static_cast<std::int32_t>(acc);
}

void
Bce::broadcastMac(std::int32_t a, const std::int8_t *b, std::size_t n,
                  std::int32_t *acc, unsigned bits)
{
    if (_mode != BceMode::Matmul)
        bfree_panic("broadcastMac requires matmul mode");
    if (n > bce_vector_width)
        bfree_panic("broadcastMac width ", n, " exceeds the register file "
                    "width ", bce_vector_width);

    for (std::size_t i = 0; i < n; ++i) {
        lut::MultResult r = lut::multiply_signed(
            a, b[i], bits, rom, lut::LookupSource::BceRom);
        stats_.counts += r.counts;
        acc[i] += static_cast<std::int32_t>(r.product);
        ++stats_.counts.adds;
    }

    // One LS-4/MS-4 pass per operand nibble, independent of n (Fig. 7).
    chargeCycles(bits / 4);
    stats_.macs += n;
}

std::int32_t
Bce::matmulDotSpan(const std::int8_t *a, const std::int8_t *b,
                   std::size_t len, unsigned bits)
{
    if (_mode != BceMode::Matmul)
        bfree_panic("broadcastMac requires matmul mode");

    std::int32_t acc = 0;
    if (_tier == ExecTier::Tiered && lut::DatapathTable::coversBits(bits)) {
        const lut::DatapathTable &t = romTable(bits);
        const simd::SpanSums s = simd::run_span(
            t, a, b, len, simd::SpanSemantics::MatmulStrict);
        if (!s.inRange) {
            // Out of range: the analyzer raises the legacy panic.
            lut::multiply_signed(a[s.firstOutOfRange],
                                 b[s.firstOutOfRange], bits, rom,
                                 lut::LookupSource::BceRom);
        }
        acc = s.acc;
        stats_.counts.romLookups += s.lookups;
        stats_.counts.shifts += s.shifts;
        stats_.counts.adds += s.adds + len; // one lane add per element
        stats_.counts.cycles += s.cycles;
    } else {
        for (std::size_t i = 0; i < len; ++i) {
            lut::MultResult r = lut::multiply_signed(
                a[i], b[i], bits, rom, lut::LookupSource::BceRom);
            stats_.counts += r.counts;
            acc += static_cast<std::int32_t>(r.product);
            ++stats_.counts.adds;
        }
    }

    chargeCycles(len * (bits / 4));
    stats_.macs += len;
    return acc;
}

void
Bce::matmulTile(const std::int8_t *a, const std::int8_t *bt,
                std::int32_t *out, std::size_t m, std::size_t k,
                std::size_t n, unsigned bits)
{
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            out[i * n + j] += matmulDotSpan(a + i * k, bt + j * k, k, bits);
}

std::int32_t
Bce::accumulateIncoming(std::int32_t local, std::int32_t incoming)
{
    ++stats_.counts.adds;
    // The add shares the pipeline's writeback cycle; no extra cycle.
    return local + incoming;
}

double
Bce::evaluatePwl(const lut::PwlTable &table, double x)
{
    lut::MicroOpCounts counts;
    const double y = table.evaluate(x, &counts);
    stats_.counts += counts;
    // The alpha/beta fetch reads the sub-array LUT rows.
    ++stats_.specialLutEvents;
    chargeCycles(counts.cycles);
    return y;
}

double
Bce::divide(double x, double y, const lut::DivisionLut &div)
{
    lut::MicroOpCounts counts;
    const double q = div.divide(x, y, &counts);
    stats_.counts += counts;
    ++stats_.specialLutEvents;
    chargeCycles(counts.cycles);
    return q;
}

std::int32_t
Bce::maxReduce(const std::int32_t *values, std::size_t n)
{
    if (n == 0)
        bfree_panic("maxReduce over an empty window");
    std::int32_t best = values[0];
    for (std::size_t i = 1; i < n; ++i) {
        if (values[i] > best)
            best = values[i];
        ++stats_.counts.adds; // comparator shares the adder
    }
    chargeCycles(n > 1 ? n - 1 : 1);
    return best;
}

double
Bce::avgPool(const std::int32_t *values, std::size_t n,
             const lut::DivisionLut &div)
{
    if (n == 0)
        bfree_panic("avgPool over an empty window");
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += values[i];
        if (i > 0)
            ++stats_.counts.adds;
    }
    chargeCycles(n > 1 ? n - 1 : 1);
    const bool negative = sum < 0;
    const double q = divide(static_cast<double>(std::llabs(sum)),
                            static_cast<double>(n), div);
    return negative ? -q : q;
}

std::int32_t
Bce::requantize(std::int32_t acc, const lut::RequantScale &scale,
                std::int32_t zero_point, unsigned out_bits)
{
    const std::int32_t out =
        lut::requantize(acc, scale, zero_point, out_bits);
    // One ROM multiply, one shift, one saturating add.
    ++stats_.counts.romLookups;
    ++stats_.counts.shifts;
    ++stats_.counts.adds;
    chargeCycles(3);
    return out;
}

double
Bce::macsPerCycle(BceMode mode, unsigned bits)
{
    if (bits != 4 && bits != 8 && bits != 16)
        bfree_fatal("unsupported precision: ", bits);
    const double steps = bits / 4.0; // nibble passes per operand
    switch (mode) {
      case BceMode::Conv:
        return 1.0 / steps; // 0.5 MAC/cycle at 8-bit
      case BceMode::Matmul:
        return bce_vector_width / steps; // 4 MACs/cycle at 8-bit
      case BceMode::Special:
        return 0.0;
    }
    return 0.0;
}

} // namespace bfree::bce
