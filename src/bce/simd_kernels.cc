#include "simd_kernels.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "sim/cpuid.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BFREE_X86_KERNELS 1
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace bfree::bce::simd {

namespace {

/** The one resolved tally mode; std::nullopt until first use. */
std::optional<TallyMode> resolvedTally;

TallyMode
resolve_tally_from_environment()
{
    const char *mode = std::getenv("BFREE_TIERED_TALLY");
    if (mode == nullptr || mode[0] == '\0')
        return TallyMode::Histogram;
    if (!std::strcmp(mode, "histogram"))
        return TallyMode::Histogram;
    if (!std::strcmp(mode, "gather"))
        return TallyMode::Gather;
    bfree_fatal("BFREE_TIERED_TALLY=", mode, " is not a known tally "
                "mode (expected histogram or gather)");
}

/**
 * Blocked scalar tally over packed micro-op deltas. Two u64
 * accumulators hold the four byte fields in 16-bit windows (lookups
 * and adds in `lo`, shifts and cycles in `hi`); each window can absorb
 * at most 256 additions of a <=255 field before it could carry into
 * its neighbour, so the block spills to the 64-bit totals every 256
 * entries.
 */
struct TallyBlock
{
    static constexpr unsigned block = 256;

    std::uint64_t lo = 0, hi = 0;
    unsigned n = 0;

    void
    add(std::uint32_t d, SpanSums &s)
    {
        lo += d & 0x00FF00FFu;
        hi += (d >> 8) & 0x00FF00FFu;
        if (++n == block)
            spill(s);
    }

    void
    spill(SpanSums &s)
    {
        s.lookups += lo & 0xFFFFu;
        s.adds += (lo >> 16) & 0xFFFFu;
        s.shifts += hi & 0xFFFFu;
        s.cycles += (hi >> 16) & 0xFFFFu;
        lo = hi = 0;
        n = 0;
    }
};

/**
 * Scalar element loop over [begin, end); also the tail pass of every
 * SIMD variant. Accumulates into @p s / @p acc; returns false at the
 * first strict-domain violation (with firstOutOfRange set).
 */
bool
scalar_range(const lut::DatapathTable &t, const std::int8_t *a,
             const std::int8_t *b, std::size_t begin, std::size_t end,
             bool clamp, bool strict, std::uint32_t &acc, SpanSums &s)
{
    const std::int32_t half = t.half();
    const std::int32_t *prod = t.products();
    const std::uint32_t *delta = t.deltas();
    const bool exact = t.productsExact();

    TallyBlock tb;
    for (std::size_t i = begin; i < end; ++i) {
        std::int32_t w = a[i];
        std::int32_t x = b[i];
        if (clamp) {
            w = std::clamp(w, -half, half - 1);
            x = std::clamp(x, -half, half - 1);
        } else if (strict
                   && (w < -half || w > half || x < -half || x > half)) {
            tb.spill(s);
            s.inRange = false;
            s.firstOutOfRange = i;
            return false;
        }
        const std::size_t idx = t.index(w, x);
        acc += static_cast<std::uint32_t>(exact ? w * x : prod[idx]);
        tb.add(delta[idx], s);
    }
    tb.spill(s);
    return true;
}

SpanSums
span_scalar(const lut::DatapathTable &t, const std::int8_t *a,
            const std::int8_t *b, std::size_t len, bool clamp,
            bool strict)
{
    SpanSums s;
    std::uint32_t acc = 0;
    scalar_range(t, a, b, 0, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#ifdef BFREE_X86_KERNELS

// The pair_type_class compression split into two 16-lane pshufb
// tables (indices 0..15 and 16..24); derived from the canonical array
// so the in-register classifier can never drift from the scalar one.
constexpr std::array<std::uint8_t, 16>
id25_lo_table()
{
    std::array<std::uint8_t, 16> r{};
    for (unsigned i = 0; i < 16; ++i)
        r[i] = lut::DatapathTable::pair_type_class[i];
    return r;
}

constexpr std::array<std::uint8_t, 16>
id25_hi_table()
{
    std::array<std::uint8_t, 16> r{};
    for (unsigned i = 16; i < 25; ++i)
        r[i - 16] = lut::DatapathTable::pair_type_class[i];
    return r;
}

constexpr std::array<std::uint8_t, 16> id25_lo = id25_lo_table();
constexpr std::array<std::uint8_t, 16> id25_hi = id25_hi_table();

/**
 * In-register operand classifier: one CLASSIFY expands a vector of
 * int8 operands into their structural classes (0..14) per byte, the
 * exact vector analogue of DatapathTable::operand_class(|v|).
 *
 *   u  = abs(v)                  (abs(-128) wraps to 0x80 = |+128|)
 *   t  = nibble_type[u.lo4], nibble_type[u.hi4]   (pshufb)
 *   s  = t_hi * 5 + t_lo         (t_hi + (t_hi << 2) + t_lo; both
 *                                 types <= 4, so s <= 24 with no
 *                                 cross-byte carry under the 16-bit
 *                                 shift)
 *   cls = pair_type_class[s]     (two pshufbs blended on s > 15;
 *                                 pshufb zeroes lanes whose index
 *                                 byte went negative after the -16)
 *
 * Implemented as macros, not helpers: lambdas and callees inside a
 * target("...")-attributed function do not inherit the attribute, and
 * gcc refuses to inline always_inline intrinsics across that
 * boundary.
 */
#define BFREE_CLASSIFY_CONSTS_256                                        \
    const __m256i kT4 =                                                  \
        _mm256_broadcastsi128_si256(_mm_loadu_si128(                     \
            reinterpret_cast<const __m128i *>(                           \
                lut::DatapathTable::nibble_type.data())));               \
    const __m256i kId25Lo = _mm256_broadcastsi128_si256(_mm_loadu_si128( \
        reinterpret_cast<const __m128i *>(id25_lo.data())));             \
    const __m256i kId25Hi = _mm256_broadcastsi128_si256(_mm_loadu_si128( \
        reinterpret_cast<const __m128i *>(id25_hi.data())));             \
    const __m256i kNib = _mm256_set1_epi8(0x0F);                         \
    const __m256i k15 = _mm256_set1_epi8(15);                            \
    const __m256i k16 = _mm256_set1_epi8(16)

#define BFREE_CLASSIFY_256(v, cls)                                       \
    do {                                                                 \
        const __m256i u_ = _mm256_abs_epi8(v);                           \
        const __m256i lo_ = _mm256_and_si256(u_, kNib);                  \
        const __m256i hi_ =                                              \
            _mm256_and_si256(_mm256_srli_epi16(u_, 4), kNib);            \
        const __m256i tl_ = _mm256_shuffle_epi8(kT4, lo_);               \
        const __m256i th_ = _mm256_shuffle_epi8(kT4, hi_);               \
        const __m256i s_ = _mm256_add_epi8(                              \
            _mm256_add_epi8(                                             \
                th_, _mm256_slli_epi16(_mm256_and_si256(th_, kNib), 2)), \
            tl_);                                                        \
        const __m256i rlo_ = _mm256_shuffle_epi8(kId25Lo, s_);           \
        const __m256i rhi_ =                                             \
            _mm256_shuffle_epi8(kId25Hi, _mm256_sub_epi8(s_, k16));      \
        const __m256i m_ = _mm256_cmpgt_epi8(s_, k15);                   \
        (cls) = _mm256_blendv_epi8(rlo_, rhi_, m_);                      \
    } while (0)

#define BFREE_CLASSIFY_CONSTS_128                                        \
    const __m128i kT4 = _mm_loadu_si128(reinterpret_cast<const __m128i   \
                                            *>(                          \
        lut::DatapathTable::nibble_type.data()));                        \
    const __m128i kId25Lo = _mm_loadu_si128(                             \
        reinterpret_cast<const __m128i *>(id25_lo.data()));              \
    const __m128i kId25Hi = _mm_loadu_si128(                             \
        reinterpret_cast<const __m128i *>(id25_hi.data()));              \
    const __m128i kNib = _mm_set1_epi8(0x0F);                            \
    const __m128i k15 = _mm_set1_epi8(15);                               \
    const __m128i k16 = _mm_set1_epi8(16)

#define BFREE_CLASSIFY_128(v, cls)                                       \
    do {                                                                 \
        const __m128i u_ = _mm_abs_epi8(v);                              \
        const __m128i lo_ = _mm_and_si128(u_, kNib);                     \
        const __m128i hi_ = _mm_and_si128(_mm_srli_epi16(u_, 4), kNib);  \
        const __m128i tl_ = _mm_shuffle_epi8(kT4, lo_);                  \
        const __m128i th_ = _mm_shuffle_epi8(kT4, hi_);                  \
        const __m128i s_ = _mm_add_epi8(                                 \
            _mm_add_epi8(th_,                                            \
                         _mm_slli_epi16(_mm_and_si128(th_, kNib), 2)),   \
            tl_);                                                        \
        const __m128i rlo_ = _mm_shuffle_epi8(kId25Lo, s_);              \
        const __m128i rhi_ =                                             \
            _mm_shuffle_epi8(kId25Hi, _mm_sub_epi8(s_, k16));            \
        const __m128i m_ = _mm_cmpgt_epi8(s_, k15);                      \
        (cls) = _mm_blendv_epi8(rlo_, rhi_, m_);                         \
    } while (0)

#define BFREE_CLASSIFY_CONSTS_512                                        \
    const __m512i kT4 = _mm512_broadcast_i32x4(_mm_loadu_si128(          \
        reinterpret_cast<const __m128i *>(                               \
            lut::DatapathTable::nibble_type.data())));                   \
    const __m512i kId25Lo = _mm512_broadcast_i32x4(_mm_loadu_si128(      \
        reinterpret_cast<const __m128i *>(id25_lo.data())));             \
    const __m512i kId25Hi = _mm512_broadcast_i32x4(_mm_loadu_si128(      \
        reinterpret_cast<const __m128i *>(id25_hi.data())));             \
    const __m512i kNib = _mm512_set1_epi8(0x0F);                         \
    const __m512i k15 = _mm512_set1_epi8(15);                            \
    const __m512i k16 = _mm512_set1_epi8(16)

#define BFREE_CLASSIFY_512(v, cls)                                       \
    do {                                                                 \
        const __m512i u_ = _mm512_abs_epi8(v);                           \
        const __m512i lo_ = _mm512_and_si512(u_, kNib);                  \
        const __m512i hi_ =                                              \
            _mm512_and_si512(_mm512_srli_epi16(u_, 4), kNib);            \
        const __m512i tl_ = _mm512_shuffle_epi8(kT4, lo_);               \
        const __m512i th_ = _mm512_shuffle_epi8(kT4, hi_);               \
        const __m512i s_ = _mm512_add_epi8(                              \
            _mm512_add_epi8(                                             \
                th_, _mm512_slli_epi16(_mm512_and_si512(th_, kNib), 2)), \
            tl_);                                                        \
        const __m512i rlo_ = _mm512_shuffle_epi8(kId25Lo, s_);           \
        const __m512i rhi_ =                                             \
            _mm512_shuffle_epi8(kId25Hi, _mm512_sub_epi8(s_, k16));      \
        const __mmask64 m_ = _mm512_cmpgt_epi8_mask(s_, k15);            \
        (cls) = _mm512_mask_blend_epi8(m_, rlo_, rhi_);                  \
    } while (0)

/** Sum of eight u32 lanes, widened (store-and-add; spill path only). */
__attribute__((target("avx2"))) std::uint64_t
hsum_u32x8(__m256i v)
{
    alignas(32) std::uint32_t lane[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lane), v);
    std::uint64_t sum = 0;
    for (const std::uint32_t l : lane)
        sum += l;
    return sum;
}

/** Sum of four u32 lanes (SSE spill path). */
__attribute__((target("sse4.2"))) std::uint64_t
hsum_u32x4(__m128i v)
{
    alignas(16) std::uint32_t lane[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(lane), v);
    return std::uint64_t{lane[0]} + lane[1] + lane[2] + lane[3];
}

/** Mod-2^32 sum of eight u32 lanes (the wrapping product reduce). */
__attribute__((target("avx2"))) std::uint32_t
wsum_u32x8(__m256i v)
{
    __m128i r = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    r = _mm_add_epi32(r, _mm_srli_si128(r, 8));
    r = _mm_add_epi32(r, _mm_srli_si128(r, 4));
    return static_cast<std::uint32_t>(_mm_cvtsi128_si32(r));
}

// GCC 12's -Wmaybe-uninitialized fires through the self-initialized
// _mm*_undefined_*() the AVX-512 intrinsic headers pass as the (never
// read, mask = -1) masked-fallback operand; known false positive
// (GCC PR105593), suppressed for the 512-bit kernels only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

/**
 * The feature dot products of one span, the factored histogram fold:
 * P = sum p(a)p(b), O = sum o(a)o(b), L = sum l(a)l(b),
 * Z = sum z(a)z(b). The caller turns them into micro-op tallies with
 * the verified bilinear formulas (see DatapathTable).
 */
struct FeatureSums
{
    std::uint64_t p = 0, o = 0, l = 0, z = 0;
};

/** Fold the feature dot products into SpanSums micro-op tallies. */
void
fold_features(const FeatureSums &f, std::uint32_t cyclesFactor,
              SpanSums &s)
{
    s.lookups += f.l;
    s.shifts += f.p - f.o;
    s.adds += f.p - f.z;
    s.cycles += cyclesFactor * f.p;
}

// Per-iteration ceiling on a 16-bit feature accumulator lane: each
// maddubs adds two products of <=2*2, so <=8 per lane per step; spill
// every 4000 steps keeps lanes <=32000 < 2^15.
constexpr std::size_t sep_spill_block = 4000;

/**
 * Reduce four madd-widened u32x8 feature sums in one hadd tree instead
 * of four scalarized lane walks: two hadds interleave [P.. O..] and
 * [L.. Z..], a third yields [P O L Z | P O L Z], and the cross-lane
 * add leaves one dword per feature. Lane bound: spilled 16-bit lanes
 * stay under 2^15 and the tree sums at most eight of them, far from
 * u32 overflow. The serialized vpextrd chain this replaces dominated
 * short spans — the epilogue runs once per call and production spans
 * are a few hundred elements.
 */
__attribute__((target("avx2"))) void
reduce_features_u32x8(__m256i p, __m256i o, __m256i l, __m256i z,
                      FeatureSums &f)
{
    const __m256i po = _mm256_hadd_epi32(p, o);
    const __m256i lz = _mm256_hadd_epi32(l, z);
    const __m256i polz = _mm256_hadd_epi32(po, lz);
    const __m128i r = _mm_add_epi32(_mm256_castsi256_si128(polz),
                                    _mm256_extracti128_si256(polz, 1));
    f.p += static_cast<std::uint32_t>(_mm_extract_epi32(r, 0));
    f.o += static_cast<std::uint32_t>(_mm_extract_epi32(r, 1));
    f.l += static_cast<std::uint32_t>(_mm_extract_epi32(r, 2));
    f.z += static_cast<std::uint32_t>(_mm_extract_epi32(r, 3));
}

/** The 128-bit form of the same hadd-tree feature reduce. */
__attribute__((target("sse4.2"))) void
reduce_features_u32x4(__m128i p, __m128i o, __m128i l, __m128i z,
                      FeatureSums &f)
{
    const __m128i po = _mm_hadd_epi32(p, o);
    const __m128i lz = _mm_hadd_epi32(l, z);
    const __m128i r = _mm_hadd_epi32(po, lz);
    f.p += static_cast<std::uint32_t>(_mm_extract_epi32(r, 0));
    f.o += static_cast<std::uint32_t>(_mm_extract_epi32(r, 1));
    f.l += static_cast<std::uint32_t>(_mm_extract_epi32(r, 2));
    f.z += static_cast<std::uint32_t>(_mm_extract_epi32(r, 3));
}

/**
 * AVX2 histogram-tally kernel: 32 operand pairs per step, no table
 * access in the loop. Products via widening madd (exact: |a*b| <=
 * 2^14 fits int16 pairs, and wrapped mod-2^32 sums match the scalar
 * u32 accumulation); micro-op tallies via the factored class-feature
 * fold against the build-verified pairDeltas collapse. Only
 * dispatched for 8-bit productsExact+histogramExact tables, so no
 * clamp/strict handling exists here by construction.
 */
__attribute__((target("avx2"))) SpanSums
span_avx2_hist(const lut::DatapathTable &t, const std::int8_t *a,
               const std::int8_t *b, std::size_t len)
{
    SpanSums s;
    BFREE_CLASSIFY_CONSTS_256;
    const __m256i kFP = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_p.data())));
    const __m256i kFO = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_o.data())));
    const __m256i kFL = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_l.data())));
    const __m256i kFZ = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_z.data())));
    const __m256i kOne16 = _mm256_set1_epi16(1);

    __m256i accP = _mm256_setzero_si256();
    __m256i sP = accP, sO = accP, sL = accP, sZ = accP;
    FeatureSums f;
    std::uint32_t acc = 0;
    std::size_t sinceSpill = 0;

#define BFREE_SEP_SPILL_256()                                            \
    do {                                                                 \
        reduce_features_u32x8(_mm256_madd_epi16(sP, kOne16),             \
                              _mm256_madd_epi16(sO, kOne16),             \
                              _mm256_madd_epi16(sL, kOne16),             \
                              _mm256_madd_epi16(sZ, kOne16), f);         \
        sP = sO = sL = sZ = _mm256_setzero_si256();                      \
        sinceSpill = 0;                                                  \
    } while (0)

    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));

        const __m256i a0 =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
        const __m256i a1 =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
        const __m256i b0 =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
        const __m256i b1 =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
        accP = _mm256_add_epi32(accP, _mm256_madd_epi16(a0, b0));
        accP = _mm256_add_epi32(accP, _mm256_madd_epi16(a1, b1));

        __m256i ca, cb;
        BFREE_CLASSIFY_256(va, ca);
        BFREE_CLASSIFY_256(vb, cb);
        sP = _mm256_add_epi16(
            sP, _mm256_maddubs_epi16(_mm256_shuffle_epi8(kFP, ca),
                                     _mm256_shuffle_epi8(kFP, cb)));
        sO = _mm256_add_epi16(
            sO, _mm256_maddubs_epi16(_mm256_shuffle_epi8(kFO, ca),
                                     _mm256_shuffle_epi8(kFO, cb)));
        sL = _mm256_add_epi16(
            sL, _mm256_maddubs_epi16(_mm256_shuffle_epi8(kFL, ca),
                                     _mm256_shuffle_epi8(kFL, cb)));
        sZ = _mm256_add_epi16(
            sZ, _mm256_maddubs_epi16(_mm256_shuffle_epi8(kFZ, ca),
                                     _mm256_shuffle_epi8(kFZ, cb)));
        if (++sinceSpill == sep_spill_block)
            BFREE_SEP_SPILL_256();
    }
    BFREE_SEP_SPILL_256();
#undef BFREE_SEP_SPILL_256
    fold_features(f, t.cyclesFactor(), s);
    acc += wsum_u32x8(accP);

    // The guard is not cosmetic: the inlined scalar loop's setup costs
    // hundreds of cycles even over an empty range, which dominated
    // short spans.
    if (i < len)
        scalar_range(t, a, b, i, len, false, false, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

/**
 * AVX-512 histogram-tally kernel: 64 pairs per step, same factored
 * fold as the AVX2 variant in 512-bit lanes (BW byte shuffles,
 * mask-blended class compression).
 */
__attribute__((target("avx512f,avx512bw,avx512vl"))) SpanSums
span_avx512_hist(const lut::DatapathTable &t, const std::int8_t *a,
                 const std::int8_t *b, std::size_t len)
{
    SpanSums s;
    BFREE_CLASSIFY_CONSTS_512;
    const __m512i kFP = _mm512_broadcast_i32x4(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_p.data())));
    const __m512i kFO = _mm512_broadcast_i32x4(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_o.data())));
    const __m512i kFL = _mm512_broadcast_i32x4(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_l.data())));
    const __m512i kFZ = _mm512_broadcast_i32x4(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(
            lut::DatapathTable::class_feature_z.data())));
    const __m512i kOne16 = _mm512_set1_epi16(1);

    __m512i accP = _mm512_setzero_si512();
    __m512i sP = accP, sO = accP, sL = accP, sZ = accP;
    FeatureSums f;
    std::uint32_t acc = 0;
    std::size_t sinceSpill = 0;

// Fold one madd-widened 512-bit sum onto its 256-bit halves.
#define BFREE_FOLD_512(v)                                                \
    _mm256_add_epi32(                                                    \
        _mm512_castsi512_si256(_mm512_madd_epi16(v, kOne16)),            \
        _mm512_extracti64x4_epi64(_mm512_madd_epi16(v, kOne16), 1))

#define BFREE_SEP_SPILL_512()                                            \
    do {                                                                 \
        reduce_features_u32x8(BFREE_FOLD_512(sP), BFREE_FOLD_512(sO),    \
                              BFREE_FOLD_512(sL), BFREE_FOLD_512(sZ),    \
                              f);                                        \
        sP = sO = sL = sZ = _mm512_setzero_si512();                      \
        sinceSpill = 0;                                                  \
    } while (0)

    std::size_t i = 0;
    for (; i + 64 <= len; i += 64) {
        const __m512i va = _mm512_loadu_si512(a + i);
        const __m512i vb = _mm512_loadu_si512(b + i);

        const __m512i a0 =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(va));
        const __m512i a1 =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(va, 1));
        const __m512i b0 =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(vb));
        const __m512i b1 =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(vb, 1));
        accP = _mm512_add_epi32(accP, _mm512_madd_epi16(a0, b0));
        accP = _mm512_add_epi32(accP, _mm512_madd_epi16(a1, b1));

        __m512i ca, cb;
        BFREE_CLASSIFY_512(va, ca);
        BFREE_CLASSIFY_512(vb, cb);
        sP = _mm512_add_epi16(
            sP, _mm512_maddubs_epi16(_mm512_shuffle_epi8(kFP, ca),
                                     _mm512_shuffle_epi8(kFP, cb)));
        sO = _mm512_add_epi16(
            sO, _mm512_maddubs_epi16(_mm512_shuffle_epi8(kFO, ca),
                                     _mm512_shuffle_epi8(kFO, cb)));
        sL = _mm512_add_epi16(
            sL, _mm512_maddubs_epi16(_mm512_shuffle_epi8(kFL, ca),
                                     _mm512_shuffle_epi8(kFL, cb)));
        sZ = _mm512_add_epi16(
            sZ, _mm512_maddubs_epi16(_mm512_shuffle_epi8(kFZ, ca),
                                     _mm512_shuffle_epi8(kFZ, cb)));
        if (++sinceSpill == sep_spill_block)
            BFREE_SEP_SPILL_512();
    }
    BFREE_SEP_SPILL_512();
#undef BFREE_SEP_SPILL_512
#undef BFREE_FOLD_512
    fold_features(f, t.cyclesFactor(), s);
    acc += wsum_u32x8(
        _mm256_add_epi32(_mm512_castsi512_si256(accP),
                         _mm512_extracti64x4_epi64(accP, 1)));

    // Up to 63 elements remain; the 256-bit kernel chews them 32 at a
    // time (plus its own scalar tail), which beats walking them all
    // through the table-indexed scalar loop.
    if (i < len) {
        const SpanSums tail = span_avx2_hist(t, a + i, b + i, len - i);
        acc += static_cast<std::uint32_t>(tail.acc);
        s.lookups += tail.lookups;
        s.shifts += tail.shifts;
        s.adds += tail.adds;
        s.cycles += tail.cycles;
    }
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#pragma GCC diagnostic pop

/**
 * SSE4.2 histogram-tally kernel: 16 pairs per step (pshufb/maddubs
 * are SSSE3, the widening converts SSE4.1).
 */
__attribute__((target("sse4.2"))) SpanSums
span_sse42_hist(const lut::DatapathTable &t, const std::int8_t *a,
                const std::int8_t *b, std::size_t len)
{
    SpanSums s;
    BFREE_CLASSIFY_CONSTS_128;
    const __m128i kFP = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
        lut::DatapathTable::class_feature_p.data()));
    const __m128i kFO = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
        lut::DatapathTable::class_feature_o.data()));
    const __m128i kFL = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
        lut::DatapathTable::class_feature_l.data()));
    const __m128i kFZ = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
        lut::DatapathTable::class_feature_z.data()));
    const __m128i kOne16 = _mm_set1_epi16(1);

    __m128i accP = _mm_setzero_si128();
    __m128i sP = accP, sO = accP, sL = accP, sZ = accP;
    FeatureSums f;
    std::uint32_t acc = 0;
    std::size_t sinceSpill = 0;

#define BFREE_SEP_SPILL_128()                                            \
    do {                                                                 \
        reduce_features_u32x4(_mm_madd_epi16(sP, kOne16),                \
                              _mm_madd_epi16(sO, kOne16),                \
                              _mm_madd_epi16(sL, kOne16),                \
                              _mm_madd_epi16(sZ, kOne16), f);            \
        sP = sO = sL = sZ = _mm_setzero_si128();                         \
        sinceSpill = 0;                                                  \
    } while (0)

    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + i));

        const __m128i a0 = _mm_cvtepi8_epi16(va);
        const __m128i a1 = _mm_cvtepi8_epi16(_mm_srli_si128(va, 8));
        const __m128i b0 = _mm_cvtepi8_epi16(vb);
        const __m128i b1 = _mm_cvtepi8_epi16(_mm_srli_si128(vb, 8));
        accP = _mm_add_epi32(accP, _mm_madd_epi16(a0, b0));
        accP = _mm_add_epi32(accP, _mm_madd_epi16(a1, b1));

        __m128i ca, cb;
        BFREE_CLASSIFY_128(va, ca);
        BFREE_CLASSIFY_128(vb, cb);
        sP = _mm_add_epi16(
            sP, _mm_maddubs_epi16(_mm_shuffle_epi8(kFP, ca),
                                  _mm_shuffle_epi8(kFP, cb)));
        sO = _mm_add_epi16(
            sO, _mm_maddubs_epi16(_mm_shuffle_epi8(kFO, ca),
                                  _mm_shuffle_epi8(kFO, cb)));
        sL = _mm_add_epi16(
            sL, _mm_maddubs_epi16(_mm_shuffle_epi8(kFL, ca),
                                  _mm_shuffle_epi8(kFL, cb)));
        sZ = _mm_add_epi16(
            sZ, _mm_maddubs_epi16(_mm_shuffle_epi8(kFZ, ca),
                                  _mm_shuffle_epi8(kFZ, cb)));
        if (++sinceSpill == sep_spill_block)
            BFREE_SEP_SPILL_128();
    }
    BFREE_SEP_SPILL_128();
#undef BFREE_SEP_SPILL_128
    fold_features(f, t.cyclesFactor(), s);
    acc += static_cast<std::uint32_t>(hsum_u32x4(accP));

    if (i < len)
        scalar_range(t, a, b, i, len, false, false, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

/**
 * AVX2 gather variant: 8 operand pairs per step. Widening byte->dword
 * converts feed a mullo for the products (or a product-plane gather
 * when the table is poisoned), one dword gather fetches the packed
 * deltas, and four masked lane accumulators implement the blocked
 * tally (spilled well before any u32 lane can saturate). The operand
 * streams are software-prefetched a few cache lines ahead; per-lane
 * prefetch of the gather targets was measured counterproductive (the
 * delta plane is cache-resident, so the extract/prefetch overhead
 * outweighs any latency it hides).
 */
__attribute__((target("avx2"))) SpanSums
span_avx2(const lut::DatapathTable &t, const std::int8_t *a,
          const std::int8_t *b, std::size_t len, bool clamp, bool strict)
{
    SpanSums s;
    const std::int32_t half = t.half();
    const std::int32_t *prod = t.products();
    const auto *delta = reinterpret_cast<const int *>(t.deltas());
    const bool exact = t.productsExact();

    const __m256i vhalf = _mm256_set1_epi32(half);
    const __m256i vspan = _mm256_set1_epi32(static_cast<int>(t.span()));
    const __m256i vmin = _mm256_set1_epi32(-half);
    const __m256i vmax = _mm256_set1_epi32(half - 1);
    const __m256i byteMask = _mm256_set1_epi32(0xFF);

    __m256i accP = _mm256_setzero_si256();
    __m256i f0 = accP, f1 = accP, f2 = accP, f3 = accP;
    std::uint32_t acc = 0;

    // Each u32 lane absorbs a <=255 field per step: spill long before
    // 2^32 / 255 steps so the lanes can never saturate.
    constexpr std::size_t spill_block = std::size_t{1} << 22;
    std::size_t sinceSpill = 0;

    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        _mm_prefetch(reinterpret_cast<const char *>(a + i + 256),
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(b + i + 256),
                     _MM_HINT_T0);
        __m256i vw = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(a + i)));
        __m256i vx = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(b + i)));
        if (clamp) {
            vw = _mm256_min_epi32(_mm256_max_epi32(vw, vmin), vmax);
            vx = _mm256_min_epi32(_mm256_max_epi32(vx, vmin), vmax);
        } else if (strict) {
            // Out-of-domain lanes would index outside the planes; let
            // the scalar tail walk this block and pinpoint the first
            // offender in element order.
            const __m256i bad = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpgt_epi32(vmin, vw),
                                _mm256_cmpgt_epi32(vw, vhalf)),
                _mm256_or_si256(_mm256_cmpgt_epi32(vmin, vx),
                                _mm256_cmpgt_epi32(vx, vhalf)));
            if (_mm256_movemask_epi8(bad) != 0)
                break;
        }
        const __m256i idx = _mm256_add_epi32(
            _mm256_mullo_epi32(_mm256_add_epi32(vw, vhalf), vspan),
            _mm256_add_epi32(vx, vhalf));
        const __m256i d = _mm256_i32gather_epi32(delta, idx, 4);
        const __m256i p = exact
                              ? _mm256_mullo_epi32(vw, vx)
                              : _mm256_i32gather_epi32(prod, idx, 4);
        accP = _mm256_add_epi32(accP, p);
        f0 = _mm256_add_epi32(f0, _mm256_and_si256(d, byteMask));
        f1 = _mm256_add_epi32(
            f1, _mm256_and_si256(_mm256_srli_epi32(d, 8), byteMask));
        f2 = _mm256_add_epi32(
            f2, _mm256_and_si256(_mm256_srli_epi32(d, 16), byteMask));
        f3 = _mm256_add_epi32(f3, _mm256_srli_epi32(d, 24));
        if (++sinceSpill == spill_block) {
            s.lookups += hsum_u32x8(f0);
            s.shifts += hsum_u32x8(f1);
            s.adds += hsum_u32x8(f2);
            s.cycles += hsum_u32x8(f3);
            f0 = f1 = f2 = f3 = _mm256_setzero_si256();
            sinceSpill = 0;
        }
    }
    s.lookups += hsum_u32x8(f0);
    s.shifts += hsum_u32x8(f1);
    s.adds += hsum_u32x8(f2);
    s.cycles += hsum_u32x8(f3);
    acc += static_cast<std::uint32_t>(hsum_u32x8(accP));

    if (i < len)
        scalar_range(t, a, b, i, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

/**
 * SSE4.2 gather variant: 4 pairs per step. Widening converts plus
 * pmulld cover the product side; without a hardware gather, the
 * packed deltas are fetched with scalar loads into the blocked tally.
 */
__attribute__((target("sse4.2"))) SpanSums
span_sse42(const lut::DatapathTable &t, const std::int8_t *a,
           const std::int8_t *b, std::size_t len, bool clamp,
           bool strict)
{
    SpanSums s;
    const std::int32_t half = t.half();
    const std::uint32_t span = t.span();
    const std::int32_t *prod = t.products();
    const std::uint32_t *delta = t.deltas();
    const bool exact = t.productsExact();

    const __m128i vhalf = _mm_set1_epi32(half);
    const __m128i vspan = _mm_set1_epi32(static_cast<int>(span));
    const __m128i vmin = _mm_set1_epi32(-half);
    const __m128i vmax = _mm_set1_epi32(half - 1);

    __m128i accP = _mm_setzero_si128();
    std::uint32_t acc = 0;
    TallyBlock tb;

    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
        std::int32_t wword, xword;
        __builtin_memcpy(&wword, a + i, 4);
        __builtin_memcpy(&xword, b + i, 4);
        __m128i vw = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(wword));
        __m128i vx = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(xword));
        if (clamp) {
            vw = _mm_min_epi32(_mm_max_epi32(vw, vmin), vmax);
            vx = _mm_min_epi32(_mm_max_epi32(vx, vmin), vmax);
        } else if (strict) {
            const __m128i bad = _mm_or_si128(
                _mm_or_si128(_mm_cmpgt_epi32(vmin, vw),
                             _mm_cmpgt_epi32(vw, vhalf)),
                _mm_or_si128(_mm_cmpgt_epi32(vmin, vx),
                             _mm_cmpgt_epi32(vx, vhalf)));
            if (_mm_movemask_epi8(bad) != 0)
                break; // scalar tail pinpoints the offender
        }
        const __m128i idx = _mm_add_epi32(
            _mm_mullo_epi32(_mm_add_epi32(vw, vhalf), vspan),
            _mm_add_epi32(vx, vhalf));
        alignas(16) std::int32_t lane[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(lane), idx);
        tb.add(delta[lane[0]], s);
        tb.add(delta[lane[1]], s);
        tb.add(delta[lane[2]], s);
        tb.add(delta[lane[3]], s);
        if (exact) {
            accP = _mm_add_epi32(accP, _mm_mullo_epi32(vw, vx));
        } else {
            acc += static_cast<std::uint32_t>(prod[lane[0]]);
            acc += static_cast<std::uint32_t>(prod[lane[1]]);
            acc += static_cast<std::uint32_t>(prod[lane[2]]);
            acc += static_cast<std::uint32_t>(prod[lane[3]]);
        }
    }
    tb.spill(s);
    alignas(16) std::uint32_t plane[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(plane), accP);
    acc += plane[0] + plane[1] + plane[2] + plane[3];

    if (i < len)
        scalar_range(t, a, b, i, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#endif // BFREE_X86_KERNELS

#ifdef __ARM_NEON

/**
 * NEON variant: 8 pairs per step through a widening vmull_s8 (an
 * int8 x int8 product always fits int16, |p| <= 2^14), pairwise
 * accumulated into int32 lanes. Deltas are fetched scalar (no
 * gather). Clamp/strict/poisoned-table shapes delegate to the scalar
 * loop — they are either the 4-bit niche or the post-rewrite reseed
 * window, never the steady state.
 */
SpanSums
span_neon(const lut::DatapathTable &t, const std::int8_t *a,
          const std::int8_t *b, std::size_t len, bool clamp, bool strict)
{
    if (t.bits() != 8 || !t.productsExact() || clamp || strict)
        return span_scalar(t, a, b, len, clamp, strict);

    SpanSums s;
    const std::int32_t half = t.half();
    const std::uint32_t span = t.span();
    const std::uint32_t *delta = t.deltas();

    int32x4_t accP = vdupq_n_s32(0);
    std::uint32_t acc = 0;
    TallyBlock tb;

    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        const int8x8_t vw = vld1_s8(a + i);
        const int8x8_t vx = vld1_s8(b + i);
        accP = vpadalq_s16(accP, vmull_s8(vw, vx));
        for (unsigned j = 0; j < 8; ++j) {
            const std::size_t idx =
                static_cast<std::size_t>(a[i + j] + half) * span
                + static_cast<std::size_t>(b[i + j] + half);
            tb.add(delta[idx], s);
        }
    }
    tb.spill(s);
    acc += static_cast<std::uint32_t>(vgetq_lane_s32(accP, 0))
           + static_cast<std::uint32_t>(vgetq_lane_s32(accP, 1))
           + static_cast<std::uint32_t>(vgetq_lane_s32(accP, 2))
           + static_cast<std::uint32_t>(vgetq_lane_s32(accP, 3));

    if (i < len)
        scalar_range(t, a, b, i, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#endif // __ARM_NEON

} // namespace

const char *
tally_mode_name(TallyMode mode)
{
    switch (mode) {
      case TallyMode::Histogram:
        return "histogram";
      case TallyMode::Gather:
        return "gather";
    }
    return "unknown";
}

TallyMode
active_tally_mode()
{
    if (!resolvedTally)
        resolvedTally = resolve_tally_from_environment();
    return *resolvedTally;
}

void
force_tally_mode(TallyMode mode)
{
    resolvedTally = mode;
}

void
reset_tally_mode()
{
    resolvedTally = resolve_tally_from_environment();
}

SpanSums
run_span(const lut::DatapathTable &table, const std::int8_t *a,
         const std::int8_t *b, std::size_t len, SpanSemantics semantics)
{
    if (!table.valid())
        bfree_panic("span kernel dispatched on an unseeded datapath "
                    "table");
    const bool clamp =
        semantics == SpanSemantics::ConvClamp && table.bits() == 4;
    const bool strict =
        semantics == SpanSemantics::MatmulStrict && table.bits() == 4;

    // The gather-free tally requires the pristine steady state: every
    // product exact (widening multiply legal) and the whole delta
    // plane verified against the class collapse. 8-bit operands are
    // always in-domain, so no clamp/strict handling is needed there
    // by construction. Everything else gathers.
    [[maybe_unused]] const bool histogramEligible =
        active_tally_mode() == TallyMode::Histogram
        && table.bits() == 8 && table.productsExact()
        && table.histogramExact();

    switch (sim::active_simd_level()) {
#ifdef BFREE_X86_KERNELS
      case sim::SimdLevel::Avx512:
        if (histogramEligible)
            return span_avx512_hist(table, a, b, len);
        // Gather fallback reuses the AVX2 kernel: AVX-512 adds
        // nothing to a latency-bound gather loop.
        return span_avx2(table, a, b, len, clamp, strict);
      case sim::SimdLevel::Avx2:
        if (histogramEligible)
            return span_avx2_hist(table, a, b, len);
        return span_avx2(table, a, b, len, clamp, strict);
      case sim::SimdLevel::Sse42:
        if (histogramEligible)
            return span_sse42_hist(table, a, b, len);
        return span_sse42(table, a, b, len, clamp, strict);
#endif
#ifdef __ARM_NEON
      case sim::SimdLevel::Neon:
        return span_neon(table, a, b, len, clamp, strict);
#endif
      default:
        return span_scalar(table, a, b, len, clamp, strict);
    }
}

namespace {

/** Start of run @p i of @p v (offset table or uniform stride). */
inline const std::int8_t *
view_run(const SpanView &v, std::size_t i)
{
    return v.base
           + (v.offsets ? static_cast<std::size_t>(v.offsets[i])
                        : i * v.stride);
}

/** Copy exactly @p len in [5, 8] bytes with two overlapping u32s. */
inline void
copy_le8(std::int8_t *dst, const std::int8_t *src, std::size_t len)
{
    std::memcpy(dst, src, 4);
    std::memcpy(dst + len - 4, src + len - 4, 4);
}

/** Copy exactly @p len in [1, 8] bytes, branch per width class. */
inline void
copy_exact_le8(std::int8_t *dst, const std::int8_t *src, std::size_t len)
{
    if (len >= 4) {
        copy_le8(dst, src, len);
    } else if (len == 3) {
        std::memcpy(dst, src, 2);
        dst[2] = src[2];
    } else if (len == 2) {
        std::memcpy(dst, src, 2);
    } else {
        dst[0] = src[0];
    }
}

} // namespace

void
materialize_span_view(const SpanView &view, std::int8_t *dst)
{
    const std::size_t n = view.nRuns;
    // With 8 bytes of slack guaranteed on both sides, every short run
    // is one 8-byte load/store: runs are packed contiguously in dst,
    // so run i's overshoot is overwritten when run i+1 lands, and the
    // last run's overshoot falls into the caller's slack.
    if (view.slack8 && view.runLen < 8) {
        for (std::size_t i = 0; i < n; ++i)
            std::memcpy(dst + view.runLen * i, view_run(view, i), 8);
        return;
    }
    // Specialize the hot run widths so every copy is a fixed-size
    // load/store pair the compiler lowers to plain movs — the point
    // is killing per-run call and branch overhead, and every write is
    // exact-width (no trailing clobber for the last run to worry
    // about).
    switch (view.runLen) {
      case 1:
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = *view_run(view, i);
        return;
      case 2:
        for (std::size_t i = 0; i < n; ++i)
            std::memcpy(dst + 2 * i, view_run(view, i), 2);
        return;
      case 3:
        for (std::size_t i = 0; i < n; ++i) {
            const std::int8_t *src = view_run(view, i);
            std::memcpy(dst + 3 * i, src, 2);
            dst[3 * i + 2] = src[2];
        }
        return;
      case 4:
        for (std::size_t i = 0; i < n; ++i)
            std::memcpy(dst + 4 * i, view_run(view, i), 4);
        return;
      case 5:
      case 6:
      case 7:
        for (std::size_t i = 0; i < n; ++i)
            copy_le8(dst + view.runLen * i, view_run(view, i),
                     view.runLen);
        return;
      case 8:
        for (std::size_t i = 0; i < n; ++i)
            std::memcpy(dst + 8 * i, view_run(view, i), 8);
        return;
      default:
        for (std::size_t i = 0; i < n; ++i)
            std::memcpy(dst + view.runLen * i, view_run(view, i),
                        view.runLen);
        return;
    }
}

void
materialize_span_block(const SpanView &view, std::size_t nPatches,
                       std::size_t srcStep, std::int8_t *dst,
                       std::size_t dstStep)
{
    if (view.slack8 && view.runLen < 8 && view.nRuns > 0) {
        // Transposed: the outer loop resolves each run's base once,
        // the inner loop walks the patches — for a stride-1 conv row
        // the sources are consecutive bytes, all in one or two cache
        // lines. Unlike the per-patch order, a run's overshoot is only
        // rewritten by a later run of the SAME patch if it stays
        // inside that patch's dstStep slot: any spill past the slot
        // lands in patch j+1's first runs, which run 0 already wrote.
        // So the 8-byte copy is used for the prefix of runs whose
        // spill stays in-slot and the tail copies exact-width.
        const std::size_t fast =
            dstStep >= SpanView::slackBytes
                ? std::min(view.nRuns,
                           (dstStep - SpanView::slackBytes) / view.runLen
                               + 1)
                : 0;
        for (std::size_t i = 0; i < fast; ++i) {
            const std::int8_t *src = view_run(view, i);
            std::int8_t *d = dst + view.runLen * i;
            for (std::size_t j = 0; j < nPatches; ++j)
                std::memcpy(d + j * dstStep, src + j * srcStep, 8);
        }
        for (std::size_t i = fast; i < view.nRuns; ++i) {
            const std::int8_t *src = view_run(view, i);
            std::int8_t *d = dst + view.runLen * i;
            for (std::size_t j = 0; j < nPatches; ++j)
                copy_exact_le8(d + j * dstStep, src + j * srcStep,
                               view.runLen);
        }
        return;
    }
    // Exact-width fallback: per-patch materialization.
    SpanView shifted = view;
    for (std::size_t j = 0; j < nPatches; ++j) {
        shifted.base = view.base + j * srcStep;
        materialize_span_view(shifted, dst + j * dstStep);
    }
}

} // namespace bfree::bce::simd
