#include "simd_kernels.hh"

#include <algorithm>

#include "sim/cpuid.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BFREE_X86_KERNELS 1
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace bfree::bce::simd {

namespace {

/**
 * Blocked scalar tally over packed micro-op deltas. Two u64
 * accumulators hold the four byte fields in 16-bit windows (lookups
 * and adds in `lo`, shifts and cycles in `hi`); each window can absorb
 * at most 256 additions of a <=255 field before it could carry into
 * its neighbour, so the block spills to the 64-bit totals every 256
 * entries.
 */
struct TallyBlock
{
    static constexpr unsigned block = 256;

    std::uint64_t lo = 0, hi = 0;
    unsigned n = 0;

    void
    add(std::uint32_t d, SpanSums &s)
    {
        lo += d & 0x00FF00FFu;
        hi += (d >> 8) & 0x00FF00FFu;
        if (++n == block)
            spill(s);
    }

    void
    spill(SpanSums &s)
    {
        s.lookups += lo & 0xFFFFu;
        s.adds += (lo >> 16) & 0xFFFFu;
        s.shifts += hi & 0xFFFFu;
        s.cycles += (hi >> 16) & 0xFFFFu;
        lo = hi = 0;
        n = 0;
    }
};

/**
 * Scalar element loop over [begin, end); also the tail pass of every
 * SIMD variant. Accumulates into @p s / @p acc; returns false at the
 * first strict-domain violation (with firstOutOfRange set).
 */
bool
scalar_range(const lut::DatapathTable &t, const std::int8_t *a,
             const std::int8_t *b, std::size_t begin, std::size_t end,
             bool clamp, bool strict, std::uint32_t &acc, SpanSums &s)
{
    const std::int32_t half = t.half();
    const std::int32_t *prod = t.products();
    const std::uint32_t *delta = t.deltas();
    const bool exact = t.productsExact();

    TallyBlock tb;
    for (std::size_t i = begin; i < end; ++i) {
        std::int32_t w = a[i];
        std::int32_t x = b[i];
        if (clamp) {
            w = std::clamp(w, -half, half - 1);
            x = std::clamp(x, -half, half - 1);
        } else if (strict
                   && (w < -half || w > half || x < -half || x > half)) {
            tb.spill(s);
            s.inRange = false;
            s.firstOutOfRange = i;
            return false;
        }
        const std::size_t idx = t.index(w, x);
        acc += static_cast<std::uint32_t>(exact ? w * x : prod[idx]);
        tb.add(delta[idx], s);
    }
    tb.spill(s);
    return true;
}

SpanSums
span_scalar(const lut::DatapathTable &t, const std::int8_t *a,
            const std::int8_t *b, std::size_t len, bool clamp,
            bool strict)
{
    SpanSums s;
    std::uint32_t acc = 0;
    scalar_range(t, a, b, 0, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#ifdef BFREE_X86_KERNELS

/** Sum of eight u32 lanes, widened (store-and-add; spill path only). */
__attribute__((target("avx2"))) std::uint64_t
hsum_u32x8(__m256i v)
{
    alignas(32) std::uint32_t lane[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lane), v);
    std::uint64_t sum = 0;
    for (const std::uint32_t l : lane)
        sum += l;
    return sum;
}

/**
 * AVX2 variant: 8 operand pairs per step. Widening byte->dword
 * converts feed a mullo for the products (or a product-plane gather
 * when the table is poisoned), one dword gather fetches the packed
 * deltas, and four masked lane accumulators implement the blocked
 * tally (spilled well before any u32 lane can saturate).
 */
__attribute__((target("avx2"))) SpanSums
span_avx2(const lut::DatapathTable &t, const std::int8_t *a,
          const std::int8_t *b, std::size_t len, bool clamp, bool strict)
{
    SpanSums s;
    const std::int32_t half = t.half();
    const std::int32_t *prod = t.products();
    const auto *delta = reinterpret_cast<const int *>(t.deltas());
    const bool exact = t.productsExact();

    const __m256i vhalf = _mm256_set1_epi32(half);
    const __m256i vspan = _mm256_set1_epi32(static_cast<int>(t.span()));
    const __m256i vmin = _mm256_set1_epi32(-half);
    const __m256i vmax = _mm256_set1_epi32(half - 1);
    const __m256i byteMask = _mm256_set1_epi32(0xFF);

    __m256i accP = _mm256_setzero_si256();
    __m256i f0 = accP, f1 = accP, f2 = accP, f3 = accP;
    std::uint32_t acc = 0;

    // Each u32 lane absorbs a <=255 field per step: spill long before
    // 2^32 / 255 steps so the lanes can never saturate.
    constexpr std::size_t spill_block = std::size_t{1} << 22;
    std::size_t sinceSpill = 0;

    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        __m256i vw = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(a + i)));
        __m256i vx = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(b + i)));
        if (clamp) {
            vw = _mm256_min_epi32(_mm256_max_epi32(vw, vmin), vmax);
            vx = _mm256_min_epi32(_mm256_max_epi32(vx, vmin), vmax);
        } else if (strict) {
            // Out-of-domain lanes would index outside the planes; let
            // the scalar tail walk this block and pinpoint the first
            // offender in element order.
            const __m256i bad = _mm256_or_si256(
                _mm256_or_si256(_mm256_cmpgt_epi32(vmin, vw),
                                _mm256_cmpgt_epi32(vw, vhalf)),
                _mm256_or_si256(_mm256_cmpgt_epi32(vmin, vx),
                                _mm256_cmpgt_epi32(vx, vhalf)));
            if (_mm256_movemask_epi8(bad) != 0)
                break;
        }
        const __m256i idx = _mm256_add_epi32(
            _mm256_mullo_epi32(_mm256_add_epi32(vw, vhalf), vspan),
            _mm256_add_epi32(vx, vhalf));
        const __m256i d = _mm256_i32gather_epi32(delta, idx, 4);
        const __m256i p = exact
                              ? _mm256_mullo_epi32(vw, vx)
                              : _mm256_i32gather_epi32(prod, idx, 4);
        accP = _mm256_add_epi32(accP, p);
        f0 = _mm256_add_epi32(f0, _mm256_and_si256(d, byteMask));
        f1 = _mm256_add_epi32(
            f1, _mm256_and_si256(_mm256_srli_epi32(d, 8), byteMask));
        f2 = _mm256_add_epi32(
            f2, _mm256_and_si256(_mm256_srli_epi32(d, 16), byteMask));
        f3 = _mm256_add_epi32(f3, _mm256_srli_epi32(d, 24));
        if (++sinceSpill == spill_block) {
            s.lookups += hsum_u32x8(f0);
            s.shifts += hsum_u32x8(f1);
            s.adds += hsum_u32x8(f2);
            s.cycles += hsum_u32x8(f3);
            f0 = f1 = f2 = f3 = _mm256_setzero_si256();
            sinceSpill = 0;
        }
    }
    s.lookups += hsum_u32x8(f0);
    s.shifts += hsum_u32x8(f1);
    s.adds += hsum_u32x8(f2);
    s.cycles += hsum_u32x8(f3);
    acc += static_cast<std::uint32_t>(hsum_u32x8(accP));

    scalar_range(t, a, b, i, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

/**
 * SSE4.2 variant: 4 pairs per step. Widening converts plus pmulld
 * cover the product side; without a hardware gather, the packed
 * deltas are fetched with scalar loads into the blocked tally.
 */
__attribute__((target("sse4.2"))) SpanSums
span_sse42(const lut::DatapathTable &t, const std::int8_t *a,
           const std::int8_t *b, std::size_t len, bool clamp,
           bool strict)
{
    SpanSums s;
    const std::int32_t half = t.half();
    const std::uint32_t span = t.span();
    const std::int32_t *prod = t.products();
    const std::uint32_t *delta = t.deltas();
    const bool exact = t.productsExact();

    const __m128i vhalf = _mm_set1_epi32(half);
    const __m128i vspan = _mm_set1_epi32(static_cast<int>(span));
    const __m128i vmin = _mm_set1_epi32(-half);
    const __m128i vmax = _mm_set1_epi32(half - 1);

    __m128i accP = _mm_setzero_si128();
    std::uint32_t acc = 0;
    TallyBlock tb;

    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
        std::int32_t wword, xword;
        __builtin_memcpy(&wword, a + i, 4);
        __builtin_memcpy(&xword, b + i, 4);
        __m128i vw = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(wword));
        __m128i vx = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(xword));
        if (clamp) {
            vw = _mm_min_epi32(_mm_max_epi32(vw, vmin), vmax);
            vx = _mm_min_epi32(_mm_max_epi32(vx, vmin), vmax);
        } else if (strict) {
            const __m128i bad = _mm_or_si128(
                _mm_or_si128(_mm_cmpgt_epi32(vmin, vw),
                             _mm_cmpgt_epi32(vw, vhalf)),
                _mm_or_si128(_mm_cmpgt_epi32(vmin, vx),
                             _mm_cmpgt_epi32(vx, vhalf)));
            if (_mm_movemask_epi8(bad) != 0)
                break; // scalar tail pinpoints the offender
        }
        const __m128i idx = _mm_add_epi32(
            _mm_mullo_epi32(_mm_add_epi32(vw, vhalf), vspan),
            _mm_add_epi32(vx, vhalf));
        alignas(16) std::int32_t lane[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(lane), idx);
        tb.add(delta[lane[0]], s);
        tb.add(delta[lane[1]], s);
        tb.add(delta[lane[2]], s);
        tb.add(delta[lane[3]], s);
        if (exact) {
            accP = _mm_add_epi32(accP, _mm_mullo_epi32(vw, vx));
        } else {
            acc += static_cast<std::uint32_t>(prod[lane[0]]);
            acc += static_cast<std::uint32_t>(prod[lane[1]]);
            acc += static_cast<std::uint32_t>(prod[lane[2]]);
            acc += static_cast<std::uint32_t>(prod[lane[3]]);
        }
    }
    tb.spill(s);
    alignas(16) std::uint32_t plane[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(plane), accP);
    acc += plane[0] + plane[1] + plane[2] + plane[3];

    scalar_range(t, a, b, i, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#endif // BFREE_X86_KERNELS

#ifdef __ARM_NEON

/**
 * NEON variant: 8 pairs per step through a widening vmull_s8 (an
 * int8 x int8 product always fits int16, |p| <= 2^14), pairwise
 * accumulated into int32 lanes. Deltas are fetched scalar (no
 * gather). Clamp/strict/poisoned-table shapes delegate to the scalar
 * loop — they are either the 4-bit niche or the post-rewrite reseed
 * window, never the steady state.
 */
SpanSums
span_neon(const lut::DatapathTable &t, const std::int8_t *a,
          const std::int8_t *b, std::size_t len, bool clamp, bool strict)
{
    if (t.bits() != 8 || !t.productsExact() || clamp || strict)
        return span_scalar(t, a, b, len, clamp, strict);

    SpanSums s;
    const std::int32_t half = t.half();
    const std::uint32_t span = t.span();
    const std::uint32_t *delta = t.deltas();

    int32x4_t accP = vdupq_n_s32(0);
    std::uint32_t acc = 0;
    TallyBlock tb;

    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        const int8x8_t vw = vld1_s8(a + i);
        const int8x8_t vx = vld1_s8(b + i);
        accP = vpadalq_s16(accP, vmull_s8(vw, vx));
        for (unsigned j = 0; j < 8; ++j) {
            const std::size_t idx =
                static_cast<std::size_t>(a[i + j] + half) * span
                + static_cast<std::size_t>(b[i + j] + half);
            tb.add(delta[idx], s);
        }
    }
    tb.spill(s);
    acc += static_cast<std::uint32_t>(vgetq_lane_s32(accP, 0))
           + static_cast<std::uint32_t>(vgetq_lane_s32(accP, 1))
           + static_cast<std::uint32_t>(vgetq_lane_s32(accP, 2))
           + static_cast<std::uint32_t>(vgetq_lane_s32(accP, 3));

    scalar_range(t, a, b, i, len, clamp, strict, acc, s);
    s.acc = static_cast<std::int32_t>(acc);
    return s;
}

#endif // __ARM_NEON

} // namespace

SpanSums
run_span(const lut::DatapathTable &table, const std::int8_t *a,
         const std::int8_t *b, std::size_t len, SpanSemantics semantics)
{
    if (!table.valid())
        bfree_panic("span kernel dispatched on an unseeded datapath "
                    "table");
    const bool clamp =
        semantics == SpanSemantics::ConvClamp && table.bits() == 4;
    const bool strict =
        semantics == SpanSemantics::MatmulStrict && table.bits() == 4;

    switch (sim::active_simd_level()) {
#ifdef BFREE_X86_KERNELS
      case sim::SimdLevel::Avx2:
        return span_avx2(table, a, b, len, clamp, strict);
      case sim::SimdLevel::Sse42:
        return span_sse42(table, a, b, len, clamp, strict);
#endif
#ifdef __ARM_NEON
      case sim::SimdLevel::Neon:
        return span_neon(table, a, b, len, clamp, strict);
#endif
      default:
        return span_scalar(table, a, b, len, clamp, strict);
    }
}

} // namespace bfree::bce::simd
