#include "pipeline_trace.hh"

#include <sstream>

#include "bce.hh"
#include "lut/operand_analyzer.hh"
#include "sim/logging.hh"

namespace bfree::bce {

const char *
trace_action_name(TraceAction action)
{
    switch (action) {
      case TraceAction::DecodeConfig:
        return "decode-config";
      case TraceAction::LoadOperands:
        return "load-operands";
      case TraceAction::Shift:
        return "shift";
      case TraceAction::ShiftAddPair:
        return "shift+shift+add";
      case TraceAction::LutAccess:
        return "lut-access";
      case TraceAction::Bypass:
        return "bypass";
      case TraceAction::Accumulate:
        return "accumulate";
      case TraceAction::Writeback:
        return "writeback";
      case TraceAction::BroadcastLs4:
        return "broadcast-ls4";
      case TraceAction::BroadcastMs4:
        return "broadcast-ms4";
      case TraceAction::LoadNextRow:
        return "load-next-row";
    }
    return "?";
}

std::vector<TraceEvent>
PipelineTrace::at(std::uint32_t cycle) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : events)
        if (e.cycle == cycle)
            out.push_back(e);
    return out;
}

std::size_t
PipelineTrace::count(TraceAction action) const
{
    std::size_t n = 0;
    for (const TraceEvent &e : events)
        if (e.action == action)
            ++n;
    return n;
}

std::string
PipelineTrace::toString() const
{
    std::ostringstream os;
    for (const TraceEvent &e : events) {
        os << "cycle " << e.cycle << ": "
           << trace_action_name(e.action);
        if (!e.detail.empty())
            os << "  (" << e.detail << ")";
        os << "\n";
    }
    os << "result = " << result << ", " << cycles << " cycles\n";
    return os.str();
}

std::vector<unsigned>
pow2_pair_split(unsigned v)
{
    if (v == 0 || v % 2 != 0)
        return {};
    // Collect set bits; a "pair split" exists when exactly two bits
    // are set (6, 10, 12 in the 4-bit range).
    std::vector<unsigned> bits;
    for (unsigned b = 0; b < 8; ++b)
        if (v & (1u << b))
            bits.push_back(b);
    if (bits.size() != 2)
        return {};
    return {1u << bits[1], 1u << bits[0]};
}

namespace {

std::string
mult_detail(unsigned w, unsigned x)
{
    std::ostringstream os;
    os << w << " x " << x;
    return os.str();
}

} // namespace

PipelineTrace
trace_conv_dot(const std::vector<unsigned> &weights,
               const std::vector<unsigned> &inputs,
               const lut::MultLut &lut)
{
    if (weights.size() != inputs.size())
        bfree_fatal("trace_conv_dot: operand count mismatch");

    PipelineTrace trace;
    std::uint32_t cycle = 0;

    // Cycle 0: read the CB contents and decode (Fig. 6 "BCE reads the
    // contents of CB and decodes the address of first row of M1").
    trace.events.push_back({cycle, TraceAction::DecodeConfig, ""});
    ++cycle;

    // Cycle 1: first input column streams in; first weight row read.
    trace.events.push_back({cycle, TraceAction::LoadOperands, ""});
    ++cycle;

    std::int64_t acc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i, ++cycle) {
        const unsigned w = weights[i];
        const unsigned x = inputs[i];
        if (w > 15 || x > 15)
            bfree_fatal("Fig. 6 trace uses 4-bit operands");

        const auto cw = lut::classify_operand(w);
        const auto cx = lut::classify_operand(x);
        std::int64_t product = 0;

        if (cw == lut::OperandClass::Zero
            || cx == lut::OperandClass::Zero
            || cw == lut::OperandClass::One
            || cx == lut::OperandClass::One) {
            product = std::int64_t(w) * x;
            trace.events.push_back(
                {cycle, TraceAction::Bypass, mult_detail(w, x)});
        } else if (cw == lut::OperandClass::PowerOfTwo
                   || cx == lut::OperandClass::PowerOfTwo) {
            // "Since M1 data is in powers of 2, we do not access the
            // LUT but perform left shifting."
            product = std::int64_t(w) * x;
            trace.events.push_back(
                {cycle, TraceAction::Shift, mult_detail(w, x)});
        } else if (cw == lut::OperandClass::EvenComposite
                   || cx == lut::OperandClass::EvenComposite) {
            // "Two left shift operations are performed since the input
            // even number is split into two powers-of-two numbers" —
            // when the even value has exactly two set bits; otherwise
            // fall back to odd x 2^k (one LUT access + shift).
            const unsigned even =
                cw == lut::OperandClass::EvenComposite ? w : x;
            const unsigned other =
                cw == lut::OperandClass::EvenComposite ? x : w;
            const std::vector<unsigned> split = pow2_pair_split(even);
            product = std::int64_t(w) * x;
            if (!split.empty()) {
                trace.events.push_back({cycle,
                                        TraceAction::ShiftAddPair,
                                        mult_detail(w, x)});
            } else {
                const auto d = lut::decompose_odd(even);
                (void)lut.lookup(d.odd, lut::decompose_odd(other).odd);
                trace.events.push_back(
                    {cycle, TraceAction::LutAccess, mult_detail(w, x)});
            }
        } else {
            // Both odd: the product comes straight from the LUT.
            const std::uint8_t looked = lut.lookup(w, x);
            product = looked;
            trace.events.push_back(
                {cycle, TraceAction::LutAccess, mult_detail(w, x)});
        }

        acc += product;
        if (i > 0)
            trace.events.push_back({cycle, TraceAction::Accumulate, ""});
    }

    // Final cycle: writeback.
    trace.events.push_back({cycle, TraceAction::Writeback, ""});
    trace.result = acc;
    trace.cycles = cycle + 1;
    return trace;
}

PipelineTrace
trace_matmul_broadcast(const std::vector<std::int32_t> &a_operands,
                       const std::vector<std::vector<std::int8_t>> &b_rows,
                       const lut::MultLut &lut)
{
    if (a_operands.size() != b_rows.size())
        bfree_fatal("trace_matmul_broadcast: one B row per A operand");

    PipelineTrace trace;
    std::uint32_t cycle = 0;

    trace.events.push_back({cycle, TraceAction::DecodeConfig, ""});
    ++cycle;
    trace.events.push_back({cycle, TraceAction::LoadOperands, ""});
    ++cycle;

    std::int64_t acc = 0;
    for (std::size_t step = 0; step < a_operands.size(); ++step) {
        const std::int32_t a = a_operands[step];
        const auto &row = b_rows[step];
        if (row.size() > bce_vector_width)
            bfree_fatal("B row wider than the register file");

        // Timescale 1: LS-4 of A against every B lane.
        trace.events.push_back({cycle, TraceAction::BroadcastLs4,
                                "A=" + std::to_string(a)});
        ++cycle;
        // Timescale 2: MS-4 of A.
        trace.events.push_back({cycle, TraceAction::BroadcastMs4,
                                "A=" + std::to_string(a)});
        ++cycle;

        for (std::int8_t b : row) {
            acc += lut::multiply_signed(a, b, 8, lut,
                                        lut::LookupSource::BceRom)
                       .product;
        }

        if (step + 1 < a_operands.size()) {
            // "The subsequent row of matrix B is loaded into the input
            // register" — overlapped with the next LS-4 pass, so it
            // shares the cycle.
            trace.events.push_back(
                {cycle, TraceAction::LoadNextRow, ""});
        }
    }

    trace.events.push_back({cycle, TraceAction::Writeback, ""});
    trace.result = acc;
    trace.cycles = cycle + 1;
    return trace;
}

} // namespace bfree::bce
