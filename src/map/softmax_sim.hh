/**
 * @file
 * Distributed softmax on a sub-bank chain (Section IV-B2).
 *
 * "BFree executes softmax ... Each sub-array processes unique sets of
 * elements in the vector, and accumulates across the sub-array to get
 * denominator of the softmax (sum e^x) operation in the last
 * sub-array. This denominator is redistributed to all the sub-arrays
 * (increased parallelism) for computing the final output."
 *
 * Three phases on a K-node chain, each node owning a slice of the
 * logit vector:
 *
 *   1. exp:       every node evaluates its slice through the exp PWL
 *                 table (2 cycles per element, all nodes in parallel)
 *                 and forms its partial denominator;
 *   2. reduce:    partial sums flow down the chain (K - 1 hops);
 *   3. redistribute + divide: the denominator travels back up
 *                 (K - 1 hops) and every node divides its slice
 *                 through the reciprocal LUT (4 cycles per element,
 *                 in parallel).
 *
 * Closed form: 2 * ceil(len / K) + 2 * (K - 1) * hop
 *              + 4 * ceil(len / K); the event-driven run must match.
 */

#ifndef BFREE_MAP_SOFTMAX_SIM_HH
#define BFREE_MAP_SOFTMAX_SIM_HH

#include <cstdint>
#include <vector>

#include "lut/division.hh"
#include "lut/pwl.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::map {

/** Result of a distributed softmax run. */
struct SoftmaxRunResult
{
    std::vector<double> probabilities;
    std::uint64_t cycles = 0;
    double denominator = 0.0;
};

/** The closed-form cycle count. */
std::uint64_t softmax_chain_cycles(unsigned nodes, std::size_t length,
                                   unsigned hop_cycles);

/**
 * Distributed softmax over a chain of @p nodes sub-arrays.
 */
class DistributedSoftmax
{
  public:
    DistributedSoftmax(const tech::CacheGeometry &geom,
                       const tech::TechParams &tech, unsigned nodes,
                       unsigned exp_segments = 64,
                       unsigned division_m = 6);

    /** Run softmax over @p logits (max-shifted internally). */
    SoftmaxRunResult run(const std::vector<double> &logits) const;

    unsigned nodes() const { return numNodes; }

  private:
    tech::TechParams tech;
    unsigned numNodes;
    lut::PwlTable expTable;
    lut::DivisionLut divisionLut;
};

} // namespace bfree::map

#endif // BFREE_MAP_SOFTMAX_SIM_HH
