#include "detailed_slice_sim.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace bfree::map {

namespace {

/**
 * Router-name helpers: one snprintf into a stack buffer and a single
 * (SSO-sized) string construction, instead of the four temporary
 * strings std::to_string-based concatenation costs per node.
 */
std::string
vertical_router_name(unsigned col, unsigned row)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "v%u_%u", col, row);
    return buf;
}

std::string
horizontal_router_name(unsigned col)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "h%u", col);
    return buf;
}

} // namespace

std::uint64_t
detailed_grid_formula(unsigned rows, unsigned cols, unsigned waves,
                      std::uint64_t cps, unsigned hop)
{
    if (rows == 0 || cols == 0 || waves == 0)
        return 0;
    return static_cast<std::uint64_t>(waves) * cps
           + static_cast<std::uint64_t>(cols - 1 + rows - 1) * hop;
}

/** One grid node: sub-array + BCE computing its channel slice. */
struct DetailedSliceSim::Node
{
    Node(DetailedSliceSim &parent, unsigned col, unsigned row)
        : parent(parent), col(col), row(row),
          subarray(parent.geom, parent.tech, *parent.account),
          bce(subarray, parent.tech, *parent.account)
    {
        bce.loadMultLutImage();
        bce.setMode(bce::BceMode::Conv);
    }

    std::int32_t
    localProduct(unsigned wave)
    {
        const std::vector<std::int8_t> &input =
            (*parent.currentInputs)[wave];
        const std::size_t base =
            static_cast<std::size_t>(row) * parent.sliceLen;
        return bce.dotProduct(0, input.data() + base, parent.sliceLen,
                              parent.bits);
    }

    void
    onPartial(const noc::Flit &flit)
    {
        const auto wave = flit.tag;
        const auto incoming = static_cast<std::int32_t>(flit.payload);
        const std::int32_t sum =
            bce.accumulateIncoming(localProduct(wave), incoming);
        parent.forward(col, row, wave, sum);
    }

    DetailedSliceSim &parent;
    unsigned col;
    unsigned row;
    mem::Subarray subarray;
    bce::Bce bce;
};

DetailedSliceSim::DetailedSliceSim(const tech::CacheGeometry &geom,
                                   const tech::TechParams &tech,
                                   unsigned rows, unsigned cols,
                                   unsigned slice_len, unsigned bits,
                                   GridEngine engine,
                                   sim::EventQueue *ext_queue,
                                   mem::EnergyAccount *ext_account)
    : geom(geom), tech(tech), numRows(rows), numCols(cols),
      sliceLen(slice_len), bits(bits), gridEngine(engine),
      owned_queue(ext_queue ? nullptr : new sim::EventQueue),
      owned_account(ext_account ? nullptr : new mem::EnergyAccount),
      queue(ext_queue ? ext_queue : owned_queue.get()),
      account(ext_account ? ext_account : owned_account.get()),
      clock(tech.subarrayClockHz)
{
    if (rows == 0 || rows > geom.subarraysPerSubBank)
        bfree_fatal("grid rows ", rows, " outside [1, ",
                    geom.subarraysPerSubBank, "]");
    if (cols == 0)
        bfree_fatal("grid needs at least one column");
    if (bits != 4 && bits != 8)
        bfree_fatal("detailed grid supports 4- or 8-bit operands");

    grid.resize(cols);
    vertical.resize(cols);
    for (unsigned c = 0; c < cols; ++c) {
        for (unsigned r = 0; r < rows; ++r)
            grid[c].push_back(std::make_unique<Node>(*this, c, r));
        for (unsigned r = 0; r + 1 < rows; ++r) {
            vertical[c].push_back(std::make_unique<noc::Router>(
                *queue, vertical_router_name(c, r), clock, tech,
                *account));
            Node *next = grid[c][r + 1].get();
            vertical[c].back()->connect(
                [next](const noc::Flit &flit) { next->onPartial(flit); });
            const unsigned next_row = r + 1;
            vertical[c].back()->connectBurst(
                [this, c, next_row](const noc::Flit *flits, std::size_t n,
                                    sim::Tick first, sim::Tick) {
                    onPartialTrain(c, next_row, first, flits, n);
                });
        }
    }

    for (unsigned c = 0; c + 1 < cols; ++c) {
        horizontal.push_back(std::make_unique<noc::Router>(
            *queue, horizontal_router_name(c), clock, tech, *account));
        const unsigned next_col = c + 1;
        horizontal[c]->connect([this, next_col](const noc::Flit &flit) {
            triggerColumn(next_col, flit.tag);
        });
        horizontal[c]->connectBurst(
            [this, next_col](const noc::Flit *, std::size_t,
                             sim::Tick first, sim::Tick) {
                onWaveTrain(next_col, first);
            });
    }
}

DetailedSliceSim::~DetailedSliceSim() = default;

void
DetailedSliceSim::loadWeights(
    const std::vector<std::vector<std::vector<std::int8_t>>> &w)
{
    if (w.size() != numCols)
        bfree_fatal("expected ", numCols, " weight columns");
    for (unsigned c = 0; c < numCols; ++c) {
        if (w[c].size() != numRows)
            bfree_fatal("column ", c, ": expected ", numRows,
                        " row slices");
        for (unsigned r = 0; r < numRows; ++r) {
            if (w[c][r].size() != sliceLen)
                bfree_fatal("weight slice (", c, ",", r, ") has ",
                            w[c][r].size(), " elements, expected ",
                            sliceLen);
            grid[c][r]->subarray.write(
                0,
                reinterpret_cast<const std::uint8_t *>(w[c][r].data()),
                sliceLen);
        }
    }
}

std::uint64_t
DetailedSliceSim::cyclesPerStep() const
{
    return static_cast<std::uint64_t>(sliceLen) * (bits / 4);
}

sim::Tick
DetailedSliceSim::stepTicks() const
{
    return clock.cyclesToTicks(sim::Cycles(cyclesPerStep()));
}

sim::Tick
DetailedSliceSim::hopTicks() const
{
    return clock.cyclesToTicks(sim::Cycles(tech.routerHopCycles));
}

void
DetailedSliceSim::triggerColumn(unsigned col, unsigned wave)
{
    // Propagate the wave to the next column first (the streaming link
    // runs concurrently with this column's compute).
    if (col + 1 < numCols)
        horizontal[col]->send(noc::Flit{0, wave});

    const std::int32_t local = grid[col][0]->localProduct(wave);
    forward(col, 0, wave, local);
}

void
DetailedSliceSim::forward(unsigned col, unsigned row, unsigned wave,
                          std::int32_t sum)
{
    if (row + 1 < numRows) {
        vertical[col][row]->send(noc::Flit{
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(sum)),
            wave});
    } else {
        if (wave != completed[col].size())
            bfree_panic("column ", col, ": wave ", wave,
                        " completed out of order");
        completed[col].push_back(sum);
        drain_tick = std::max(drain_tick, queue->now());
    }
}

void
DetailedSliceSim::onWaveTrain(unsigned col, sim::Tick first)
{
    // Forward the whole train to the next column first, mirroring the
    // per-flit engine's propagate-then-compute order.
    if (col + 1 < numCols) {
        std::vector<noc::Flit> train;
        train.reserve(numWaves);
        for (unsigned w = 0; w < numWaves; ++w)
            train.push_back(noc::Flit{0, w});
        horizontal[col]->sendBurst(std::move(train),
                                   sim::Cycles(cyclesPerStep()));
    }

    Node &head = *grid[col][0];
    std::vector<noc::Flit> sums;
    sums.reserve(numWaves);
    for (unsigned w = 0; w < numWaves; ++w) {
        const std::int32_t local = head.localProduct(w);
        sums.push_back(noc::Flit{
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(local)),
            w});
    }

    if (numRows == 1) {
        // Single-row column: wave w completes as it arrives.
        for (unsigned w = 0; w < numWaves; ++w) {
            if (w != completed[col].size())
                bfree_panic("column ", col, ": wave ", w,
                            " completed out of order");
            completed[col].push_back(
                static_cast<std::int32_t>(sums[w].payload));
        }
        if (numWaves > 0) {
            drain_tick = std::max(
                drain_tick, first + (numWaves - 1) * stepTicks());
        }
        return;
    }
    vertical[col][0]->sendBurst(std::move(sums),
                                sim::Cycles(cyclesPerStep()));
}

void
DetailedSliceSim::onPartialTrain(unsigned col, unsigned row,
                                 sim::Tick first, const noc::Flit *flits,
                                 std::size_t n)
{
    Node &node = *grid[col][row];
    if (row + 1 < numRows) {
        std::vector<noc::Flit> sums;
        sums.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto incoming =
                static_cast<std::int32_t>(flits[i].payload);
            const std::int32_t sum = node.bce.accumulateIncoming(
                node.localProduct(flits[i].tag), incoming);
            sums.push_back(noc::Flit{
                static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(sum)),
                flits[i].tag});
        }
        vertical[col][row]->sendBurst(std::move(sums),
                                      sim::Cycles(cyclesPerStep()));
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto incoming = static_cast<std::int32_t>(flits[i].payload);
        const std::int32_t sum = node.bce.accumulateIncoming(
            node.localProduct(flits[i].tag), incoming);
        if (flits[i].tag != completed[col].size())
            bfree_panic("column ", col, ": wave ", flits[i].tag,
                        " completed out of order");
        completed[col].push_back(sum);
    }
    if (n > 0) {
        drain_tick =
            std::max(drain_tick, first + (n - 1) * stepTicks());
    }
}

void
DetailedSliceSim::beginStreaming(
    const std::vector<std::vector<std::int8_t>> &inputs)
{
    for (const auto &wave : inputs) {
        if (wave.size() != std::size_t(numRows) * sliceLen)
            bfree_fatal("each input wave must carry rows * slice_len "
                        "elements");
    }
    currentInputs = &inputs;
    numWaves = static_cast<unsigned>(inputs.size());
    completed.assign(numCols, {});
    for (auto &col : completed)
        col.reserve(numWaves);
    drain_tick = 0;
    events_at_begin = queue->processed();
}

void
DetailedSliceSim::injectWaveNow(unsigned wave)
{
    if (currentInputs == nullptr)
        bfree_panic("injectWaveNow outside a stream");
    triggerColumn(0, wave);
}

void
DetailedSliceSim::injectAllWavesNow()
{
    if (currentInputs == nullptr)
        bfree_panic("injectAllWavesNow outside a stream");
    if (numWaves > 0)
        onWaveTrain(0, queue->now());
}

DetailedGridResult
DetailedSliceSim::finishStreaming()
{
    if (currentInputs == nullptr)
        bfree_panic("finishStreaming outside a stream");
    for (unsigned c = 0; c < numCols; ++c) {
        if (completed[c].size() != numWaves)
            bfree_panic("column ", c, " drained ", completed[c].size(),
                        " of ", numWaves, " waves");
    }

    // Convert every node's integer micro-op tallies into joules before
    // the shared account is read; fixed grid order keeps the float
    // accumulation identical across engines and thread counts.
    for (auto &column : grid)
        for (auto &node : column)
            node->bce.flushEnergy();

    DetailedGridResult result;
    result.outputs = completed;
    result.cycles = clock.ticksToCycles(drain_tick).value();
    result.events = queue->processed() - events_at_begin;
    currentInputs = nullptr;
    return result;
}

DetailedGridResult
DetailedSliceSim::run(const std::vector<std::vector<std::int8_t>> &inputs)
{
    if (!owned_queue) {
        bfree_panic("DetailedSliceSim::run needs an owned queue; use the "
                    "streaming API with an external one");
    }

    beginStreaming(inputs);
    const sim::Tick base = queue->now();
    const sim::Tick cps_ticks = stepTicks();
    if (gridEngine == GridEngine::Burst) {
        if (numWaves > 0) {
            queue->scheduleCallback(base + cps_ticks,
                                    [this] { injectAllWavesNow(); });
        }
    } else {
        for (unsigned w = 0; w < numWaves; ++w) {
            queue->scheduleCallback(base + (w + 1) * cps_ticks,
                                    [this, w] { injectWaveNow(w); });
        }
    }
    queue->run();
    return finishStreaming();
}

} // namespace bfree::map
