#include "detailed_slice_sim.hh"

#include "sim/logging.hh"

namespace bfree::map {

std::uint64_t
detailed_grid_formula(unsigned rows, unsigned cols, unsigned waves,
                      std::uint64_t cps, unsigned hop)
{
    if (rows == 0 || cols == 0 || waves == 0)
        return 0;
    return static_cast<std::uint64_t>(waves) * cps
           + static_cast<std::uint64_t>(cols - 1 + rows - 1) * hop;
}

/** One grid node: sub-array + BCE computing its channel slice. */
struct DetailedSliceSim::Node
{
    Node(DetailedSliceSim &parent, unsigned col, unsigned row)
        : parent(parent), col(col), row(row),
          subarray(parent.geom, parent.tech, parent.account),
          bce(subarray, parent.tech, parent.account)
    {
        bce.loadMultLutImage();
        bce.setMode(bce::BceMode::Conv);
    }

    std::int32_t
    localProduct(unsigned wave)
    {
        const std::vector<std::int8_t> &input =
            (*parent.currentInputs)[wave];
        const std::size_t base =
            static_cast<std::size_t>(row) * parent.sliceLen;
        return bce.dotProduct(0, input.data() + base, parent.sliceLen,
                              parent.bits);
    }

    void
    onPartial(const noc::Flit &flit)
    {
        const auto wave = flit.tag;
        const auto incoming = static_cast<std::int32_t>(flit.payload);
        const std::int32_t sum =
            bce.accumulateIncoming(localProduct(wave), incoming);
        parent.forward(col, row, wave, sum);
    }

    DetailedSliceSim &parent;
    unsigned col;
    unsigned row;
    mem::Subarray subarray;
    bce::Bce bce;
};

DetailedSliceSim::DetailedSliceSim(const tech::CacheGeometry &geom,
                                   const tech::TechParams &tech,
                                   unsigned rows, unsigned cols,
                                   unsigned slice_len, unsigned bits)
    : geom(geom), tech(tech), numRows(rows), numCols(cols),
      sliceLen(slice_len), bits(bits), clock(tech.subarrayClockHz)
{
    if (rows == 0 || rows > geom.subarraysPerSubBank)
        bfree_fatal("grid rows ", rows, " outside [1, ",
                    geom.subarraysPerSubBank, "]");
    if (cols == 0)
        bfree_fatal("grid needs at least one column");
    if (bits != 4 && bits != 8)
        bfree_fatal("detailed grid supports 4- or 8-bit operands");

    grid.resize(cols);
    vertical.resize(cols);
    for (unsigned c = 0; c < cols; ++c) {
        for (unsigned r = 0; r < rows; ++r)
            grid[c].push_back(std::make_unique<Node>(*this, c, r));
        for (unsigned r = 0; r + 1 < rows; ++r) {
            vertical[c].push_back(std::make_unique<noc::Router>(
                queue,
                "v" + std::to_string(c) + "_" + std::to_string(r),
                clock, tech, account));
            Node *next = grid[c][r + 1].get();
            vertical[c].back()->connect(
                [next](const noc::Flit &flit) { next->onPartial(flit); });
        }
    }

    for (unsigned c = 0; c + 1 < cols; ++c) {
        horizontal.push_back(std::make_unique<noc::Router>(
            queue, "h" + std::to_string(c), clock, tech, account));
    }
    for (unsigned c = 0; c + 1 < cols; ++c) {
        const unsigned next_col = c + 1;
        horizontal[c]->connect([this, next_col](const noc::Flit &flit) {
            triggerColumn(next_col, flit.tag);
        });
    }
}

DetailedSliceSim::~DetailedSliceSim() = default;

void
DetailedSliceSim::loadWeights(
    const std::vector<std::vector<std::vector<std::int8_t>>> &w)
{
    if (w.size() != numCols)
        bfree_fatal("expected ", numCols, " weight columns");
    for (unsigned c = 0; c < numCols; ++c) {
        if (w[c].size() != numRows)
            bfree_fatal("column ", c, ": expected ", numRows,
                        " row slices");
        for (unsigned r = 0; r < numRows; ++r) {
            if (w[c][r].size() != sliceLen)
                bfree_fatal("weight slice (", c, ",", r, ") has ",
                            w[c][r].size(), " elements, expected ",
                            sliceLen);
            grid[c][r]->subarray.write(
                0,
                reinterpret_cast<const std::uint8_t *>(w[c][r].data()),
                sliceLen);
        }
    }
}

std::uint64_t
DetailedSliceSim::cyclesPerStep() const
{
    return static_cast<std::uint64_t>(sliceLen) * (bits / 4);
}

void
DetailedSliceSim::triggerColumn(unsigned col, unsigned wave)
{
    // Propagate the wave to the next column first (the streaming link
    // runs concurrently with this column's compute).
    if (col + 1 < numCols)
        horizontal[col]->send(noc::Flit{0, wave});

    const std::int32_t local = grid[col][0]->localProduct(wave);
    forward(col, 0, wave, local);
}

void
DetailedSliceSim::forward(unsigned col, unsigned row, unsigned wave,
                          std::int32_t sum)
{
    if (row + 1 < numRows) {
        vertical[col][row]->send(noc::Flit{
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(sum)),
            wave});
    } else {
        if (wave != completed[col].size())
            bfree_panic("column ", col, ": wave ", wave,
                        " completed out of order");
        completed[col].push_back(sum);
    }
}

DetailedGridResult
DetailedSliceSim::run(const std::vector<std::vector<std::int8_t>> &inputs)
{
    const unsigned waves = static_cast<unsigned>(inputs.size());
    for (const auto &wave : inputs) {
        if (wave.size() != std::size_t(numRows) * sliceLen)
            bfree_fatal("each input wave must carry rows * slice_len "
                        "elements");
    }
    currentInputs = &inputs;
    completed.assign(numCols, {});

    const std::uint64_t cps = cyclesPerStep();
    std::vector<std::unique_ptr<sim::EventFunctionWrapper>> emitters;
    for (unsigned w = 0; w < waves; ++w) {
        auto ev = std::make_unique<sim::EventFunctionWrapper>(
            [this, w] { triggerColumn(0, w); },
            "wave " + std::to_string(w));
        queue.schedule(ev.get(),
                       clock.cyclesToTicks(sim::Cycles((w + 1) * cps)));
        emitters.push_back(std::move(ev));
    }

    queue.run();

    // Convert every node's integer micro-op tallies into joules before
    // the shared account is read.
    for (auto &column : grid)
        for (auto &node : column)
            node->bce.flushEnergy();

    DetailedGridResult result;
    result.outputs = completed;
    result.cycles = clock.ticksToCycles(queue.now()).value();
    result.events = queue.processed();
    return result;
}

} // namespace bfree::map
