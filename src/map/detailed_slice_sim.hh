/**
 * @file
 * Event-driven detailed model of the full 2-D systolic pattern inside
 * a slice (Fig. 8 / Fig. 9(b)).
 *
 * Filters are distributed across columns of sub-arrays (one sub-bank
 * chain per filter) and input channels across the rows within each
 * column. Input waves stream horizontally: the slice of wave w for
 * row r enters column 0 and hops to column c+1 every router cycle.
 * Within a column, partial products reduce vertically exactly like
 * DetailedSubBankSim. Column c therefore finishes wave w at
 *
 *     (w + 1) * cps + c * hop + (rows - 1) * hop
 *
 * and the whole grid drains at
 *
 *     waves * cps + (cols - 1 + rows - 1) * hop.
 *
 * Every multiply goes through real Subarray + Bce objects, so the
 * functional outputs are exact and the wall clock cross-validates the
 * closed form used by the analytic model.
 */

#ifndef BFREE_MAP_DETAILED_SLICE_SIM_HH
#define BFREE_MAP_DETAILED_SLICE_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bce/bce.hh"
#include "mem/subarray.hh"
#include "noc/router.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace bfree::map {

/** Result of a detailed grid run. */
struct DetailedGridResult
{
    /** outputs[column][wave]: one dot product per filter per wave. */
    std::vector<std::vector<std::int32_t>> outputs;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
};

/** The closed-form cycle count of the grid. */
std::uint64_t detailed_grid_formula(unsigned rows, unsigned cols,
                                    unsigned waves, std::uint64_t cps,
                                    unsigned hop);

/**
 * The 2-D systolic grid simulation.
 */
class DetailedSliceSim
{
  public:
    /**
     * @param rows      Sub-arrays per column (input-channel slices).
     * @param cols      Columns (filters / sub-bank chains).
     * @param slice_len Dot-product elements each node owns.
     */
    DetailedSliceSim(const tech::CacheGeometry &geom,
                     const tech::TechParams &tech, unsigned rows,
                     unsigned cols, unsigned slice_len, unsigned bits);

    ~DetailedSliceSim();

    /** Load weights[col][row] slices of slice_len int8 values. */
    void loadWeights(
        const std::vector<std::vector<std::vector<std::int8_t>>> &w);

    /**
     * Stream @p waves input vectors (each rows * slice_len elements;
     * every column sees the same inputs) and run to completion.
     */
    DetailedGridResult
    run(const std::vector<std::vector<std::int8_t>> &inputs);

    /** Per-node compute interval in cycles. */
    std::uint64_t cyclesPerStep() const;

    /** Shared energy account. */
    const mem::EnergyAccount &energy() const { return account; }

  private:
    struct Node;

    /** Wave w has arrived (horizontally) at column @p col. */
    void triggerColumn(unsigned col, unsigned wave);

    /** Vertical forwarding inside a column. */
    void forward(unsigned col, unsigned row, unsigned wave,
                 std::int32_t sum);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    unsigned numRows;
    unsigned numCols;
    unsigned sliceLen;
    unsigned bits;

    sim::EventQueue queue;
    sim::ClockDomain clock;
    mem::EnergyAccount account;
    /** nodes[col][row]. */
    std::vector<std::vector<std::unique_ptr<Node>>> grid;
    /** Vertical reduction routers per column (rows - 1 each). */
    std::vector<std::vector<std::unique_ptr<noc::Router>>> vertical;
    /** Horizontal streaming routers between columns (cols - 1). */
    std::vector<std::unique_ptr<noc::Router>> horizontal;
    std::vector<std::vector<std::int32_t>> completed;
    const std::vector<std::vector<std::int8_t>> *currentInputs = nullptr;
};

} // namespace bfree::map

#endif // BFREE_MAP_DETAILED_SLICE_SIM_HH
