/**
 * @file
 * Event-driven detailed model of the full 2-D systolic pattern inside
 * a slice (Fig. 8 / Fig. 9(b)).
 *
 * Filters are distributed across columns of sub-arrays (one sub-bank
 * chain per filter) and input channels across the rows within each
 * column. Input waves stream horizontally: the slice of wave w for
 * row r enters column 0 and hops to column c+1 every router cycle.
 * Within a column, partial products reduce vertically exactly like
 * DetailedSubBankSim. Column c therefore finishes wave w at
 *
 *     (w + 1) * cps + c * hop + (rows - 1) * hop
 *
 * and the whole grid drains at
 *
 *     waves * cps + (cols - 1 + rows - 1) * hop.
 *
 * Every multiply goes through real Subarray + Bce objects, so the
 * functional outputs are exact and the wall clock cross-validates the
 * closed form used by the analytic model.
 *
 * Two timing engines produce identical results:
 *
 *  - GridEngine::PerFlit schedules one router event per flit per hop —
 *    the original, literal model, O(rows * cols * waves) events;
 *
 *  - GridEngine::Burst ships each link's whole wave train as one
 *    Router::sendBurst, O(rows * cols) events. Because every inter-wave
 *    gap is the same cps cycles and every quantity is a multiple of the
 *    clock period, flit arrival times are recovered arithmetically from
 *    (first_arrival, cadence) with zero rounding, so cycle counts,
 *    outputs, flit counts and energy are bit-identical to PerFlit.
 *
 * The streaming API (beginStreaming / injectWaveNow / injectAllWavesNow
 * / finishStreaming) lets a caller drive the grid from an external
 * event queue and energy account — the full-cache driver runs one grid
 * per LLC slice on per-shard queues this way.
 */

#ifndef BFREE_MAP_DETAILED_SLICE_SIM_HH
#define BFREE_MAP_DETAILED_SLICE_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bce/bce.hh"
#include "mem/subarray.hh"
#include "noc/router.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace bfree::map {

/** Result of a detailed grid run. */
struct DetailedGridResult
{
    /** outputs[column][wave]: one dot product per filter per wave. */
    std::vector<std::vector<std::int32_t>> outputs;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
};

/** The closed-form cycle count of the grid. */
std::uint64_t detailed_grid_formula(unsigned rows, unsigned cols,
                                    unsigned waves, std::uint64_t cps,
                                    unsigned hop);

/** Timing engine for the grid's router traffic. */
enum class GridEngine
{
    PerFlit, ///< One scheduled event per flit per hop (literal model).
    Burst,   ///< One scheduled event per wave train per hop.
};

/**
 * The 2-D systolic grid simulation.
 */
class DetailedSliceSim
{
  public:
    /**
     * @param rows      Sub-arrays per column (input-channel slices).
     * @param cols      Columns (filters / sub-bank chains).
     * @param slice_len Dot-product elements each node owns.
     * @param engine    Router timing engine; identical results.
     * @param ext_queue Event queue to schedule on; nullptr means the
     *                  grid owns a private queue (required for run()).
     * @param ext_account Energy account to charge; nullptr means a
     *                  private account.
     */
    DetailedSliceSim(const tech::CacheGeometry &geom,
                     const tech::TechParams &tech, unsigned rows,
                     unsigned cols, unsigned slice_len, unsigned bits,
                     GridEngine engine = GridEngine::Burst,
                     sim::EventQueue *ext_queue = nullptr,
                     mem::EnergyAccount *ext_account = nullptr);

    ~DetailedSliceSim();

    /** Load weights[col][row] slices of slice_len int8 values. */
    void loadWeights(
        const std::vector<std::vector<std::vector<std::int8_t>>> &w);

    /**
     * Stream @p waves input vectors (each rows * slice_len elements;
     * every column sees the same inputs) and run to completion.
     * Convenience wrapper over the streaming API; only valid when the
     * grid owns its queue.
     */
    DetailedGridResult
    run(const std::vector<std::vector<std::int8_t>> &inputs);

    /**
     * Streaming API: arm the grid for @p inputs. The caller then
     * schedules injections on the grid's queue (injectWaveNow per wave
     * for PerFlit, one injectAllWavesNow for Burst — wave w is taken to
     * enter column 0 at now + w * stepTicks()) and, once the queue has
     * drained, collects the result with finishStreaming().
     */
    void
    beginStreaming(const std::vector<std::vector<std::int8_t>> &inputs);

    /** Wave @p wave enters column 0 now (PerFlit engine). */
    void injectWaveNow(unsigned wave);

    /** All waves enter column 0 starting now, cps apart (Burst). */
    void injectAllWavesNow();

    /** Flush energy and collect the result of the current stream. */
    DetailedGridResult finishStreaming();

    /** Per-node compute interval in cycles. */
    std::uint64_t cyclesPerStep() const;

    /** Per-node compute interval in ticks. */
    sim::Tick stepTicks() const;

    /** Router hop latency in ticks. */
    sim::Tick hopTicks() const;

    /**
     * Tick at which the last output of the current/last stream drained
     * (valid after finishStreaming; includes any injection offset).
     */
    sim::Tick drainTick() const { return drain_tick; }

    /** The queue this grid schedules on (owned or external). */
    sim::EventQueue &eventQueue() { return *queue; }

    /** This grid's clock domain. */
    const sim::ClockDomain &clockDomain() const { return clock; }

    /** Energy account charged by this grid (owned or external). */
    const mem::EnergyAccount &energy() const { return *account; }

  private:
    struct Node;

    /** Wave w has arrived (horizontally) at column @p col. */
    void triggerColumn(unsigned col, unsigned wave);

    /** Vertical forwarding inside a column (PerFlit engine). */
    void forward(unsigned col, unsigned row, unsigned wave,
                 std::int32_t sum);

    /**
     * Burst engine: the whole wave train has arrived at column @p col,
     * wave 0 at tick @p first and wave w at first + w * stepTicks().
     */
    void onWaveTrain(unsigned col, sim::Tick first);

    /**
     * Burst engine: a partial-sum train has arrived at (col, row),
     * timed like onWaveTrain. @p sums holds one partial per wave.
     */
    void onPartialTrain(unsigned col, unsigned row, sim::Tick first,
                        const noc::Flit *flits, std::size_t n);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    unsigned numRows;
    unsigned numCols;
    unsigned sliceLen;
    unsigned bits;
    GridEngine gridEngine;

    /** Owned instances when no external queue/account was supplied;
     *  declared before the grid so nodes can hold references. */
    std::unique_ptr<sim::EventQueue> owned_queue;
    std::unique_ptr<mem::EnergyAccount> owned_account;
    sim::EventQueue *queue;
    mem::EnergyAccount *account;

    sim::ClockDomain clock;
    /** nodes[col][row]. */
    std::vector<std::vector<std::unique_ptr<Node>>> grid;
    /** Vertical reduction routers per column (rows - 1 each). */
    std::vector<std::vector<std::unique_ptr<noc::Router>>> vertical;
    /** Horizontal streaming routers between columns (cols - 1). */
    std::vector<std::unique_ptr<noc::Router>> horizontal;

    std::vector<std::vector<std::int32_t>> completed;
    const std::vector<std::vector<std::int8_t>> *currentInputs = nullptr;
    unsigned numWaves = 0;
    sim::Tick drain_tick = 0;
    std::uint64_t events_at_begin = 0;
};

} // namespace bfree::map

#endif // BFREE_MAP_DETAILED_SLICE_SIM_HH
