/**
 * @file
 * Full-cache detailed timing simulation: all geometry.numSlices LLC
 * slice grids computing one layer cooperatively (Fig. 12-14 scale).
 *
 * Filters are partitioned across slices in contiguous blocks; every
 * slice runs the same 2-D systolic grid as DetailedSliceSim over its
 * block of filters. Inputs stream along the inter-slice ring: slice
 * s + 1 sees each wave interSliceHopCycles after slice s, so slice s's
 * grid is simply the single-slice model shifted by
 * s * interSliceHopCycles, and the whole layer drains at
 *
 *     max over active s of
 *         s * slice_hop + waves * cps + (cols_s - 1 + rows - 1) * hop
 *
 * (detailed_cache_formula). Two execution engines produce bit-identical
 * results:
 *
 *  - CacheEngine::SingleQueue runs every slice grid on one shared
 *    event queue (the baseline the sharded engine is measured against);
 *
 *  - CacheEngine::Sharded gives each slice its own EventQueue and runs
 *    them on a sim::ShardedEngine with the inter-slice hop as the
 *    lookahead. Input-streaming hand-offs are the only cross-shard
 *    traffic and cross exactly at epoch barriers, so outputs, cycle
 *    counts, event counts and energy are identical for any --threads.
 *
 * Energy is accumulated per slice and merged in slice order in both
 * engines, so the two are bitwise comparable there too.
 */

#ifndef BFREE_MAP_DETAILED_CACHE_SIM_HH
#define BFREE_MAP_DETAILED_CACHE_SIM_HH

#include <cstdint>
#include <vector>

#include "dnn/network.hh"
#include "dnn/quantize.hh"
#include "dnn/tensor.hh"
#include "map/detailed_slice_sim.hh"
#include "mem/energy_account.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::map {

/** Execution engine for the full-cache detailed model. */
enum class CacheEngine
{
    SingleQueue, ///< All slices on one event queue (serial baseline).
    Sharded,     ///< One queue per slice on the epoch-barrier engine.
};

/** Knobs for a full-cache detailed run. */
struct DetailedCacheOptions
{
    /** Grid rows per slice column; 0 means subarraysPerSubBank
     *  (clamped to the dot-product length). */
    unsigned rows = 0;
    unsigned bits = 8;
    CacheEngine engine = CacheEngine::Sharded;
    GridEngine grid = GridEngine::Burst;
    /** Worker threads for the sharded engine; 0 = hardware. */
    unsigned threads = 0;
};

/** Result of a full-cache detailed run. */
struct DetailedCacheResult
{
    /** accs[filter][wave]: exact int32 dot products. */
    std::vector<std::vector<std::int32_t>> accs;
    /** Dequantized layer output (runConv / runFc only). */
    dnn::FloatTensor output{};
    /** Whole-cache drain time in sub-array cycles (includes the
     *  inter-slice streaming offsets). */
    std::uint64_t cycles = 0;
    /** Per-active-slice drain cycles, slice order. */
    std::vector<std::uint64_t> sliceCycles;
    /** Events dispatched across all queues. */
    std::uint64_t events = 0;
    /** Sharded engine only: epochs and cross-shard messages. */
    std::uint64_t epochs = 0;
    std::uint64_t crossMessages = 0;
    /** Per-slice energy merged in slice order. */
    mem::EnergyAccount energy;
    unsigned activeSlices = 0;
    unsigned waves = 0;
};

/**
 * Contiguous block partition of @p filters across @p slices: every
 * slice gets filters/slices, the remainder going to the lowest-index
 * slices. Returns one count per slice (zeros when filters < slices).
 */
std::vector<unsigned> partition_filters(unsigned filters,
                                        unsigned slices);

/**
 * Closed-form whole-cache drain time in cycles; @p cols_per_slice from
 * partition_filters (zero-column slices are idle).
 */
std::uint64_t detailed_cache_formula(
    unsigned rows, const std::vector<unsigned> &cols_per_slice,
    unsigned waves, std::uint64_t cps, unsigned hop, unsigned slice_hop);

/**
 * Drives one layer through every LLC slice at detailed timing.
 */
class DetailedCacheSim
{
  public:
    DetailedCacheSim(const tech::CacheGeometry &geom,
                     const tech::TechParams &tech,
                     const DetailedCacheOptions &opts = {});

    /**
     * Exact integer GEMM: filters[f] (all the same length) against
     * inputs[w], distributed over the whole cache. The workhorse under
     * runConv / runFc; exposed for benches and tests.
     */
    DetailedCacheResult
    runGemm(const std::vector<std::vector<std::int8_t>> &filters,
            const std::vector<std::vector<std::int8_t>> &inputs);

    /**
     * One conv layer against a frozen filter bank (the primary entry:
     * a plan freezes the [outC][inC][kh][kw] weights once and every
     * detailed run reuses them). Input quantization is per run (the
     * same dnn::choose_sym the functional executor uses), im2col waves
     * in (oh, ow) order, filters across slices, then dequantize + bias.
     */
    DetailedCacheResult runConv(const dnn::Layer &layer,
                                const dnn::FloatTensor &input,
                                const dnn::QuantizedWeights &weights,
                                const std::vector<float> &bias);

    /**
     * One conv layer from float weights: freezes the filter bank at
     * this sim's precision and delegates (bit-identical — SymQuant::q
     * is pure). @p weights is the flat [outC][inC][kh][kw] bank.
     */
    DetailedCacheResult runConv(const dnn::Layer &layer,
                                const dnn::FloatTensor &input,
                                const std::vector<float> &weights,
                                const std::vector<float> &bias);

    /**
     * One FC layer against frozen weights: the quantized input vector
     * is the single wave, frozen rows [outFeatures][inFeatures] are
     * the filters.
     */
    DetailedCacheResult runFc(const dnn::Layer &layer,
                              const dnn::FloatTensor &input,
                              const dnn::QuantizedWeights &weights,
                              const std::vector<float> &bias);

    /** One FC layer from float weights: freeze once, delegate. */
    DetailedCacheResult runFc(const dnn::Layer &layer,
                              const dnn::FloatTensor &input,
                              const std::vector<float> &weights,
                              const std::vector<float> &bias);

    /** Grid rows a GEMM of dot-length @p k would use. */
    unsigned rowsFor(std::size_t k) const;

    const DetailedCacheOptions &options() const { return opts; }

  private:
    tech::CacheGeometry geom;
    tech::TechParams tech;
    DetailedCacheOptions opts;
};

} // namespace bfree::map

#endif // BFREE_MAP_DETAILED_CACHE_SIM_HH
