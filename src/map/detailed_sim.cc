#include "detailed_sim.hh"

#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace bfree::map {

std::uint64_t
detailed_chain_formula(unsigned nodes, unsigned waves, std::uint64_t cps,
                       unsigned hop)
{
    if (nodes == 0 || waves == 0)
        return 0;
    // Node 0 emits wave w at (w+1)*cps; each downstream node adds one
    // router hop (its local product is computed concurrently, inputs
    // stream to all nodes at the same cadence).
    return static_cast<std::uint64_t>(waves) * cps
           + static_cast<std::uint64_t>(nodes - 1) * hop;
}

/**
 * One chain stage: a sub-array + BCE pair that computes its dot-product
 * slice when the upstream partial arrives and forwards the running sum.
 */
struct DetailedSubBankSim::Node
{
    Node(DetailedSubBankSim &parent, unsigned index)
        : parent(parent), index(index),
          subarray(parent.geom, parent.tech, parent.account),
          bce(subarray, parent.tech, parent.account)
    {
        bce.loadMultLutImage();
        bce.setMode(bce::BceMode::Conv);
    }

    /** Compute this node's slice of wave @p wave. */
    std::int32_t
    localProduct(unsigned wave)
    {
        const std::vector<std::int8_t> &input =
            (*inputs)[wave];
        const std::size_t base =
            static_cast<std::size_t>(index) * parent.sliceLen;
        return bce.dotProduct(/*weight_offset=*/0, input.data() + base,
                              parent.sliceLen, parent.bits);
    }

    /** Handle the partial sum arriving from upstream. */
    void
    onPartial(const noc::Flit &flit)
    {
        const auto wave = flit.tag;
        const auto incoming = static_cast<std::int32_t>(flit.payload);
        const std::int32_t sum =
            bce.accumulateIncoming(localProduct(wave), incoming);
        parent.forward(index, wave, sum);
    }

    DetailedSubBankSim &parent;
    unsigned index;
    mem::Subarray subarray;
    bce::Bce bce;
    const std::vector<std::vector<std::int8_t>> *inputs = nullptr;
};

DetailedSubBankSim::DetailedSubBankSim(const tech::CacheGeometry &geom,
                                       const tech::TechParams &tech,
                                       unsigned nodes, unsigned slice_len,
                                       unsigned bits)
    : geom(geom), tech(tech), numNodes(nodes), sliceLen(slice_len),
      bits(bits), clock(tech.subarrayClockHz)
{
    if (nodes == 0 || nodes > geom.subarraysPerSubBank)
        bfree_fatal("chain length ", nodes, " outside [1, ",
                    geom.subarraysPerSubBank, "]");
    if (bits != 4 && bits != 8)
        bfree_fatal("detailed chain supports 4- or 8-bit operands");

    for (unsigned k = 0; k < nodes; ++k)
        chain.push_back(std::make_unique<Node>(*this, k));
    for (unsigned k = 0; k + 1 < nodes; ++k) {
        routers.push_back(std::make_unique<noc::Router>(
            queue, "router" + std::to_string(k), clock, tech, account));
        Node *next = chain[k + 1].get();
        routers.back()->connect(
            [next](const noc::Flit &flit) { next->onPartial(flit); });
    }
}

DetailedSubBankSim::~DetailedSubBankSim() = default;

void
DetailedSubBankSim::loadWeights(
    const std::vector<std::vector<std::int8_t>> &weights)
{
    if (weights.size() != numNodes)
        bfree_fatal("expected ", numNodes, " weight slices, got ",
                    weights.size());
    for (unsigned k = 0; k < numNodes; ++k) {
        if (weights[k].size() != sliceLen)
            bfree_fatal("weight slice ", k, " has ", weights[k].size(),
                        " elements, expected ", sliceLen);
        chain[k]->subarray.write(
            0, reinterpret_cast<const std::uint8_t *>(weights[k].data()),
            sliceLen);
    }
}

std::uint64_t
DetailedSubBankSim::cyclesPerStep() const
{
    // Conv-mode dot product over the node's slice: bits/4 cycles per
    // MAC (Fig. 6 pipeline).
    return static_cast<std::uint64_t>(sliceLen) * (bits / 4);
}

void
DetailedSubBankSim::forward(unsigned from, unsigned wave,
                            std::int32_t sum)
{
    if (from + 1 < numNodes) {
        routers[from]->send(noc::Flit{
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(sum)),
            wave});
    } else {
        if (wave != completed.size())
            bfree_panic("wave ", wave, " completed out of order");
        completed.push_back(sum);
    }
}

DetailedRunResult
DetailedSubBankSim::run(
    const std::vector<std::vector<std::int8_t>> &inputs)
{
    const unsigned waves = static_cast<unsigned>(inputs.size());
    for (const auto &wave : inputs) {
        if (wave.size() != std::size_t(numNodes) * sliceLen)
            bfree_fatal("each input wave must carry numNodes * sliceLen "
                        "elements");
    }
    for (auto &node : chain)
        node->inputs = &inputs;
    completed.clear();
    completed.reserve(waves);

    // Node 0 emits wave w at (w + 1) * cps. Emitters are pooled
    // one-shot events, recycled by the queue as they fire.
    const std::uint64_t cps = cyclesPerStep();
    for (unsigned w = 0; w < waves; ++w) {
        queue.scheduleCallback(
            clock.cyclesToTicks(sim::Cycles((w + 1) * cps)), [this, w] {
                const std::int32_t local = chain[0]->localProduct(w);
                forward(0, w, local);
            });
    }

    queue.run();

    // Convert every node's integer micro-op tallies into joules before
    // the shared account is read.
    for (auto &node : chain)
        node->bce.flushEnergy();

    DetailedRunResult result;
    result.outputs = completed;
    result.cycles = clock.ticksToCycles(queue.now()).value();
    result.events = queue.processed();
    return result;
}

std::vector<DetailedRunResult>
run_detailed_batch(const tech::CacheGeometry &geom,
                   const tech::TechParams &tech,
                   const std::vector<DetailedJob> &jobs, unsigned threads)
{
    std::vector<DetailedRunResult> results(jobs.size());
    sim::ThreadPool pool(threads);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([&geom, &tech, &jobs, &results, i] {
            const DetailedJob &job = jobs[i];
            DetailedSubBankSim sim(geom, tech, job.nodes, job.sliceLen,
                                   job.bits);
            sim.loadWeights(job.weights);
            results[i] = sim.run(job.inputs);
        });
    }
    pool.run(std::move(tasks));
    return results;
}

} // namespace bfree::map
