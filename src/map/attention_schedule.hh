/**
 * @file
 * Self-attention phase scheduling (Section IV-B2, Fig. 10).
 *
 * "Matrices K, Q, and V can be processed in parallel. However,
 * matrices K and Q are required for further computation of P and P'
 * matrices whereas V is not required until P' is computed. So, we
 * overlap the computation of V with the computation of P' which only
 * involves scalar and softmax units. This scheduling improves the
 * utilization of the compute resources in the system."
 *
 * This module computes the phase timeline of one attention block with
 * and without that overlap, on top of a LayerMapping.
 */

#ifndef BFREE_MAP_ATTENTION_SCHEDULE_HH
#define BFREE_MAP_ATTENTION_SCHEDULE_HH

#include "dnn/layer.hh"
#include "mapping.hh"
#include "tech/tech_params.hh"

namespace bfree::map {

/** Phase durations of one attention block, in seconds. */
struct AttentionPhases
{
    double qProjection = 0.0;
    double kProjection = 0.0;
    double vProjection = 0.0;
    double scores = 0.0;  ///< P = Q K^T
    double softmax = 0.0; ///< P' = softmax(P), scalar/softmax units
    double context = 0.0; ///< P' V
    double output = 0.0;  ///< context W_O

    double sum() const;
};

/** Timeline with and without the V/softmax overlap. */
struct AttentionSchedule
{
    AttentionPhases phases;

    /** Everything serialized. */
    double serialSeconds = 0.0;

    /** The paper's schedule: Q and K in parallel, V hidden behind the
     *  scores + softmax pipeline. */
    double overlappedSeconds = 0.0;

    /** Fraction of the serial time saved. */
    double
    savings() const
    {
        return serialSeconds > 0.0
                   ? 1.0 - overlappedSeconds / serialSeconds
                   : 0.0;
    }

    /** True when V finished before the softmax did (fully hidden). */
    bool vFullyHidden = false;
};

/**
 * Build the schedule for @p layer (must be an Attention layer) under
 * @p mapping.
 */
AttentionSchedule schedule_attention(const dnn::Layer &layer,
                                     const LayerMapping &mapping,
                                     const tech::TechParams &tech);

} // namespace bfree::map

#endif // BFREE_MAP_ATTENTION_SCHEDULE_HH
