#include "mapping.hh"

#include <algorithm>

#include "dnn/im2col.hh"
#include "sim/logging.hh"

namespace bfree::map {

const char *
exec_mode_name(ExecMode mode)
{
    switch (mode) {
      case ExecMode::ConvMode:
        return "conv";
      case ExecMode::MatmulMode:
        return "matmul";
      case ExecMode::SpecialMode:
        return "special";
    }
    return "?";
}

Mapper::Mapper(const tech::CacheGeometry &geom, MapperOptions options)
    : geom(geom), opts(options)
{
    if (opts.slices == 0 || opts.slices > geom.numSlices)
        bfree_fatal("mapper slice count ", opts.slices,
                    " outside [1, ", geom.numSlices, "]");
}

unsigned
Mapper::availableSubarrays() const
{
    return opts.slices * geom.subarraysPerSlice();
}

std::uint64_t
Mapper::usableBytesPerSubarray() const
{
    return static_cast<std::uint64_t>(
        static_cast<double>(geom.subarrayBytes()) * opts.usableFraction);
}

bool
Mapper::unrolledFits(const dnn::Layer &layer) const
{
    const std::uint64_t unrolled = dnn::unrolled_input_bytes(layer);
    const std::uint64_t budget =
        static_cast<std::uint64_t>(availableSubarrays())
        * usableBytesPerSubarray();
    return layer.weightBytes() + unrolled <= budget / 2;
}

ExecMode
Mapper::chooseMode(const dnn::Layer &layer, bool inputs_from_dram) const
{
    if (opts.forcedMode != ExecMode::SpecialMode)
        return opts.forcedMode;

    if (layer.kind == dnn::LayerKind::Fc
        || layer.kind == dnn::LayerKind::LstmCell
        || layer.kind == dnn::LayerKind::Attention)
        return ExecMode::MatmulMode;

    if (layer.kind != dnn::LayerKind::Conv)
        return ExecMode::SpecialMode;

    // Matrix formulation needs room for the unrolled input features
    // alongside the weights (Section IV: "If there is enough space to
    // store all the unrolled intermediate features ... it is
    // beneficial to adopt matrix formulation"). When the features
    // already live in main memory the matrix can instead be generated
    // on the fly from the DRAM buffers.
    if (unrolledFits(layer) || inputs_from_dram)
        return ExecMode::MatmulMode;
    return ExecMode::ConvMode;
}

LayerMapping
Mapper::map(const dnn::Layer &layer, bool inputs_from_dram) const
{
    LayerMapping m;
    if (!layer.isComputeLayer()) {
        m.mode = ExecMode::SpecialMode;
        // Non-MAC layers run wherever their operands already live; use
        // the full fabric for parallelism accounting.
        m.weightTiles = 0;
        m.duplication = 1;
        m.activeSubarrays = availableSubarrays();
        return m;
    }

    m.mode = chooseMode(layer, inputs_from_dram);
    m.weightBytes = layer.weightBytes();
    m.storageExpansion = dnn::storage_expansion(layer);
    m.streamedUnrolled = m.mode == ExecMode::MatmulMode
                         && layer.kind == dnn::LayerKind::Conv
                         && inputs_from_dram && !unrolledFits(layer);

    const std::uint64_t usable = usableBytesPerSubarray();
    const auto tiles = static_cast<unsigned>(
        std::min<std::uint64_t>((m.weightBytes + usable - 1) / usable,
                                availableSubarrays()));
    m.weightTiles = std::max(1u, tiles);

    // Duplication: replicate small layers until the fabric is covered
    // or the replica count stops being useful (bounded by the number
    // of independent output positions to work on).
    const unsigned fit = availableSubarrays() / m.weightTiles;
    std::uint64_t independent_work = 1;
    if (layer.kind == dnn::LayerKind::Conv) {
        const dnn::FeatureShape out = layer.outputShape();
        independent_work = std::uint64_t(out.h) * out.w;
    } else if (layer.kind == dnn::LayerKind::Fc) {
        independent_work = layer.fcRows;
    } else if (layer.kind == dnn::LayerKind::Attention) {
        independent_work = layer.seqLen;
    } else if (layer.kind == dnn::LayerKind::LstmCell) {
        independent_work = 1; // sequential recurrence
    }
    m.duplication = static_cast<unsigned>(std::min<std::uint64_t>(
        {std::max(1u, fit), opts.maxDuplication, independent_work}));
    m.activeSubarrays = m.weightTiles * m.duplication;
    return m;
}

bool
Mapper::weightsResident(const dnn::Network &net) const
{
    const std::uint64_t budget =
        static_cast<std::uint64_t>(availableSubarrays())
        * usableBytesPerSubarray();
    // Keep half the capacity for activations and partials.
    return net.totalWeightBytes() <= budget / 2;
}

} // namespace bfree::map
