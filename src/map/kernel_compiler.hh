/**
 * @file
 * Kernel compilation (Section IV-C).
 *
 * BFree executes networks layer by layer: each layer becomes one or
 * more in-memory kernel instructions directed to the cache controller,
 * which then loads the LUT rows with the entries the kernel needs and
 * programs the per-sub-array config blocks. This module performs that
 * lowering: Layer -> { PimInstructions, ConfigBlock template, LUT
 * images, placement }.
 *
 * The compiler is checkable end-to-end: the instructions' MAC counts
 * must sum to the layer's MACs, every LUT image must fit the 64-byte
 * sub-array LUT region, and a config block written through the
 * CacheController must decode back identically.
 */

#ifndef BFREE_MAP_KERNEL_COMPILER_HH
#define BFREE_MAP_KERNEL_COMPILER_HH

#include <cstdint>
#include <vector>

#include "bce/config_block.hh"
#include "bce/isa.hh"
#include "lut/lut_image.hh"
#include "mapping.hh"
#include "verify/diagnostic.hh"

namespace bfree::map {

/** The lowered form of one layer. */
struct CompiledKernel
{
    /** The instruction stream for the cache controller (a layer may
     *  lower to several, e.g. the attention block's GEMMs + softmax). */
    std::vector<bce::PimInstruction> instructions;

    /** Template config block the slice controllers program into every
     *  active sub-array. */
    bce::ConfigBlock configBlock;

    /** LUT images to load in the configuration phase, in order. */
    std::vector<lut::LutImage> lutImages;

    /** Placement of the layer on the fabric. */
    LayerMapping mapping;

    /** Compute steps each active BCE runs (before the CB's 16-bit
     *  iteration field is applied per pass). */
    std::uint64_t totalSteps = 0;

    /** Findings of the verify-on-compile pass (empty when verification
     *  was disabled via CompileOptions). A kernel with
     *  !diagnostics.ok() must not execute. */
    verify::VerifyReport diagnostics;

    /** Total MACs across the instruction stream. */
    std::uint64_t totalMacs() const;
};

/** Kernel opcode a layer kind lowers to. */
bce::PimOpcode opcode_for(const dnn::Layer &layer, ExecMode mode);

/** Compiler tunables. */
struct CompileOptions
{
    /** Run the static verifier over every compiled kernel and record
     *  its findings in CompiledKernel::diagnostics (on by default;
     *  opt out for hot compile loops that verify elsewhere). */
    bool verify = true;
};

/**
 * The compiler.
 */
class KernelCompiler
{
  public:
    explicit KernelCompiler(const tech::CacheGeometry &geom,
                            MapperOptions options = {},
                            CompileOptions compile_options = {});

    /** Lower one layer. */
    CompiledKernel compile(const dnn::Layer &layer,
                           bool inputs_from_dram = false) const;

    const Mapper &mapper() const { return _mapper; }
    const CompileOptions &compileOptions() const { return copts; }

  private:
    tech::CacheGeometry geom;
    Mapper _mapper;
    CompileOptions copts;
};

} // namespace bfree::map

#endif // BFREE_MAP_KERNEL_COMPILER_HH
