#include "attention_schedule.hh"

#include <algorithm>

#include "bce/bce.hh"
#include "sim/logging.hh"

namespace bfree::map {

double
AttentionPhases::sum() const
{
    return qProjection + kProjection + vProjection + scores + softmax
           + context + output;
}

AttentionSchedule
schedule_attention(const dnn::Layer &layer, const LayerMapping &mapping,
                   const tech::TechParams &tech)
{
    if (layer.kind != dnn::LayerKind::Attention)
        bfree_fatal("schedule_attention requires an attention layer");

    const double s = layer.seqLen;
    const double d = layer.dModel;
    const double rate =
        bce::Bce::macsPerCycle(bce::BceMode::Matmul,
                               layer.precisionBits)
        * std::max(1u, mapping.activeSubarrays) * tech.subarrayClockHz;

    AttentionSchedule sched;
    AttentionPhases &p = sched.phases;
    p.qProjection = s * d * d / rate;
    p.kProjection = p.qProjection;
    p.vProjection = p.qProjection;
    p.scores = s * s * d / rate;
    p.context = s * s * d / rate;
    p.output = s * d * d / rate;

    // Softmax runs on the scalar/softmax units: one exp LUT evaluation
    // (2 cycles) per score plus the reduction/redistribution and LUT
    // division per element (4 cycles).
    const double special_rate =
        std::max(1u, mapping.activeSubarrays) * tech.subarrayClockHz;
    p.softmax = (2.0 + 4.0) * s * s / special_rate;

    sched.serialSeconds = p.sum();

    // The paper's schedule: V is not needed until P' is computed, so
    // its projection overlaps the whole scores + softmax window:
    //  - Q and K proceed in parallel on disjoint halves of the fabric
    //    (each therefore takes 2x one full-fabric projection — no
    //    saving, but V's operand isn't blocking anything);
    //  - the scores GEMM P = Q K^T follows on the full fabric while
    //    V's projection starts on the W_V sub-arrays;
    //  - the softmax P' occupies only the scalar/softmax units, so V
    //    keeps the MAC arrays busy through it;
    //  - context (P' V) and the output projection close the block.
    const double qk_parallel = 2.0 * p.qProjection;
    const double overlap_window =
        std::max(p.vProjection, p.scores + p.softmax);
    sched.overlappedSeconds =
        qk_parallel + overlap_window + p.context + p.output;
    sched.vFullyHidden = p.vProjection <= p.scores + p.softmax;
    return sched;
}

} // namespace bfree::map
