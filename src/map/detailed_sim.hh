/**
 * @file
 * Event-driven detailed model of one sub-bank systolic chain.
 *
 * This is the cycle-accurate counterpart of the analytic execution
 * model: K sub-arrays with their BCEs form a reduction chain joined by
 * routers (Fig. 8/9(b)). Input-vector slices stream in one wave per
 * compute interval; each node computes its slice's dot product through
 * the real LUT datapath (exact integers), adds the partial sum arriving
 * from its upstream neighbour and forwards the result.
 *
 * The wall-clock cycle count obeys the closed form
 *
 *   cycles = (waves - 1 + K) * cps + (K - 1) * hop
 *
 * with cps the per-node compute interval; tests assert the event-driven
 * simulation matches this exactly, which is the evidence that the
 * analytic full-network model and the detailed microarchitecture agree.
 */

#ifndef BFREE_MAP_DETAILED_SIM_HH
#define BFREE_MAP_DETAILED_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bce/bce.hh"
#include "mem/subarray.hh"
#include "noc/router.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"

namespace bfree::map {

/** Result of a detailed chain run. */
struct DetailedRunResult
{
    std::vector<std::int32_t> outputs; ///< One dot product per wave.
    std::uint64_t cycles = 0;          ///< Wall-clock cycles.
    std::uint64_t events = 0;          ///< Events dispatched.
};

/**
 * Closed-form cycle count the detailed model must match.
 */
std::uint64_t detailed_chain_formula(unsigned nodes, unsigned waves,
                                     std::uint64_t cps, unsigned hop);

/**
 * An event-driven simulation of a K-node reduction chain computing
 * dot products of signed 8-bit vectors.
 */
class DetailedSubBankSim
{
  public:
    /**
     * @param nodes     Sub-arrays in the chain (the sub-bank holds 8).
     * @param slice_len Elements of the dot product each node owns.
     * @param bits      Operand precision (4 or 8).
     */
    DetailedSubBankSim(const tech::CacheGeometry &geom,
                       const tech::TechParams &tech, unsigned nodes,
                       unsigned slice_len, unsigned bits);

    ~DetailedSubBankSim(); // out of line: Node is incomplete here

    /**
     * Load per-node weight slices: @p weights is [nodes][slice_len].
     */
    void loadWeights(const std::vector<std::vector<std::int8_t>> &weights);

    /**
     * Stream @p waves input vectors (each [nodes][slice_len], i.e. the
     * full dot-product operand) and run to completion.
     */
    DetailedRunResult
    run(const std::vector<std::vector<std::int8_t>> &inputs);

    /** Per-node compute interval in cycles. */
    std::uint64_t cyclesPerStep() const;

    /** Shared energy account of the simulated chain. */
    const mem::EnergyAccount &energy() const { return account; }

  private:
    struct Node;

    /** Pass a partial sum downstream (or record the chain output). */
    void forward(unsigned from, unsigned wave, std::int32_t sum);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    unsigned numNodes;
    unsigned sliceLen;
    unsigned bits;

    sim::EventQueue queue;
    sim::ClockDomain clock;
    mem::EnergyAccount account;
    std::vector<std::unique_ptr<Node>> chain;
    std::vector<std::unique_ptr<noc::Router>> routers;
    std::vector<std::int32_t> completed;
};

/** One self-contained detailed chain run (weights + input waves). */
struct DetailedJob
{
    unsigned nodes = 8;
    unsigned sliceLen = 16;
    unsigned bits = 8;
    std::vector<std::vector<std::int8_t>> weights; ///< [nodes][sliceLen]
    std::vector<std::vector<std::int8_t>> inputs;  ///< [waves][nodes*sliceLen]
};

/**
 * Run each job through a private DetailedSubBankSim (its own event
 * queue, clock and energy account), sharded across a work-stealing
 * thread pool. Results come back in job order and are bit-identical
 * for any thread count; @p threads = 0 uses hardware concurrency.
 */
std::vector<DetailedRunResult>
run_detailed_batch(const tech::CacheGeometry &geom,
                   const tech::TechParams &tech,
                   const std::vector<DetailedJob> &jobs,
                   unsigned threads = 0);

} // namespace bfree::map

#endif // BFREE_MAP_DETAILED_SIM_HH
