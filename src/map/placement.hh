/**
 * @file
 * Weight placement (Section IV-C: "it distributes the weights across
 * and within each slice for efficient execution. It employs weight
 * duplication, and efficient partition across sub-arrays").
 *
 * Turns a LayerMapping into the concrete list of (sub-array, offset,
 * length) extents each weight replica occupies, and loads/verifies
 * actual weight bytes through the functional cache model. Placement
 * invariants (full disjoint coverage of every replica, extents within
 * the usable region) are what the tests check.
 */

#ifndef BFREE_MAP_PLACEMENT_HH
#define BFREE_MAP_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "mapping.hh"
#include "mem/sram_cache.hh"
#include "tech/row_layout.hh"

namespace bfree::map {

/** One contiguous weight extent inside one sub-array. */
struct TileExtent
{
    unsigned subarray = 0;     ///< Flat sub-array index.
    unsigned replica = 0;      ///< Which duplicate this tile belongs to.
    unsigned pass = 0;         ///< Streaming pass (layers bigger than
                               ///< the fabric reuse sub-arrays).
    std::uint64_t weightOffset = 0; ///< Offset into the weight blob.
    std::size_t byteOffset = 0;     ///< Offset inside the sub-array.
    std::size_t byteCount = 0;

    bool operator==(const TileExtent &) const = default;
};

/** Full placement of one layer's weights. */
struct WeightPlacement
{
    std::vector<TileExtent> extents;
    std::uint64_t weightBytes = 0; ///< Bytes per replica.
    unsigned replicas = 1;

    /** Extents belonging to one replica, in weight order. */
    std::vector<TileExtent> replicaExtents(unsigned replica) const;

    /** Number of streaming passes (1 = fully resident at once). */
    unsigned passes() const;
};

/**
 * Compute the placement for a mapping: replica r's tile t lands in
 * sub-array (r * weightTiles + t), starting after the config block
 * region.
 */
WeightPlacement place_weights(const LayerMapping &mapping,
                              const tech::CacheGeometry &geom,
                              std::size_t subarray_data_offset =
                                  tech::config_region_bytes);

/** Write @p weights into the cache according to @p placement
 *  (duplicating into every replica). */
void load_weights(mem::SramCache &cache,
                  const WeightPlacement &placement,
                  const std::vector<std::uint8_t> &weights);

/** Read one replica's weights back out of the cache. */
std::vector<std::uint8_t> read_weights(mem::SramCache &cache,
                                       const WeightPlacement &placement,
                                       unsigned replica);

} // namespace bfree::map

#endif // BFREE_MAP_PLACEMENT_HH
