#include "placement.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::map {

std::vector<TileExtent>
WeightPlacement::replicaExtents(unsigned replica) const
{
    std::vector<TileExtent> out;
    for (const TileExtent &e : extents)
        if (e.replica == replica)
            out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const TileExtent &a, const TileExtent &b) {
                  return a.weightOffset < b.weightOffset;
              });
    return out;
}

unsigned
WeightPlacement::passes() const
{
    unsigned max_pass = 0;
    for (const TileExtent &e : extents)
        max_pass = std::max(max_pass, e.pass);
    return extents.empty() ? 0 : max_pass + 1;
}

WeightPlacement
place_weights(const LayerMapping &mapping,
              const tech::CacheGeometry &geom,
              std::size_t subarray_data_offset)
{
    WeightPlacement p;
    p.weightBytes = mapping.weightBytes;
    p.replicas = std::max(1u, mapping.duplication);

    if (mapping.weightBytes == 0 || mapping.weightTiles == 0)
        return p;

    // The top lutRowsPerSubarray() rows stay reserved for LUT entries
    // (decoupled bitlines); weights may only occupy the span between
    // the config-block region and the LUT rows.
    const std::size_t usable = geom.subarrayBytes()
                               - subarray_data_offset
                               - geom.lutBytesPerSubarray();

    // Layers whose weights exceed the assigned tiles (e.g. VGG-16's
    // 103 MB fc6 against a 35 MB cache) stream in multiple passes:
    // the same sub-array region is refilled between passes.
    for (unsigned r = 0; r < p.replicas; ++r) {
        std::uint64_t remaining = mapping.weightBytes;
        std::uint64_t offset = 0;
        unsigned tile = 0;
        unsigned pass = 0;
        while (remaining > 0) {
            const std::uint64_t chunk =
                std::min<std::uint64_t>(usable, remaining);
            TileExtent e;
            e.subarray = r * mapping.weightTiles + tile;
            e.replica = r;
            e.pass = pass;
            e.weightOffset = offset;
            e.byteOffset = subarray_data_offset;
            e.byteCount = static_cast<std::size_t>(chunk);
            p.extents.push_back(e);
            offset += chunk;
            remaining -= chunk;
            if (++tile == mapping.weightTiles) {
                tile = 0;
                ++pass;
            }
        }
    }
    return p;
}

void
load_weights(mem::SramCache &cache, const WeightPlacement &placement,
             const std::vector<std::uint8_t> &weights)
{
    if (weights.size() != placement.weightBytes)
        bfree_fatal("load_weights: blob of ", weights.size(),
                    " bytes does not match placement of ",
                    placement.weightBytes);
    if (placement.passes() > 1)
        bfree_fatal("load_weights: multi-pass placements are streamed, "
                    "not resident; load one pass at a time");
    for (const TileExtent &e : placement.extents) {
        if (e.subarray >= cache.numSubarrays())
            bfree_fatal("placement targets sub-array ", e.subarray,
                        " beyond the cache's ", cache.numSubarrays());
        cache.subarray(e.subarray)
            .write(e.byteOffset,
                   weights.data() + e.weightOffset, e.byteCount);
    }
}

std::vector<std::uint8_t>
read_weights(mem::SramCache &cache, const WeightPlacement &placement,
             unsigned replica)
{
    std::vector<std::uint8_t> out(placement.weightBytes);
    for (const TileExtent &e : placement.replicaExtents(replica)) {
        cache.subarray(e.subarray)
            .read(e.byteOffset, out.data() + e.weightOffset,
                  e.byteCount);
    }
    return out;
}

} // namespace bfree::map
