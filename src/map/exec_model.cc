#include "exec_model.hh"

#include <algorithm>

#include "attention_schedule.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "tech/access_breakdown.hh"

namespace bfree::map {

double
PhaseBreakdown::total() const
{
    return weightLoad + inputLoad + compute + special + requant + fill;
}

PhaseBreakdown &
PhaseBreakdown::operator+=(const PhaseBreakdown &other)
{
    weightLoad += other.weightLoad;
    inputLoad += other.inputLoad;
    compute += other.compute;
    special += other.special;
    requant += other.requant;
    fill += other.fill;
    return *this;
}

PhaseBreakdown
PhaseBreakdown::scaled(double factor) const
{
    PhaseBreakdown s = *this;
    s.weightLoad *= factor;
    s.inputLoad *= factor;
    s.compute *= factor;
    s.special *= factor;
    s.requant *= factor;
    s.fill *= factor;
    return s;
}

ExecutionModel::ExecutionModel(const tech::CacheGeometry &geom,
                               const tech::TechParams &tech,
                               ExecConfig config)
    : geom(geom), tech(tech), cfg(config), _mapper(geom, config.mapper),
      memParams(tech::main_memory_params(config.memory))
{
    if (cfg.batch == 0)
        bfree_fatal("batch size must be positive");
}

namespace {

bce::BceMode
to_bce_mode(ExecMode mode)
{
    switch (mode) {
      case ExecMode::ConvMode:
        return bce::BceMode::Conv;
      case ExecMode::MatmulMode:
        return bce::BceMode::Matmul;
      case ExecMode::SpecialMode:
        return bce::BceMode::Special;
    }
    return bce::BceMode::Special;
}

} // namespace

double
ExecutionModel::computeSeconds(const dnn::Layer &layer,
                               const LayerMapping &mapping) const
{
    if (!layer.isComputeLayer())
        return 0.0;
    const double rate = bce::Bce::macsPerCycle(to_bce_mode(mapping.mode),
                                               layer.precisionBits);
    const double macs_per_cycle =
        rate * static_cast<double>(mapping.activeSubarrays);
    return static_cast<double>(layer.macs())
           / (macs_per_cycle * tech.subarrayClockHz);
}

void
ExecutionModel::chargeStatic(mem::EnergyAccount &energy, double seconds,
                             unsigned active_subarrays,
                             ExecMode mode) const
{
    (void)mode;
    const double cache_mb = static_cast<double>(geom.totalBytes())
                            / (1024.0 * 1024.0);
    const double leak_w =
        tech.sramLeakageMwPerMb * cache_mb * 1e-3
        + memParams.staticPowerMw * 1e-3;
    energy.addJoules(mem::EnergyCategory::Leakage, leak_w * seconds);

    // Idle BCEs leak a small fraction of their active power.
    const unsigned total_sa =
        geom.totalSubarrays();
    const unsigned idle = total_sa > active_subarrays
                              ? total_sa - active_subarrays
                              : 0;
    energy.addJoules(mem::EnergyCategory::Leakage,
                     0.05e-3 * idle * seconds);

    const double controller_w =
        (tech.cacheControllerMw
         + tech.sliceControllerMw * cfg.mapper.slices)
        * 1e-3;
    energy.addJoules(mem::EnergyCategory::Controller,
                     controller_w * seconds);
}

LayerResult
ExecutionModel::runLayer(const dnn::Layer &layer, bool first_layer,
                         bool spill_to_dram, bool weights_resident) const
{
    LayerResult r;
    r.name = layer.name;
    r.kind = layer.kind;
    r.mapping = _mapper.map(layer, first_layer || spill_to_dram);
    r.macs = layer.macs();

    const double f = tech.subarrayClockHz;
    const double active = r.mapping.activeSubarrays;

    // ------------------------------------------------------------------
    // Compute phases
    // ------------------------------------------------------------------
    if (layer.kind == dnn::LayerKind::Attention) {
        // Attention blocks use the Section IV-B2 schedule: Q/K in
        // parallel, V hidden behind the scores + softmax window. The
        // schedule already contains the softmax work.
        const AttentionSchedule sched =
            schedule_attention(layer, r.mapping, tech);
        r.time.compute = sched.overlappedSeconds;
        r.time.special = 0.0;
    } else {
        r.time.compute = computeSeconds(layer, r.mapping);

        // Special-function evaluations: 2 cycles each on the BCEs
        // hosting the data.
        r.time.special = 2.0 * static_cast<double>(layer.specialOps())
                         / (active * f);
    }

    // Requantization of output features after MAC layers: 3 cycles per
    // output element.
    if (layer.isComputeLayer()) {
        r.time.requant = 3.0 * static_cast<double>(layer.outputBytes())
                         / (active * f);
    }

    // Pipeline and reduction-chain fill, once per layer: the partial
    // sums traverse the sub-bank chain, plus the 3-stage BCE pipeline.
    const double fill_cycles =
        static_cast<double>(geom.subarraysPerSubBank)
            * tech.routerHopCycles
        + 3.0;
    r.time.fill = fill_cycles / f;

    // ------------------------------------------------------------------
    // Weight loading (per batch, amortized to per-inference by caller)
    // ------------------------------------------------------------------
    const double weight_bytes =
        static_cast<double>(r.mapping.weightBytes);
    if (layer.isComputeLayer()) {
        const double dram_s = memParams.streamSeconds(weight_bytes);
        // The ring broadcast runs concurrently with the DRAM stream.
        const double ring_bps = 32.0 * tech.subarrayClockHz;
        const double ring_s = weight_bytes / ring_bps;
        r.time.weightLoad = std::max(dram_s, ring_s);
    }

    // ------------------------------------------------------------------
    // Activation streaming
    // ------------------------------------------------------------------
    double stream_bytes = 0.0;
    if (first_layer || spill_to_dram) {
        double in_bytes = static_cast<double>(layer.inputBytes());
        // On-the-fly im2col re-reads the DRAM feature buffers once per
        // redundant copy (Fig. 9(c)).
        if (r.mapping.streamedUnrolled)
            in_bytes *= r.mapping.storageExpansion;
        stream_bytes += in_bytes;
    }
    if (spill_to_dram)
        stream_bytes += static_cast<double>(layer.outputBytes());

    const double stream_s = memParams.streamSeconds(stream_bytes);
    const double exec_s =
        r.time.compute + r.time.special + r.time.requant;
    if (cfg.systolicOverlap) {
        // Streaming hides behind compute; only the excess is visible.
        r.time.inputLoad = std::max(0.0, stream_s - exec_s);
    } else {
        r.time.inputLoad = stream_s;
    }

    // ------------------------------------------------------------------
    // Energy (per single inference)
    // ------------------------------------------------------------------
    mem::EnergyAccount &e = r.energy;

    // DRAM: activation traffic here; weight traffic added by run() so
    // it can be batch-amortized consistently with the time.
    e.addJoules(mem::EnergyCategory::DramTransfer,
                memParams.streamJoules(stream_bytes));

    if (layer.isComputeLayer()) {
        // Weight operand reads from the sub-arrays: one byte (8-bit) or
        // nibble-packed stream per MAC, amortized 8 bytes per row read.
        const double operand_bytes =
            static_cast<double>(layer.macs())
            * (layer.precisionBits / 8.0);
        const double rows = operand_bytes / geom.rowBytes();
        e.addPj(mem::EnergyCategory::SubarrayAccess,
                rows * tech.subarrayAccessPj);

        // Output feature writeback.
        const double out_rows =
            static_cast<double>(layer.outputBytes()) / geom.rowBytes();
        e.addPj(mem::EnergyCategory::SubarrayAccess,
                out_rows * tech.subarrayAccessPj);

        // Partial products parked in the reduced-access-cost rows.
        e.addPj(mem::EnergyCategory::LutAccess,
                2.0 * static_cast<double>(layer.outputBytes())
                    * tech.lutAccessPj());

        if (r.mapping.mode == ExecMode::MatmulMode) {
            // Hardwired-ROM MACs.
            e.addPj(mem::EnergyCategory::BceCompute,
                    static_cast<double>(layer.macs()) * tech.bceMacPj);
        } else {
            // Conv mode fetches odd x odd partial products from the
            // sub-array LUT rows: ~40% of nibble pairs hit the table.
            const double pairs =
                static_cast<double>(layer.macs())
                * (layer.precisionBits / 4.0)
                * (layer.precisionBits / 4.0);
            e.addPj(mem::EnergyCategory::LutAccess,
                    0.4 * pairs * tech.lutAccessPj());
        }
    }

    // BCE datapath power over the active phases.
    const double mode_mw = r.mapping.mode == ExecMode::MatmulMode
                               ? tech.bceMatmulModeMw
                               : tech.bceConvModeMw;
    e.addJoules(mem::EnergyCategory::BceCompute,
                mode_mw * 1e-3 * active * r.time.compute);
    e.addJoules(mem::EnergyCategory::BceCompute,
                tech.bceOtherModeMw * 1e-3 * active
                    * (r.time.special + r.time.requant));

    // Slice H-tree entry/exit of activations plus router hops.
    const double io_bytes = static_cast<double>(layer.inputBytes())
                            + static_cast<double>(layer.outputBytes());
    const double route_mm = tech::slice_route_mm(geom, tech);
    e.addPj(mem::EnergyCategory::Interconnect,
            io_bytes * 8.0 * route_mm * tech.wireEnergyPjPerBitPerMm);

    const double in_flits =
        static_cast<double>(layer.inputBytes()) / 8.0;
    const double out_flits =
        static_cast<double>(layer.outputBytes()) / 8.0;
    e.addPj(mem::EnergyCategory::Router,
            (in_flits * geom.subBanksPerBank
             + out_flits * geom.subarraysPerSubBank)
                * tech.routerHopPj);

    (void)weights_resident;
    return r;
}

RunResult
ExecutionModel::run(const dnn::Network &net) const
{
    RunResult result;
    result.network = net.name();
    result.batch = cfg.batch;

    const bool resident = _mapper.weightsResident(net);
    // Intermediates spill to DRAM when batching (Section IV-C), or
    // when the feature working set itself does not fit the configured
    // slices (the Fig. 13 one-slice setup streams from DRAM buffers).
    const std::uint64_t budget =
        static_cast<std::uint64_t>(_mapper.availableSubarrays())
        * _mapper.usableBytesPerSubarray();
    std::uint64_t max_intermediate = 0;
    for (const dnn::Layer &layer : net.layers()) {
        max_intermediate =
            std::max(max_intermediate,
                     layer.inputBytes() + layer.outputBytes());
    }
    const bool features_fit = max_intermediate <= budget / 2;
    const bool spill =
        !resident && (cfg.batch > 1 || !features_fit);

    const double timesteps = static_cast<double>(net.timesteps);
    bool first = true;
    for (const dnn::Layer &layer : net.layers()) {
        LayerResult lr =
            runLayer(layer, first, spill, resident);
        first = false;

        // Repeat the per-step phases across timesteps (LSTM), keep the
        // weight load once.
        const double weight_load = lr.time.weightLoad;
        lr.time = lr.time.scaled(timesteps);
        lr.time.weightLoad = weight_load;
        if (timesteps != 1.0) {
            mem::EnergyAccount scaled;
            for (std::size_t c = 0; c < mem::num_energy_categories;
                 ++c) {
                const auto cat = static_cast<mem::EnergyCategory>(c);
                scaled.addJoules(cat, lr.energy.joules(cat) * timesteps);
            }
            lr.energy = scaled;
        }

        // Batch amortization of the weight load (layer-at-a-time batch
        // execution streams each layer's weights once per batch).
        lr.time.weightLoad /= static_cast<double>(cfg.batch);
        lr.energy.addJoules(
            mem::EnergyCategory::DramTransfer,
            memParams.streamJoules(
                static_cast<double>(lr.mapping.weightBytes))
                / static_cast<double>(cfg.batch));

        // Static energy over this layer's wall-clock share.
        chargeStatic(lr.energy, lr.time.total(),
                     lr.mapping.activeSubarrays, lr.mapping.mode);

        result.time += lr.time;
        result.energy += lr.energy;
        result.layers.push_back(std::move(lr));
    }
    return result;
}

std::vector<RunResult>
run_sweep(const tech::CacheGeometry &geom, const tech::TechParams &tech,
          const std::vector<ExecJob> &jobs, unsigned threads)
{
    std::vector<RunResult> results(jobs.size());
    sim::ThreadPool pool(threads);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([&geom, &tech, &jobs, &results, i] {
            ExecutionModel model(geom, tech, jobs[i].config);
            results[i] = model.run(jobs[i].network);
        });
    }
    pool.run(std::move(tasks));
    return results;
}

} // namespace bfree::map
