/**
 * @file
 * The BFree end-to-end execution model (Section IV-C, Fig. 11).
 *
 * Networks execute layer by layer under the hierarchical controllers:
 * a configuration phase loads LUT rows and broadcasts weights, then the
 * computation phase streams inputs systolically while the BCEs compute
 * and reduce partial sums across each sub-bank.
 *
 * The model is analytic (closed form per layer) and is cross-validated
 * against the event-driven detailed model in detailed_sim.hh on small
 * kernels; full networks (4.7-39.5 G MACs) only run analytically, the
 * same altitude the paper's simulator operates at.
 *
 * Phase accounting per layer:
 *   weightLoad — weight bytes through the main-memory channel + ring
 *                broadcast; paid once per batch (layer-at-a-time batch
 *                execution) or once in total when the network is
 *                cache-resident (LSTM);
 *   inputLoad  — activation traffic to/from main memory. Batch 1 keeps
 *                intermediates in SRAM (zero DRAM input traffic after
 *                the first layer); batched runs spill (Section IV-C).
 *                With systolic overlap enabled, input streaming hides
 *                behind compute: per-layer time = max(stream, compute);
 *   compute    — MACs / (rate x active sub-arrays), plus pipeline and
 *                reduction-chain fill;
 *   special    — LUT-based activation/pooling/softmax evaluations;
 *   requant    — gemmlowp requantization of the output features.
 */

#ifndef BFREE_MAP_EXEC_MODEL_HH
#define BFREE_MAP_EXEC_MODEL_HH

#include <string>
#include <vector>

#include "bce/isa.hh"
#include "dnn/network.hh"
#include "mapping.hh"
#include "mem/energy_account.hh"
#include "tech/tech_params.hh"
#include "verify/diagnostic.hh"

namespace bfree::map {

/** Per-phase wall-clock seconds of one layer or one run. */
struct PhaseBreakdown
{
    double weightLoad = 0.0;
    double inputLoad = 0.0; ///< Non-hidden activation streaming time.
    double compute = 0.0;
    double special = 0.0;
    double requant = 0.0;
    double fill = 0.0; ///< Pipeline/reduction-chain fill.

    double total() const;

    PhaseBreakdown &operator+=(const PhaseBreakdown &other);

    /** Scale all phases (used for batch/timestep replication). */
    PhaseBreakdown scaled(double factor) const;
};

/** Result of one layer's execution. */
struct LayerResult
{
    std::string name;
    dnn::LayerKind kind = dnn::LayerKind::Conv;
    LayerMapping mapping;
    PhaseBreakdown time;        ///< Per single inference, batch-amortized
                                ///< weight load.
    mem::EnergyAccount energy;  ///< Per single inference.
    std::uint64_t macs = 0;
};

/** Result of a whole-network run. */
struct RunResult
{
    std::string network;
    unsigned batch = 1;
    std::vector<LayerResult> layers;
    PhaseBreakdown time;       ///< Per inference (batch-amortized).
    mem::EnergyAccount energy; ///< Per inference.

    /** Findings of the pre-execution verification pass (empty when
     *  the entry point skipped verification). */
    verify::VerifyReport diagnostics;

    /** True when verification rejected the network: no kernel ran and
     *  time/energy are zero. The diagnostics explain why. */
    bool rejected = false;

    double secondsPerInference() const { return time.total(); }
    double joulesPerInference() const { return energy.total(); }
};

/** Run configuration. */
struct ExecConfig
{
    tech::MainMemoryKind memory = tech::MainMemoryKind::DRAM;
    unsigned batch = 1;

    /** Systolic input/compute overlap (ablation knob; the paper's
     *  design always overlaps). */
    bool systolicOverlap = true;

    /**
     * Execution tier of the LUT datapath (bce::ExecTier). Both tiers
     * are bit- and stat-exact, so the analytic closed forms and the
     * verification pass are tier-independent; functional execution
     * surfaces honour the knob when they instantiate a BCE.
     */
    bce::ExecTier tier = bce::ExecTier::Tiered;

    MapperOptions mapper;
};

/**
 * The analytic BFree execution engine.
 */
class ExecutionModel
{
  public:
    ExecutionModel(const tech::CacheGeometry &geom,
                   const tech::TechParams &tech, ExecConfig config = {});

    /** Execute a network; returns per-inference time and energy. */
    RunResult run(const dnn::Network &net) const;

    /** The mapper in use. */
    const Mapper &mapper() const { return _mapper; }

    /** The configuration in use. */
    const ExecConfig &config() const { return cfg; }

    /**
     * Closed-form compute seconds for a MAC layer under a mapping
     * (exposed for cross-validation against the detailed model).
     */
    double computeSeconds(const dnn::Layer &layer,
                          const LayerMapping &mapping) const;

  private:
    /** Cost one layer for a single inference. */
    LayerResult runLayer(const dnn::Layer &layer, bool first_layer,
                         bool spill_to_dram, bool weights_resident) const;

    /** Static (leakage, controller, background) energy over @p s. */
    void chargeStatic(mem::EnergyAccount &energy, double seconds,
                      unsigned active_subarrays, ExecMode mode) const;

    tech::CacheGeometry geom;
    tech::TechParams tech;
    ExecConfig cfg;
    Mapper _mapper;
    tech::MainMemoryParams memParams;
};

/** One configuration point of a design-space sweep. */
struct ExecJob
{
    dnn::Network network;
    ExecConfig config{};
};

/**
 * Run every sweep point through its own ExecutionModel, sharded across
 * a work-stealing thread pool (sim/parallel.hh). Results come back in
 * job order and are bit-identical for any thread count; @p threads = 0
 * uses hardware concurrency.
 */
std::vector<RunResult> run_sweep(const tech::CacheGeometry &geom,
                                 const tech::TechParams &tech,
                                 const std::vector<ExecJob> &jobs,
                                 unsigned threads = 0);

} // namespace bfree::map

#endif // BFREE_MAP_EXEC_MODEL_HH
