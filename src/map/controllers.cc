#include "controllers.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::map {

CacheController::CacheController(mem::SramCache &cache,
                                 mem::MainMemory &memory,
                                 const tech::TechParams &tech)
    : cache(&cache), memory(&memory), tech(tech),
      ring(cache.geometry().numSlices, tech, cache.energy())
{}

ConfigPhaseResult
CacheController::configure(const lut::LutImage &lut_image,
                           std::uint64_t weight_bytes,
                           const bce::ConfigBlock &cb,
                           unsigned active_subarrays)
{
    if (active_subarrays == 0
        || active_subarrays > cache->numSubarrays())
        bfree_fatal("configure: active sub-array count ",
                    active_subarrays, " outside [1, ",
                    cache->numSubarrays(), "]");
    if (!lut_image.fits(cache->geometry().lutBytesPerSubarray()))
        bfree_fatal("LUT image '", lut_image.name, "' (",
                    lut_image.bytes.size(),
                    " bytes) does not fit the sub-array LUT region");

    ConfigPhaseResult r;

    // LUT rows: broadcast the image once on the ring, then every
    // active sub-array writes its copy locally (overlapped across
    // sub-arrays; one write per LUT row).
    r.lutLoadSeconds = ring.broadcast(
        static_cast<double>(lut_image.bytes.size()));
    const double lut_rows =
        static_cast<double>(lut_image.bytes.size())
        / cache->geometry().rowBytes();
    r.lutLoadSeconds += lut_rows / tech.subarrayClockHz;
    for (unsigned i = 0; i < active_subarrays; ++i)
        cache->subarray(i).loadLut(lut_image.bytes);

    // Weights: main-memory stream overlapped with the ring broadcast.
    const double dram_s =
        memory->stream(static_cast<double>(weight_bytes));
    const double ring_s =
        ring.broadcast(static_cast<double>(weight_bytes));
    r.weightBroadcastSeconds = std::max(dram_s, ring_s);

    // Config blocks: the slice controllers program every active
    // sub-array's CB (8 bytes; one row write each, all in parallel per
    // slice, serialized across the sub-arrays of a slice port).
    const auto encoded = cb.encode();
    for (unsigned i = 0; i < active_subarrays; ++i)
        cache->subarray(i).write(cb_offset, encoded.data(),
                                 encoded.size());
    const double per_slice =
        static_cast<double>(active_subarrays)
        / cache->geometry().numSlices;
    r.cbProgramSeconds = per_slice / tech.subarrayClockHz;

    ++numKernels;
    lastActive = active_subarrays;
    return r;
}

ConfigPhaseResult
CacheController::configureKernel(const CompiledKernel &kernel)
{
    const unsigned active =
        std::min(std::max(1u, kernel.mapping.activeSubarrays),
                 cache->numSubarrays());

    ConfigPhaseResult total;
    bool weights_loaded = false;
    for (const lut::LutImage &image : kernel.lutImages) {
        const std::uint64_t weight_bytes =
            weights_loaded ? 0 : kernel.mapping.weightBytes;
        const ConfigPhaseResult r =
            configure(image, weight_bytes, kernel.configBlock, active);
        weights_loaded = true;
        total.lutLoadSeconds += r.lutLoadSeconds;
        total.weightBroadcastSeconds += r.weightBroadcastSeconds;
        total.cbProgramSeconds += r.cbProgramSeconds;
    }
    if (kernel.lutImages.empty()) {
        // No tables needed (ReLU / max pool): still stream weights and
        // program the CBs.
        const ConfigPhaseResult r =
            configure(lut::LutImage{"empty", {}},
                      kernel.mapping.weightBytes, kernel.configBlock,
                      active);
        total.lutLoadSeconds += r.lutLoadSeconds;
        total.weightBroadcastSeconds += r.weightBroadcastSeconds;
        total.cbProgramSeconds += r.cbProgramSeconds;
    }
    return total;
}

std::optional<bce::ConfigBlock>
CacheController::readConfig(unsigned index) const
{
    std::array<std::uint8_t, bce::ConfigBlock::encoded_size> bytes{};
    cache->subarray(index).read(cb_offset, bytes.data(), bytes.size());
    return bce::ConfigBlock::decode(bytes);
}

bool
CacheController::verifyLut(unsigned index,
                           const lut::LutImage &image) const
{
    mem::Subarray &sa = cache->subarray(index);
    std::vector<std::uint8_t> readback(image.bytes.size());
    for (std::size_t i = 0; i < readback.size(); ++i)
        readback[i] = sa.lutRead(i);
    return lut::fletcher16(readback.data(), readback.size())
           == image.checksum();
}

} // namespace bfree::map
