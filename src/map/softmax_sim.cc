#include "softmax_sim.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::map {

std::uint64_t
softmax_chain_cycles(unsigned nodes, std::size_t length,
                     unsigned hop_cycles)
{
    if (nodes == 0 || length == 0)
        return 0;
    const std::uint64_t per_node = (length + nodes - 1) / nodes;
    const std::uint64_t exp_phase = 2 * per_node;   // PWL evaluations
    const std::uint64_t reduce = (nodes - 1) * hop_cycles;
    const std::uint64_t redistribute = (nodes - 1) * hop_cycles;
    const std::uint64_t divide_phase = 4 * per_node; // LUT divisions
    return exp_phase + reduce + redistribute + divide_phase;
}

DistributedSoftmax::DistributedSoftmax(const tech::CacheGeometry &geom,
                                       const tech::TechParams &tech,
                                       unsigned nodes,
                                       unsigned exp_segments,
                                       unsigned division_m)
    : tech(tech), numNodes(nodes),
      expTable(lut::make_exp_table(exp_segments)),
      divisionLut(division_m)
{
    if (nodes == 0 || nodes > geom.subarraysPerSubBank)
        bfree_fatal("softmax chain length ", nodes, " outside [1, ",
                    geom.subarraysPerSubBank, "]");
}

SoftmaxRunResult
DistributedSoftmax::run(const std::vector<double> &logits) const
{
    SoftmaxRunResult r;
    if (logits.empty())
        return r;

    const double max_logit =
        *std::max_element(logits.begin(), logits.end());
    const std::size_t per_node =
        (logits.size() + numNodes - 1) / numNodes;

    // Phase 1: every node evaluates its slice through the exp table in
    // parallel and accumulates a partial denominator.
    std::vector<double> exps(logits.size());
    std::vector<double> partials(numNodes, 0.0);
    for (unsigned node = 0; node < numNodes; ++node) {
        const std::size_t begin = node * per_node;
        const std::size_t end =
            std::min(logits.size(), begin + per_node);
        for (std::size_t i = begin; i < end; ++i) {
            exps[i] = expTable.evaluate(logits[i] - max_logit);
            partials[node] += exps[i];
        }
    }

    // Phase 2: partial denominators reduce down the chain to the last
    // sub-array.
    double denominator = 0.0;
    for (unsigned node = 0; node < numNodes; ++node)
        denominator += partials[node];
    r.denominator = denominator;

    // Phase 3: the denominator is redistributed and every node divides
    // its slice through the reciprocal LUT in parallel.
    r.probabilities.resize(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        r.probabilities[i] = divisionLut.divide(exps[i], denominator);

    r.cycles = softmax_chain_cycles(numNodes, logits.size(),
                                    tech.routerHopCycles);
    return r;
}

} // namespace bfree::map
