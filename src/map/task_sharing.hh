/**
 * @file
 * Task sharing across the PIM fabric (the paper's future-work
 * direction: "BFree has the potential to further unlock more efficient
 * PIM capabilities with better mapping techniques and task sharing in
 * a tightly coupled compute-memory system").
 *
 * Two networks run concurrently on disjoint slice partitions. Compute
 * is fully isolated (each network's kernels own their slices), but the
 * main-memory channel is shared: when the sum of the two workloads'
 * channel demands exceeds the bandwidth, both see their streaming
 * phases stretched proportionally.
 */

#ifndef BFREE_MAP_TASK_SHARING_HH
#define BFREE_MAP_TASK_SHARING_HH

#include "dnn/network.hh"
#include "exec_model.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::map {

/** One tenant's outcome under sharing. */
struct TenantResult
{
    std::string network;
    unsigned slices = 0;
    /** Per-inference seconds running alone on its partition. */
    double aloneSeconds = 0.0;
    /** Per-inference seconds with the channel shared. */
    double sharedSeconds = 0.0;
    /** Fraction of the channel this tenant demands when alone. */
    double channelDemand = 0.0;

    double
    slowdown() const
    {
        return aloneSeconds > 0.0 ? sharedSeconds / aloneSeconds : 1.0;
    }

    double
    throughput() const
    {
        return sharedSeconds > 0.0 ? 1.0 / sharedSeconds : 0.0;
    }
};

/** The co-scheduled pair. */
struct SharedRunResult
{
    TenantResult a;
    TenantResult b;

    /** Channel over-subscription factor (1 = fits). */
    double channelPressure = 1.0;

    double
    combinedThroughput() const
    {
        return a.throughput() + b.throughput();
    }
};

/**
 * Run @p net_a on @p slices_a slices and @p net_b on the remaining
 * slices, sharing the main-memory channel of @p config.
 */
SharedRunResult run_shared(const tech::CacheGeometry &geom,
                           const tech::TechParams &tech,
                           const dnn::Network &net_a,
                           const dnn::Network &net_b,
                           unsigned slices_a, ExecConfig config = {});

} // namespace bfree::map

#endif // BFREE_MAP_TASK_SHARING_HH
