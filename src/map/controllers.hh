/**
 * @file
 * Hierarchical BFree control (Section IV-C, Fig. 11).
 *
 * The cache controller receives PIM kernel instructions, drives the
 * configuration phase (load LUT rows, broadcast weights, program the
 * per-sub-array config blocks through the slice controllers) and starts
 * the computation phase. This module performs those steps functionally
 * against the SramCache model so integration tests can verify the whole
 * control path: a CB written by the controller is the CB the BCE
 * decodes.
 */

#ifndef BFREE_MAP_CONTROLLERS_HH
#define BFREE_MAP_CONTROLLERS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "bce/config_block.hh"
#include "kernel_compiler.hh"
#include "lut/lut_image.hh"
#include "mapping.hh"
#include "mem/main_memory.hh"
#include "mem/sram_cache.hh"
#include "noc/ring.hh"

namespace bfree::map {

/** Timing of one configuration phase. */
struct ConfigPhaseResult
{
    double lutLoadSeconds = 0.0;
    double weightBroadcastSeconds = 0.0;
    double cbProgramSeconds = 0.0;

    double
    total() const
    {
        return lutLoadSeconds + weightBroadcastSeconds + cbProgramSeconds;
    }
};

/**
 * The cache-level controller: owns the slice controllers and the ring.
 */
class CacheController
{
  public:
    CacheController(mem::SramCache &cache, mem::MainMemory &memory,
                    const tech::TechParams &tech);

    /**
     * Configuration phase for one kernel: load @p lut_image into every
     * sub-array the kernel uses, stream @p weight_bytes from main
     * memory and broadcast them over the ring, then program @p cb into
     * the config block of every active sub-array.
     */
    ConfigPhaseResult configure(const lut::LutImage &lut_image,
                                std::uint64_t weight_bytes,
                                const bce::ConfigBlock &cb,
                                unsigned active_subarrays);

    /**
     * Configuration phase for a compiled kernel: loads every LUT image
     * in sequence, streams the weights and programs the config blocks
     * on the kernel's active sub-arrays.
     */
    ConfigPhaseResult configureKernel(const CompiledKernel &kernel);

    /**
     * Read back the config block of sub-array @p index (what its BCE
     * will decode in pipeline stage 1). std::nullopt when the stored
     * bytes do not decode — corrupt or never-programmed CB region.
     */
    std::optional<bce::ConfigBlock> readConfig(unsigned index) const;

    /**
     * Verify that sub-array @p index holds @p image in its LUT rows
     * (checksum over a read-back of the region). Returns false on any
     * mismatch — corruption detected before the kernel computes on a
     * poisoned table.
     */
    bool verifyLut(unsigned index, const lut::LutImage &image) const;

    /** Kernels configured so far. */
    unsigned kernelsConfigured() const { return numKernels; }

  private:
    /** Byte offset of the CB image inside a sub-array's data region. */
    static constexpr std::size_t cb_offset = 0;

    mem::SramCache *cache;
    mem::MainMemory *memory;
    tech::TechParams tech;
    noc::RingInterconnect ring;
    unsigned numKernels = 0;
    unsigned lastActive = 0;
};

} // namespace bfree::map

#endif // BFREE_MAP_CONTROLLERS_HH
