#include "detailed_cache_sim.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "dnn/quantize.hh"
#include "sim/logging.hh"
#include "sim/sharded.hh"

namespace bfree::map {

std::vector<unsigned>
partition_filters(unsigned filters, unsigned slices)
{
    if (slices == 0)
        bfree_panic("partition_filters over zero slices");
    std::vector<unsigned> counts(slices, filters / slices);
    const unsigned remainder = filters % slices;
    for (unsigned s = 0; s < remainder; ++s)
        ++counts[s];
    return counts;
}

std::uint64_t
detailed_cache_formula(unsigned rows,
                       const std::vector<unsigned> &cols_per_slice,
                       unsigned waves, std::uint64_t cps, unsigned hop,
                       unsigned slice_hop)
{
    std::uint64_t worst = 0;
    for (std::size_t s = 0; s < cols_per_slice.size(); ++s) {
        if (cols_per_slice[s] == 0)
            continue;
        const std::uint64_t drain =
            static_cast<std::uint64_t>(s) * slice_hop
            + detailed_grid_formula(rows, cols_per_slice[s], waves, cps,
                                    hop);
        worst = std::max(worst, drain);
    }
    return worst;
}

DetailedCacheSim::DetailedCacheSim(const tech::CacheGeometry &geom,
                                   const tech::TechParams &tech,
                                   const DetailedCacheOptions &opts)
    : geom(geom), tech(tech), opts(opts)
{
    if (opts.bits != 4 && opts.bits != 8)
        bfree_fatal("detailed cache sim supports 4- or 8-bit operands");
    if (opts.rows > geom.subarraysPerSubBank)
        bfree_fatal("grid rows ", opts.rows, " exceed ",
                    geom.subarraysPerSubBank, " sub-arrays per sub-bank");
    if (tech.interSliceHopCycles == 0)
        bfree_fatal("interSliceHopCycles must be positive (it is the "
                    "sharded engine's lookahead)");
}

unsigned
DetailedCacheSim::rowsFor(std::size_t k) const
{
    unsigned rows = opts.rows ? opts.rows : geom.subarraysPerSubBank;
    rows = static_cast<unsigned>(
        std::min<std::size_t>(rows, std::max<std::size_t>(k, 1)));
    return std::max(rows, 1u);
}

DetailedCacheResult
DetailedCacheSim::runGemm(
    const std::vector<std::vector<std::int8_t>> &filters,
    const std::vector<std::vector<std::int8_t>> &inputs)
{
    const unsigned num_filters = static_cast<unsigned>(filters.size());
    const unsigned waves = static_cast<unsigned>(inputs.size());
    if (num_filters == 0)
        bfree_fatal("runGemm needs at least one filter");
    const std::size_t k = filters[0].size();
    if (k == 0)
        bfree_fatal("runGemm needs a positive dot-product length");
    for (const auto &f : filters) {
        if (f.size() != k)
            bfree_fatal("all filters must share one dot-product length");
    }
    for (const auto &w : inputs) {
        if (w.size() != k)
            bfree_fatal("every input wave must match the filter length");
    }

    const unsigned rows = rowsFor(k);
    const unsigned slice_len =
        static_cast<unsigned>((k + rows - 1) / rows);
    const std::size_t padded = std::size_t(rows) * slice_len;

    // Zero-pad operands up to rows * slice_len: zero products are exact
    // no-ops on the LUT datapath, so padding changes nothing functional.
    std::vector<std::vector<std::int8_t>> pf(filters.begin(),
                                             filters.end());
    for (auto &f : pf)
        f.resize(padded, 0);
    std::vector<std::vector<std::int8_t>> pw(inputs.begin(),
                                             inputs.end());
    for (auto &w : pw)
        w.resize(padded, 0);

    const std::vector<unsigned> counts =
        partition_filters(num_filters, geom.numSlices);
    unsigned active = 0;
    while (active < counts.size() && counts[active] > 0)
        ++active;

    const bool sharded = opts.engine == CacheEngine::Sharded;
    const sim::ClockDomain clock(tech.subarrayClockHz);
    const sim::Tick slice_hop_ticks =
        clock.cyclesToTicks(sim::Cycles(tech.interSliceHopCycles));
    const std::uint64_t cps =
        static_cast<std::uint64_t>(slice_len) * (opts.bits / 4);
    const sim::Tick cps_ticks = clock.cyclesToTicks(sim::Cycles(cps));

    // One queue per slice (sharded) or one shared queue; one energy
    // account per slice in BOTH engines, merged in slice order, so the
    // engines' float accumulation is structurally identical.
    std::vector<std::unique_ptr<sim::EventQueue>> queues;
    std::vector<std::unique_ptr<mem::EnergyAccount>> accounts;
    std::vector<std::unique_ptr<DetailedSliceSim>> grids;
    queues.reserve(sharded ? active : 1);
    accounts.reserve(active);
    grids.reserve(active);

    if (!sharded)
        queues.push_back(std::make_unique<sim::EventQueue>());

    std::vector<sim::EventQueue *> qptr(active);
    for (unsigned s = 0; s < active; ++s) {
        if (sharded)
            queues.push_back(std::make_unique<sim::EventQueue>());
        qptr[s] = sharded ? queues[s].get() : queues[0].get();
        accounts.push_back(std::make_unique<mem::EnergyAccount>());
        grids.push_back(std::make_unique<DetailedSliceSim>(
            geom, tech, rows, counts[s], slice_len, opts.bits, opts.grid,
            qptr[s], accounts[s].get()));
    }

    // Weight layout per slice: contiguous filter block, each filter's
    // k elements split row-major into rows slices of slice_len.
    {
        unsigned first = 0;
        for (unsigned s = 0; s < active; ++s) {
            std::vector<std::vector<std::vector<std::int8_t>>> w(
                counts[s]);
            for (unsigned c = 0; c < counts[s]; ++c) {
                const std::vector<std::int8_t> &f = pf[first + c];
                for (unsigned r = 0; r < rows; ++r) {
                    w[c].emplace_back(
                        f.begin() + std::size_t(r) * slice_len,
                        f.begin() + std::size_t(r + 1) * slice_len);
                }
            }
            grids[s]->loadWeights(w);
            grids[s]->beginStreaming(pw);
            first += counts[s];
        }
    }

    std::unique_ptr<sim::ShardedEngine> engine;
    if (sharded) {
        std::vector<sim::EventQueue *> raw(qptr.begin(), qptr.end());
        engine = std::make_unique<sim::ShardedEngine>(
            std::move(raw), slice_hop_ticks, opts.threads);
    }

    // Injection: slice s's wave train starts slice_hop ticks after
    // slice s-1's (the inter-slice input stream). SingleQueue schedules
    // every slice's injection at its absolute offset up front; Sharded
    // chains them through cross-shard messages at exactly the lookahead
    // (so the hand-off crosses at an epoch barrier).
    if (waves > 0 && opts.grid == GridEngine::Burst) {
        if (!sharded) {
            for (unsigned s = 0; s < active; ++s) {
                DetailedSliceSim *g = grids[s].get();
                qptr[0]->scheduleCallback(
                    std::uint64_t(s) * slice_hop_ticks + cps_ticks,
                    [g] { g->injectAllWavesNow(); });
            }
        } else {
            auto inject = std::make_shared<std::function<void(unsigned)>>();
            *inject = [&, inject](unsigned s) {
                if (s + 1 < active) {
                    const sim::Tick when =
                        qptr[s]->now() + slice_hop_ticks;
                    engine->post(s, s + 1, when,
                                 [&, inject, s, when] {
                                     qptr[s + 1]->scheduleCallback(
                                         when,
                                         [inject, s] { (*inject)(s + 1); });
                                 });
                }
                grids[s]->injectAllWavesNow();
            };
            qptr[0]->scheduleCallback(cps_ticks,
                                      [inject] { (*inject)(0); });
        }
    } else if (waves > 0) { // GridEngine::PerFlit
        if (!sharded) {
            for (unsigned s = 0; s < active; ++s) {
                DetailedSliceSim *g = grids[s].get();
                for (unsigned w = 0; w < waves; ++w) {
                    qptr[0]->scheduleCallback(
                        std::uint64_t(s) * slice_hop_ticks
                            + std::uint64_t(w + 1) * cps_ticks,
                        [g, w] { g->injectWaveNow(w); });
                }
            }
        } else {
            // One cross-shard message per wave per slice boundary —
            // the stress case for the epoch-barrier engine.
            auto inject = std::make_shared<
                std::function<void(unsigned, unsigned)>>();
            *inject = [&, inject](unsigned s, unsigned w) {
                if (s + 1 < active) {
                    const sim::Tick when =
                        qptr[s]->now() + slice_hop_ticks;
                    engine->post(s, s + 1, when,
                                 [&, inject, s, w, when] {
                                     qptr[s + 1]->scheduleCallback(
                                         when, [inject, s, w] {
                                             (*inject)(s + 1, w);
                                         });
                                 });
                }
                grids[s]->injectWaveNow(w);
            };
            for (unsigned w = 0; w < waves; ++w) {
                qptr[0]->scheduleCallback(
                    std::uint64_t(w + 1) * cps_ticks,
                    [inject, w] { (*inject)(0, w); });
            }
        }
    }

    if (sharded)
        engine->run();
    else
        qptr[0]->run();

    DetailedCacheResult result;
    result.waves = waves;
    result.activeSlices = active;
    result.accs.assign(num_filters,
                       std::vector<std::int32_t>(waves, 0));
    result.sliceCycles.reserve(active);
    {
        unsigned first = 0;
        for (unsigned s = 0; s < active; ++s) {
            const DetailedGridResult r = grids[s]->finishStreaming();
            result.sliceCycles.push_back(r.cycles);
            result.cycles = std::max(result.cycles, r.cycles);
            for (unsigned c = 0; c < counts[s]; ++c)
                result.accs[first + c] = r.outputs[c];
            first += counts[s];
        }
    }
    for (unsigned s = 0; s < active; ++s)
        result.energy += *accounts[s];
    if (sharded) {
        result.events = engine->processed();
        result.epochs = engine->epochs();
        result.crossMessages = engine->messages();
    } else {
        result.events = qptr[0]->processed();
    }
    return result;
}

DetailedCacheResult
DetailedCacheSim::runConv(const dnn::Layer &layer,
                          const dnn::FloatTensor &input,
                          const std::vector<float> &weights,
                          const std::vector<float> &bias)
{
    // Freezing at this sim's precision is bit-identical to quantizing
    // per use (SymQuant::q is pure); callers running a layer more than
    // once should freeze once and use the frozen overload directly.
    return runConv(layer, input,
                   dnn::freeze_weights(weights.data(), weights.size(),
                                       opts.bits),
                   bias);
}

DetailedCacheResult
DetailedCacheSim::runConv(const dnn::Layer &layer,
                          const dnn::FloatTensor &input,
                          const dnn::QuantizedWeights &weights,
                          const std::vector<float> &bias)
{
    if (layer.kind != dnn::LayerKind::Conv)
        bfree_fatal("runConv on a non-conv layer");
    const dnn::FeatureShape out = layer.outputShape();
    const std::size_t patch_len =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    if (weights.count() != std::size_t(out.c) * patch_len)
        bfree_fatal("conv weights: expected ",
                    std::size_t(out.c) * patch_len, " values");
    if (weights.bits != opts.bits)
        bfree_fatal("conv weights frozen at ", weights.bits,
                    "-bit, sim runs ", opts.bits, "-bit");
    if (bias.size() != out.c)
        bfree_fatal("conv bias: expected ", out.c, " values");

    const unsigned bits = opts.bits;
    const dnn::SymQuant qi =
        dnn::choose_sym(input.data(), input.size(), bits);
    const dnn::SymQuant &qw = weights.scale;

    // The frozen filter bank [outC][inC][kh][kw] already matches the
    // im2col patch order; split it into per-filter spans.
    std::vector<std::vector<std::int8_t>> filters(out.c);
    for (unsigned f = 0; f < out.c; ++f) {
        const std::int8_t *row =
            weights.q8.data() + std::size_t(f) * patch_len;
        filters[f].assign(row, row + patch_len);
    }

    // One input wave per output position: the im2col patch in
    // (oh, ow) order, out-of-bounds taps gathering a literal 0.
    std::vector<std::vector<std::int8_t>> patches;
    patches.reserve(std::size_t(out.h) * out.w);
    for (unsigned oh = 0; oh < out.h; ++oh) {
        for (unsigned ow = 0; ow < out.w; ++ow) {
            std::vector<std::int8_t> patch(patch_len);
            std::size_t p = 0;
            for (unsigned c = 0; c < layer.input.c; ++c) {
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s, ++p) {
                        const int ih =
                            static_cast<int>(oh * layer.strideH + r)
                            - static_cast<int>(layer.padH);
                        const int iw =
                            static_cast<int>(ow * layer.strideW + s)
                            - static_cast<int>(layer.padW);
                        const bool inside =
                            ih >= 0 && iw >= 0
                            && ih < static_cast<int>(layer.input.h)
                            && iw < static_cast<int>(layer.input.w);
                        patch[p] =
                            inside ? static_cast<std::int8_t>(
                                         qi.q(input.at(c, ih, iw)))
                                   : std::int8_t{0};
                    }
                }
            }
            patches.push_back(std::move(patch));
        }
    }

    DetailedCacheResult result = runGemm(filters, patches);

    // Dequantize with the functional executor's exact expression.
    result.output = dnn::FloatTensor({out.c, out.h, out.w});
    for (unsigned f = 0; f < out.c; ++f) {
        unsigned wave = 0;
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow, ++wave) {
                result.output.at(f, oh, ow) =
                    static_cast<float>(result.accs[f][wave] * qw.scale
                                       * qi.scale)
                    + bias[f];
            }
        }
    }
    return result;
}

DetailedCacheResult
DetailedCacheSim::runFc(const dnn::Layer &layer,
                        const dnn::FloatTensor &input,
                        const std::vector<float> &weights,
                        const std::vector<float> &bias)
{
    return runFc(layer, input,
                 dnn::freeze_weights(weights.data(), weights.size(),
                                     opts.bits),
                 bias);
}

DetailedCacheResult
DetailedCacheSim::runFc(const dnn::Layer &layer,
                        const dnn::FloatTensor &input,
                        const dnn::QuantizedWeights &weights,
                        const std::vector<float> &bias)
{
    if (layer.kind != dnn::LayerKind::Fc)
        bfree_fatal("runFc on a non-fc layer");
    if (input.size() != layer.inFeatures)
        bfree_fatal("fc input: expected ", layer.inFeatures, " values");
    if (weights.count()
        != std::size_t(layer.outFeatures) * layer.inFeatures)
        bfree_fatal("fc weights: expected outFeatures * inFeatures");
    if (weights.bits != opts.bits)
        bfree_fatal("fc weights frozen at ", weights.bits,
                    "-bit, sim runs ", opts.bits, "-bit");
    if (bias.size() != layer.outFeatures)
        bfree_fatal("fc bias: expected ", layer.outFeatures, " values");

    const unsigned bits = opts.bits;
    const dnn::SymQuant qi =
        dnn::choose_sym(input.data(), input.size(), bits);
    const dnn::SymQuant &qw = weights.scale;

    std::vector<std::vector<std::int8_t>> filters(layer.outFeatures);
    for (unsigned o = 0; o < layer.outFeatures; ++o) {
        const std::int8_t *row =
            weights.q8.data() + std::size_t(o) * layer.inFeatures;
        filters[o].assign(row, row + layer.inFeatures);
    }

    std::vector<std::vector<std::int8_t>> wave(1);
    wave[0].resize(layer.inFeatures);
    for (unsigned i = 0; i < layer.inFeatures; ++i)
        wave[0][i] = static_cast<std::int8_t>(qi.q(input[i]));

    DetailedCacheResult result = runGemm(filters, wave);

    result.output = dnn::FloatTensor(
        {layer.outFeatures, std::size_t(1), std::size_t(1)});
    for (unsigned o = 0; o < layer.outFeatures; ++o) {
        result.output[o] =
            static_cast<float>(result.accs[o][0] * qw.scale * qi.scale)
            + bias[o];
    }
    return result;
}

} // namespace bfree::map
