#include "task_sharing.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::map {

namespace {

/** One tenant's standalone run on a slice partition. */
TenantResult
run_alone(const tech::CacheGeometry &geom, const tech::TechParams &tech,
          const dnn::Network &net, unsigned slices, ExecConfig config)
{
    config.mapper.slices = slices;
    ExecutionModel model(geom, tech, config);
    const RunResult r = model.run(net);

    TenantResult t;
    t.network = net.name();
    t.slices = slices;
    t.aloneSeconds = r.secondsPerInference();

    // Channel demand: the share of wall-clock the channel is busy for
    // this tenant (weight streaming is serialized; input streaming is
    // overlapped but still occupies the channel).
    const auto mem = tech::main_memory_params(config.memory);
    const double dram_bytes =
        r.energy.joules(mem::EnergyCategory::DramTransfer)
        / (mem.energyPjPerByte * 1e-12);
    const double busy = dram_bytes / (mem.bandwidthGBps * 1e9);
    t.channelDemand =
        t.aloneSeconds > 0.0
            ? std::min(1.0, busy / t.aloneSeconds)
            : 0.0;
    return t;
}

} // namespace

SharedRunResult
run_shared(const tech::CacheGeometry &geom, const tech::TechParams &tech,
           const dnn::Network &net_a, const dnn::Network &net_b,
           unsigned slices_a, ExecConfig config)
{
    if (slices_a == 0 || slices_a >= geom.numSlices)
        bfree_fatal("task sharing needs a split with at least one "
                    "slice per tenant; got ", slices_a, " of ",
                    geom.numSlices);

    SharedRunResult result;
    result.a =
        run_alone(geom, tech, net_a, slices_a, config);
    result.b = run_alone(geom, tech, net_b,
                         geom.numSlices - slices_a, config);

    // Channel contention: if the summed demand exceeds the channel,
    // both tenants' memory-bound time stretches by the pressure
    // factor; compute-bound time is unaffected (disjoint slices).
    result.channelPressure = std::max(
        1.0, result.a.channelDemand + result.b.channelDemand);

    auto apply = [&](TenantResult &t) {
        const double mem_time = t.aloneSeconds * t.channelDemand;
        const double compute_time = t.aloneSeconds - mem_time;
        t.sharedSeconds =
            compute_time + mem_time * result.channelPressure;
    };
    apply(result.a);
    apply(result.b);
    return result;
}

} // namespace bfree::map
