#include "kernel_compiler.hh"

#include <algorithm>

#include "bce/bce.hh"
#include "lut/division.hh"
#include "lut/mult_lut.hh"
#include "lut/pwl.hh"
#include "sim/logging.hh"
#include "tech/row_layout.hh"
#include "verify/kernel_verifier.hh"

namespace bfree::map {

std::uint64_t
CompiledKernel::totalMacs() const
{
    std::uint64_t total = 0;
    for (const bce::PimInstruction &inst : instructions)
        total += inst.macs();
    return total;
}

bce::PimOpcode
opcode_for(const dnn::Layer &layer, ExecMode mode)
{
    using dnn::LayerKind;
    switch (layer.kind) {
      case LayerKind::Conv:
        return mode == ExecMode::MatmulMode ? bce::PimOpcode::Matmul
                                            : bce::PimOpcode::Conv;
      case LayerKind::Fc:
      case LayerKind::LstmCell:
      case LayerKind::Attention:
        return bce::PimOpcode::Matmul;
      case LayerKind::MaxPool:
        return bce::PimOpcode::MaxPool;
      case LayerKind::AvgPool:
        return bce::PimOpcode::AvgPool;
      case LayerKind::Relu:
        return bce::PimOpcode::Relu;
      case LayerKind::Sigmoid:
        return bce::PimOpcode::Sigmoid;
      case LayerKind::Tanh:
        return bce::PimOpcode::Tanh;
      case LayerKind::Softmax:
        return bce::PimOpcode::Softmax;
      case LayerKind::LayerNorm:
        return bce::PimOpcode::LayerNorm;
      case LayerKind::EwAdd:
        return bce::PimOpcode::EwAdd;
    }
    bfree_panic("unmapped layer kind");
}

KernelCompiler::KernelCompiler(const tech::CacheGeometry &geom,
                               MapperOptions options,
                               CompileOptions compile_options)
    : geom(geom), _mapper(geom, options), copts(compile_options)
{}

namespace {

bce::PimInstruction
gemm(bce::PimOpcode op, unsigned precision, std::uint64_t rows,
     std::uint64_t cols, std::uint64_t inner)
{
    bce::PimInstruction inst;
    inst.opcode = op;
    inst.precisionBits = precision;
    inst.rows = static_cast<std::uint32_t>(rows);
    inst.cols = static_cast<std::uint32_t>(cols);
    inst.inner = static_cast<std::uint32_t>(inner);
    return inst;
}

/** The element-wise/special instruction covering @p elements. */
bce::PimInstruction
elementwise(bce::PimOpcode op, unsigned precision,
            std::uint64_t elements)
{
    bce::PimInstruction inst;
    inst.opcode = op;
    inst.precisionBits = precision;
    inst.rows = static_cast<std::uint32_t>(elements);
    inst.cols = 0;
    inst.inner = 0;
    return inst;
}

} // namespace

CompiledKernel
KernelCompiler::compile(const dnn::Layer &layer,
                        bool inputs_from_dram) const
{
    CompiledKernel k;
    k.mapping = _mapper.map(layer, inputs_from_dram);
    const unsigned bits = layer.precisionBits;
    const bce::PimOpcode op = opcode_for(layer, k.mapping.mode);

    using dnn::LayerKind;
    switch (layer.kind) {
      case LayerKind::Conv: {
        const dnn::FeatureShape out = layer.outputShape();
        k.instructions.push_back(
            gemm(op, bits, std::uint64_t(out.h) * out.w, out.c,
                 std::uint64_t(layer.input.c) * layer.kernelH
                     * layer.kernelW));
        break;
      }
      case LayerKind::Fc:
        k.instructions.push_back(gemm(op, bits, layer.fcRows,
                                      layer.outFeatures,
                                      layer.inFeatures));
        break;
      case LayerKind::LstmCell:
        k.instructions.push_back(
            gemm(op, bits, 1, std::uint64_t(4) * layer.lstmHidden,
                 std::uint64_t(layer.lstmInput) + layer.lstmHidden));
        break;
      case LayerKind::Attention: {
        const std::uint64_t s = layer.seqLen;
        const std::uint64_t d = layer.dModel;
        // Q, K, V projections (V overlaps with the softmax pipeline,
        // Section IV-B2 — the schedule is the controller's business,
        // the instruction stream lists the work).
        for (int i = 0; i < 3; ++i)
            k.instructions.push_back(gemm(op, bits, s, d, d));
        // Scores P = Q K^T and the softmax over each row.
        k.instructions.push_back(gemm(op, bits, s, s, d));
        k.instructions.push_back(
            elementwise(bce::PimOpcode::Softmax, bits, s * s));
        // Context P' V and the output projection.
        k.instructions.push_back(gemm(op, bits, s, d, s));
        k.instructions.push_back(gemm(op, bits, s, d, d));
        break;
      }
      default:
        k.instructions.push_back(
            elementwise(op, bits, layer.specialOps()));
        break;
    }

    // ------------------------------------------------------------------
    // LUT images for the configuration phase.
    // ------------------------------------------------------------------
    switch (op) {
      case bce::PimOpcode::Conv:
      case bce::PimOpcode::Matmul:
        k.lutImages.push_back(lut::serialize(lut::MultLut{}));
        break;
      case bce::PimOpcode::AvgPool:
      case bce::PimOpcode::Divide:
      case bce::PimOpcode::LayerNorm:
        k.lutImages.push_back(lut::serialize(lut::DivisionLut(4)));
        break;
      case bce::PimOpcode::Sigmoid:
        k.lutImages.push_back(
            lut::serialize(lut::make_sigmoid_table(16)));
        break;
      case bce::PimOpcode::Tanh:
        k.lutImages.push_back(lut::serialize(lut::make_tanh_table(16)));
        break;
      case bce::PimOpcode::Exp:
        k.lutImages.push_back(lut::serialize(lut::make_exp_table(16)));
        break;
      case bce::PimOpcode::Softmax:
        // Two-phase configuration: exp table, then the division table
        // for the normalization pass.
        k.lutImages.push_back(lut::serialize(lut::make_exp_table(8)));
        k.lutImages.push_back(lut::serialize(lut::DivisionLut(4)));
        break;
      default:
        break; // ReLU / max pool / ew-add need no table
    }
    if (layer.kind == dnn::LayerKind::Attention) {
        // The attention block needs the multiply image and both
        // softmax tables across its phases.
        k.lutImages.push_back(lut::serialize(lut::make_exp_table(8)));
        k.lutImages.push_back(lut::serialize(lut::DivisionLut(4)));
    }
    // The controller loads images sequentially, each replacing its
    // predecessor in the LUT rows: one configuration phase per image.
    // (An oversized image is a diagnostic now, not an abort — the
    // verifier reports rule lut-oversize.)
    for (std::size_t i = 0; i < k.lutImages.size(); ++i)
        k.lutImages[i].configPhase = static_cast<unsigned>(i);

    // ------------------------------------------------------------------
    // Config block template.
    // ------------------------------------------------------------------
    k.configBlock.opcode = op;
    k.configBlock.precisionBits = static_cast<std::uint8_t>(bits);

    if (layer.isComputeLayer()) {
        // Guard the datapath query: an unsupported precision must
        // surface as an op-precision diagnostic from the verifier
        // below, not an abort inside the rate model.
        const bool known_bits = bits == 4 || bits == 8 || bits == 16;
        const double rate =
            known_bits ? bce::Bce::macsPerCycle(
                k.mapping.mode == ExecMode::MatmulMode
                    ? bce::BceMode::Matmul
                    : bce::BceMode::Conv,
                bits)
                       : 1.0;
        k.totalSteps = static_cast<std::uint64_t>(
            static_cast<double>(layer.macs())
            / (rate * std::max(1u, k.mapping.activeSubarrays)));
    } else {
        k.totalSteps = layer.specialOps()
                       / std::max(1u, k.mapping.activeSubarrays);
    }
    k.configBlock.iterations = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(k.totalSteps, 0xFFFF));

    // Weight row range, per the canonical sub-array layout
    // (tech/row_layout.hh): the CB region at the bottom, the reserved
    // LUT rows at the top, and a tile larger than the usable span runs
    // as multiple passes over the same rows.
    const std::uint64_t tile_bytes =
        k.mapping.weightTiles > 0
            ? (k.mapping.weightBytes + k.mapping.weightTiles - 1)
                  / k.mapping.weightTiles
            : 0;
    if (tile_bytes > 0) {
        const unsigned base_row = tech::weight_base_row(geom);
        const std::uint64_t usable_bytes =
            tech::usable_weight_bytes(geom);
        const std::uint64_t pass_rows =
            (std::min(tile_bytes, usable_bytes) + geom.rowBytes() - 1)
            / geom.rowBytes();
        k.configBlock.startRow = static_cast<std::uint16_t>(base_row);
        k.configBlock.endRow =
            static_cast<std::uint16_t>(base_row + pass_rows);
    }

    if (copts.verify) {
        const verify::KernelVerifier verifier(geom);
        k.diagnostics = verifier.verify(k, layer);
    }
    return k;
}

} // namespace bfree::map
