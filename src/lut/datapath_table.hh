/**
 * @file
 * Tier-1 memoized datapath tables, split-plane layout.
 *
 * The operand analyzer's decomposition of a multiplication into LUT
 * lookups, shifts and adds is a pure function of (a, b, bits, lookup
 * source): nothing about it depends on execution history. The tiered
 * execution engine therefore precomputes, once per (source, bits)
 * pair, flat planes over the full signed operand space holding the
 * exact product plus the micro-op deltas the legacy scalar path would
 * have accumulated. A steady-state MAC then becomes one array read and
 * a handful of integer additions instead of a full nibble-decomposition
 * walk.
 *
 * The layout is independently-addressable 64-byte-aligned planes
 * rather than an array of structs, so the SIMD span kernels can
 * consume each plane on its own:
 *
 *  - an int32 PRODUCT PLANE (products()): the exact product per
 *    operand pair. When every entry equals a*b — true whenever the
 *    backing LUT rows hold the pristine multiply image — the table
 *    additionally reports productsExact(), and the kernels skip the
 *    plane entirely in favour of a SIMD widening-multiply. A rewritten
 *    (poisoned) LUT row clears the flag and the kernels gather from
 *    the plane instead, preserving bit-exactness against the legacy
 *    scalar walk in both regimes.
 *
 *  - a packed uint32 MICRO-OP-DELTA PLANE (deltas()): per pair, the
 *    four micro-op tallies of the scalar decomposition packed one per
 *    byte (lookups | shifts<<8 | adds<<16 | cycles<<24). The deltas
 *    are tiny (at most 4 of each per 8-bit multiply, enforced at
 *    build), so a blocked SIMD tally pass can accumulate thousands of
 *    entries before widening. A table memoizes exactly one lookup
 *    source, so the "lookups" byte is LUT-row reads for conv tables
 *    and hardwired-ROM reads for matmul tables — never both.
 *
 *  - a 256-entry PAIR-DELTA TABLE (pairDeltas()): the gather-free
 *    tally path. The analyzer's micro-op counts depend only on the
 *    nibble STRUCTURE of |a| and |b| — which nibbles are zero, odd, a
 *    power of two — never on the product value. Every operand byte
 *    therefore collapses onto one of at most 15 structural classes
 *    (operand_class()), and the packed delta of a pair is a function
 *    of the two classes alone: pairDeltas()[classA*16 + classB]. A
 *    span kernel can then histogram the 256 possible class keys (all
 *    in-register byte shuffles) and fold the histogram against this
 *    tiny table instead of gathering one delta per element from the
 *    (2^bits+1)^2 plane. The collapse is VERIFIED, not assumed: build
 *    checks every memoized pair against its class key and reports
 *    histogramExact() only when the whole plane agrees, so a
 *    reference with value-dependent counts simply falls back to the
 *    delta-plane gather.
 *
 * The planes are SEEDED BY the legacy scalar path (the caller passes a
 * reference functor that runs the real decomposition), so the scalar
 * code remains the single source of truth: the memoized engine can
 * only ever reproduce it. Conv-mode tables additionally bake in the
 * bytes currently resident in the sub-array LUT rows, so their owner
 * must tag them with the sub-array's LUT generation and rebuild when
 * the rows are rewritten (see Subarray::lutGeneration()).
 */

#ifndef BFREE_LUT_DATAPATH_TABLE_HH
#define BFREE_LUT_DATAPATH_TABLE_HH

#include <array>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "operand_analyzer.hh"
#include "sim/logging.hh"

namespace bfree::lut {

/**
 * Cache-line-aligned allocator for the datapath planes: aligned loads
 * in the span kernels and no false sharing between co-resident tables.
 */
template <typename T>
struct PlaneAlloc
{
    using value_type = T;

    PlaneAlloc() = default;
    template <typename U>
    PlaneAlloc(const PlaneAlloc<U> &) {}

    static constexpr std::align_val_t alignment{64};

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), alignment));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, alignment);
    }

    template <typename U>
    bool operator==(const PlaneAlloc<U> &) const { return true; }
    template <typename U>
    bool operator!=(const PlaneAlloc<U> &) const { return false; }
};

/** A 64-byte-aligned plane. */
template <typename T>
using PlaneVec = std::vector<T, PlaneAlloc<T>>;

/**
 * One memoized multiplication, materialized from the planes: exact
 * product plus the micro-op deltas of the scalar decomposition.
 */
struct DatapathEntry
{
    std::int32_t product = 0;
    std::uint8_t lutLookups = 0;
    std::uint8_t romLookups = 0;
    std::uint8_t shifts = 0;
    std::uint8_t adds = 0;
    std::uint8_t cycles = 0;
};

/**
 * Flat (2^bits + 1)^2 entry planes over the signed operand domain
 * [-2^(bits-1), +2^(bits-1)] — the full range the operand analyzer
 * accepts, including the asymmetric +/-2^(bits-1) endpoints.
 */
class DatapathTable
{
  public:
    /** Byte positions inside one packed micro-op delta. */
    static constexpr unsigned delta_lookups_shift = 0;
    static constexpr unsigned delta_shifts_shift = 8;
    static constexpr unsigned delta_adds_shift = 16;
    static constexpr unsigned delta_cycles_shift = 24;

    // ------------------------------------------------------------------
    // Operand structural classes (the histogram-tally key space)
    // ------------------------------------------------------------------

    /**
     * Structural type of one nibble value: 0 zero, 1 one, 2 a larger
     * power of two ({2,4,8}: odd part 1, shift > 0), 3 odd and >= 3,
     * 4 even with odd part >= 3 ({6,10,12,14}). Everything the
     * analyzer counts per nibble pair — LUT lookup or not, shift or
     * not — is a function of these two types.
     */
    static constexpr std::array<std::uint8_t, 16> nibble_type = {
        0, 1, 2, 3, 2, 3, 4, 3, 2, 3, 4, 3, 4, 3, 4, 3};

    /**
     * Unordered-pair compression of (hi-type * 5 + lo-type): the
     * micro-op counts of a multiply are symmetric in the two nibbles
     * of one operand, so the 25 ordered type pairs collapse onto 15
     * classes — small enough that a class fits one hex digit and a
     * PAIR of operand classes fits one byte.
     */
    static constexpr std::array<std::uint8_t, 25> pair_type_class = {
        0, 1, 2,  3,  4,  //
        1, 5, 6,  7,  8,  //
        2, 6, 9,  10, 11, //
        3, 7, 10, 12, 13, //
        4, 8, 11, 13, 14};

    /** Distinct operand classes (fits 4 bits). */
    static constexpr unsigned operand_class_count = 15;

    // ------------------------------------------------------------------
    // Per-class structural features (the factored histogram fold)
    // ------------------------------------------------------------------
    //
    // The analyzer's four micro-op counts are bilinear in four tiny
    // per-operand features: with p = #nonzero nibbles, o = #odd
    // nibbles, l = #nibbles whose odd part is >= 3 and z = [p > 0],
    //
    //     lookups = lA*lB        shifts = pA*pB - oA*oB
    //     adds    = pA*pB - zA*zB    cycles = C * pA*pB
    //
    // (C is 0 for conv-seeded tables and 1 for ROM tables.) Each
    // feature is a pure function of the operand class, so a span
    // kernel never has to materialize the 256-bin class-pair
    // histogram: summing the four feature dot-products over a span IS
    // the histogram folded against pairDeltas(), term for term. Build
    // verifies this factorization against every seen pairDeltas() key
    // — it is a checked rank decomposition, not an assumption.

    /** Feature p per class: #nonzero nibbles (16th entry padding). */
    static constexpr std::array<std::uint8_t, 16> class_feature_p = {
        0, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 0};

    /** Feature o per class: #odd-valued nibbles (types 1 and 3). */
    static constexpr std::array<std::uint8_t, 16> class_feature_o = {
        0, 1, 0, 1, 0, 2, 1, 2, 1, 0, 1, 0, 2, 1, 0, 0};

    /** Feature l per class: #nibbles with odd part >= 3 (types 3, 4). */
    static constexpr std::array<std::uint8_t, 16> class_feature_l = {
        0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1, 2, 2, 2, 0};

    /** Feature z per class: operand nonzero at all. */
    static constexpr std::array<std::uint8_t, 16> class_feature_z = {
        0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0};

    /**
     * Structural class of an operand from the byte holding its
     * magnitude. The kernels feed abs(int8) through the same math
     * in-register (two nibble shuffles plus the pair compression);
     * abs(-128) wraps to 0x80 — exactly the byte pattern of |+128| —
     * so every int8 lane and both analyzer endpoints agree.
     */
    static std::uint8_t
    operand_class(std::uint8_t magnitude)
    {
        return pair_type_class[nibble_type[magnitude >> 4] * 5u
                               + nibble_type[magnitude & 0xF]];
    }

    /** The histogram key of a signed operand pair: classA*16+classB. */
    static std::uint8_t
    class_key(std::int32_t a, std::int32_t b)
    {
        const auto ua = static_cast<std::uint8_t>(a < 0 ? -a : a);
        const auto ub = static_cast<std::uint8_t>(b < 0 ? -b : b);
        return static_cast<std::uint8_t>(operand_class(ua) << 4
                                         | operand_class(ub));
    }

    DatapathTable() = default;

    /** Memoization covers 4- and 8-bit operands; 16-bit stays scalar
     *  (a 2^32-entry table would defeat the point). */
    static bool
    coversBits(unsigned bits)
    {
        return bits == 4 || bits == 8;
    }

    /** True once built. */
    bool valid() const { return !products_.empty(); }

    /** Operand precision this table covers. */
    unsigned bits() const { return _bits; }

    /** Number of memoized operand pairs. */
    std::size_t entryCount() const { return products_.size(); }

    /**
     * Owner-managed invalidation tag. Conv-mode tables record the
     * sub-array LUT generation they were seeded against; a mismatch
     * at dispatch time forces a reseed.
     */
    std::uint64_t generation = 0;

    /** True when this table's planes were seeded against @p gen —
     *  the dispatch-time staleness test (a stale table must be
     *  rejected and reseeded, never served). */
    bool
    matchesGeneration(std::uint64_t gen) const
    {
        return valid() && generation == gen;
    }

    /** Extent of one plane axis: 2^bits + 1. */
    unsigned span() const { return _span; }

    /** Half-range 2^(bits-1): operands live in [-half, +half]. */
    std::int32_t half() const { return _half; }

    /** Plane index of the pair (a, b); both in [-half, +half]. */
    std::size_t
    index(std::int32_t a, std::int32_t b) const
    {
        return static_cast<std::size_t>(a + _half) * _span
               + static_cast<std::size_t>(b + _half);
    }

    /** The flat int32 product plane (entryCount() values, 64B-aligned). */
    const std::int32_t *products() const { return products_.data(); }

    /** The packed micro-op-delta plane (entryCount() values,
     *  64B-aligned). */
    const std::uint32_t *deltas() const { return deltas_.data(); }

    /**
     * The 256-entry packed-delta table keyed by class_key(a, b).
     * Meaningful only when histogramExact(); keys whose class pair
     * never occurs hold 0.
     */
    const std::uint32_t *pairDeltas() const { return pairDeltas_.data(); }

    /**
     * True when every product equals a*b (the pristine-LUT steady
     * state), letting kernels compute products with a widening
     * multiply instead of a gather. Verified exhaustively at build.
     */
    bool productsExact() const { return productsExact_; }

    /**
     * True when the whole delta plane agrees with the class-keyed
     * pairDeltas() table — the precondition for the gather-free
     * histogram tally. Verified exhaustively at build against every
     * memoized pair; a reference whose counts are not a pure function
     * of the operand classes (or a doctored test table) simply clears
     * the flag and the kernels gather from the delta plane instead.
     */
    bool histogramExact() const { return histogramExact_; }

    /**
     * Cycle cost per nibble-pair product, 0 or 1: the one per-source
     * degree of freedom in the factored fold (conv tables charge
     * cycles at the span level, ROM tables per nibble pair).
     * Meaningful only when histogramExact().
     */
    std::uint32_t cyclesFactor() const { return cyclesFactor_; }

    /** Kind of lookup the delta "lookups" byte counts. */
    bool countsRomLookups() const { return romSource_; }

    /** The memoized entry for (a, b), materialized from the planes. */
    DatapathEntry
    at(std::int32_t a, std::int32_t b) const
    {
        const std::size_t i = index(a, b);
        const std::uint32_t d = deltas_[i];
        DatapathEntry e;
        e.product = products_[i];
        const auto lookups =
            static_cast<std::uint8_t>(d >> delta_lookups_shift);
        if (romSource_)
            e.romLookups = lookups;
        else
            e.lutLookups = lookups;
        e.shifts = static_cast<std::uint8_t>(d >> delta_shifts_shift);
        e.adds = static_cast<std::uint8_t>(d >> delta_adds_shift);
        e.cycles = static_cast<std::uint8_t>(d >> delta_cycles_shift);
        return e;
    }

    /**
     * Build the planes by exhaustively running @p reference — the
     * legacy scalar path — over the operand space. @p reference must
     * return a MultResult for (a, b).
     */
    template <typename Ref>
    static DatapathTable
    build(unsigned bits, Ref &&reference)
    {
        if (!coversBits(bits))
            bfree_fatal("no datapath table for ", bits, "-bit operands");

        DatapathTable t;
        t._bits = bits;
        t._half = std::int32_t{1} << (bits - 1);
        t._span = 2u * static_cast<unsigned>(t._half) + 1;
        const std::size_t n = std::size_t{t._span} * t._span;
        t.products_.resize(n);
        t.deltas_.resize(n);
        t.pairDeltas_.assign(256, 0);
        t.productsExact_ = true;
        t.histogramExact_ = true;

        std::array<bool, 256> keySeen{};
        bool sawLut = false, sawRom = false;
        for (std::int32_t a = -t._half; a <= t._half; ++a) {
            for (std::int32_t b = -t._half; b <= t._half; ++b) {
                const MultResult r = reference(a, b);
                const std::size_t i = t.index(a, b);
                t.products_[i] = checkedProduct(r.product);
                if (t.products_[i] != a * b)
                    t.productsExact_ = false;
                sawLut = sawLut || r.counts.lutLookups != 0;
                sawRom = sawRom || r.counts.romLookups != 0;
                const std::uint64_t lookups =
                    r.counts.lutLookups + r.counts.romLookups;
                t.deltas_[i] = packDelta(lookups, r.counts.shifts,
                                         r.counts.adds, r.counts.cycles);

                // Verify (never assume) the class collapse: the first
                // pair of a key defines it, every later pair must
                // reproduce it exactly or the histogram path is off.
                const std::uint8_t key = class_key(a, b);
                if (!keySeen[key]) {
                    keySeen[key] = true;
                    t.pairDeltas_[key] = t.deltas_[i];
                } else if (t.pairDeltas_[key] != t.deltas_[i]) {
                    t.histogramExact_ = false;
                }
            }
        }
        if (sawLut && sawRom)
            bfree_panic("datapath-table reference mixes LUT-row and "
                        "ROM lookups; one table memoizes one source");
        t.romSource_ = sawRom;
        if (t.histogramExact_)
            t.verifySeparableFold(keySeen);
        return t;
    }

  private:
    /**
     * Check the bilinear feature factorization against every seen
     * pairDeltas() key and derive cyclesFactor(). A key that defeats
     * the formula (possible only for a reference with counts that are
     * class-consistent but not feature-bilinear, e.g. a doctored test
     * table) clears histogramExact_ so the kernels keep gathering.
     */
    void
    verifySeparableFold(const std::array<bool, 256> &keySeen)
    {
        // Derive the cycles factor from the first key with p*p > 0.
        bool factorKnown = false;
        cyclesFactor_ = 0;
        for (unsigned key = 0; key < 256 && !factorKnown; ++key) {
            if (!keySeen[key])
                continue;
            const std::uint32_t pp =
                class_feature_p[key >> 4] * class_feature_p[key & 0xF];
            if (pp == 0)
                continue;
            const std::uint32_t cycles =
                pairDeltas_[key] >> delta_cycles_shift & 0xFF;
            if (cycles == 0) {
                cyclesFactor_ = 0;
                factorKnown = true;
            } else if (cycles == pp) {
                cyclesFactor_ = 1;
                factorKnown = true;
            } else {
                histogramExact_ = false;
                return;
            }
        }
        for (unsigned key = 0; key < 256; ++key) {
            if (!keySeen[key])
                continue;
            const unsigned cA = key >> 4, cB = key & 0xF;
            const std::uint32_t pp =
                class_feature_p[cA] * class_feature_p[cB];
            const std::uint32_t oo =
                class_feature_o[cA] * class_feature_o[cB];
            const std::uint32_t ll =
                class_feature_l[cA] * class_feature_l[cB];
            const std::uint32_t zz =
                class_feature_z[cA] * class_feature_z[cB];
            const std::uint32_t expect =
                ll << delta_lookups_shift | (pp - oo) << delta_shifts_shift
                | (pp - zz) << delta_adds_shift
                | (cyclesFactor_ * pp) << delta_cycles_shift;
            if (pairDeltas_[key] != expect) {
                histogramExact_ = false;
                return;
            }
        }
    }

    static std::int32_t
    checkedProduct(std::int64_t p)
    {
        // |product| <= 2^(bits-1) * 2^(bits-1) = 2^14 for 8-bit.
        if (p < INT32_MIN || p > INT32_MAX)
            bfree_panic("datapath-table product ", p,
                        " overflows the entry");
        return static_cast<std::int32_t>(p);
    }

    static std::uint32_t
    packDelta(std::uint64_t lookups, std::uint64_t shifts,
              std::uint64_t adds, std::uint64_t cycles)
    {
        if (lookups > 0xFF || shifts > 0xFF || adds > 0xFF
            || cycles > 0xFF)
            bfree_panic("datapath-table micro-op count overflows its "
                        "packed byte");
        return static_cast<std::uint32_t>(lookups)
               << delta_lookups_shift
               | static_cast<std::uint32_t>(shifts) << delta_shifts_shift
               | static_cast<std::uint32_t>(adds) << delta_adds_shift
               | static_cast<std::uint32_t>(cycles)
                     << delta_cycles_shift;
    }

    PlaneVec<std::int32_t> products_;
    PlaneVec<std::uint32_t> deltas_;
    PlaneVec<std::uint32_t> pairDeltas_;
    std::int32_t _half = 0;
    unsigned _span = 0;
    unsigned _bits = 0;
    std::uint32_t cyclesFactor_ = 0;
    bool productsExact_ = false;
    bool histogramExact_ = false;
    bool romSource_ = false;
};

/**
 * Build the ROM-source table for @p bits by seeding from the operand
 * analyzer over the hardwired multiply ROM (the matmul-mode reference
 * path).
 */
DatapathTable build_rom_datapath_table(unsigned bits, const MultLut &rom);

} // namespace bfree::lut

#endif // BFREE_LUT_DATAPATH_TABLE_HH
