/**
 * @file
 * Tier-1 memoized datapath tables.
 *
 * The operand analyzer's decomposition of a multiplication into LUT
 * lookups, shifts and adds is a pure function of (a, b, bits, lookup
 * source): nothing about it depends on execution history. The tiered
 * execution engine therefore precomputes, once per (source, bits)
 * pair, a flat table over the full signed operand space holding the
 * exact product plus the micro-op deltas the legacy scalar path would
 * have accumulated. A steady-state MAC then becomes one array read and
 * a handful of integer additions instead of a full nibble-decomposition
 * walk.
 *
 * The tables are SEEDED BY the legacy scalar path (the caller passes a
 * reference functor that runs the real decomposition), so the scalar
 * code remains the single source of truth: the memoized engine can
 * only ever reproduce it. Conv-mode tables additionally bake in the
 * bytes currently resident in the sub-array LUT rows, so their owner
 * must tag them with the sub-array's LUT generation and rebuild when
 * the rows are rewritten (see Subarray::lutGeneration()).
 */

#ifndef BFREE_LUT_DATAPATH_TABLE_HH
#define BFREE_LUT_DATAPATH_TABLE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "operand_analyzer.hh"
#include "sim/logging.hh"

namespace bfree::lut {

/**
 * One memoized multiplication: exact product plus the micro-op deltas
 * of the scalar decomposition. The deltas are tiny (at most 4 of each
 * per 8-bit multiply), so a byte per field keeps the full 8-bit table
 * under 1 MB and cache-resident.
 */
struct DatapathEntry
{
    std::int32_t product = 0;
    std::uint8_t lutLookups = 0;
    std::uint8_t romLookups = 0;
    std::uint8_t shifts = 0;
    std::uint8_t adds = 0;
    std::uint8_t cycles = 0;
};

/**
 * A flat (2^bits + 1)^2 entry table over the signed operand domain
 * [-2^(bits-1), +2^(bits-1)] — the full range the operand analyzer
 * accepts, including the asymmetric +/-2^(bits-1) endpoints.
 */
class DatapathTable
{
  public:
    DatapathTable() = default;

    /** Memoization covers 4- and 8-bit operands; 16-bit stays scalar
     *  (a 2^32-entry table would defeat the point). */
    static bool
    coversBits(unsigned bits)
    {
        return bits == 4 || bits == 8;
    }

    /** True once built. */
    bool valid() const { return !entries.empty(); }

    /** Operand precision this table covers. */
    unsigned bits() const { return _bits; }

    /** Number of memoized operand pairs. */
    std::size_t entryCount() const { return entries.size(); }

    /**
     * Owner-managed invalidation tag. Conv-mode tables record the
     * sub-array LUT generation they were seeded against; a mismatch
     * at dispatch time forces a reseed.
     */
    std::uint64_t generation = 0;

    /** The memoized entry for (a, b); both in [-2^(bits-1), 2^(bits-1)]. */
    const DatapathEntry &
    at(std::int32_t a, std::int32_t b) const
    {
        return entries[static_cast<std::size_t>(a + half) * span
                       + static_cast<std::size_t>(b + half)];
    }

    /**
     * Build a table by exhaustively running @p reference — the legacy
     * scalar path — over the operand space. @p reference must return a
     * MultResult for (a, b).
     */
    template <typename Ref>
    static DatapathTable
    build(unsigned bits, Ref &&reference)
    {
        if (!coversBits(bits))
            bfree_fatal("no datapath table for ", bits, "-bit operands");

        DatapathTable t;
        t._bits = bits;
        t.half = std::int32_t{1} << (bits - 1);
        t.span = 2u * static_cast<unsigned>(t.half) + 1;
        t.entries.resize(std::size_t{t.span} * t.span);

        for (std::int32_t a = -t.half; a <= t.half; ++a) {
            for (std::int32_t b = -t.half; b <= t.half; ++b) {
                const MultResult r = reference(a, b);
                DatapathEntry &e =
                    t.entries[static_cast<std::size_t>(a + t.half) * t.span
                              + static_cast<std::size_t>(b + t.half)];
                e.product = checkedProduct(r.product);
                e.lutLookups = checkedCount(r.counts.lutLookups);
                e.romLookups = checkedCount(r.counts.romLookups);
                e.shifts = checkedCount(r.counts.shifts);
                e.adds = checkedCount(r.counts.adds);
                e.cycles = checkedCount(r.counts.cycles);
            }
        }
        return t;
    }

  private:
    static std::int32_t
    checkedProduct(std::int64_t p)
    {
        // |product| <= 2^(bits-1) * 2^(bits-1) = 2^14 for 8-bit.
        if (p < INT32_MIN || p > INT32_MAX)
            bfree_panic("datapath-table product ", p,
                        " overflows the entry");
        return static_cast<std::int32_t>(p);
    }

    static std::uint8_t
    checkedCount(std::uint64_t c)
    {
        if (c > 0xFF)
            bfree_panic("datapath-table micro-op count ", c,
                        " overflows the entry");
        return static_cast<std::uint8_t>(c);
    }

    std::vector<DatapathEntry> entries;
    std::int32_t half = 0;
    unsigned span = 0;
    unsigned _bits = 0;
};

/**
 * Build the ROM-source table for @p bits by seeding from the operand
 * analyzer over the hardwired multiply ROM (the matmul-mode reference
 * path).
 */
DatapathTable build_rom_datapath_table(unsigned bits, const MultLut &rom);

} // namespace bfree::lut

#endif // BFREE_LUT_DATAPATH_TABLE_HH
