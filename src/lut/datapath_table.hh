/**
 * @file
 * Tier-1 memoized datapath tables, structure-of-arrays layout.
 *
 * The operand analyzer's decomposition of a multiplication into LUT
 * lookups, shifts and adds is a pure function of (a, b, bits, lookup
 * source): nothing about it depends on execution history. The tiered
 * execution engine therefore precomputes, once per (source, bits)
 * pair, flat planes over the full signed operand space holding the
 * exact product plus the micro-op deltas the legacy scalar path would
 * have accumulated. A steady-state MAC then becomes one array read and
 * a handful of integer additions instead of a full nibble-decomposition
 * walk.
 *
 * The layout is two parallel planes rather than an array of structs,
 * so the SIMD span kernels can consume them directly:
 *
 *  - an int32 PRODUCT PLANE (products()): the exact product per
 *    operand pair. When every entry equals a*b — true whenever the
 *    backing LUT rows hold the pristine multiply image — the table
 *    additionally reports productsExact(), and the kernels skip the
 *    plane entirely in favour of a SIMD widening-multiply. A rewritten
 *    (poisoned) LUT row clears the flag and the kernels gather from
 *    the plane instead, preserving bit-exactness against the legacy
 *    scalar walk in both regimes.
 *
 *  - a packed uint32 MICRO-OP-DELTA PLANE (deltas()): per pair, the
 *    four micro-op tallies of the scalar decomposition packed one per
 *    byte (lookups | shifts<<8 | adds<<16 | cycles<<24). The deltas
 *    are tiny (at most 4 of each per 8-bit multiply, enforced at
 *    build), so a blocked SIMD tally pass can accumulate thousands of
 *    entries before widening. A table memoizes exactly one lookup
 *    source, so the "lookups" byte is LUT-row reads for conv tables
 *    and hardwired-ROM reads for matmul tables — never both.
 *
 * The planes are SEEDED BY the legacy scalar path (the caller passes a
 * reference functor that runs the real decomposition), so the scalar
 * code remains the single source of truth: the memoized engine can
 * only ever reproduce it. Conv-mode tables additionally bake in the
 * bytes currently resident in the sub-array LUT rows, so their owner
 * must tag them with the sub-array's LUT generation and rebuild when
 * the rows are rewritten (see Subarray::lutGeneration()).
 */

#ifndef BFREE_LUT_DATAPATH_TABLE_HH
#define BFREE_LUT_DATAPATH_TABLE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "operand_analyzer.hh"
#include "sim/logging.hh"

namespace bfree::lut {

/**
 * One memoized multiplication, materialized from the planes: exact
 * product plus the micro-op deltas of the scalar decomposition.
 */
struct DatapathEntry
{
    std::int32_t product = 0;
    std::uint8_t lutLookups = 0;
    std::uint8_t romLookups = 0;
    std::uint8_t shifts = 0;
    std::uint8_t adds = 0;
    std::uint8_t cycles = 0;
};

/**
 * Flat (2^bits + 1)^2 entry planes over the signed operand domain
 * [-2^(bits-1), +2^(bits-1)] — the full range the operand analyzer
 * accepts, including the asymmetric +/-2^(bits-1) endpoints.
 */
class DatapathTable
{
  public:
    /** Byte positions inside one packed micro-op delta. */
    static constexpr unsigned delta_lookups_shift = 0;
    static constexpr unsigned delta_shifts_shift = 8;
    static constexpr unsigned delta_adds_shift = 16;
    static constexpr unsigned delta_cycles_shift = 24;

    DatapathTable() = default;

    /** Memoization covers 4- and 8-bit operands; 16-bit stays scalar
     *  (a 2^32-entry table would defeat the point). */
    static bool
    coversBits(unsigned bits)
    {
        return bits == 4 || bits == 8;
    }

    /** True once built. */
    bool valid() const { return !products_.empty(); }

    /** Operand precision this table covers. */
    unsigned bits() const { return _bits; }

    /** Number of memoized operand pairs. */
    std::size_t entryCount() const { return products_.size(); }

    /**
     * Owner-managed invalidation tag. Conv-mode tables record the
     * sub-array LUT generation they were seeded against; a mismatch
     * at dispatch time forces a reseed.
     */
    std::uint64_t generation = 0;

    /** True when this table's planes were seeded against @p gen —
     *  the dispatch-time staleness test (a stale table must be
     *  rejected and reseeded, never served). */
    bool
    matchesGeneration(std::uint64_t gen) const
    {
        return valid() && generation == gen;
    }

    /** Extent of one plane axis: 2^bits + 1. */
    unsigned span() const { return _span; }

    /** Half-range 2^(bits-1): operands live in [-half, +half]. */
    std::int32_t half() const { return _half; }

    /** Plane index of the pair (a, b); both in [-half, +half]. */
    std::size_t
    index(std::int32_t a, std::int32_t b) const
    {
        return static_cast<std::size_t>(a + _half) * _span
               + static_cast<std::size_t>(b + _half);
    }

    /** The flat int32 product plane (entryCount() values). */
    const std::int32_t *products() const { return products_.data(); }

    /** The packed micro-op-delta plane (entryCount() values). */
    const std::uint32_t *deltas() const { return deltas_.data(); }

    /**
     * True when every product equals a*b (the pristine-LUT steady
     * state), letting kernels compute products with a widening
     * multiply instead of a gather. Verified exhaustively at build.
     */
    bool productsExact() const { return productsExact_; }

    /** Kind of lookup the delta "lookups" byte counts. */
    bool countsRomLookups() const { return romSource_; }

    /** The memoized entry for (a, b), materialized from the planes. */
    DatapathEntry
    at(std::int32_t a, std::int32_t b) const
    {
        const std::size_t i = index(a, b);
        const std::uint32_t d = deltas_[i];
        DatapathEntry e;
        e.product = products_[i];
        const auto lookups =
            static_cast<std::uint8_t>(d >> delta_lookups_shift);
        if (romSource_)
            e.romLookups = lookups;
        else
            e.lutLookups = lookups;
        e.shifts = static_cast<std::uint8_t>(d >> delta_shifts_shift);
        e.adds = static_cast<std::uint8_t>(d >> delta_adds_shift);
        e.cycles = static_cast<std::uint8_t>(d >> delta_cycles_shift);
        return e;
    }

    /**
     * Build the planes by exhaustively running @p reference — the
     * legacy scalar path — over the operand space. @p reference must
     * return a MultResult for (a, b).
     */
    template <typename Ref>
    static DatapathTable
    build(unsigned bits, Ref &&reference)
    {
        if (!coversBits(bits))
            bfree_fatal("no datapath table for ", bits, "-bit operands");

        DatapathTable t;
        t._bits = bits;
        t._half = std::int32_t{1} << (bits - 1);
        t._span = 2u * static_cast<unsigned>(t._half) + 1;
        const std::size_t n = std::size_t{t._span} * t._span;
        t.products_.resize(n);
        t.deltas_.resize(n);
        t.productsExact_ = true;

        bool sawLut = false, sawRom = false;
        for (std::int32_t a = -t._half; a <= t._half; ++a) {
            for (std::int32_t b = -t._half; b <= t._half; ++b) {
                const MultResult r = reference(a, b);
                const std::size_t i = t.index(a, b);
                t.products_[i] = checkedProduct(r.product);
                if (t.products_[i] != a * b)
                    t.productsExact_ = false;
                sawLut = sawLut || r.counts.lutLookups != 0;
                sawRom = sawRom || r.counts.romLookups != 0;
                const std::uint64_t lookups =
                    r.counts.lutLookups + r.counts.romLookups;
                t.deltas_[i] = packDelta(lookups, r.counts.shifts,
                                         r.counts.adds, r.counts.cycles);
            }
        }
        if (sawLut && sawRom)
            bfree_panic("datapath-table reference mixes LUT-row and "
                        "ROM lookups; one table memoizes one source");
        t.romSource_ = sawRom;
        return t;
    }

  private:
    static std::int32_t
    checkedProduct(std::int64_t p)
    {
        // |product| <= 2^(bits-1) * 2^(bits-1) = 2^14 for 8-bit.
        if (p < INT32_MIN || p > INT32_MAX)
            bfree_panic("datapath-table product ", p,
                        " overflows the entry");
        return static_cast<std::int32_t>(p);
    }

    static std::uint32_t
    packDelta(std::uint64_t lookups, std::uint64_t shifts,
              std::uint64_t adds, std::uint64_t cycles)
    {
        if (lookups > 0xFF || shifts > 0xFF || adds > 0xFF
            || cycles > 0xFF)
            bfree_panic("datapath-table micro-op count overflows its "
                        "packed byte");
        return static_cast<std::uint32_t>(lookups)
               << delta_lookups_shift
               | static_cast<std::uint32_t>(shifts) << delta_shifts_shift
               | static_cast<std::uint32_t>(adds) << delta_adds_shift
               | static_cast<std::uint32_t>(cycles)
                     << delta_cycles_shift;
    }

    std::vector<std::int32_t> products_;
    std::vector<std::uint32_t> deltas_;
    std::int32_t _half = 0;
    unsigned _span = 0;
    unsigned _bits = 0;
    bool productsExact_ = false;
    bool romSource_ = false;
};

/**
 * Build the ROM-source table for @p bits by seeding from the operand
 * analyzer over the hardwired multiply ROM (the matmul-mode reference
 * path).
 */
DatapathTable build_rom_datapath_table(unsigned bits, const MultLut &rom);

} // namespace bfree::lut

#endif // BFREE_LUT_DATAPATH_TABLE_HH
