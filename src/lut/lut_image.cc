#include "lut_image.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bfree::lut {

std::uint16_t
fletcher16(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum1 = 0;
    std::uint32_t sum2 = 0;
    for (std::size_t i = 0; i < len; ++i) {
        sum1 = (sum1 + data[i]) % 255;
        sum2 = (sum2 + sum1) % 255;
    }
    return static_cast<std::uint16_t>((sum2 << 8) | sum1);
}

std::uint16_t
LutImage::checksum() const
{
    return fletcher16(bytes.data(), bytes.size());
}

LutImage
serialize(const MultLut &lut)
{
    LutImage image;
    image.name = "mult49";
    image.bytes.assign(lut.raw().begin(), lut.raw().end());
    return image;
}

LutImage
serialize(const DivisionLut &div)
{
    LutImage image;
    image.name = "recip_sq_m" + std::to_string(div.mBits());
    image.bytes.reserve(div.raw().size() * 2);
    for (std::uint16_t v : div.raw()) {
        image.bytes.push_back(static_cast<std::uint8_t>(v & 0xFF));
        image.bytes.push_back(static_cast<std::uint8_t>(v >> 8));
    }
    return image;
}

namespace {

std::int16_t
to_q(double v, unsigned frac_bits, const std::string &what)
{
    const double scaled = v * (1 << frac_bits);
    if (scaled < -32768.0 || scaled > 32767.0)
        bfree_fatal("PWL value ", v, " does not fit Q", frac_bits,
                    " 16-bit storage in ", what);
    return static_cast<std::int16_t>(std::lround(scaled));
}

} // namespace

LutImage
serialize(const PwlTable &table, unsigned frac_bits)
{
    LutImage image;
    image.name = "pwl_" + table.name();
    image.bytes.reserve(table.raw().size() * 4);
    for (const PwlSegment &seg : table.raw()) {
        const std::int16_t alpha = to_q(seg.alpha, frac_bits, image.name);
        const std::int16_t beta = to_q(seg.beta, frac_bits, image.name);
        const auto ua = static_cast<std::uint16_t>(alpha);
        const auto ub = static_cast<std::uint16_t>(beta);
        image.bytes.push_back(static_cast<std::uint8_t>(ua & 0xFF));
        image.bytes.push_back(static_cast<std::uint8_t>(ua >> 8));
        image.bytes.push_back(static_cast<std::uint8_t>(ub & 0xFF));
        image.bytes.push_back(static_cast<std::uint8_t>(ub >> 8));
    }
    return image;
}

std::vector<PwlSegment>
parse_pwl(const LutImage &image, unsigned frac_bits)
{
    if (image.bytes.size() % 4 != 0)
        bfree_fatal("PWL image '", image.name,
                    "' has a size that is not a multiple of 4");

    std::vector<PwlSegment> segs(image.bytes.size() / 4);
    for (std::size_t s = 0; s < segs.size(); ++s) {
        const std::size_t base = s * 4;
        const auto ua = static_cast<std::uint16_t>(
            image.bytes[base] | (image.bytes[base + 1] << 8));
        const auto ub = static_cast<std::uint16_t>(
            image.bytes[base + 2] | (image.bytes[base + 3] << 8));
        segs[s].alpha = static_cast<double>(static_cast<std::int16_t>(ua))
                        / (1 << frac_bits);
        segs[s].beta = static_cast<double>(static_cast<std::int16_t>(ub))
                       / (1 << frac_bits);
    }
    return segs;
}

} // namespace bfree::lut
