#include "mult_lut.hh"

#include "sim/logging.hh"

namespace bfree::lut {

MultLut::MultLut()
{
    for (unsigned i = 0; i < num_odd_operands; ++i) {
        for (unsigned j = 0; j < num_odd_operands; ++j) {
            const unsigned a = 3 + 2 * i;
            const unsigned b = 3 + 2 * j;
            table[i * num_odd_operands + j] =
                static_cast<std::uint8_t>(a * b);
        }
    }
}

bool
MultLut::isTableOperand(unsigned v)
{
    return v >= 3 && v <= 15 && (v % 2) == 1;
}

unsigned
MultLut::operandIndex(unsigned v)
{
    if (!isTableOperand(v))
        bfree_panic("operand ", v, " is not stored in the multiply LUT");
    return (v - 3) / 2;
}

std::uint8_t
MultLut::lookup(unsigned a, unsigned b) const
{
    return table[operandIndex(a) * num_odd_operands + operandIndex(b)];
}

std::array<MultLutVariant, 3>
mult_lut_variants()
{
    return {{
        {"full 256-entry", 256, 1},
        {"odd-odd 49-entry", mult_lut_entries, 1},
        {"triangular 28-entry", num_odd_operands * (num_odd_operands + 1)
                                    / 2,
         1},
    }};
}

} // namespace bfree::lut
