/**
 * @file
 * 4-bit operand packing.
 *
 * BFree stores 4-bit weights two to a byte (that is where the Fig. 14
 * weight-traffic halving comes from). The packing is little-nibble
 * first: element 2i in bits [3:0], element 2i+1 in bits [7:4], each a
 * two's-complement signed nibble in [-8, 7].
 */

#ifndef BFREE_LUT_PACKING_HH
#define BFREE_LUT_PACKING_HH

#include <cstdint>
#include <vector>

namespace bfree::lut {

/** Saturate @p v into the signed 4-bit range [-8, 7]. */
std::int8_t saturate_int4(std::int32_t v);

/**
 * Pack signed 4-bit values (stored in int8) into bytes. Values outside
 * [-8, 7] are a caller bug and panic. Odd lengths pad the final high
 * nibble with zero.
 */
std::vector<std::uint8_t> pack_int4(const std::vector<std::int8_t> &v);

/** Unpack @p count values from a packed buffer. */
std::vector<std::int8_t> unpack_int4(const std::vector<std::uint8_t> &p,
                                     std::size_t count);

/** Packed size in bytes for @p count 4-bit values. */
constexpr std::size_t
packed_int4_bytes(std::size_t count)
{
    return (count + 1) / 2;
}

} // namespace bfree::lut

#endif // BFREE_LUT_PACKING_HH
