#include "pwl.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bfree::lut {

PwlTable::PwlTable(std::string name, std::function<double(double)> fn,
                   double xmin, double xmax, unsigned segments)
    : _name(std::move(name)), _xmin(xmin), _xmax(xmax)
{
    if (segments == 0 || xmax <= xmin)
        bfree_fatal("PWL table '", _name,
                    "' needs segments > 0 and xmax > xmin");

    width = (xmax - xmin) / segments;
    segs.resize(segments);
    for (unsigned s = 0; s < segments; ++s) {
        const double xl = xmin + s * width;
        const double xr = xl + width;
        const double yl = fn(xl);
        const double yr = fn(xr);
        segs[s].alpha = (yr - yl) / width;
        segs[s].beta = yl - segs[s].alpha * xl;
    }
}

double
PwlTable::evaluate(double x, MicroOpCounts *counts) const
{
    const double clamped = std::clamp(x, _xmin, _xmax);
    auto index = static_cast<std::size_t>((clamped - _xmin) / width);
    index = std::min(index, segs.size() - 1);
    const PwlSegment &seg = segs[index];

    if (counts != nullptr) {
        counts->lutLookups += 1; // alpha/beta pair fetch
        counts->romLookups += 1; // alpha * x on the multiply datapath
        counts->adds += 1;       // + beta
        counts->cycles += 2;
    }
    return seg.alpha * clamped + seg.beta;
}

double
PwlTable::maxAbsError(const std::function<double(double)> &fn,
                      unsigned samples) const
{
    double worst = 0.0;
    for (unsigned i = 0; i <= samples; ++i) {
        const double x =
            _xmin + (_xmax - _xmin) * static_cast<double>(i) / samples;
        worst = std::max(worst, std::abs(fn(x) - evaluate(x)));
    }
    return worst;
}

PwlTable
make_exp_table(unsigned segments)
{
    return PwlTable("exp", [](double x) { return std::exp(x); }, -16.0,
                    0.0, segments);
}

PwlTable
make_sigmoid_table(unsigned segments)
{
    return PwlTable(
        "sigmoid", [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
        -8.0, 8.0, segments);
}

PwlTable
make_tanh_table(unsigned segments)
{
    return PwlTable("tanh", [](double x) { return std::tanh(x); }, -4.0,
                    4.0, segments);
}

std::vector<double>
lut_softmax(const std::vector<double> &logits, const PwlTable &exp_table,
            const DivisionLut &div, MicroOpCounts *counts)
{
    std::vector<double> out(logits.size());
    lut_softmax_into(logits.data(), logits.size(), out.data(), exp_table,
                     div, counts);
    return out;
}

void
lut_softmax_into(const double *logits, std::size_t n, double *out,
                 const PwlTable &exp_table, const DivisionLut &div,
                 MicroOpCounts *counts)
{
    if (n == 0)
        return;

    const double max_logit = *std::max_element(logits, logits + n);

    // exp values land directly in out; the division then rewrites each
    // slot, so the routine needs no scratch of its own (and @p out may
    // alias @p logits: each slot is read before it is written).
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = exp_table.evaluate(logits[i] - max_logit, counts);
        denom += out[i];
        if (counts != nullptr)
            counts->adds += 1; // running denominator accumulation
    }
    for (std::size_t i = 0; i < n; ++i)
        out[i] = div.divide(out[i], denom, counts);
}

} // namespace bfree::lut
