/**
 * @file
 * Fixed-point and quantization support.
 *
 * BFree executes DNN inference on reduced-precision integers (the paper
 * uses 8-bit and 4-bit operands, quantized with the gemmlowp scheme).
 * This header provides affine quantization parameters, saturating
 * arithmetic and the gemmlowp-style requantization pipeline
 * (multiply by a fixed-point scale, round, shift, saturate) that BFree
 * performs inside the sub-arrays hosting the output features.
 */

#ifndef BFREE_LUT_FIXED_POINT_HH
#define BFREE_LUT_FIXED_POINT_HH

#include <cstdint>

namespace bfree::lut {

/** Affine quantization: real = scale * (q - zeroPoint). */
struct QuantParams
{
    double scale = 1.0;
    std::int32_t zeroPoint = 0;
    unsigned bits = 8;

    /** Smallest representable quantized value (signed symmetric range). */
    std::int32_t qmin() const { return -(1 << (bits - 1)); }

    /** Largest representable quantized value. */
    std::int32_t qmax() const { return (1 << (bits - 1)) - 1; }
};

/** Clamp @p v into [lo, hi]. */
std::int32_t saturate(std::int64_t v, std::int32_t lo, std::int32_t hi);

/** Quantize a real value under @p qp with round-to-nearest. */
std::int32_t quantize(double real, const QuantParams &qp);

/** Recover the real value of quantized @p q. */
double dequantize(std::int32_t q, const QuantParams &qp);

/**
 * Choose quantization parameters covering [@p rmin, @p rmax] with
 * @p bits of signed precision. The range is nudged so zero is exactly
 * representable (required so zero padding is exact).
 */
QuantParams choose_quant_params(double rmin, double rmax, unsigned bits);

/**
 * A positive real multiplier decomposed as m0 * 2^-shift with
 * m0 a Q31 fixed-point value in [0.5, 1), exactly as gemmlowp does.
 */
struct RequantScale
{
    std::int32_t multiplier = 0; ///< Q31 mantissa in [2^30, 2^31).
    int shift = 0;               ///< Right shift applied after the mul.
};

/** Decompose @p real_multiplier (must be in (0, 1]). */
RequantScale compute_requant_scale(double real_multiplier);

/**
 * gemmlowp SaturatingRoundingDoublingHighMul: the high 32 bits of
 * 2*a*b with rounding, saturating the single overflow case
 * (a == b == INT32_MIN).
 */
std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b);

/** Rounding arithmetic right shift by @p shift >= 0. */
std::int32_t rounding_divide_by_pot(std::int32_t x, int shift);

/**
 * Full requantization of an int32 accumulator to @p out_bits signed
 * integer: acc -> sat( rshift( acc *q31 scale ) + out_zero_point ).
 */
std::int32_t requantize(std::int32_t acc, const RequantScale &scale,
                        std::int32_t out_zero_point, unsigned out_bits);

} // namespace bfree::lut

#endif // BFREE_LUT_FIXED_POINT_HH
