#include "operand_analyzer.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace bfree::lut {

OperandClass
classify_operand(unsigned v)
{
    if (v > 15)
        bfree_panic("operand ", v, " does not fit in 4 bits");
    if (v == 0)
        return OperandClass::Zero;
    if (v == 1)
        return OperandClass::One;
    if ((v & (v - 1)) == 0)
        return OperandClass::PowerOfTwo;
    if (v % 2 == 1)
        return OperandClass::Odd;
    return OperandClass::EvenComposite;
}

OddDecomposition
decompose_odd(unsigned v)
{
    if (v == 0)
        bfree_panic("cannot odd-decompose zero");
    OddDecomposition d;
    d.odd = v;
    while ((d.odd & 1u) == 0) {
        d.odd >>= 1;
        ++d.shift;
    }
    return d;
}

MicroOpCounts &
MicroOpCounts::operator+=(const MicroOpCounts &other)
{
    lutLookups += other.lutLookups;
    romLookups += other.romLookups;
    shifts += other.shifts;
    adds += other.adds;
    cycles += other.cycles;
    return *this;
}

MultResult
multiply_u4(unsigned a, unsigned b, const MultLut &lut, LookupSource source)
{
    if (a > 15 || b > 15)
        bfree_panic("multiply_u4 operands must fit in 4 bits: ", a, " x ",
                    b);

    MultResult r;

    const OperandClass ca = classify_operand(a);
    const OperandClass cb = classify_operand(b);

    if (ca == OperandClass::Zero || cb == OperandClass::Zero) {
        r.product = 0;
        // Detected at decode; consumes no datapath cycle.
        return r;
    }

    const OddDecomposition da = decompose_odd(a);
    const OddDecomposition db = decompose_odd(b);
    const unsigned total_shift = da.shift + db.shift;

    r.counts.cycles = 1; // One BCE step per 4-bit pair (Fig. 6).

    if (da.odd == 1 && db.odd == 1) {
        // Power-of-two times power-of-two (or 1x1): pure shift.
        r.product = std::int64_t{1} << total_shift;
        if (total_shift > 0)
            r.counts.shifts = 1;
        return r;
    }

    if (da.odd == 1 || db.odd == 1) {
        // One operand is 1 or a power of two: shift the other.
        const unsigned odd = da.odd == 1 ? db.odd : da.odd;
        r.product = std::int64_t{odd} << total_shift;
        if (total_shift > 0)
            r.counts.shifts = 1;
        return r;
    }

    // Both odd parts are >= 3: one table lookup plus a possible shift.
    const std::uint8_t looked_up = lut.lookup(da.odd, db.odd);
    if (source == LookupSource::SubarrayLut)
        r.counts.lutLookups = 1;
    else
        r.counts.romLookups = 1;
    r.product = std::int64_t{looked_up} << total_shift;
    if (total_shift > 0)
        r.counts.shifts = 1;
    return r;
}

unsigned
nibble_products(unsigned bits)
{
    switch (bits) {
      case 4:
        return 1;
      case 8:
        return 4;
      case 16:
        return 16;
      default:
        bfree_fatal("unsupported multiply precision: ", bits, " bits");
    }
}

MultResult
multiply_signed(std::int32_t a, std::int32_t b, unsigned bits,
                const MultLut &lut, LookupSource source)
{
    const unsigned nibbles = nibble_products(bits) == 1
                                 ? 1
                                 : bits / 4; // nibbles per operand

    const bool negative = (a < 0) != (b < 0);
    const std::uint32_t ua = static_cast<std::uint32_t>(std::abs(a));
    const std::uint32_t ub = static_cast<std::uint32_t>(std::abs(b));

    const std::uint32_t limit = 1u << (bits - 1);
    if (ua > limit || ub > limit)
        bfree_panic("operand magnitude exceeds ", bits, "-bit range: ", a,
                    " x ", b);

    MultResult total;
    bool first_partial = true;
    for (unsigned i = 0; i < nibbles; ++i) {
        const unsigned na = (ua >> (4 * i)) & 0xF;
        if (na == 0)
            continue;
        for (unsigned j = 0; j < nibbles; ++j) {
            const unsigned nb = (ub >> (4 * j)) & 0xF;
            if (nb == 0)
                continue;
            MultResult partial = multiply_u4(na, nb, lut, source);
            total.product += partial.product << (4 * (i + j));
            total.counts += partial.counts;
            if (!first_partial)
                ++total.counts.adds; // accumulate into the running sum
            first_partial = false;
        }
    }

    if (negative)
        total.product = -total.product;
    return total;
}

} // namespace bfree::lut
