/**
 * @file
 * LUT image serialization.
 *
 * During the configuration phase (Fig. 11) the cache controller loads the
 * sub-array LUT rows with the entries the upcoming kernel needs. This
 * module flattens the multiply / division / PWL tables into byte images
 * sized for the 64-byte LUT region of one sub-array (8 rows x 8 bytes)
 * and checks they fit.
 */

#ifndef BFREE_LUT_LUT_IMAGE_HH
#define BFREE_LUT_LUT_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "division.hh"
#include "mult_lut.hh"
#include "pwl.hh"

namespace bfree::lut {

/** A named byte image destined for sub-array LUT rows. */
struct LutImage
{
    std::string name;
    std::vector<std::uint8_t> bytes;

    /**
     * Configuration phase the controller loads this image in. Images
     * sharing a phase are co-resident in the 8 LUT rows and their row
     * footprints must fit the budget together; images in distinct
     * phases replace each other and are only bounded individually.
     */
    unsigned configPhase = 0;

    std::size_t size() const { return bytes.size(); }

    /** True when the image fits a sub-array LUT region of
     *  @p capacity_bytes. */
    bool fits(std::size_t capacity_bytes) const
    { return bytes.size() <= capacity_bytes; }

    /**
     * Fletcher-16 checksum of the contents. The controller verifies
     * it after the configuration phase: a corrupted multiply table
     * would silently poison every product in the sub-array.
     */
    std::uint16_t checksum() const;
};

/** Fletcher-16 over an arbitrary byte range. */
std::uint16_t fletcher16(const std::uint8_t *data, std::size_t len);

/** Serialize the 49-entry multiply table (49 bytes). */
LutImage serialize(const MultLut &lut);

/** Serialize the reciprocal-square division table (2 bytes/entry,
 *  little-endian Q12). */
LutImage serialize(const DivisionLut &div);

/**
 * Serialize a PWL table. Each segment stores alpha and beta as Q(frac)
 * signed 16-bit little-endian values (4 bytes/segment).
 */
LutImage serialize(const PwlTable &table, unsigned frac_bits = 8);

/**
 * Parse back a PWL image produced by serialize(); used by tests to show
 * the trip through sub-array storage is lossless.
 */
std::vector<PwlSegment> parse_pwl(const LutImage &image,
                                  unsigned frac_bits = 8);

} // namespace bfree::lut

#endif // BFREE_LUT_LUT_IMAGE_HH
