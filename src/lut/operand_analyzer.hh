/**
 * @file
 * The BCE operand analyzer (Section III-C1).
 *
 * The analyzer classifies 4-bit operands and decomposes a multiplication
 * into the minimal micro-op sequence for the LUT-based datapath:
 *
 *  - x * 0, x * 1          -> trivial (no LUT, no shift)
 *  - x * 2^k               -> one shifter pass
 *  - odd * odd (>= 3)      -> one LUT (or hardwired ROM) lookup
 *  - even composite        -> odd-part lookup plus shift by the
 *                             power-of-two part
 *
 * Wider operands (8/16-bit) are decomposed into 4-bit nibbles whose
 * partial products are shifted and accumulated. Every function returns
 * both the exact arithmetic result and the micro-op counts the timing
 * and energy models consume, so functional and performance simulation
 * share one code path.
 */

#ifndef BFREE_LUT_OPERAND_ANALYZER_HH
#define BFREE_LUT_OPERAND_ANALYZER_HH

#include <cstdint>

#include "mult_lut.hh"

namespace bfree::lut {

/** Classification of a 4-bit unsigned operand. */
enum class OperandClass
{
    Zero,          ///< 0: product is zero.
    One,           ///< 1: product is the other operand.
    PowerOfTwo,    ///< 2, 4, 8: product is a shift.
    Odd,           ///< 3,5,...,15: LUT row/column.
    EvenComposite, ///< 6, 10, 12, 14: odd * 2^k.
};

/** Classify a value in [0, 15]. */
OperandClass classify_operand(unsigned v);

/** Odd-part / power-of-two-part split of a positive value. */
struct OddDecomposition
{
    unsigned odd = 0;   ///< Odd factor (1 for powers of two).
    unsigned shift = 0; ///< Count of trailing zero bits.
};

/** Decompose @p v > 0 as odd * 2^shift. */
OddDecomposition decompose_odd(unsigned v);

/** Micro-op counts accumulated while executing LUT arithmetic. */
struct MicroOpCounts
{
    std::uint64_t lutLookups = 0; ///< Sub-array LUT-row reads.
    std::uint64_t romLookups = 0; ///< BCE hardwired multiply-ROM reads.
    std::uint64_t shifts = 0;
    std::uint64_t adds = 0;
    std::uint64_t cycles = 0; ///< Sequential BCE cycles consumed.

    MicroOpCounts &operator+=(const MicroOpCounts &other);

    /** Component-wise difference (for windowed/delta statistics). */
    MicroOpCounts
    operator-(const MicroOpCounts &other) const
    {
        MicroOpCounts d;
        d.lutLookups = lutLookups - other.lutLookups;
        d.romLookups = romLookups - other.romLookups;
        d.shifts = shifts - other.shifts;
        d.adds = adds - other.adds;
        d.cycles = cycles - other.cycles;
        return d;
    }
};

/** Result of a LUT-based multiplication. */
struct MultResult
{
    std::int64_t product = 0;
    MicroOpCounts counts;
};

/** Where partial products are fetched from. */
enum class LookupSource
{
    SubarrayLut, ///< The 49-entry table in the sub-array LUT rows.
    BceRom,      ///< The BCE's hardwired multiply ROM.
};

/**
 * Multiply two unsigned 4-bit operands through the analyzer.
 * One BCE cycle per 4-bit step, matching the Fig. 6 walk-through.
 */
MultResult multiply_u4(unsigned a, unsigned b, const MultLut &lut,
                       LookupSource source = LookupSource::SubarrayLut);

/**
 * Multiply two signed operands of @p bits precision (4, 8 or 16) by
 * nibble decomposition; exact for the full signed range.
 */
MultResult multiply_signed(std::int32_t a, std::int32_t b, unsigned bits,
                           const MultLut &lut,
                           LookupSource source = LookupSource::SubarrayLut);

/**
 * Number of 4-bit partial products a @p bits x @p bits multiply
 * decomposes into (1, 4 or 16).
 */
unsigned nibble_products(unsigned bits);

} // namespace bfree::lut

#endif // BFREE_LUT_OPERAND_ANALYZER_HH
