/**
 * @file
 * The 49-entry odd x odd multiply LUT (Section III-C1, Fig. 5).
 *
 * A naive 4-bit multiply table needs 256 entries. Following Meher's LUT
 * optimization (reference [17] in the paper), BFree stores products only
 * when BOTH operands are odd and >= 3: multiplication by 0 or 1 is
 * trivial, powers of two are shifts, and even non-powers-of-two
 * decompose as odd * 2^k. The odd operands {3,5,7,9,11,13,15} give
 * 7 x 7 = 49 stored products, each one byte (max 15*15 = 225).
 *
 * The same table doubles as the BCE's hardwired multiply ROM; the
 * optional triangular variant (store only a <= b, 28 entries) trades
 * half the storage for losing the ability to look up both orders in the
 * same cycle (used by the LUT-size ablation bench).
 */

#ifndef BFREE_LUT_MULT_LUT_HH
#define BFREE_LUT_MULT_LUT_HH

#include <array>
#include <cstdint>
#include <vector>

namespace bfree::lut {

/** Number of distinct odd operand values >= 3 representable in 4 bits. */
constexpr unsigned num_odd_operands = 7;

/** Entries in the full (square) odd x odd table. */
constexpr unsigned mult_lut_entries = num_odd_operands * num_odd_operands;

static_assert(mult_lut_entries == 49, "the paper's 49-entry table");

/**
 * The odd x odd product table.
 */
class MultLut
{
  public:
    /** Build the 49 products at construction. */
    MultLut();

    /** True if @p v is a legal table operand (odd, 3 <= v <= 15). */
    static bool isTableOperand(unsigned v);

    /** Row/column index of an odd operand (3 -> 0, 5 -> 1, ...). */
    static unsigned operandIndex(unsigned v);

    /**
     * Product of two table operands.
     * @pre isTableOperand(a) && isTableOperand(b)
     */
    std::uint8_t lookup(unsigned a, unsigned b) const;

    /** Number of stored entries. */
    unsigned entries() const { return mult_lut_entries; }

    /** Raw table contents, row-major, for LUT-image serialization. */
    const std::array<std::uint8_t, mult_lut_entries> &raw() const
    { return table; }

  private:
    std::array<std::uint8_t, mult_lut_entries> table;
};

/**
 * Storage cost (entries) of the three table organizations considered in
 * Section III-C1, for the ablation bench.
 */
struct MultLutVariant
{
    const char *name;
    unsigned entries;
    /** Lookups possible per table read port per cycle. */
    unsigned lookupsPerCycle;
};

/** Full 256-entry 4-bit table, the 49-entry odd-odd table, and the
 *  28-entry triangular table. */
std::array<MultLutVariant, 3> mult_lut_variants();

} // namespace bfree::lut

#endif // BFREE_LUT_MULT_LUT_HH
