#include "packing.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::lut {

std::int8_t
saturate_int4(std::int32_t v)
{
    return static_cast<std::int8_t>(std::clamp(v, -8, 7));
}

std::vector<std::uint8_t>
pack_int4(const std::vector<std::int8_t> &v)
{
    std::vector<std::uint8_t> out(packed_int4_bytes(v.size()), 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] < -8 || v[i] > 7)
            bfree_panic("pack_int4: value ", int(v[i]),
                        " outside the signed 4-bit range");
        const auto nibble =
            static_cast<std::uint8_t>(static_cast<std::uint8_t>(v[i])
                                      & 0xF);
        if (i % 2 == 0)
            out[i / 2] |= nibble;
        else
            out[i / 2] |= static_cast<std::uint8_t>(nibble << 4);
    }
    return out;
}

std::vector<std::int8_t>
unpack_int4(const std::vector<std::uint8_t> &p, std::size_t count)
{
    if (packed_int4_bytes(count) > p.size())
        bfree_panic("unpack_int4: buffer of ", p.size(),
                    " bytes cannot hold ", count, " values");
    std::vector<std::int8_t> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t byte = p[i / 2];
        std::uint8_t nibble =
            i % 2 == 0 ? (byte & 0xF)
                       : static_cast<std::uint8_t>(byte >> 4);
        // Sign-extend the two's-complement nibble.
        if (nibble & 0x8)
            nibble |= 0xF0;
        out[i] = static_cast<std::int8_t>(nibble);
    }
    return out;
}

} // namespace bfree::lut
