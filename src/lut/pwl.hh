/**
 * @file
 * Piecewise-linear function tables (Section III-C3).
 *
 * Exponent, sigmoid and tanh are evaluated as
 *
 *     f_s(x) = alpha_s * x + (y_l^s - alpha_s * x_l^s),  x in [x_l^s, x_r^s]
 *
 * over S uniform segments (paper Equation 2). Each segment stores the
 * slope alpha_s and intercept beta_s = y_l - alpha * x_l, two values per
 * segment in the sub-array LUT rows. Softmax composes the exp table
 * with the systolic sum reduction and the division LUT.
 */

#ifndef BFREE_LUT_PWL_HH
#define BFREE_LUT_PWL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "division.hh"
#include "operand_analyzer.hh"

namespace bfree::lut {

/** One linear segment: f(x) ~= alpha * x + beta. */
struct PwlSegment
{
    double alpha = 0.0;
    double beta = 0.0;
};

/**
 * A piecewise-linear approximation of a scalar function over a closed
 * interval, with uniform segmentation so segment selection is a shift.
 */
class PwlTable
{
  public:
    /**
     * Build an approximation of @p fn over [@p xmin, @p xmax] with
     * @p segments pieces interpolating the segment endpoints.
     */
    PwlTable(std::string name, std::function<double(double)> fn,
             double xmin, double xmax, unsigned segments);

    const std::string &name() const { return _name; }
    double xmin() const { return _xmin; }
    double xmax() const { return _xmax; }
    unsigned segments() const { return static_cast<unsigned>(segs.size()); }

    /**
     * Evaluate the approximation; inputs outside the range clamp to the
     * boundary segments (saturating behaviour, correct for sigmoid/tanh
     * tails and exp underflow).
     */
    double evaluate(double x, MicroOpCounts *counts = nullptr) const;

    /** Largest absolute error against @p fn over @p samples points. */
    double maxAbsError(const std::function<double(double)> &fn,
                       unsigned samples = 10000) const;

    /** Segment parameters for LUT-image serialization. */
    const std::vector<PwlSegment> &raw() const { return segs; }

  private:
    std::string _name;
    double _xmin;
    double _xmax;
    double width;
    std::vector<PwlSegment> segs;
};

/** exp(x) over [-16, 0]: the shifted-input form softmax needs. */
PwlTable make_exp_table(unsigned segments = 32);

/** Logistic sigmoid over [-8, 8]. */
PwlTable make_sigmoid_table(unsigned segments = 32);

/** tanh over [-4, 4]. */
PwlTable make_tanh_table(unsigned segments = 32);

/**
 * Numerically stable softmax over @p logits computed entirely with the
 * LUT primitives: max-shift, exp PWL table, accumulation, LUT division.
 */
std::vector<double> lut_softmax(const std::vector<double> &logits,
                                const PwlTable &exp_table,
                                const DivisionLut &div,
                                MicroOpCounts *counts = nullptr);

/**
 * Allocation-free lut_softmax: reads @p n logits from @p logits and
 * writes @p n probabilities to @p out (in-place operation, @p out ==
 * @p logits, is allowed). Identical arithmetic to the vector overload —
 * the steady-state inference path uses this form with arena-backed
 * buffers.
 */
void lut_softmax_into(const double *logits, std::size_t n, double *out,
                      const PwlTable &exp_table, const DivisionLut &div,
                      MicroOpCounts *counts = nullptr);

} // namespace bfree::lut

#endif // BFREE_LUT_PWL_HH
