#include "fixed_point.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace bfree::lut {

std::int32_t
saturate(std::int64_t v, std::int32_t lo, std::int32_t hi)
{
    return static_cast<std::int32_t>(
        std::clamp<std::int64_t>(v, lo, hi));
}

std::int32_t
quantize(double real, const QuantParams &qp)
{
    const double scaled = real / qp.scale + qp.zeroPoint;
    const auto rounded = static_cast<std::int64_t>(std::lround(scaled));
    return saturate(rounded, qp.qmin(), qp.qmax());
}

double
dequantize(std::int32_t q, const QuantParams &qp)
{
    return qp.scale * (q - qp.zeroPoint);
}

QuantParams
choose_quant_params(double rmin, double rmax, unsigned bits)
{
    if (bits < 2 || bits > 16)
        bfree_fatal("quantization bits must be in [2, 16], got ", bits);

    // The range must include zero so that padding quantizes exactly.
    rmin = std::min(rmin, 0.0);
    rmax = std::max(rmax, 0.0);
    if (rmin == rmax)
        rmax = rmin + 1.0;

    QuantParams qp;
    qp.bits = bits;
    const double qrange =
        static_cast<double>(qp.qmax()) - static_cast<double>(qp.qmin());
    qp.scale = (rmax - rmin) / qrange;

    // Nudge the zero point to an integer.
    const double zp_real = qp.qmin() - rmin / qp.scale;
    qp.zeroPoint =
        saturate(static_cast<std::int64_t>(std::lround(zp_real)),
                 qp.qmin(), qp.qmax());
    return qp;
}

RequantScale
compute_requant_scale(double real_multiplier)
{
    if (real_multiplier <= 0.0 || real_multiplier > 1.0)
        bfree_fatal("requant multiplier must be in (0, 1], got ",
                    real_multiplier);

    RequantScale rs;
    int exponent = 0;
    const double mantissa = std::frexp(real_multiplier, &exponent);
    // mantissa in [0.5, 1), real = mantissa * 2^exponent, exponent <= 0
    // except for real == 1.0 where frexp yields 0.5 * 2^1.
    auto q31 = static_cast<std::int64_t>(
        std::lround(mantissa * static_cast<double>(1LL << 31)));
    if (q31 == (1LL << 31)) {
        q31 /= 2;
        ++exponent;
    }
    if (exponent > 0) {
        // real_multiplier == 1.0: saturate to the closest Q31 value.
        q31 = std::numeric_limits<std::int32_t>::max();
        exponent = 0;
    }
    rs.multiplier = static_cast<std::int32_t>(q31);
    rs.shift = -exponent;
    return rs;
}

std::int32_t
saturating_rounding_doubling_high_mul(std::int32_t a, std::int32_t b)
{
    const bool overflow =
        a == b && a == std::numeric_limits<std::int32_t>::min();
    if (overflow)
        return std::numeric_limits<std::int32_t>::max();

    const std::int64_t ab = static_cast<std::int64_t>(a) * b;
    const std::int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
    return static_cast<std::int32_t>((ab + nudge) / (1LL << 31));
}

std::int32_t
rounding_divide_by_pot(std::int32_t x, int shift)
{
    if (shift < 0 || shift > 31)
        bfree_panic("rounding shift out of range: ", shift);
    if (shift == 0)
        return x;
    const std::int32_t mask = (1 << shift) - 1;
    const std::int32_t remainder = x & mask;
    const std::int32_t threshold = (mask >> 1) + (x < 0 ? 1 : 0);
    return (x >> shift) + (remainder > threshold ? 1 : 0);
}

std::int32_t
requantize(std::int32_t acc, const RequantScale &scale,
           std::int32_t out_zero_point, unsigned out_bits)
{
    const std::int32_t scaled =
        saturating_rounding_doubling_high_mul(acc, scale.multiplier);
    const std::int32_t shifted =
        rounding_divide_by_pot(scaled, scale.shift);
    const std::int32_t lo = -(1 << (out_bits - 1));
    const std::int32_t hi = (1 << (out_bits - 1)) - 1;
    return saturate(static_cast<std::int64_t>(shifted) + out_zero_point,
                    lo, hi);
}

} // namespace bfree::lut
