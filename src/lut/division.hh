/**
 * @file
 * LUT-based division (Section III-C2).
 *
 * BFree performs division (average pooling, softmax normalization,
 * layer-norm) with the small-lookup-table method of Hung, Fahmy, Mencer
 * and Flynn (Asilomar'99), Equation (1) in the paper:
 *
 *     X / Y  ~=  X * (Yh - Yl) / Yh^2,    X, Y normalized into [1, 2)
 *
 * where Y = Yh + Yl is split into its upper m bits Yh and lower m bits
 * Yl. The 1/Yh^2 values come from a 2^m-entry LUT; the multiply runs on
 * the regular BCE datapath; and pre/post shifts re-map operands from and
 * to their original binades. The approximation error is O(2^-2m).
 */

#ifndef BFREE_LUT_DIVISION_HH
#define BFREE_LUT_DIVISION_HH

#include <cstdint>
#include <vector>

#include "operand_analyzer.hh"

namespace bfree::lut {

/**
 * Reciprocal-square table and the full division pipeline.
 */
class DivisionLut
{
  public:
    /**
     * @param m Bits of Yh (operands are treated as 2m-bit values in
     *          [1,2)); the table holds 2^m entries. The paper's design
     *          point uses m = 4 -> 16 one-byte entries.
     */
    explicit DivisionLut(unsigned m = 4);

    /** Table index bits. */
    unsigned mBits() const { return m; }

    /** Number of stored reciprocal entries. */
    unsigned entries() const { return 1u << m; }

    /**
     * Approximate x / y for positive reals using the LUT pipeline.
     * Counts: one LUT lookup for 1/Yh^2, two multiplies worth of BCE
     * work, one subtract, and normalization shifts.
     */
    double divide(double x, double y, MicroOpCounts *counts = nullptr) const;

    /**
     * Integer division used on the quantized path: returns
     * round(x / y) computed through the same approximation.
     * @pre x >= 0, y > 0
     */
    std::int64_t divideInt(std::int64_t x, std::int64_t y,
                           MicroOpCounts *counts = nullptr) const;

    /** Worst-case relative error bound of the method: ~2^-2m. */
    double errorBound() const;

    /** Raw fixed-point table (Q(fracBits)) for LUT-image serialization. */
    const std::vector<std::uint16_t> &raw() const { return table; }

    /** Fractional bits of the stored reciprocal values. */
    unsigned fracBits() const { return frac; }

  private:
    unsigned m;
    unsigned frac;
    std::vector<std::uint16_t> table; ///< round(2^frac / Yh^2).
};

} // namespace bfree::lut

#endif // BFREE_LUT_DIVISION_HH
