#include "datapath_table.hh"

namespace bfree::lut {

DatapathTable
build_rom_datapath_table(unsigned bits, const MultLut &rom)
{
    return DatapathTable::build(
        bits, [&](std::int32_t a, std::int32_t b) {
            return multiply_signed(a, b, bits, rom,
                                   LookupSource::BceRom);
        });
}

} // namespace bfree::lut
