#include "division.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bfree::lut {

DivisionLut::DivisionLut(unsigned m) : m(m), frac(12)
{
    if (m < 2 || m > 8)
        bfree_fatal("division LUT index width must be in [2, 8], got ", m);

    table.resize(entries());
    for (unsigned i = 0; i < entries(); ++i) {
        // Yh = 1 + i / 2^m, an exact m-bit truncation of a [1,2) value.
        const double yh = 1.0 + static_cast<double>(i) / entries();
        const double recip_sq = 1.0 / (yh * yh);
        table[i] = static_cast<std::uint16_t>(
            std::lround(recip_sq * (1u << frac)));
    }
}

namespace {

/** Normalize v > 0 into [1, 2): v = mant * 2^exp. */
double
normalize(double v, int &exp)
{
    const double mant = std::frexp(v, &exp); // mant in [0.5, 1)
    --exp;
    return mant * 2.0;
}

} // namespace

double
DivisionLut::divide(double x, double y, MicroOpCounts *counts) const
{
    if (y <= 0.0 || x < 0.0)
        bfree_fatal("division LUT handles x >= 0, y > 0; got ", x, " / ",
                    y);
    if (x == 0.0)
        return 0.0;

    int ex = 0;
    int ey = 0;
    const double fx = normalize(x, ex);
    const double fy = normalize(y, ey);

    // Split fy = Yh + Yl at m fractional bits.
    const double scale = static_cast<double>(entries());
    const double yh_index = std::floor((fy - 1.0) * scale);
    const double yh = 1.0 + yh_index / scale;
    const double yl = fy - yh;

    // LUT fetch of 1/Yh^2 in Q(frac).
    const auto index = static_cast<unsigned>(yh_index);
    const double recip_sq =
        static_cast<double>(table[index]) / (1u << frac);

    // X * (Yh - Yl) * (1/Yh^2), then undo the normalization shifts.
    const double q = fx * (yh - yl) * recip_sq;
    const double result = std::ldexp(q, ex - ey);

    if (counts != nullptr) {
        counts->lutLookups += 1; // reciprocal fetch
        counts->shifts += 2;     // operand normalization / re-mapping
        counts->adds += 1;       // Yh - Yl
        counts->romLookups += 2; // the two datapath multiplies
        counts->cycles += 4;     // normalize, sub, mul, mul (pipelined)
    }
    return result;
}

std::int64_t
DivisionLut::divideInt(std::int64_t x, std::int64_t y,
                       MicroOpCounts *counts) const
{
    if (x < 0 || y <= 0)
        bfree_fatal("divideInt handles x >= 0, y > 0; got ", x, " / ", y);
    const double q =
        divide(static_cast<double>(x), static_cast<double>(y), counts);
    return static_cast<std::int64_t>(std::llround(q));
}

double
DivisionLut::errorBound() const
{
    // |X/Y - X(Yh-Yl)/Yh^2| / (X/Y) = (Yl/Yh)^2 <= 2^-2m, plus the
    // Q(frac) table rounding.
    return std::pow(2.0, -2.0 * static_cast<double>(m))
           + std::pow(2.0, -static_cast<double>(frac) + 1);
}

} // namespace bfree::lut
