/**
 * @file
 * Sub-bank routers for the systolic dataflow (Section III-D, Fig. 8).
 *
 * BFree augments the conventional sub-array interconnect with simple
 * unidirectional routers: within a sub-bank, the data-out of one
 * sub-array connects to the data-in of its neighbour, forming the
 * partial-sum reduction chain; across sub-banks, the existing column
 * connectivity streams inputs. A router hop takes one sub-array clock
 * cycle and one flit's worth of wire/driver energy.
 */

#ifndef BFREE_NOC_ROUTER_HH
#define BFREE_NOC_ROUTER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/energy_account.hh"
#include "sim/clocked.hh"
#include "tech/tech_params.hh"

namespace bfree::noc {

/** A 64-bit payload moving through the systolic fabric. */
struct Flit
{
    std::uint64_t payload = 0;
    std::uint32_t tag = 0; ///< Free-form routing/sequence metadata.
};

/**
 * An event-driven unidirectional router: accepts a flit, delivers it to
 * the downstream sink after routerHopCycles, charging hop energy.
 */
class Router : public sim::ClockedObject
{
  public:
    using Sink = std::function<void(const Flit &)>;

    /**
     * Downstream consumer of a whole flit train. Receives the flits,
     * the arrival tick of the FIRST flit (= send tick + hop latency)
     * and the cadence in ticks between consecutive flits; flit i's
     * wire-level arrival is first_arrival + i * cadence, recovered
     * arithmetically instead of with one event per flit.
     */
    using BurstSink = std::function<void(
        const Flit *flits, std::size_t n, sim::Tick first_arrival,
        sim::Tick cadence)>;

    Router(sim::EventQueue &queue, std::string name,
           const sim::ClockDomain &domain, const tech::TechParams &tech,
           mem::EnergyAccount &energy);

    /** Connect the downstream consumer. */
    void connect(Sink sink) { downstream = std::move(sink); }

    /** Connect the downstream burst consumer. */
    void connectBurst(BurstSink sink)
    { burstDownstream = std::move(sink); }

    /** Inject a flit; it arrives downstream after the hop latency. */
    void send(const Flit &flit);

    /**
     * Inject a whole flit train spaced @p cadence cycles apart, costing
     * one scheduled event per hop instead of one per flit. Energy and
     * flit counts are identical to sending each flit individually; only
     * the event count shrinks. The burst sink fires at the first flit's
     * arrival with the exact (first_arrival, cadence) timing metadata.
     */
    void sendBurst(std::vector<Flit> flits, sim::Cycles cadence);

    /** Flits forwarded so far (scalar and burst combined). */
    std::uint64_t flitsForwarded() const { return numFlits; }

    /** Bursts forwarded so far. */
    std::uint64_t burstsForwarded() const { return numBursts; }

  private:
    void deliver();

    tech::TechParams tech;
    mem::EnergyAccount *energy;
    Sink downstream;
    BurstSink burstDownstream;
    std::uint64_t numFlits = 0;
    std::uint64_t numBursts = 0;

    // One outstanding flit per hop-latency window is enough for the
    // systolic traffic pattern (one flit per cycle per link); a short
    // FIFO keeps the model honest if a sender bursts.
    std::vector<Flit> inFlight;
    sim::EventFunctionWrapper deliverEvent;
};

/**
 * Closed-form timing of a K-stage systolic chain processing @p steps
 * waves: fill (K-1 hops) + steps, in cycles. Matches the event-driven
 * model; tests assert the equality.
 */
std::uint64_t systolic_chain_cycles(unsigned stages, std::uint64_t steps,
                                    unsigned hop_cycles);

} // namespace bfree::noc

#endif // BFREE_NOC_ROUTER_HH
