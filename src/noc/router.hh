/**
 * @file
 * Sub-bank routers for the systolic dataflow (Section III-D, Fig. 8).
 *
 * BFree augments the conventional sub-array interconnect with simple
 * unidirectional routers: within a sub-bank, the data-out of one
 * sub-array connects to the data-in of its neighbour, forming the
 * partial-sum reduction chain; across sub-banks, the existing column
 * connectivity streams inputs. A router hop takes one sub-array clock
 * cycle and one flit's worth of wire/driver energy.
 */

#ifndef BFREE_NOC_ROUTER_HH
#define BFREE_NOC_ROUTER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/energy_account.hh"
#include "sim/clocked.hh"
#include "tech/tech_params.hh"

namespace bfree::noc {

/** A 64-bit payload moving through the systolic fabric. */
struct Flit
{
    std::uint64_t payload = 0;
    std::uint32_t tag = 0; ///< Free-form routing/sequence metadata.
};

/**
 * An event-driven unidirectional router: accepts a flit, delivers it to
 * the downstream sink after routerHopCycles, charging hop energy.
 */
class Router : public sim::ClockedObject
{
  public:
    using Sink = std::function<void(const Flit &)>;

    Router(sim::EventQueue &queue, std::string name,
           const sim::ClockDomain &domain, const tech::TechParams &tech,
           mem::EnergyAccount &energy);

    /** Connect the downstream consumer. */
    void connect(Sink sink) { downstream = std::move(sink); }

    /** Inject a flit; it arrives downstream after the hop latency. */
    void send(const Flit &flit);

    /** Flits forwarded so far. */
    std::uint64_t flitsForwarded() const { return numFlits; }

  private:
    void deliver();

    tech::TechParams tech;
    mem::EnergyAccount *energy;
    Sink downstream;
    std::uint64_t numFlits = 0;

    // One outstanding flit per hop-latency window is enough for the
    // systolic traffic pattern (one flit per cycle per link); a short
    // FIFO keeps the model honest if a sender bursts.
    std::vector<Flit> inFlight;
    sim::EventFunctionWrapper deliverEvent;
};

/**
 * Closed-form timing of a K-stage systolic chain processing @p steps
 * waves: fill (K-1 hops) + steps, in cycles. Matches the event-driven
 * model; tests assert the equality.
 */
std::uint64_t systolic_chain_cycles(unsigned stages, std::uint64_t steps,
                                    unsigned hop_cycles);

} // namespace bfree::noc

#endif // BFREE_NOC_ROUTER_HH
