#include "ring.hh"

namespace bfree::noc {

double
RingInterconnect::broadcast(double bytes)
{
    const double cycles = bytes / busBytesPerCycle()
                          + static_cast<double>(numSlices) / 2.0;
    const double flits = bytes / busBytesPerCycle();
    // Each flit traverses half the ring on average.
    energy->addPj(mem::EnergyCategory::Interconnect,
                  flits * tech.routerHopPj
                      * (static_cast<double>(numSlices) / 2.0));
    return cycles / clockHz();
}

double
RingInterconnect::transfer(double bytes, unsigned hops)
{
    const double cycles =
        bytes / busBytesPerCycle() + static_cast<double>(hops);
    const double flits = bytes / busBytesPerCycle();
    energy->addPj(mem::EnergyCategory::Interconnect,
                  flits * tech.routerHopPj * static_cast<double>(hops));
    return cycles / clockHz();
}

} // namespace bfree::noc
