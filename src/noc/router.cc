#include "router.hh"

#include "sim/logging.hh"

namespace bfree::noc {

Router::Router(sim::EventQueue &queue, std::string name,
               const sim::ClockDomain &domain,
               const tech::TechParams &tech, mem::EnergyAccount &energy)
    : sim::ClockedObject(queue, std::move(name), domain), tech(tech),
      energy(&energy),
      deliverEvent([this] { deliver(); }, this->name() + ".deliver")
{}

void
Router::send(const Flit &flit)
{
    energy->addPj(mem::EnergyCategory::Router, tech.routerHopPj);
    ++numFlits;
    inFlight.push_back(flit);
    if (!deliverEvent.scheduled())
        scheduleClocked(deliverEvent, sim::Cycles(tech.routerHopCycles));
}

void
Router::deliver()
{
    if (inFlight.empty())
        bfree_panic("router ", name(), " delivery with no flit in flight");
    if (!downstream)
        bfree_panic("router ", name(), " has no downstream sink");

    const Flit flit = inFlight.front();
    inFlight.erase(inFlight.begin());
    downstream(flit);

    if (!inFlight.empty())
        scheduleClocked(deliverEvent, sim::Cycles(tech.routerHopCycles));
}

std::uint64_t
systolic_chain_cycles(unsigned stages, std::uint64_t steps,
                      unsigned hop_cycles)
{
    if (stages == 0)
        return 0;
    // The first wave reaches the last stage after (stages - 1) hops;
    // one result then drains per step.
    return static_cast<std::uint64_t>(stages - 1) * hop_cycles + steps;
}

} // namespace bfree::noc
