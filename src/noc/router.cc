#include "router.hh"

#include <utility>

#include "sim/logging.hh"

namespace bfree::noc {

Router::Router(sim::EventQueue &queue, std::string name,
               const sim::ClockDomain &domain,
               const tech::TechParams &tech, mem::EnergyAccount &energy)
    : sim::ClockedObject(queue, std::move(name), domain), tech(tech),
      energy(&energy),
      deliverEvent([this] { deliver(); }, this->name() + ".deliver")
{}

void
Router::send(const Flit &flit)
{
    energy->addPj(mem::EnergyCategory::Router, tech.routerHopPj);
    ++numFlits;
    inFlight.push_back(flit);
    if (!deliverEvent.scheduled())
        scheduleClocked(deliverEvent, sim::Cycles(tech.routerHopCycles));
}

void
Router::sendBurst(std::vector<Flit> flits, sim::Cycles cadence)
{
    if (flits.empty())
        bfree_panic("router ", name(), " asked to send an empty burst");
    if (!burstDownstream)
        bfree_panic("router ", name(), " has no downstream burst sink");

    // Charge hop energy per flit (not one n*pj add): bitwise identical
    // to n scalar send() calls, so burst and per-flit runs agree on
    // every energy stat to the last ulp.
    for (std::size_t i = 0; i < flits.size(); ++i)
        energy->addPj(mem::EnergyCategory::Router, tech.routerHopPj);
    numFlits += flits.size();
    ++numBursts;

    const sim::Tick arrival =
        clockEdge(sim::Cycles(tech.routerHopCycles));
    const sim::Tick cadence_ticks = cadence.value() * clockPeriod();
    auto train = std::make_shared<std::vector<Flit>>(std::move(flits));
    eventq().scheduleCallback(arrival,
                              [this, train, arrival, cadence_ticks] {
        burstDownstream(train->data(), train->size(), arrival,
                        cadence_ticks);
    });
}

void
Router::deliver()
{
    if (inFlight.empty())
        bfree_panic("router ", name(), " delivery with no flit in flight");
    if (!downstream)
        bfree_panic("router ", name(), " has no downstream sink");

    const Flit flit = inFlight.front();
    inFlight.erase(inFlight.begin());
    downstream(flit);

    if (!inFlight.empty())
        scheduleClocked(deliverEvent, sim::Cycles(tech.routerHopCycles));
}

std::uint64_t
systolic_chain_cycles(unsigned stages, std::uint64_t steps,
                      unsigned hop_cycles)
{
    if (stages == 0)
        return 0;
    // The first wave reaches the last stage after (stages - 1) hops;
    // one result then drains per step.
    return static_cast<std::uint64_t>(stages - 1) * hop_cycles + steps;
}

} // namespace bfree::noc
