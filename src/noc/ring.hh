/**
 * @file
 * Inter-slice ring interconnect (Fig. 1(a)).
 *
 * The 14 LLC slices sit on a ring (NUCA). BFree uses it in the
 * configuration phase to broadcast weights and LUT images to all slices
 * and, for batch inference, to spill output features toward the memory
 * controller. The model is a pipelined ring bus: a broadcast of B bytes
 * costs B / busBytesPerCycle cycles plus half-ring propagation, with
 * per-hop per-flit energy.
 */

#ifndef BFREE_NOC_RING_HH
#define BFREE_NOC_RING_HH

#include <cstdint>

#include "mem/energy_account.hh"
#include "tech/tech_params.hh"

namespace bfree::noc {

/**
 * Analytic model of the slice ring.
 */
class RingInterconnect
{
  public:
    RingInterconnect(unsigned num_slices, const tech::TechParams &tech,
                     mem::EnergyAccount &energy)
        : numSlices(num_slices), tech(tech), energy(&energy)
    {}

    /** Ring bus width in bytes per cycle per direction. */
    double busBytesPerCycle() const { return 32.0; }

    /** Ring clock frequency (slice/uncore domain). */
    double clockHz() const { return tech.subarrayClockHz; }

    /**
     * Broadcast @p bytes from the memory-side agent to all slices.
     * Returns the elapsed seconds and charges interconnect energy for
     * the traversal of (on average) half the ring per flit.
     */
    double broadcast(double bytes);

    /** Point-to-point transfer of @p bytes between adjacent slices. */
    double transfer(double bytes, unsigned hops);

  private:
    unsigned numSlices;
    tech::TechParams tech;
    mem::EnergyAccount *energy;
};

} // namespace bfree::noc

#endif // BFREE_NOC_RING_HH
