#include "sharded.hh"

#include <algorithm>
#include <utility>

#include "logging.hh"

namespace bfree::sim {

ShardedEngine::ShardedEngine(std::vector<EventQueue *> queues_,
                             Tick lookahead_, unsigned threads)
    : queues(std::move(queues_)), lookahead(lookahead_), pool(threads),
      outboxes(queues.size())
{
    if (queues.empty())
        bfree_panic("sharded engine needs at least one queue");
    if (lookahead == 0)
        bfree_panic("sharded engine needs a positive lookahead");
    for (const EventQueue *q : queues) {
        if (q == nullptr)
            bfree_panic("sharded engine given a null queue");
    }
}

void
ShardedEngine::post(unsigned from, unsigned to, Tick when,
                    std::function<void()> deliver)
{
    if (from >= queues.size() || to >= queues.size())
        bfree_panic("cross-shard post with shard index out of range");
    const Tick earliest = queues[from]->now() + lookahead;
    if (when < earliest) {
        bfree_panic("cross-shard message at tick ", when,
                    " violates lookahead (poster now ",
                    queues[from]->now(), ", lookahead ", lookahead, ")");
    }
    outboxes[from].push_back(Message{to, when, std::move(deliver)});
}

void
ShardedEngine::run()
{
    for (;;) {
        Tick t_min = max_tick;
        for (EventQueue *q : queues)
            t_min = std::min(t_min, q->nextEventTick());
        if (t_min == max_tick)
            break; // every shard idle and (invariant) no messages pending

        // Saturating add: a huge t_min must not wrap past zero.
        const Tick barrier =
            t_min > max_tick - lookahead ? max_tick : t_min + lookahead;

        std::vector<std::function<void()>> tasks;
        tasks.reserve(queues.size());
        for (EventQueue *q : queues)
            tasks.push_back([q, barrier] { q->runUntilBarrier(barrier); });
        pool.run(std::move(tasks));
        ++num_epochs;

        // Rendezvous: drain outboxes in shard order on this thread.
        // Every arrival tick is >= poster.now() + lookahead >=
        // t_min + lookahead == barrier, and every queue now sits exactly
        // at the barrier, so each delivery schedules into the future.
        for (std::vector<Message> &outbox : outboxes) {
            for (Message &m : outbox) {
                if (m.when < barrier) {
                    bfree_panic("cross-shard message at tick ", m.when,
                                " arrived behind the barrier ", barrier);
                }
                m.deliver();
                ++num_messages;
            }
            outbox.clear();
        }
    }
}

std::uint64_t
ShardedEngine::processed() const
{
    std::uint64_t total = 0;
    for (const EventQueue *q : queues)
        total += q->processed();
    return total;
}

} // namespace bfree::sim
