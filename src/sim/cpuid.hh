/**
 * @file
 * Runtime CPU-feature detection and SIMD dispatch policy.
 *
 * The tiered datapath's span kernels exist in several ISA variants
 * (scalar, SSE4.2, AVX2, AVX-512, NEON), all compiled into one binary
 * via function-level target attributes. This module decides, once per
 * process, which variant the dispatchers hand out:
 *
 *  - by default, the widest level both compiled in AND reported by the
 *    CPU at runtime;
 *  - `BFREE_FORCE_SCALAR=1` in the environment forces the scalar
 *    fallback (CI uses this to differentially verify every SIMD
 *    variant against the scalar tier on one host);
 *  - `BFREE_FORCE_ISA=scalar|sse42|avx2|avx512|neon` pins one specific
 *    level.
 *    Requesting a level the binary lacks or the CPU cannot execute is
 *    a fatal configuration error — it fails loudly instead of silently
 *    degrading, so a CI matrix knows it exercised what it asked for.
 *
 * Tests may also pin the level programmatically (force_simd_level) to
 * compare several variants inside one process.
 */

#ifndef BFREE_SIM_CPUID_HH
#define BFREE_SIM_CPUID_HH

namespace bfree::sim {

/** SIMD instruction-set levels the span kernels are specialized for,
 *  in strictly increasing width/priority order. */
enum class SimdLevel
{
    Scalar = 0, ///< Portable fallback; also the BFREE_FORCE_SCALAR target.
    Sse42 = 1,  ///< 128-bit x86 (SSE4.2: widening converts + pmulld).
    Neon = 2,   ///< 128-bit AArch64 Advanced SIMD.
    Avx2 = 3,   ///< 256-bit x86 with hardware gather.
    Avx512 = 4, ///< 512-bit x86 (requires the F+BW+VL feature trio).
};

/** Human-readable name ("scalar", "sse42", "neon", "avx2", "avx512"). */
const char *simd_level_name(SimdLevel level);

/** True when this binary carries kernels for @p level (compile-time). */
bool simd_level_compiled(SimdLevel level);

/** True when the running CPU can execute @p level (runtime probe). */
bool simd_level_supported(SimdLevel level);

/**
 * The level the dispatchers use: widest compiled+supported level,
 * after applying the BFREE_FORCE_SCALAR / BFREE_FORCE_ISA environment
 * overrides. Resolved once and cached; a malformed or unsatisfiable
 * override is fatal at first use.
 */
SimdLevel active_simd_level();

/**
 * Pin the active level programmatically (overrides the cached choice
 * and any environment override). Fatal when @p level is not compiled
 * in or not supported by the CPU. Intended for tests and benchmarks
 * that sweep every available variant in one process.
 */
void force_simd_level(SimdLevel level);

/** Drop a force_simd_level pin and re-resolve from the environment. */
void reset_simd_level();

} // namespace bfree::sim

#endif // BFREE_SIM_CPUID_HH
