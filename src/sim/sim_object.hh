/**
 * @file
 * SimObject: named participant in a simulation.
 *
 * Every modelled hardware block (sub-array, BCE, router, controller,
 * memory channel) derives from SimObject. Objects receive the owning
 * Simulation's event queue at construction and register themselves for
 * stats dumping.
 */

#ifndef BFREE_SIM_SIM_OBJECT_HH
#define BFREE_SIM_SIM_OBJECT_HH

#include <string>

#include "event_queue.hh"

namespace bfree::sim {

class StatGroup;

/**
 * Base class for every named model component.
 */
class SimObject
{
  public:
    /**
     * @param queue Event queue this object schedules on; must outlive it.
     * @param name  Hierarchical dotted name, e.g. "slice0.bank1.sa3.bce".
     */
    SimObject(EventQueue &queue, std::string name)
        : _queue(&queue), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name. */
    const std::string &name() const { return _name; }

    /** Event queue this object lives on. */
    EventQueue &eventq() const { return *_queue; }

    /** Current simulated time. */
    Tick curTick() const { return _queue->now(); }

    /** Schedule an event at an absolute tick. */
    void
    schedule(Event &event, Tick when) const
    {
        _queue->schedule(&event, when);
    }

  private:
    EventQueue *_queue;
    std::string _name;
};

} // namespace bfree::sim

#endif // BFREE_SIM_SIM_OBJECT_HH
