/**
 * @file
 * Clock domains and clocked objects.
 *
 * A ClockDomain converts between Cycles and Ticks for one frequency.
 * ClockedObject couples a SimObject to a domain and provides the
 * cycle-aligned scheduling helpers timing models need.
 */

#ifndef BFREE_SIM_CLOCKED_HH
#define BFREE_SIM_CLOCKED_HH

#include "logging.hh"
#include "sim_object.hh"
#include "types.hh"

namespace bfree::sim {

/**
 * A named frequency with cycle/tick conversion.
 */
class ClockDomain
{
  public:
    /**
     * @param freq_hz Operating frequency in Hz; must be positive.
     */
    explicit ClockDomain(double freq_hz)
        : freqHz(freq_hz), periodTicks(frequency_to_period(freq_hz))
    {
        if (freq_hz <= 0.0)
            bfree_fatal("clock domain frequency must be positive");
    }

    /** Frequency in Hz. */
    double frequency() const { return freqHz; }

    /** Ticks per cycle. */
    Tick period() const { return periodTicks; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(Cycles c) const { return c.value() * periodTicks; }

    /** Convert ticks to whole cycles (floor). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return Cycles(t / periodTicks);
    }

  private:
    double freqHz;
    Tick periodTicks;
};

/**
 * A SimObject with a clock.
 */
class ClockedObject : public SimObject
{
  public:
    ClockedObject(EventQueue &queue, std::string name,
                  const ClockDomain &domain)
        : SimObject(queue, std::move(name)), domain(&domain)
    {}

    /** This object's clock domain. */
    const ClockDomain &clockDomain() const { return *domain; }

    /** Ticks per cycle of this object's clock. */
    Tick clockPeriod() const { return domain->period(); }

    /** Current time expressed in this object's cycles (floor). */
    Cycles curCycle() const { return domain->ticksToCycles(curTick()); }

    /**
     * The next tick that is aligned to this clock edge and is at least
     * @p delay cycles in the future.
     */
    Tick
    clockEdge(Cycles delay = Cycles(0)) const
    {
        const Tick period = clockPeriod();
        const Tick now = curTick();
        Tick aligned = ((now + period - 1) / period) * period;
        return aligned + delay.value() * period;
    }

    /** Schedule an event @p delay cycles ahead, aligned to a clock edge. */
    void
    scheduleClocked(Event &event, Cycles delay)
    {
        schedule(event, clockEdge(delay));
    }

  private:
    const ClockDomain *domain;
};

} // namespace bfree::sim

#endif // BFREE_SIM_CLOCKED_HH
