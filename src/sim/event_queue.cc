#include "event_queue.hh"

#include <utility>

#include "logging.hh"

namespace bfree::sim {

/**
 * A pooled one-shot event backing EventQueue::scheduleCallback.
 *
 * Fired events recycle themselves onto the owning queue's intrusive
 * free list *before* invoking the callback, so a callback may schedule
 * further pooled events (including, transitively, itself) and reuse the
 * very slot it ran from.
 */
class EventQueue::PoolEvent : public Event
{
  public:
    explicit PoolEvent(EventQueue &owner) : owner(owner) {}

    void
    arm(std::function<void()> fn)
    {
        callback = std::move(fn);
    }

    void
    process() override
    {
        // Move the callback to the stack and recycle the slot first:
        // after this point the callback may freely schedule new pooled
        // events without invalidating the one that is running.
        std::function<void()> fn = std::move(callback);
        callback = nullptr;
        next_free = owner.free_list;
        owner.free_list = this;
        fn();
    }

    std::string name() const override { return "pooled callback"; }

  private:
    friend class EventQueue;

    EventQueue &owner;
    std::function<void()> callback;
    PoolEvent *next_free = nullptr;
};

EventQueue::EventQueue() = default;
EventQueue::~EventQueue() = default;

void
EventQueue::schedule(Event *event, Tick when)
{
    if (event == nullptr)
        bfree_panic("scheduling a null event");
    if (event->_scheduled)
        bfree_panic("event '", event->name(), "' is already scheduled");
    if (when < current_tick) {
        bfree_panic("scheduling event '", event->name(), "' at tick ", when,
                    " in the past (now ", current_tick, ")");
    }

    event->_when = when;
    event->_sequence = next_sequence++;
    event->_scheduled = true;
    event->_squashed = false;
    heap.push(Entry{when, event->priority(), event->_sequence, event});
    ++num_pending;
}

void
EventQueue::deschedule(Event *event)
{
    if (event == nullptr || !event->_scheduled)
        bfree_panic("descheduling an event that is not scheduled");
    // Lazy removal: mark squashed and drop it when it surfaces.
    event->_scheduled = false;
    event->_squashed = true;
    --num_pending;
}

void
EventQueue::scheduleCallback(Tick when, std::function<void()> callback,
                             int priority)
{
    PoolEvent *ev = free_list;
    if (ev != nullptr) {
        free_list = ev->next_free;
        ev->next_free = nullptr;
    } else {
        pool_storage.push_back(std::make_unique<PoolEvent>(*this));
        ev = pool_storage.back().get();
    }
    ev->_priority = priority;
    ev->arm(std::move(callback));
    schedule(ev, when);
}

void
EventQueue::pruneStale()
{
    while (!heap.empty()) {
        const Entry &top = heap.top();
        if (top.event->_squashed && top.event->_sequence == top.sequence) {
            top.event->_squashed = false;
            heap.pop();
            continue;
        }
        if (!top.event->_scheduled
            || top.event->_sequence != top.sequence) {
            // Stale entry from a deschedule + reschedule: the live
            // entry for this event sits elsewhere in the heap.
            heap.pop();
            continue;
        }
        break;
    }
}

bool
EventQueue::step()
{
    pruneStale();
    if (heap.empty())
        return false;
    Entry top = heap.top();
    heap.pop();
    current_tick = top.when;
    top.event->_scheduled = false;
    --num_pending;
    ++num_processed;
    top.event->process();
    return true;
}

Tick
EventQueue::run(Tick stop_at)
{
    for (;;) {
        pruneStale();
        if (heap.empty() || heap.top().when > stop_at)
            break;
        step();
    }
    return current_tick;
}

std::uint64_t
EventQueue::runUntilBarrier(Tick barrier)
{
    if (barrier < current_tick) {
        bfree_panic("epoch barrier ", barrier, " is in the past (now ",
                    current_tick, ")");
    }
    std::uint64_t dispatched = 0;
    for (;;) {
        pruneStale();
        if (heap.empty() || heap.top().when >= barrier)
            break;
        step();
        ++dispatched;
    }
    // Idle-advance to the barrier so work injected by the cross-shard
    // rendezvous at exactly the barrier tick is legal to schedule.
    current_tick = barrier;
    return dispatched;
}

Tick
EventQueue::nextEventTick()
{
    pruneStale();
    return heap.empty() ? max_tick : heap.top().when;
}

} // namespace bfree::sim
