#include "event_queue.hh"

#include "logging.hh"

namespace bfree::sim {

void
EventQueue::schedule(Event *event, Tick when)
{
    if (event == nullptr)
        bfree_panic("scheduling a null event");
    if (event->_scheduled)
        bfree_panic("event '", event->name(), "' is already scheduled");
    if (when < current_tick) {
        bfree_panic("scheduling event '", event->name(), "' at tick ", when,
                    " in the past (now ", current_tick, ")");
    }

    event->_when = when;
    event->_sequence = next_sequence++;
    event->_scheduled = true;
    event->_squashed = false;
    heap.push(Entry{when, event->priority(), event->_sequence, event});
    ++num_pending;
}

void
EventQueue::deschedule(Event *event)
{
    if (event == nullptr || !event->_scheduled)
        bfree_panic("descheduling an event that is not scheduled");
    // Lazy removal: mark squashed and drop it when it surfaces.
    event->_scheduled = false;
    event->_squashed = true;
    --num_pending;
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        Entry top = heap.top();
        heap.pop();
        if (top.event->_squashed && top.event->_sequence == top.sequence) {
            top.event->_squashed = false;
            continue;
        }
        if (!top.event->_scheduled || top.event->_sequence != top.sequence)
            continue; // stale entry from a deschedule+reschedule
        current_tick = top.when;
        top.event->_scheduled = false;
        --num_pending;
        ++num_processed;
        top.event->process();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick stop_at)
{
    while (!heap.empty()) {
        const Entry &top = heap.top();
        if (top.when > stop_at)
            break;
        step();
    }
    return current_tick;
}

} // namespace bfree::sim
