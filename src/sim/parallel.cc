#include "parallel.hh"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>

#include "logging.hh"

namespace bfree::sim {

namespace {

/** Sanity cap on the CLI flag; far above any real machine. */
constexpr unsigned long maxThreads = 4096;

} // namespace

unsigned
resolve_threads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

unsigned
threads_from_args(int argc, char **argv, unsigned fallback)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--threads")
            continue;
        if (i + 1 >= argc)
            bfree_fatal("--threads needs a value");
        // strtoul accepts a leading '-' and wraps; reject it explicitly
        // before it turns into a four-billion-thread request.
        char *end = nullptr;
        const unsigned long v = std::strtoul(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || argv[i + 1][0] == '-')
            bfree_fatal("--threads got '", argv[i + 1],
                        "', expected a non-negative number");
        if (v > maxThreads)
            bfree_fatal("--threads got ", v, ", max is ", maxThreads);
        return resolve_threads(static_cast<unsigned>(v));
    }
    return resolve_threads(fallback);
}

ThreadPool::ThreadPool(unsigned threads)
    : numThreads(resolve_threads(threads))
{
    if (numThreads < 2)
        return; // inline mode: no queues, no workers
    queues.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::execute(std::function<void()> &task)
{
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!firstError)
            firstError = std::current_exception();
    }
}

void
ThreadPool::run(std::vector<std::function<void()>> tasks)
{
    if (numThreads < 2) {
        std::exception_ptr error;
        for (auto &task : tasks) {
            try {
                task();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    // Deal the batch round-robin across the worker deques.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        WorkerQueue &q = *queues[i % numThreads];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(tasks[i]));
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        pending += tasks.size();
    }
    wake.notify_all();

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex);
        done.wait(lock, [this] { return pending == 0; });
        error = firstError;
        firstError = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

bool
ThreadPool::popLocal(unsigned self, std::function<void()> &task)
{
    WorkerQueue &q = *queues[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty())
        return false;
    task = std::move(q.tasks.back()); // LIFO: newest, still-warm work
    q.tasks.pop_back();
    return true;
}

bool
ThreadPool::steal(unsigned self, std::function<void()> &task)
{
    for (unsigned k = 1; k < numThreads; ++k) {
        WorkerQueue &q = *queues[(self + k) % numThreads];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.tasks.empty())
            continue;
        task = std::move(q.tasks.front()); // FIFO: the victim's oldest
        q.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        std::function<void()> task;
        if (popLocal(self, task) || steal(self, task)) {
            execute(task);
            std::lock_guard<std::mutex> lock(mutex);
            if (--pending == 0)
                done.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex);
        if (stopping)
            return;
        // Timed wait instead of a predicate: queues are guarded by
        // their own mutexes, so a notify can race our empty-handed
        // scan. The timeout bounds that window without hot-spinning.
        wake.wait_for(lock, std::chrono::milliseconds(1));
    }
}

Scalar &
SweepContext::scalar(std::string name, std::string description)
{
    auto stat = std::make_unique<Scalar>(stats, std::move(name),
                                         std::move(description));
    Scalar &ref = *stat;
    owned.push_back(std::move(stat));
    return ref;
}

Vector &
SweepContext::vector(std::string name, std::string description,
                     std::size_t size)
{
    auto stat = std::make_unique<Vector>(stats, std::move(name),
                                         std::move(description), size);
    Vector &ref = *stat;
    owned.push_back(std::move(stat));
    return ref;
}

Histogram &
SweepContext::histogram(std::string name, std::string description,
                        double lo, double hi, std::size_t bins)
{
    auto stat = std::make_unique<Histogram>(
        stats, std::move(name), std::move(description), lo, hi, bins);
    Histogram &ref = *stat;
    owned.push_back(std::move(stat));
    return ref;
}

SweepReport::SweepReport() : root(std::make_unique<StatGroup>("sweep")) {}

std::string
SweepReport::output() const
{
    std::string all;
    for (const SweepJobResult &r : results)
        all += r.output;
    return all;
}

double
SweepReport::totalJobSeconds() const
{
    double total = 0.0;
    for (const SweepJobResult &r : results)
        total += r.seconds;
    return total;
}

SweepReport
SweepRunner::run(std::vector<SweepJob> jobs)
{
    SweepReport report;
    const std::size_t n = jobs.size();
    report.results.resize(n);
    report.ownedStats.resize(n);

    // Groups are created up front on the calling thread so the root's
    // child list is in job-index order regardless of scheduling; each
    // worker then only touches its own job's group.
    report.jobGroups.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::string name = jobs[i].name.empty()
                               ? "job" + std::to_string(i)
                               : jobs[i].name;
        report.jobGroups.push_back(
            std::make_unique<StatGroup>(*report.root, std::move(name)));
        report.results[i].name = jobs[i].name;
    }

    std::vector<std::ostringstream> streams(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        tasks.push_back([&, i] {
            const auto start = std::chrono::steady_clock::now();
            SweepContext ctx(i, streams[i], *report.jobGroups[i],
                             report.ownedStats[i]);
            jobs[i].work(ctx);
            report.results[i].seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        });
    }
    pool.run(std::move(tasks));

    for (std::size_t i = 0; i < n; ++i)
        report.results[i].output = streams[i].str();
    return report;
}

} // namespace bfree::sim
