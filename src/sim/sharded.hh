/**
 * @file
 * Conservative parallel discrete-event engine over per-shard EventQueues.
 *
 * The detailed cache model shards naturally: each LLC slice owns an
 * independent grid of sub-arrays whose events never touch another
 * slice's state, except for the input-streaming traffic that hops from
 * slice s to slice s+1 with a fixed, non-zero latency. That minimum
 * cross-shard latency is the classic PDES *lookahead*: any message a
 * shard posts at local time t arrives no earlier than t + lookahead, so
 * every shard may safely advance through the window
 * [t_min, t_min + lookahead) — where t_min is the earliest pending event
 * across all shards — without ever seeing a message from the "future".
 *
 * ShardedEngine implements exactly that conservative epoch loop:
 *
 *   1. t_min  = min over shards of nextEventTick()
 *   2. barrier = t_min + lookahead
 *   3. every shard runs runUntilBarrier(barrier) — in parallel on the
 *      ThreadPool, each queue touched by exactly one task
 *   4. rendezvous: cross-shard messages posted during the epoch are
 *      drained on the coordinating thread in (shard index, post order),
 *      delivering each into its target queue at its arrival tick
 *
 * Determinism: the barrier sequence is a pure function of queue state
 * (never of thread timing), each queue is single-threaded within an
 * epoch, and the drain order at the rendezvous is fixed. Results are
 * therefore bit-identical for any worker count, including inline
 * execution at --threads 1.
 */

#ifndef BFREE_SIM_SHARDED_HH
#define BFREE_SIM_SHARDED_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "event_queue.hh"
#include "parallel.hh"
#include "types.hh"

namespace bfree::sim {

/**
 * Runs N event queues in lockstep epochs bounded by a lookahead.
 *
 * The engine does not own the queues; callers keep them (and the model
 * objects scheduled on them) alive for the engine's lifetime. Shards are
 * identified by their index in the constructor vector.
 */
class ShardedEngine
{
  public:
    /**
     * @param queues    One event queue per shard (non-owning).
     * @param lookahead Minimum cross-shard message latency in ticks;
     *                  must be positive (a zero lookahead admits no
     *                  parallel window).
     * @param threads   Worker count for the epoch pool; 0 means
     *                  hardware concurrency.
     */
    ShardedEngine(std::vector<EventQueue *> queues, Tick lookahead,
                  unsigned threads = 0);

    /**
     * Post a cross-shard message. Must be called from shard @p from's
     * epoch task (each shard's outbox is touched by exactly one worker
     * per epoch). @p when must be at least the poster's current time
     * plus the lookahead; @p deliver runs at the rendezvous on the
     * coordinating thread and typically schedules work on shard
     * @p to's queue at tick @p when.
     */
    void post(unsigned from, unsigned to, Tick when,
              std::function<void()> deliver);

    /** Run epochs until every queue drains and no messages remain. */
    void run();

    /** Epochs executed by the last / current run(). */
    std::uint64_t epochs() const { return num_epochs; }

    /** Cross-shard messages delivered so far. */
    std::uint64_t messages() const { return num_messages; }

    /** Total events dispatched across all shards. */
    std::uint64_t processed() const;

    /** Number of shards. */
    unsigned shards() const
    { return static_cast<unsigned>(queues.size()); }

  private:
    struct Message
    {
        unsigned to;
        Tick when;
        std::function<void()> deliver;
    };

    std::vector<EventQueue *> queues;
    Tick lookahead;
    ThreadPool pool;

    /** One outbox per posting shard; private to that shard's task
     *  during an epoch, drained by the coordinator at the barrier. */
    std::vector<std::vector<Message>> outboxes;

    std::uint64_t num_epochs = 0;
    std::uint64_t num_messages = 0;
};

} // namespace bfree::sim

#endif // BFREE_SIM_SHARDED_HH
