/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — functionality is approximated or suspicious but simulation
 *            can continue.
 * inform() — progress/status messages.
 */

#ifndef BFREE_SIM_LOGGING_HH
#define BFREE_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace bfree::sim {

/** Severity classes understood by the logger. */
enum class LogLevel { Panic, Fatal, Warn, Inform };

/**
 * Emit one log record. Panic aborts, Fatal exits(1); the other levels
 * return normally. Exposed so tests can exercise formatting; prefer the
 * convenience wrappers below.
 */
[[noreturn]] void log_terminate(LogLevel level, const std::string &message,
                                const char *file, int line);

/** Emit a non-terminating log record (Warn or Inform). */
void log_message(LogLevel level, const std::string &message);

/** Number of warn() calls so far (used by tests and sanity checks). */
std::uint64_t warn_count();

namespace detail {

inline void
format_into(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
format_into(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    format_into(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    format_into(os, args...);
    return os.str();
}

} // namespace detail

} // namespace bfree::sim

/** Abort with a message: something that should never happen did. */
#define bfree_panic(...)                                                    \
    ::bfree::sim::log_terminate(::bfree::sim::LogLevel::Panic,              \
                                ::bfree::sim::detail::format(__VA_ARGS__), \
                                __FILE__, __LINE__)

/** Exit with a message: the user configuration cannot be honoured. */
#define bfree_fatal(...)                                                    \
    ::bfree::sim::log_terminate(::bfree::sim::LogLevel::Fatal,              \
                                ::bfree::sim::detail::format(__VA_ARGS__), \
                                __FILE__, __LINE__)

/** Continue, but tell the user something looks off. */
#define bfree_warn(...)                                                     \
    ::bfree::sim::log_message(::bfree::sim::LogLevel::Warn,                 \
                              ::bfree::sim::detail::format(__VA_ARGS__))

/** Informational status message. */
#define bfree_inform(...)                                                   \
    ::bfree::sim::log_message(::bfree::sim::LogLevel::Inform,               \
                              ::bfree::sim::detail::format(__VA_ARGS__))

#endif // BFREE_SIM_LOGGING_HH
