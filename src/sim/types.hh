/**
 * @file
 * Fundamental simulation types: ticks, cycles and time conversion helpers.
 *
 * The simulation kernel measures time in Ticks (picoseconds). Clocked
 * objects convert between their own Cycles and global Ticks through a
 * ClockDomain (see clocked.hh). Keeping Tick at picosecond resolution lets
 * heterogeneous clocks (1.5 GHz sub-arrays, memory channels, routers)
 * coexist on one event queue without rounding surprises.
 */

#ifndef BFREE_SIM_TYPES_HH
#define BFREE_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace bfree::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A tick value that compares greater than any schedulable time. */
constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Number of ticks in one second (1 Tick == 1 ps). */
constexpr Tick ticks_per_second = 1'000'000'000'000ULL;

/**
 * Strongly typed cycle count.
 *
 * Wraps a plain integer so that cycle counts and tick counts cannot be
 * mixed accidentally. Supports the arithmetic needed by timing models.
 */
class Cycles
{
  public:
    constexpr Cycles() : count(0) {}
    constexpr explicit Cycles(std::uint64_t c) : count(c) {}

    /** Raw cycle count. */
    constexpr std::uint64_t value() const { return count; }

    constexpr Cycles operator+(Cycles other) const
    { return Cycles(count + other.count); }

    constexpr Cycles operator-(Cycles other) const
    { return Cycles(count - other.count); }

    constexpr Cycles operator*(std::uint64_t n) const
    { return Cycles(count * n); }

    Cycles &
    operator+=(Cycles other)
    {
        count += other.count;
        return *this;
    }

    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    std::uint64_t count;
};

/** Convert a frequency in Hz to the tick period of one cycle. */
constexpr Tick
frequency_to_period(double freq_hz)
{
    return static_cast<Tick>(static_cast<double>(ticks_per_second)
                             / freq_hz);
}

/** Convert a tick count to seconds. */
constexpr double
ticks_to_seconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticks_per_second);
}

/** Convert seconds to ticks, rounding to the nearest picosecond. */
constexpr Tick
seconds_to_ticks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticks_per_second)
                             + 0.5);
}

} // namespace bfree::sim

#endif // BFREE_SIM_TYPES_HH
