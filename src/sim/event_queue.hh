/**
 * @file
 * Discrete-event simulation core: Event, EventQueue and the helper
 * EventFunctionWrapper.
 *
 * The queue orders events by (when, priority, insertion sequence), so that
 * two events scheduled for the same tick with the same priority fire in
 * the order they were scheduled. This makes simulations fully
 * deterministic, which the cross-validation tests between the detailed
 * and analytic timing models rely on.
 *
 * Two facilities support the sharded detailed engine:
 *
 *  - scheduleCallback() draws one-shot events from an object pool linked
 *    through an intrusive free list, so hot paths that fire millions of
 *    transient events (wave emitters, cross-shard injections) allocate
 *    nothing in steady state;
 *
 *  - runUntilBarrier() advances the queue through one epoch window,
 *    processing every event strictly before the barrier and then moving
 *    simulated time to the barrier itself. Independent queues stepped
 *    through the same barrier sequence stay in lockstep, which is what
 *    lets one queue per cache slice run on separate threads while
 *    cross-slice traffic crosses only at the (deterministic) barriers.
 */

#ifndef BFREE_SIM_EVENT_QUEUE_HH
#define BFREE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "types.hh"

namespace bfree::sim {

class EventQueue;

/**
 * Base class for schedulable events.
 *
 * Derive and implement process(). An Event may be rescheduled after it
 * fires, but must not be scheduled twice concurrently; the queue enforces
 * this with panics in debug-friendly fashion.
 */
class Event
{
  public:
    /** Default priority; lower values fire first within a tick. */
    static constexpr int default_priority = 0;

    explicit Event(int priority = default_priority)
        : _priority(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when simulated time reaches when(). */
    virtual void process() = 0;

    /** Human-readable description used in diagnostics. */
    virtual std::string name() const { return "anonymous event"; }

    /** Tick at which this event is (or was last) scheduled. */
    Tick when() const { return _when; }

    /** Intra-tick ordering; lower fires first. */
    int priority() const { return _priority; }

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return _scheduled; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
    bool _squashed = false;
};

/** An Event that simply invokes a bound callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string description,
                         int priority = default_priority)
        : Event(priority), callback(std::move(callback)),
          description(std::move(description))
    {}

    void process() override { callback(); }
    std::string name() const override { return description; }

  private:
    std::function<void()> callback;
    std::string description;
};

/**
 * The global ordering structure for a simulation.
 *
 * Not a singleton: tests and parallel experiments each own an instance.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p event to fire at absolute tick @p when. */
    void schedule(Event *event, Tick when);

    /**
     * Remove a pending event. The event object stays valid and may be
     * rescheduled later.
     */
    void deschedule(Event *event);

    /**
     * Schedule a one-shot callback at absolute tick @p when. The event
     * object behind it comes from an internal pool threaded on an
     * intrusive free list and is recycled the moment it fires, so a
     * steady stream of transient events costs no allocation once the
     * pool has warmed up (the callback itself is also move-assigned
     * into the pooled slot, reusing small-buffer storage).
     */
    void scheduleCallback(Tick when, std::function<void()> callback,
                          int priority = Event::default_priority);

    /** Current simulated time. */
    Tick now() const { return current_tick; }

    /** True when no events remain. */
    bool empty() const { return num_pending == 0; }

    /** Number of events waiting to fire. */
    std::size_t size() const { return num_pending; }

    /** Total number of events dispatched so far. */
    std::uint64_t processed() const { return num_processed; }

    /**
     * Pool slots ever allocated by scheduleCallback (monotonic; a
     * steady-state workload should see this plateau).
     */
    std::size_t callbackPoolSize() const { return pool_storage.size(); }

    /**
     * Run until the queue drains or simulated time would exceed
     * @p stop_at. Returns the tick of the last processed event (or the
     * current tick when nothing ran).
     */
    Tick run(Tick stop_at = max_tick);

    /** Dispatch exactly one event; returns false if the queue is empty. */
    bool step();

    /**
     * Epoch window API: process every event strictly before @p barrier,
     * then advance simulated time to the barrier itself (even when the
     * queue is idle). Returns the number of events dispatched. After it
     * returns, new work may legally be scheduled at any tick >= the
     * barrier, which is the contract the sharded engine's cross-shard
     * rendezvous relies on.
     */
    std::uint64_t runUntilBarrier(Tick barrier);

    /**
     * Tick of the earliest pending event, or max_tick when the queue is
     * empty. Prunes stale heap entries left behind by deschedule() as a
     * side effect.
     */
    Tick nextEventTick();

  private:
    class PoolEvent;

    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
    };

    struct EntryCompare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /**
     * Drop squashed / superseded entries from the top of the heap so
     * heap.top(), when present, is the genuine next event.
     */
    void pruneStale();

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> heap;
    Tick current_tick = 0;
    std::uint64_t next_sequence = 0;
    std::uint64_t num_processed = 0;
    std::size_t num_pending = 0;

    /** Owning storage for pooled events (stable addresses). */
    std::vector<std::unique_ptr<PoolEvent>> pool_storage;
    /** Head of the intrusive free list of recycled pool events. */
    PoolEvent *free_list = nullptr;
};

} // namespace bfree::sim

#endif // BFREE_SIM_EVENT_QUEUE_HH
