#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "logging.hh"

namespace bfree::sim {

StatBase::StatBase(StatGroup &parent, std::string name,
                   std::string description)
    : _parent(&parent), _name(std::move(name)),
      _description(std::move(description))
{
    parent.registerStat(this);
}

StatBase::~StatBase()
{
    _parent->unregisterStat(this);
}

std::string
StatBase::fullName() const
{
    std::string prefix = _parent->fullName();
    return prefix.empty() ? _name : prefix + "." + _name;
}

namespace {

void
emit_line(std::ostream &os, const std::string &name, double value,
          const std::string &description)
{
    os << std::left << std::setw(48) << name << " " << std::right
       << std::setw(16) << value;
    if (!description.empty())
        os << "  # " << description;
    os << "\n";
}

} // namespace

void
Scalar::dump(std::ostream &os) const
{
    emit_line(os, fullName(), total, description());
}

bool
Scalar::mergeFrom(const StatBase &other)
{
    const auto *o = dynamic_cast<const Scalar *>(&other);
    if (o == nullptr)
        return false;
    total += o->total;
    return true;
}

void
Vector::add(std::size_t index, double v)
{
    if (index >= values.size())
        bfree_panic("vector stat '", fullName(), "' index ", index,
                    " out of range (size ", values.size(), ")");
    values[index] += v;
}

double
Vector::value(std::size_t index) const
{
    if (index >= values.size())
        bfree_panic("vector stat '", fullName(), "' index ", index,
                    " out of range (size ", values.size(), ")");
    return values[index];
}

double
Vector::total() const
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum;
}

void
Vector::dump(std::ostream &os) const
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        emit_line(os, fullName() + "[" + std::to_string(i) + "]", values[i],
                  description());
    }
    emit_line(os, fullName() + ".total", total(), description());
}

bool
Vector::mergeFrom(const StatBase &other)
{
    const auto *o = dynamic_cast<const Vector *>(&other);
    if (o == nullptr || o->values.size() != values.size())
        return false;
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] += o->values[i];
    return true;
}

Histogram::Histogram(StatGroup &parent, std::string name,
                     std::string description, double lo, double hi,
                     std::size_t bins)
    : StatBase(parent, std::move(name), std::move(description)), lo(lo),
      hi(hi), counts(bins, 0.0)
{
    if (bins == 0 || hi <= lo)
        bfree_fatal("histogram '", fullName(), "' needs bins > 0, hi > lo");
}

void
Histogram::sample(double v, double weight)
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    auto index = static_cast<std::int64_t>((v - lo) / width);
    index = std::clamp<std::int64_t>(
        index, 0, static_cast<std::int64_t>(counts.size()) - 1);
    counts[static_cast<std::size_t>(index)] += weight;
    numSamples += weight;
    sum += v * weight;
}

double
Histogram::mean() const
{
    return numSamples > 0.0 ? sum / numSamples : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (numSamples <= 0.0)
        return lo;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * numSamples;
    const double width = (hi - lo) / static_cast<double>(counts.size());
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (cumulative + counts[i] >= target && counts[i] > 0.0) {
            const double frac = (target - cumulative) / counts[i];
            return lo + width * (static_cast<double>(i) + frac);
        }
        cumulative += counts[i];
    }
    return hi;
}

void
Histogram::dump(std::ostream &os) const
{
    emit_line(os, fullName() + ".samples", numSamples, description());
    emit_line(os, fullName() + ".mean", mean(), description());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        emit_line(os, fullName() + ".bin" + std::to_string(i), counts[i],
                  description());
    }
}

void
Histogram::reset()
{
    counts.assign(counts.size(), 0.0);
    numSamples = 0.0;
    sum = 0.0;
}

bool
Histogram::mergeFrom(const StatBase &other)
{
    const auto *o = dynamic_cast<const Histogram *>(&other);
    if (o == nullptr || o->counts.size() != counts.size() || o->lo != lo
        || o->hi != hi) {
        return false;
    }
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += o->counts[i];
    numSamples += o->numSamples;
    sum += o->sum;
    return true;
}

void
Formula::dump(std::ostream &os) const
{
    emit_line(os, fullName(), fn ? fn() : 0.0, description());
}

StatGroup::StatGroup(std::string name) : _name(std::move(name)) {}

StatGroup::StatGroup(StatGroup &parent, std::string name)
    : _parent(&parent), _name(std::move(name))
{
    parent.registerChild(this);
}

StatGroup::~StatGroup()
{
    if (_parent != nullptr)
        _parent->unregisterChild(this);
}

void
StatGroup::unregisterChild(StatGroup *child)
{
    std::erase(children, child);
}

void
StatGroup::unregisterStat(StatBase *stat)
{
    std::erase(stats, stat);
}

std::string
StatGroup::fullName() const
{
    if (_parent == nullptr)
        return _name;
    std::string prefix = _parent->fullName();
    return prefix.empty() ? _name : prefix + "." + _name;
}

void
StatGroup::dumpAll(std::ostream &os) const
{
    std::vector<const StatBase *> sorted(stats.begin(), stats.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const StatBase *a, const StatBase *b) {
                  return a->name() < b->name();
              });
    for (const StatBase *stat : sorted)
        stat->dump(os);

    std::vector<const StatGroup *> sorted_children(children.begin(),
                                                   children.end());
    std::sort(sorted_children.begin(), sorted_children.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name() < b->name();
              });
    for (const StatGroup *child : sorted_children)
        child->dumpAll(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *stat : stats)
        stat->reset();
    for (StatGroup *child : children)
        child->resetAll();
}

StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (StatBase *stat : stats) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

StatGroup *
StatGroup::findChild(const std::string &name) const
{
    for (StatGroup *child : children) {
        if (child->name() == name)
            return child;
    }
    return nullptr;
}

void
StatGroup::mergeFrom(const StatGroup &other)
{
    for (const StatBase *stat : other.stats) {
        StatBase *mine = findStat(stat->name());
        if (mine == nullptr) {
            bfree_panic("merge into '", fullName(), "': no stat named '",
                        stat->name(), "'");
        }
        if (!mine->mergeFrom(*stat)) {
            bfree_panic("merge into '", fullName(), "': stat '",
                        stat->name(), "' has a different kind or shape");
        }
    }
    for (const StatGroup *child : other.children) {
        StatGroup *mine = findChild(child->name());
        if (mine == nullptr) {
            bfree_panic("merge into '", fullName(),
                        "': no child group named '", child->name(), "'");
        }
        mine->mergeFrom(*child);
    }
}

} // namespace bfree::sim
