/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All synthetic tensors and traces in the repository draw from Rng so
 * that every test, example and benchmark is reproducible bit-for-bit.
 */

#ifndef BFREE_SIM_RANDOM_HH
#define BFREE_SIM_RANDOM_HH

#include <cstdint>
#include <random>

namespace bfree::sim {

/** A seeded 64-bit Mersenne-Twister with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedULL) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine);
    }

    /** Access to the raw engine for use with std algorithms. */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace bfree::sim

#endif // BFREE_SIM_RANDOM_HH
