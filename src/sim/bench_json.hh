/**
 * @file
 * A tiny two-level JSON document for benchmark results: named sections,
 * each mapping keys to doubles. Emission is deterministic (insertion
 * order, round-trip number formatting) and the parser accepts exactly
 * the subset str() emits, so a committed baseline file can be loaded
 * back and compared against a fresh run (the CI perf-smoke gate).
 */

#ifndef BFREE_SIM_BENCH_JSON_HH
#define BFREE_SIM_BENCH_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace bfree::sim {

/** Section -> key -> double, preserving insertion order. */
class BenchJson
{
  public:
    /** Set (or overwrite) one value; creates the section on demand. */
    void set(const std::string &section, const std::string &key,
             double value);

    /** True when @p section / @p key exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** Value at @p section / @p key, or @p fallback when absent. */
    double get(const std::string &section, const std::string &key,
               double fallback = 0.0) const;

    /** Section names in insertion order. */
    std::vector<std::string> sections() const;

    /** Keys of @p section in insertion order (empty when absent). */
    std::vector<std::string> keys(const std::string &section) const;

    /** The document as pretty-printed JSON. */
    std::string str() const;

    /** Write str() to @p path; returns false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Parse a document previously produced by str(). Returns false
     * (leaving the document empty) on malformed input.
     */
    bool parse(const std::string &text);

    /** Load and parse @p path; returns false when unreadable/invalid. */
    bool load(const std::string &path);

  private:
    using Section = std::vector<std::pair<std::string, double>>;
    std::vector<std::pair<std::string, Section>> doc;

    Section *find(const std::string &section);
    const Section *find(const std::string &section) const;
};

} // namespace bfree::sim

#endif // BFREE_SIM_BENCH_JSON_HH
