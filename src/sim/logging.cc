#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bfree::sim {

namespace {

std::atomic<std::uint64_t> num_warnings{0};

const char *
level_prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
    }
    return "?";
}

} // namespace

void
log_terminate(LogLevel level, const std::string &message, const char *file,
              int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", level_prefix(level),
                 message.c_str(), file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
log_message(LogLevel level, const std::string &message)
{
    if (level == LogLevel::Warn)
        num_warnings.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "%s: %s\n", level_prefix(level), message.c_str());
}

std::uint64_t
warn_count()
{
    return num_warnings.load(std::memory_order_relaxed);
}

} // namespace bfree::sim
