#include "cpuid.hh"

#include <cstdlib>
#include <cstring>
#include <optional>

#include "logging.hh"

namespace bfree::sim {

namespace {

/** The one resolved level; std::nullopt until first use. */
std::optional<SimdLevel> resolved;

SimdLevel
widest_available()
{
    for (const SimdLevel level :
         {SimdLevel::Avx512, SimdLevel::Avx2, SimdLevel::Neon,
          SimdLevel::Sse42}) {
        if (simd_level_compiled(level) && simd_level_supported(level))
            return level;
    }
    return SimdLevel::Scalar;
}

/** Parse a BFREE_FORCE_ISA value; fatal on an unknown name. */
SimdLevel
parse_level(const char *name)
{
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Sse42, SimdLevel::Neon,
          SimdLevel::Avx2, SimdLevel::Avx512}) {
        if (!std::strcmp(name, simd_level_name(level)))
            return level;
    }
    bfree_fatal("BFREE_FORCE_ISA=", name, " is not a known ISA "
                "(expected scalar, sse42, neon, avx2 or avx512)");
}

/** Validate a requested level against the binary and the CPU. */
void
require_runnable(SimdLevel level, const char *origin)
{
    if (!simd_level_compiled(level))
        bfree_fatal(origin, " requested ISA '", simd_level_name(level),
                    "' but this binary was not built with kernels for "
                    "it");
    if (!simd_level_supported(level))
        bfree_fatal(origin, " requested ISA '", simd_level_name(level),
                    "' but this CPU does not support it");
}

SimdLevel
resolve_from_environment()
{
    const char *scalar = std::getenv("BFREE_FORCE_SCALAR");
    if (scalar != nullptr && scalar[0] != '\0'
        && std::strcmp(scalar, "0") != 0)
        return SimdLevel::Scalar;

    const char *isa = std::getenv("BFREE_FORCE_ISA");
    if (isa != nullptr && isa[0] != '\0') {
        const SimdLevel level = parse_level(isa);
        require_runnable(level, "BFREE_FORCE_ISA");
        return level;
    }
    return widest_available();
}

} // namespace

const char *
simd_level_name(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Sse42:
        return "sse42";
      case SimdLevel::Neon:
        return "neon";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Avx512:
        return "avx512";
    }
    return "unknown";
}

bool
simd_level_compiled(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return true;
      case SimdLevel::Sse42:
      case SimdLevel::Avx2:
      case SimdLevel::Avx512:
#if defined(__x86_64__) || defined(__i386__)
        return true;
#else
        return false;
#endif
      case SimdLevel::Neon:
#if defined(__ARM_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
simd_level_supported(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return true;
      case SimdLevel::Sse42:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("sse4.2") != 0;
#else
        return false;
#endif
      case SimdLevel::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case SimdLevel::Avx512:
#if defined(__x86_64__) || defined(__i386__)
        // The kernels use byte shuffles/compares in 512-bit lanes and
        // narrowing converts on 256-bit lanes, so foundation alone is
        // not enough: require the F+BW+VL trio every mainstream
        // AVX-512 server core ships together.
        return __builtin_cpu_supports("avx512f") != 0
               && __builtin_cpu_supports("avx512bw") != 0
               && __builtin_cpu_supports("avx512vl") != 0;
#else
        return false;
#endif
      case SimdLevel::Neon:
#if defined(__ARM_NEON)
        // AArch64 mandates Advanced SIMD; compiled in implies runnable.
        return true;
#else
        return false;
#endif
    }
    return false;
}

SimdLevel
active_simd_level()
{
    if (!resolved)
        resolved = resolve_from_environment();
    return *resolved;
}

void
force_simd_level(SimdLevel level)
{
    require_runnable(level, "force_simd_level");
    resolved = level;
}

void
reset_simd_level()
{
    resolved = resolve_from_environment();
}

} // namespace bfree::sim
