/**
 * @file
 * The parallel sweep engine: a work-stealing thread pool and a
 * deterministic SweepRunner.
 *
 * Design-space sweeps and full-network evaluations are embarrassingly
 * parallel across configuration points, layers and sub-bank chains, but
 * a naive fork/join makes the output depend on completion order. The
 * engine here separates the two concerns:
 *
 *  - ThreadPool schedules tasks onto worker threads with per-worker
 *    deques and work stealing (owners pop LIFO from their own deque,
 *    idle workers steal FIFO from a victim), so unbalanced job costs
 *    still fill every core;
 *
 *  - SweepRunner gives every job a private output stream and a private
 *    StatGroup, then merges both at join in STABLE JOB-INDEX ORDER.
 *    Nothing observable depends on which worker ran a job or when it
 *    finished, so sweep output and stats dumps are bit-identical for
 *    any thread count, including --threads 1.
 *
 * Jobs must not touch shared mutable state; everything they produce
 * goes through their SweepContext (or into a pre-sized slot owned by
 * the caller, indexed by job).
 */

#ifndef BFREE_SIM_PARALLEL_HH
#define BFREE_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "stats.hh"

namespace bfree::sim {

/** Resolve a thread-count request: 0 means hardware concurrency. */
unsigned resolve_threads(unsigned requested);

/**
 * Scan argv for a "--threads N" option (benchmark convenience).
 * Returns @p fallback when the flag is absent; exits with an error on a
 * malformed value. Other arguments are ignored.
 */
unsigned threads_from_args(int argc, char **argv, unsigned fallback = 0);

/**
 * A work-stealing thread pool.
 *
 * Workers own one deque each. Submitted batches are dealt round-robin
 * across the deques; an owner pops newest-first (LIFO, cache-friendly)
 * while an idle worker steals oldest-first (FIFO) from the first
 * non-empty victim. A pool of one thread runs tasks inline on the
 * calling thread in submission order, with no worker threads at all —
 * the degenerate case costs nothing and simplifies debugging.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers (1 means inline execution). */
    unsigned threads() const { return numThreads; }

    /**
     * Execute every task to completion; blocks the caller. Tasks may
     * run in any order and on any worker. If a task throws, the batch
     * still drains and the first exception is rethrown here.
     */
    void run(std::vector<std::function<void()>> tasks);

  private:
    /** One worker's deque; its mutex only guards this deque. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned self);
    bool popLocal(unsigned self, std::function<void()> &task);
    bool steal(unsigned self, std::function<void()> &task);
    void execute(std::function<void()> &task);

    unsigned numThreads;
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    std::mutex mutex;            ///< Guards the fields below.
    std::condition_variable wake; ///< Workers sleep here when idle.
    std::condition_variable done; ///< run() sleeps here until drained.
    std::size_t pending = 0;      ///< Submitted but not yet finished.
    bool stopping = false;
    std::exception_ptr firstError;
};

/** What one sweep job sees while it runs. */
class SweepContext
{
  public:
    /** Index of this job in the submitted list. */
    std::size_t jobIndex;

    /**
     * Private buffered output; the concatenation in job-index order
     * becomes SweepReport::output().
     */
    std::ostream &out;

    /**
     * Private stat group, nested under the report root. Congruent
     * groups can later be folded with StatGroup::mergeFrom.
     */
    StatGroup &stats;

    /**
     * Create a stat inside this job's group, owned by the SweepReport
     * (it stays valid for the report's lifetime, unlike a stack-local
     * stat, which would unregister when the job returns).
     */
    Scalar &scalar(std::string name, std::string description = "");
    Vector &vector(std::string name, std::string description,
                   std::size_t size);
    Histogram &histogram(std::string name, std::string description,
                         double lo, double hi, std::size_t bins);

  private:
    friend class SweepRunner;

    SweepContext(std::size_t index, std::ostream &out, StatGroup &stats,
                 std::vector<std::unique_ptr<StatBase>> &owned)
        : jobIndex(index), out(out), stats(stats), owned(owned)
    {}

    std::vector<std::unique_ptr<StatBase>> &owned;
};

/** One independent unit of sweep work. */
struct SweepJob
{
    /** Names the job's stat group; keep unique within one sweep. */
    std::string name;
    std::function<void(SweepContext &)> work;
};

/** Per-job outcome. */
struct SweepJobResult
{
    std::string name;
    std::string output; ///< Everything the job wrote to ctx.out.
    double seconds = 0.0; ///< Wall clock; informational only, never part
                          ///< of deterministic output.
};

/**
 * The joined result of a sweep. Owns the per-job stat groups, nested
 * under a root group named "sweep" in job-index order.
 */
class SweepReport
{
  public:
    SweepReport();
    SweepReport(SweepReport &&) = default;
    SweepReport &operator=(SweepReport &&) = default;

    /** Per-job results in job-index order. */
    const std::vector<SweepJobResult> &jobs() const { return results; }

    /** All job output concatenated in job-index order. */
    std::string output() const;

    /** The root stat group holding one child group per job. */
    const StatGroup &stats() const { return *root; }

    /** Dump the merged stats hierarchy (deterministic). */
    void dumpStats(std::ostream &os) const { root->dumpAll(os); }

    /** Sum of per-job wall-clock seconds (informational). */
    double totalJobSeconds() const;

  private:
    friend class SweepRunner;

    std::unique_ptr<StatGroup> root;
    std::vector<std::unique_ptr<StatGroup>> jobGroups; ///< Job order.
    /** Stats created through SweepContext, per job; declared after
     *  jobGroups so they are destroyed first (they unregister from
     *  their group on destruction). */
    std::vector<std::vector<std::unique_ptr<StatBase>>> ownedStats;
    std::vector<SweepJobResult> results;
};

/**
 * Runs a list of independent jobs on a ThreadPool and joins their
 * outputs deterministically.
 */
class SweepRunner
{
  public:
    /** @param threads Worker count; 0 means hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0) : pool(threads) {}

    unsigned threads() const { return pool.threads(); }

    /** Run all jobs; returns once every job has finished. */
    SweepReport run(std::vector<SweepJob> jobs);

  private:
    ThreadPool pool;
};

} // namespace bfree::sim

#endif // BFREE_SIM_PARALLEL_HH
