/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Statistics live in StatGroups (which can nest) and are dumped as a flat
 * "name value # description" listing, mirroring gem5's stats.txt format.
 * Supported kinds: Scalar (counter/accumulator), Vector (indexed
 * counters), Histogram (fixed-width bins) and Formula (a deferred
 * computation over other stats, evaluated at dump time).
 */

#ifndef BFREE_SIM_STATS_HH
#define BFREE_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace bfree::sim {

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup &parent, std::string name, std::string description);
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    /** Leaf name within the owning group. */
    const std::string &name() const { return _name; }

    /** One-line description printed with the value. */
    const std::string &description() const { return _description; }

    /** Fully qualified dotted name. */
    std::string fullName() const;

    /** Write "name value # description" lines to @p os. */
    virtual void dump(std::ostream &os) const = 0;

    /** Reset to the initial value. */
    virtual void reset() = 0;

    /**
     * Accumulate another stat's values into this one. The two stats
     * must be of the same kind and shape (same vector length, same
     * histogram binning); returns false otherwise, leaving this stat
     * untouched. Merging is associative, so folding a set of congruent
     * stats in a fixed order yields a bit-identical result no matter
     * which threads produced them.
     */
    virtual bool mergeFrom(const StatBase &other) = 0;

  protected:
    const StatGroup &parent() const { return *_parent; }

  private:
    StatGroup *_parent;
    std::string _name;
    std::string _description;
};

/** A double-precision accumulator. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &
    operator+=(double v)
    {
        total += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        total += 1.0;
        return *this;
    }

    void set(double v) { total = v; }
    double value() const { return total; }

    void dump(std::ostream &os) const override;
    void reset() override { total = 0.0; }
    bool mergeFrom(const StatBase &other) override;

  private:
    double total = 0.0;
};

/** A fixed-size vector of accumulators. */
class Vector : public StatBase
{
  public:
    Vector(StatGroup &parent, std::string name, std::string description,
           std::size_t size)
        : StatBase(parent, std::move(name), std::move(description)),
          values(size, 0.0)
    {}

    void add(std::size_t index, double v);
    double value(std::size_t index) const;
    std::size_t size() const { return values.size(); }
    double total() const;

    void dump(std::ostream &os) const override;
    void reset() override { values.assign(values.size(), 0.0); }
    bool mergeFrom(const StatBase &other) override;

  private:
    std::vector<double> values;
};

/** A histogram with uniform bins over [lo, hi); out-of-range samples clamp. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &parent, std::string name, std::string description,
              double lo, double hi, std::size_t bins);

    void sample(double v, double weight = 1.0);

    std::size_t bins() const { return counts.size(); }
    double binCount(std::size_t index) const { return counts.at(index); }
    double samples() const { return numSamples; }
    double mean() const;

    /** Lower edge of the sampling range. */
    double rangeLo() const { return lo; }

    /** Upper edge of the sampling range. */
    double rangeHi() const { return hi; }

    /**
     * The value below which a fraction @p p (in [0, 1]) of the sampled
     * weight falls, linearly interpolated inside the crossing bin (the
     * bin's weight is treated as uniformly spread over its width).
     * Returns rangeLo() for an empty histogram. Out-of-range samples
     * were clamped into the edge bins, so percentiles never leave
     * [rangeLo(), rangeHi()].
     */
    double percentile(double p) const;

    void dump(std::ostream &os) const override;
    void reset() override;
    bool mergeFrom(const StatBase &other) override;

  private:
    double lo;
    double hi;
    std::vector<double> counts;
    double numSamples = 0.0;
    double sum = 0.0;
};

/** A value computed at dump time from other statistics. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup &parent, std::string name, std::string description,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(description)),
          fn(std::move(fn))
    {}

    double value() const { return fn(); }

    void dump(std::ostream &os) const override;
    void reset() override {}

    /** Formulas hold no state; merging succeeds as a no-op. */
    bool
    mergeFrom(const StatBase &other) override
    {
        return dynamic_cast<const Formula *>(&other) != nullptr;
    }

  private:
    std::function<double()> fn;
};

/**
 * A named collection of statistics and child groups.
 */
class StatGroup
{
  public:
    /** Construct a root group. */
    explicit StatGroup(std::string name);

    /** Construct a child group nested under @p parent. */
    StatGroup(StatGroup &parent, std::string name);

    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Leaf name of this group. */
    const std::string &name() const { return _name; }

    /** Fully qualified dotted name (empty for an unnamed root). */
    std::string fullName() const;

    /** Dump all stats in this group and its children, sorted by name. */
    void dumpAll(std::ostream &os) const;

    /** Reset all stats in this group and its children. */
    void resetAll();

    /** Stat with leaf name @p name, or nullptr. */
    StatBase *findStat(const std::string &name) const;

    /** Child group with leaf name @p name, or nullptr. */
    StatGroup *findChild(const std::string &name) const;

    /**
     * Accumulate a structurally congruent group into this one: every
     * stat and child group of @p other is matched by leaf name and
     * merged recursively. Panics on a missing or shape-mismatched
     * counterpart — merging is for same-schema groups (e.g. the same
     * simulation run under different shardings), not arbitrary pairs.
     */
    void mergeFrom(const StatGroup &other);

  private:
    friend class StatBase;

    void registerStat(StatBase *stat) { stats.push_back(stat); }
    void unregisterStat(StatBase *stat);
    void registerChild(StatGroup *child) { children.push_back(child); }
    void unregisterChild(StatGroup *child);

    StatGroup *_parent = nullptr;
    std::string _name;
    std::vector<StatBase *> stats;
    std::vector<StatGroup *> children;
};

} // namespace bfree::sim

#endif // BFREE_SIM_STATS_HH
