#include "bench_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bfree::sim {

BenchJson::Section *
BenchJson::find(const std::string &section)
{
    for (auto &entry : doc)
        if (entry.first == section)
            return &entry.second;
    return nullptr;
}

const BenchJson::Section *
BenchJson::find(const std::string &section) const
{
    for (const auto &entry : doc)
        if (entry.first == section)
            return &entry.second;
    return nullptr;
}

void
BenchJson::set(const std::string &section, const std::string &key,
               double value)
{
    Section *s = find(section);
    if (!s) {
        doc.emplace_back(section, Section{});
        s = &doc.back().second;
    }
    for (auto &kv : *s) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    s->emplace_back(key, value);
}

bool
BenchJson::has(const std::string &section, const std::string &key) const
{
    const Section *s = find(section);
    if (!s)
        return false;
    for (const auto &kv : *s)
        if (kv.first == key)
            return true;
    return false;
}

double
BenchJson::get(const std::string &section, const std::string &key,
               double fallback) const
{
    const Section *s = find(section);
    if (!s)
        return fallback;
    for (const auto &kv : *s)
        if (kv.first == key)
            return kv.second;
    return fallback;
}

std::vector<std::string>
BenchJson::sections() const
{
    std::vector<std::string> names;
    names.reserve(doc.size());
    for (const auto &entry : doc)
        names.push_back(entry.first);
    return names;
}

std::vector<std::string>
BenchJson::keys(const std::string &section) const
{
    std::vector<std::string> names;
    if (const Section *s = find(section)) {
        names.reserve(s->size());
        for (const auto &kv : *s)
            names.push_back(kv.first);
    }
    return names;
}

std::string
BenchJson::str() const
{
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < doc.size(); ++i) {
        os << "  \"" << doc[i].first << "\": {\n";
        const Section &s = doc[i].second;
        for (std::size_t j = 0; j < s.size(); ++j) {
            char num[64];
            std::snprintf(num, sizeof(num), "%.17g", s[j].second);
            os << "    \"" << s[j].first << "\": " << num
               << (j + 1 < s.size() ? "," : "") << "\n";
        }
        os << "  }" << (i + 1 < doc.size() ? "," : "") << "\n";
    }
    os << "}\n";
    return os.str();
}

bool
BenchJson::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << str();
    return static_cast<bool>(out);
}

namespace {

/** Cursor over the JSON text; methods skip leading whitespace. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }

    /** Quoted string without escapes (the emitter never needs them). */
    bool
    string(std::string &out)
    {
        if (!eat('"'))
            return false;
        const std::size_t start = pos;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\')
                return false;
            ++pos;
        }
        if (pos >= text.size())
            return false;
        out = text.substr(start, pos - start);
        ++pos;
        return true;
    }

    bool
    number(double &out)
    {
        skipWs();
        const char *begin = text.c_str() + pos;
        char *end = nullptr;
        out = std::strtod(begin, &end);
        if (end == begin)
            return false;
        pos += static_cast<std::size_t>(end - begin);
        return true;
    }
};

} // namespace

bool
BenchJson::parse(const std::string &text)
{
    doc.clear();
    Cursor c{text};
    if (!c.eat('{'))
        return false;
    if (!c.peek('}')) {
        do {
            std::string section;
            if (!c.string(section) || !c.eat(':') || !c.eat('{'))
                return false;
            doc.emplace_back(section, Section{});
            Section &s = doc.back().second;
            if (!c.peek('}')) {
                do {
                    std::string key;
                    double value = 0.0;
                    if (!c.string(key) || !c.eat(':')
                        || !c.number(value))
                        return false;
                    s.emplace_back(key, value);
                } while (c.eat(','));
            }
            if (!c.eat('}'))
                return false;
        } while (c.eat(','));
    }
    if (!c.eat('}'))
        return false;
    c.skipWs();
    return c.pos == text.size();
}

bool
BenchJson::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

} // namespace bfree::sim
