#include "report.hh"

#include <iomanip>
#include <sstream>

#include "map/mapping.hh"

namespace bfree::core {

namespace {

std::string
format_with_units(double value, const char *const *units,
                  std::size_t num_units, double step)
{
    std::size_t unit = 0;
    while (unit + 1 < num_units && value < 1.0 && value != 0.0) {
        value *= step;
        ++unit;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << value << " "
       << units[unit];
    return os.str();
}

} // namespace

std::string
format_seconds(double seconds)
{
    static const char *units[] = {"s", "ms", "us", "ns"};
    return format_with_units(seconds, units, 4, 1000.0);
}

std::string
format_joules(double joules)
{
    static const char *units[] = {"J", "mJ", "uJ", "nJ"};
    return format_with_units(joules, units, 4, 1000.0);
}

std::string
format_count(double count)
{
    static const char *units[] = {"G", "M", "K", ""};
    double scaled = count / 1e9;
    std::size_t unit = 0;
    while (unit + 1 < 4 && scaled < 1.0 && scaled != 0.0) {
        scaled *= 1000.0;
        ++unit;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << scaled << units[unit];
    return os.str();
}

void
print_layer_table(std::ostream &os, const map::RunResult &run,
                  std::size_t max_rows)
{
    os << std::left << std::setw(24) << "layer" << std::setw(8) << "mode"
       << std::setw(8) << "SAs" << std::setw(12) << "macs"
       << std::setw(12) << "time" << std::setw(12) << "energy" << "\n";
    std::size_t rows = 0;
    for (const map::LayerResult &l : run.layers) {
        if (max_rows != 0 && rows >= max_rows) {
            os << "  ... (" << run.layers.size() - rows
               << " more layers)\n";
            break;
        }
        os << std::left << std::setw(24) << l.name << std::setw(8)
           << map::exec_mode_name(l.mapping.mode) << std::setw(8)
           << l.mapping.activeSubarrays << std::setw(12)
           << format_count(static_cast<double>(l.macs)) << std::setw(12)
           << format_seconds(l.time.total()) << std::setw(12)
           << format_joules(l.energy.total()) << "\n";
        ++rows;
    }
}

void
print_phase_row(std::ostream &os, const std::string &label,
                const map::PhaseBreakdown &time)
{
    os << std::left << std::setw(28) << label << " weight="
       << format_seconds(time.weightLoad)
       << " input=" << format_seconds(time.inputLoad)
       << " compute=" << format_seconds(time.compute)
       << " special=" << format_seconds(time.special)
       << " requant=" << format_seconds(time.requant)
       << " total=" << format_seconds(time.total()) << "\n";
}

void
print_phase_shares(std::ostream &os, const std::string &label,
                   const map::PhaseBreakdown &time)
{
    const double total = time.total();
    auto pct = [total](double v) {
        std::ostringstream s;
        s << std::fixed << std::setprecision(1)
          << (total > 0.0 ? 100.0 * v / total : 0.0) << "%";
        return s.str();
    };
    os << std::left << std::setw(28) << label
       << " weight=" << pct(time.weightLoad)
       << " input=" << pct(time.inputLoad)
       << " compute=" << pct(time.compute)
       << " special=" << pct(time.special)
       << " requant=" << pct(time.requant) << "\n";
}

void
print_energy_breakdown(std::ostream &os, const mem::EnergyAccount &energy,
                       bool exclude_dram)
{
    const double total = exclude_dram ? energy.totalExcludingDram()
                                      : energy.total();
    for (std::size_t c = 0; c < mem::num_energy_categories; ++c) {
        const auto cat = static_cast<mem::EnergyCategory>(c);
        if (exclude_dram && cat == mem::EnergyCategory::DramTransfer)
            continue;
        const double j = energy.joules(cat);
        os << "  " << std::left << std::setw(14)
           << mem::energy_category_name(cat) << format_joules(j);
        if (total > 0.0) {
            os << "  (" << std::fixed << std::setprecision(1)
               << 100.0 * j / total << "%)";
        }
        os << "\n";
    }
}

void
describe_network(std::ostream &os, const dnn::Network &net,
                 std::size_t max_rows)
{
    os << net.name() << ": depth " << net.reportedDepth << ", "
       << format_count(static_cast<double>(net.totalParams()))
       << " params, "
       << format_count(static_cast<double>(net.totalMacs()))
       << " MACs";
    if (net.timesteps > 1)
        os << " per step x " << net.timesteps << " steps";
    os << ", " << format_count(static_cast<double>(
                      net.totalWeightBytes()))
       << "B weights\n";

    os << std::left << std::setw(24) << "layer" << std::setw(12)
       << "kind" << std::setw(12) << "macs" << std::setw(12) << "params"
       << std::setw(8) << "bits" << "\n";
    std::size_t rows = 0;
    for (const dnn::Layer &l : net.layers()) {
        if (max_rows != 0 && rows >= max_rows) {
            os << "  ... (" << net.layers().size() - rows
               << " more layers)\n";
            break;
        }
        os << std::left << std::setw(24) << l.name << std::setw(12)
           << dnn::layer_kind_name(l.kind) << std::setw(12)
           << format_count(static_cast<double>(l.macs()))
           << std::setw(12)
           << format_count(static_cast<double>(l.params()))
           << std::setw(8) << l.precisionBits << "\n";
        ++rows;
    }
}

void
write_csv_header(std::ostream &os)
{
    os << "network,batch,layer,kind,mode,active_subarrays,macs,"
          "weight_load_s,input_load_s,compute_s,special_s,requant_s,"
          "total_s,energy_j\n";
}

void
write_csv_rows(std::ostream &os, const map::RunResult &run)
{
    for (const map::LayerResult &l : run.layers) {
        os << run.network << "," << run.batch << "," << l.name << ","
           << bfree::dnn::layer_kind_name(l.kind) << ","
           << map::exec_mode_name(l.mapping.mode) << ","
           << l.mapping.activeSubarrays << "," << l.macs << ","
           << l.time.weightLoad << "," << l.time.inputLoad << ","
           << l.time.compute << "," << l.time.special << ","
           << l.time.requant << "," << l.time.total() << ","
           << l.energy.total() << "\n";
    }
}

void
print_summary(std::ostream &os, const map::RunResult &run)
{
    os << run.network << " (batch " << run.batch
       << "): " << format_seconds(run.secondsPerInference())
       << " / inference, " << format_joules(run.joulesPerInference())
       << " / inference\n";
}

} // namespace bfree::core
