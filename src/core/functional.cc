#include "functional.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "bce/simd_kernels.hh"
#include "dnn/im2col.hh"
#include "mem/micro_op_energy.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace bfree::core {

FunctionalExecutor::FunctionalExecutor(const tech::CacheGeometry &geom,
                                       const tech::TechParams &tech,
                                       bce::ExecTier tier)
    : geom(geom), tech(tech), subarray(geom, tech, account),
      bce(subarray, tech, account), divisionLut(4),
      sigmoidTable(lut::make_sigmoid_table()),
      tanhTable(lut::make_tanh_table()),
      expTable(lut::make_exp_table())
{
    bce.setTier(tier);
    bce.loadMultLutImage();
}

// Symmetric per-tensor quantization lives in dnn::SymQuant /
// dnn::choose_sym, shared with the detailed cache driver so both paths
// quantize (and so dequantize) bit-identically. Weight-side quantization
// is frozen at plan compile (dnn::freeze_weights); only the
// input-dependent activation side is quantized here.
using dnn::SymQuant;
using dnn::choose_sym;

void
FunctionalExecutor::runConvInto(const PlannedLayer &pl, unsigned bits,
                                const float *in, float *out)
{
    const dnn::Layer &layer = pl.layer;
    const dnn::FeatureShape o = layer.outputShape();
    const dnn::QuantizedWeights &fw = pl.frozen[0];
    const SymQuant qi = choose_sym(in, pl.inElems, bits);

    bce.setMode(bce::BceMode::Conv);

    const std::size_t patch_len =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t outHW = std::size_t(o.h) * o.w;

    if (bits <= 8) {
        // All three front ends feed the identical per-(position,
        // filter) dotProductSpan call sequence with identical patch
        // bytes, so outputs AND statistics are byte-identical across
        // modes — only the work done to produce each patch differs.
        // The mode was chosen at plan compile (pl.frontend) and the
        // arena was sized for exactly the allocations made here.
        std::int8_t *patch = nullptr;
        std::int8_t *qin = nullptr;
        bce::simd::SpanView view;
        const std::int8_t *viewPlane = nullptr;
        std::int8_t *staging = nullptr;
        std::int32_t *offsets = nullptr;
        dnn::ElisionLayout el;

        switch (pl.frontend) {
          case dnn::FrontendMode::Fused:
            // Quantize straight into the patch: no quantized plane.
            patch = arena_.alloc<std::int8_t>(patch_len);
            break;
          case dnn::FrontendMode::Elided: {
            // Quantize the plane once; padded layers stage the whole
            // zero-padded plane once more. After that the front half
            // is pure addressing: a per-layer run-offset table plus a
            // uniform base shift per output position, compacted one
            // output ROW of patches at a time. Every buffer the view
            // touches carries slackBytes so the compactor can use
            // whole-word copies (slack8).
            constexpr std::size_t slack =
                bce::simd::SpanView::slackBytes;
            el = dnn::elision_layout(layer);
            qin = arena_.alloc<std::int8_t>(pl.inElems
                                            + (el.staged ? 0 : slack));
            dnn::quantize_span(qi, in, pl.inElems, qin);
            patch = arena_.alloc<std::int8_t>(
                std::size_t(o.w) * patch_len + slack);
            offsets = arena_.alloc<std::int32_t>(el.nRuns);
            dnn::elided_offsets(layer, offsets);
            view.offsets = offsets;
            view.nRuns = el.nRuns;
            view.runLen = el.runLen;
            view.slack8 = true;
            if (el.staged) {
                staging =
                    arena_.alloc<std::int8_t>(el.stagingBytes + slack);
                dnn::stage_plane_i8(layer, qin, staging);
                viewPlane = staging;
            } else {
                viewPlane = qin;
            }
            break;
          }
          case dnn::FrontendMode::Legacy:
            // Quantize the whole input plane once, then each (oh, ow)
            // patch is row-run span copies out of the quantized map.
            qin = arena_.alloc<std::int8_t>(pl.inElems);
            dnn::quantize_span(qi, in, pl.inElems, qin);
            patch = arena_.alloc<std::int8_t>(patch_len);
            break;
        }

        for (unsigned oh = 0; oh < o.h; ++oh) {
            if (pl.frontend == dnn::FrontendMode::Elided) {
                // One call compacts the whole output row of patches.
                view.base = viewPlane
                            + std::size_t(oh) * layer.strideH
                                  * el.rowBytes;
                bce::simd::materialize_span_block(view, o.w,
                                                  layer.strideW, patch,
                                                  patch_len);
            }
            for (unsigned ow = 0; ow < o.w; ++ow) {
                const std::int8_t *cur = patch;
                switch (pl.frontend) {
                  case dnn::FrontendMode::Fused:
                    dnn::im2col_quantize_patch(layer, qi, in, oh, ow,
                                               patch);
                    break;
                  case dnn::FrontendMode::Elided:
                    cur = patch + std::size_t(ow) * patch_len;
                    break;
                  case dnn::FrontendMode::Legacy:
                    dnn::im2col_patch_i8(layer, qin, oh, ow, patch);
                    break;
                }
                for (unsigned k = 0; k < o.c; ++k) {
                    const std::int32_t acc = bce.dotProductSpan(
                        fw.q8.data() + std::size_t(k) * patch_len, cur,
                        patch_len, bits);
                    out[std::size_t(k) * outHW + std::size_t(oh) * o.w
                        + ow] =
                        static_cast<float>(acc * fw.scale.scale
                                           * qi.scale)
                        + pl.bias[k];
                }
            }
        }
        return;
    }

    // 16-bit operands exceed the int8 patch element; run scalar
    // multiplies over an int32 patch with the same reuse structure.
    std::int32_t *patch = arena_.alloc<std::int32_t>(patch_len);
    for (unsigned oh = 0; oh < o.h; ++oh) {
        for (unsigned ow = 0; ow < o.w; ++ow) {
            std::size_t p = 0;
            for (unsigned c = 0; c < layer.input.c; ++c) {
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s, ++p) {
                        const int ih = static_cast<int>(
                                           oh * layer.strideH + r)
                                       - static_cast<int>(layer.padH);
                        const int iw = static_cast<int>(
                                           ow * layer.strideW + s)
                                       - static_cast<int>(layer.padW);
                        const bool inside =
                            ih >= 0 && iw >= 0
                            && ih < static_cast<int>(layer.input.h)
                            && iw < static_cast<int>(layer.input.w);
                        patch[p] =
                            inside ? qi.q(in[c * inHW + ih * inW + iw])
                                   : 0;
                    }
                }
            }
            for (unsigned k = 0; k < o.c; ++k) {
                std::int64_t acc = 0;
                const std::size_t base = std::size_t(k) * patch_len;
                for (std::size_t q = 0; q < patch_len; ++q)
                    acc += bce.multiply(fw.q32[base + q], patch[q],
                                        bits);
                out[std::size_t(k) * outHW + std::size_t(oh) * o.w + ow] =
                    static_cast<float>(acc * fw.scale.scale * qi.scale)
                    + pl.bias[k];
            }
        }
    }
}

void
FunctionalExecutor::runFcInto(const PlannedLayer &pl, unsigned bits,
                              const float *in, float *out)
{
    const dnn::Layer &layer = pl.layer;
    const dnn::QuantizedWeights &fw = pl.frozen[0];
    const SymQuant qi = choose_sym(in, pl.inElems, bits);

    // FC layers run on the matmul-mode broadcast datapath.
    bce.setMode(bce::BceMode::Matmul);
    std::int8_t *qin = arena_.alloc<std::int8_t>(layer.inFeatures);
    if (bits <= 8) {
        dnn::quantize_span(qi, in, layer.inFeatures, qin);
    } else {
        // 16-bit values historically truncate into the int8 scratch
        // (the broadcast path consumes them lane-wise); keep that
        // byte-exact rather than routing through the int8 span.
        for (unsigned i = 0; i < layer.inFeatures; ++i)
            qin[i] = static_cast<std::int8_t>(qi.q(in[i]));
    }

    if (bits <= 8) {
        // The frozen [outFeatures][inFeatures] matrix already is the
        // transposed-B tile matmulTile wants, so the whole layer is
        // one blocked GEMM over the LUT datapath.
        const std::size_t k = layer.inFeatures;
        const std::size_t n = layer.outFeatures;
        std::int32_t *accs = arena_.alloc<std::int32_t>(n);
        std::fill(accs, accs + n, 0);
        bce.matmulTile(qin, fw.q8.data(), accs, 1, k, n, bits);
        for (unsigned o = 0; o < layer.outFeatures; ++o)
            out[o] = static_cast<float>(accs[o] * fw.scale.scale
                                        * qi.scale)
                     + pl.bias[o];
        return;
    }

    // 16-bit weights exceed the int8 span; broadcast them one at a
    // time as before.
    for (unsigned o = 0; o < layer.outFeatures; ++o) {
        std::int64_t acc = 0;
        const std::size_t row = std::size_t(o) * layer.inFeatures;
        for (unsigned i = 0; i < layer.inFeatures; i += 8) {
            const std::size_t n =
                std::min<std::size_t>(8, layer.inFeatures - i);
            std::int32_t lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            // Broadcast each weight against up to 8 input lanes.
            for (std::size_t j = 0; j < n; ++j) {
                const std::int32_t wq = fw.q32[row + i + j];
                std::int32_t lane = 0;
                bce.broadcastMac(wq, &qin[i + j], 1, &lane, bits);
                lanes[j] = lane;
            }
            for (std::size_t j = 0; j < n; ++j)
                acc += lanes[j];
        }
        out[o] = static_cast<float>(acc * fw.scale.scale * qi.scale)
                 + pl.bias[o];
    }
}

void
FunctionalExecutor::runActivationInto(const PlannedLayer &pl,
                                      const float *in, float *out)
{
    for (std::size_t i = 0; i < pl.inElems; ++i) {
        const float x = in[i];
        switch (pl.layer.kind) {
          case dnn::LayerKind::Relu: {
            const std::int32_t vals[2] = {
                0, static_cast<std::int32_t>(std::lround(x * 256.0f))};
            out[i] =
                static_cast<float>(bce.maxReduce(vals, 2)) / 256.0f;
            break;
          }
          case dnn::LayerKind::Sigmoid:
            out[i] =
                static_cast<float>(bce.evaluatePwl(sigmoidTable, x));
            break;
          case dnn::LayerKind::Tanh:
            out[i] = static_cast<float>(bce.evaluatePwl(tanhTable, x));
            break;
          default:
            bfree_panic("unsupported activation in functional path");
        }
    }
}

void
FunctionalExecutor::runPoolInto(const PlannedLayer &pl, const float *in,
                                float *out)
{
    const dnn::Layer &layer = pl.layer;
    const dnn::FeatureShape o = layer.outputShape();
    const std::size_t inW = layer.input.w;
    const std::size_t inHW = std::size_t(layer.input.h) * inW;
    const std::size_t outHW = std::size_t(o.h) * o.w;
    std::int32_t *window = arena_.alloc<std::int32_t>(
        std::size_t(layer.kernelH) * layer.kernelW);
    for (unsigned c = 0; c < o.c; ++c) {
        for (unsigned oh = 0; oh < o.h; ++oh) {
            for (unsigned ow = 0; ow < o.w; ++ow) {
                std::size_t wn = 0;
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s) {
                        const int ih =
                            static_cast<int>(oh * layer.strideH + r)
                            - static_cast<int>(layer.padH);
                        const int iw =
                            static_cast<int>(ow * layer.strideW + s)
                            - static_cast<int>(layer.padW);
                        if (ih < 0 || iw < 0
                            || ih >= static_cast<int>(layer.input.h)
                            || iw >= static_cast<int>(layer.input.w))
                            continue;
                        window[wn++] = static_cast<std::int32_t>(
                            std::lround(in[c * inHW + ih * inW + iw]
                                        * 256.0f));
                    }
                }
                float &slot = out[std::size_t(c) * outHW
                                  + std::size_t(oh) * o.w + ow];
                if (layer.kind == dnn::LayerKind::MaxPool) {
                    slot = static_cast<float>(bce.maxReduce(window, wn))
                           / 256.0f;
                } else {
                    // Average pooling: accumulate + LUT division.
                    slot = static_cast<float>(
                               bce.avgPool(window, wn, divisionLut))
                           / 256.0f;
                }
            }
        }
    }
}

void
FunctionalExecutor::runSoftmaxInto(const PlannedLayer &pl,
                                   const float *in, float *out)
{
    const std::size_t n = pl.inElems;
    double *logits = arena_.alloc<double>(n);
    for (std::size_t i = 0; i < n; ++i)
        logits[i] = in[i];
    lut::MicroOpCounts counts;
    lut::lut_softmax_into(logits, n, logits, expTable, divisionLut,
                          &counts);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(logits[i]);
}

void
FunctionalExecutor::runInto(const NetworkPlan &plan, const float *input,
                            std::size_t inElems, float *output,
                            std::size_t outElems)
{
    if (inElems != plan.inputElems())
        bfree_fatal("plan run: input of ", inElems, " elements, plan "
                    "expects ", plan.inputElems());
    if (outElems != plan.outputElems())
        bfree_fatal("plan run: output of ", outElems, " elements, plan "
                    "produces ", plan.outputElems());

    const PlanStats &ps = plan.stats();
    arena_.reserve(ps.arenaBytes);
    arena_.reset();
    // Restart the high-water mark so highWater() reports the peak of
    // the plan actually run — a re-plan that sheds scratch (e.g. a
    // fused front end eliding its quantized plane) must show the
    // shrink instead of the old plan's ghost.
    arena_.resetHighWater();
    float *cur = arena_.alloc<float>(ps.maxActivationElems);
    float *next = arena_.alloc<float>(ps.maxActivationElems);
    std::copy(input, input + inElems, cur);

    const unsigned bits = plan.bits();
    for (const PlannedLayer &pl : plan.layers()) {
        const dnn::TensorArena::Marker marker = arena_.mark();
        switch (pl.layer.kind) {
          case dnn::LayerKind::Conv:
            runConvInto(pl, bits, cur, next);
            break;
          case dnn::LayerKind::Fc:
            runFcInto(pl, bits, cur, next);
            break;
          case dnn::LayerKind::Relu:
          case dnn::LayerKind::Sigmoid:
          case dnn::LayerKind::Tanh:
            runActivationInto(pl, cur, next);
            break;
          case dnn::LayerKind::MaxPool:
          case dnn::LayerKind::AvgPool:
            runPoolInto(pl, cur, next);
            break;
          case dnn::LayerKind::Softmax:
            runSoftmaxInto(pl, cur, next);
            break;
          default:
            bfree_fatal("functional path does not execute layer kind '",
                        dnn::layer_kind_name(pl.layer.kind), "'");
        }
        arena_.release(marker);
        std::swap(cur, next);
    }

    std::copy(cur, cur + outElems, output);
    plan.noteRun();
}

FunctionalResult
FunctionalExecutor::run(const NetworkPlan &plan,
                        const dnn::FloatTensor &input)
{
    dnn::FloatTensor out(plan.outputShape());
    runInto(plan, input.data(), input.size(), out.data(), out.size());
    return FunctionalResult{std::move(out), bce.stats()};
}

FunctionalResult
FunctionalExecutor::run(const dnn::Network &net,
                        const dnn::FloatTensor &input,
                        const NetworkWeights &weights, unsigned bits)
{
    return run(NetworkPlan::compile(net, weights, bits), input);
}

dnn::FloatTensor
FunctionalExecutor::qMatmulFrozen(const dnn::FloatTensor &a,
                                  const dnn::QuantizedWeights &wt,
                                  std::size_t k, std::size_t n)
{
    if (a.rank() != 2 || a.dim(1) != k)
        bfree_panic("qMatmul: a must be [m][k]");
    if (wt.count() != k * n)
        bfree_panic("qMatmulFrozen: expected an n x k tile of ", k * n,
                    " values, got ", wt.count());
    const unsigned bits = wt.bits;
    const std::size_t m = a.dim(0);

    const SymQuant qa = choose_sym(a.data(), a.size(), bits);

    bce.setMode(bce::BceMode::Matmul);
    dnn::FloatTensor out({m, n});

    if (bits <= 8) {
        // Quantize A row-major (per call — it is the activation side);
        // the B^T tile is already frozen. One blocked GEMM tile.
        std::vector<std::int8_t> qrows(m * k);
        dnn::quantize_span(qa, a.data(), m * k, qrows.data());

        std::vector<std::int32_t> accs(m * n, 0);
        bce.matmulTile(qrows.data(), wt.q8.data(), accs.data(), m, k, n,
                       bits);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j)
                out.at(i, j) =
                    static_cast<float>(accs[i * n + j] * qa.scale
                                       * wt.scale.scale);
        return out;
    }

    std::vector<std::int8_t> qrow(k);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p)
            qrow[p] = static_cast<std::int8_t>(qa.q(a.at(i, p)));
        for (std::size_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::size_t p = 0; p < k; ++p) {
                const std::int32_t wq = wt.q32[j * k + p];
                std::int32_t lane = 0;
                bce.broadcastMac(wq, &qrow[p], 1, &lane, bits);
                acc += lane;
            }
            out.at(i, j) = static_cast<float>(acc * qa.scale
                                              * wt.scale.scale);
        }
    }
    return out;
}

dnn::FloatTensor
FunctionalExecutor::qMatmul(const dnn::FloatTensor &a, const float *w,
                            std::size_t k, std::size_t n, unsigned bits)
{
    return qMatmulFrozen(a, dnn::freeze_weights_transposed(w, k, n, bits),
                         k, n);
}

dnn::LstmState
FunctionalExecutor::lstmStepImpl(const dnn::Layer &layer,
                                 const std::vector<float> &x,
                                 const dnn::LstmState &prev,
                                 const dnn::QuantizedWeights &gatesW,
                                 const std::vector<float> &bias)
{
    const unsigned in = layer.lstmInput;
    const unsigned hid = layer.lstmHidden;
    const unsigned cols = in + hid;
    if (x.size() != in || prev.h.size() != hid)
        bfree_fatal("runLstmStep: state size mismatch");

    // Concatenate [x, h] into one row vector and run the packed gate
    // matvec on the broadcast datapath: [1][cols] x [cols][4*hid]. The
    // frozen row-major [4*hid][cols] gate matrix is exactly the
    // transposed tile that product wants.
    dnn::FloatTensor xh({std::size_t(1), cols});
    for (unsigned i = 0; i < in; ++i)
        xh.at(0, i) = x[i];
    for (unsigned i = 0; i < hid; ++i)
        xh.at(0, in + i) = prev.h[i];

    const dnn::FloatTensor gates =
        qMatmulFrozen(xh, gatesW, cols, std::size_t(4) * hid);

    dnn::LstmState next;
    next.h.resize(hid);
    next.c.resize(hid);
    for (unsigned j = 0; j < hid; ++j) {
        const double i_g = bce.evaluatePwl(
            sigmoidTable, gates.at(0, 0 * hid + j) + bias[0 * hid + j]);
        const double f_g = bce.evaluatePwl(
            sigmoidTable, gates.at(0, 1 * hid + j) + bias[1 * hid + j]);
        const double g_g = bce.evaluatePwl(
            tanhTable, gates.at(0, 2 * hid + j) + bias[2 * hid + j]);
        const double o_g = bce.evaluatePwl(
            sigmoidTable, gates.at(0, 3 * hid + j) + bias[3 * hid + j]);
        const double c_new = f_g * prev.c[j] + i_g * g_g;
        next.c[j] = static_cast<float>(c_new);
        next.h[j] = static_cast<float>(
            o_g * bce.evaluatePwl(tanhTable, c_new));
    }
    return next;
}

dnn::LstmState
FunctionalExecutor::runLstmStep(const NetworkPlan &plan,
                                std::size_t layerIndex,
                                const std::vector<float> &x,
                                const dnn::LstmState &prev)
{
    if (layerIndex >= plan.layers().size())
        bfree_fatal("runLstmStep: layer index ", layerIndex,
                    " out of range");
    const PlannedLayer &pl = plan.layers()[layerIndex];
    if (pl.layer.kind != dnn::LayerKind::LstmCell)
        bfree_fatal("runLstmStep: layer '", pl.layer.name,
                    "' is not an LSTM cell");
    plan.noteRun();
    return lstmStepImpl(pl.layer, x, prev, pl.frozen[0], pl.bias);
}

dnn::LstmState
FunctionalExecutor::runLstmStep(const dnn::Layer &layer,
                                const std::vector<float> &x,
                                const dnn::LstmState &prev,
                                const LayerWeights &w, unsigned bits)
{
    const unsigned cols = layer.lstmInput + layer.lstmHidden;
    if (w.weights.size() != std::size_t(4) * layer.lstmHidden * cols
        || w.bias.size() != std::size_t(4) * layer.lstmHidden)
        bfree_fatal("runLstmStep: weight size mismatch");
    return lstmStepImpl(layer, x, prev,
                        dnn::freeze_weights(w.weights.data(),
                                            w.weights.size(), bits),
                        w.bias);
}

dnn::FloatTensor
FunctionalExecutor::attentionImpl(const dnn::Layer &layer,
                                  const dnn::FloatTensor &input,
                                  const dnn::QuantizedWeights *proj)
{
    const unsigned s = layer.seqLen;
    const unsigned d = layer.dModel;
    if (input.rank() != 2 || input.dim(0) != s || input.dim(1) != d)
        bfree_fatal("runAttention: input must be [seq][d]");

    const dnn::FloatTensor q = qMatmulFrozen(input, proj[0], d, d);
    const dnn::FloatTensor k = qMatmulFrozen(input, proj[1], d, d);
    const dnn::FloatTensor v = qMatmulFrozen(input, proj[2], d, d);

    // Scores: Q x K^T, scaled; softmax per row through the LUT path.
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    dnn::FloatTensor context({s, d});
    std::vector<double> row(s);
    for (unsigned i = 0; i < s; ++i) {
        // K^T as a [d][s] weight block for the broadcast datapath.
        for (unsigned j = 0; j < s; ++j) {
            float acc = 0.0f;
            for (unsigned p = 0; p < d; ++p)
                acc += q.at(i, p) * k.at(j, p);
            row[j] = acc * scale;
        }
        lut::MicroOpCounts counts;
        const std::vector<double> probs =
            lut::lut_softmax(row, expTable, divisionLut, &counts);
        for (unsigned p = 0; p < d; ++p) {
            double acc = 0.0;
            for (unsigned j = 0; j < s; ++j)
                acc += probs[j] * v.at(j, p);
            context.at(i, p) = static_cast<float>(acc);
        }
    }
    return qMatmulFrozen(context, proj[3], d, d);
}

dnn::FloatTensor
FunctionalExecutor::runAttention(const NetworkPlan &plan,
                                 std::size_t layerIndex,
                                 const dnn::FloatTensor &input)
{
    if (layerIndex >= plan.layers().size())
        bfree_fatal("runAttention: layer index ", layerIndex,
                    " out of range");
    const PlannedLayer &pl = plan.layers()[layerIndex];
    if (pl.layer.kind != dnn::LayerKind::Attention)
        bfree_fatal("runAttention: layer '", pl.layer.name,
                    "' is not an attention block");
    plan.noteRun();
    return attentionImpl(pl.layer, input, pl.frozen.data());
}

dnn::FloatTensor
FunctionalExecutor::runAttention(const dnn::Layer &layer,
                                 const dnn::FloatTensor &input,
                                 const LayerWeights &w, unsigned bits)
{
    const std::size_t dd = std::size_t(layer.dModel) * layer.dModel;
    if (w.weights.size() != 4 * dd)
        bfree_fatal("runAttention: weights must pack wq|wk|wv|wo");
    dnn::QuantizedWeights proj[4];
    for (unsigned b = 0; b < 4; ++b)
        proj[b] = dnn::freeze_weights_transposed(
            w.weights.data() + b * dd, layer.dModel, layer.dModel, bits);
    return attentionImpl(layer, input, proj);
}

BatchResult
run_functional_batch(const NetworkPlan &plan,
                     const std::vector<dnn::FloatTensor> &inputs,
                     const BatchOptions &opts)
{
    std::vector<const dnn::FloatTensor *> borrowed;
    borrowed.reserve(inputs.size());
    for (const dnn::FloatTensor &in : inputs)
        borrowed.push_back(&in);
    return run_functional_batch(plan, borrowed, opts);
}

BatchResult
run_functional_batch(const NetworkPlan &plan,
                     const std::vector<const dnn::FloatTensor *> &inputs,
                     const BatchOptions &opts)
{
    BatchResult result;
    const std::size_t n = inputs.size();
    result.outputs.reserve(n);
    for (const dnn::FloatTensor *in : inputs) {
        if (in == nullptr)
            bfree_fatal("null input tensor in batch dispatch");
        if (in->size() != plan.inputElems())
            bfree_fatal("batch input of ", in->size(), " elements, plan "
                        "expects ", plan.inputElems());
        // The executor quantizes these user buffers straight into
        // 64-byte-aligned arena spans; the float loads themselves only
        // need natural alignment, but a buffer that misses even that
        // points at a caller-side lifetime or aliasing bug — refuse it
        // here with a usable message rather than faulting in a kernel.
        if (reinterpret_cast<std::uintptr_t>(in->data())
                % alignof(float) != 0)
            bfree_fatal("batch input tensor data at ",
                        static_cast<const void *>(in->data()),
                        " is not aligned for float access; pass "
                        "naturally-aligned buffers to "
                        "run_functional_batch");
        result.outputs.emplace_back(plan.outputShape());
    }
    if (n == 0)
        return result;

    const unsigned threads = sim::resolve_threads(opts.threads);
    const std::size_t chunks = std::min<std::size_t>(threads, n);
    const std::size_t per = (n + chunks - 1) / chunks;

    // Contiguous chunks, one long-lived executor each: the memoized
    // datapath tables and the arena are paid once per worker. Each
    // input's BCE activity is captured as a snapshot delta into its
    // own slot, then reduced in input order below — integer sums in a
    // fixed order, so the totals cannot depend on scheduling.
    std::vector<bce::BceStats> perInput(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * per;
        const std::size_t end = std::min(n, begin + per);
        if (begin >= end)
            break;
        tasks.push_back([&plan, &inputs, &result, &perInput, &opts,
                         begin, end] {
            FunctionalExecutor exec(opts.geom, opts.tech, opts.tier);
            for (std::size_t i = begin; i < end; ++i) {
                const bce::BceStats before = exec.stats();
                exec.runInto(plan, inputs[i]->data(), inputs[i]->size(),
                             result.outputs[i].data(),
                             result.outputs[i].size());
                // Park the datapath back in conv mode INSIDE the
                // measured window: the delta then includes the
                // return-to-conv switch and every input starts from
                // the same mode, making the per-input delta
                // independent of the input's position in its chunk —
                // which is what keeps batch statistics bit-identical
                // across thread counts.
                exec.parkDatapath();
                perInput[i] = exec.stats() - before;
            }
        });
    }
    sim::ThreadPool pool(threads);
    pool.run(std::move(tasks));

    for (const bce::BceStats &s : perInput)
        result.stats += s;

    // One bulk energy conversion from the summed integer tallies — the
    // same closed-form deposit Bce::flushEnergy performs, so the batch
    // energy equals a sequential run's datapath energy exactly. The
    // per-worker LUT-image load is deliberately excluded (fixed
    // per-executor setup, not batch work).
    mem::BceEnergyTallies tallies;
    tallies.romLookups = result.stats.counts.romLookups;
    tallies.lutReadsPim = result.stats.lutReadsPim;
    tallies.lutReadsCache = result.stats.lutReadsCache;
    tallies.specialLutEvents = result.stats.specialLutEvents;
    tallies.cyclesByMode = result.stats.cyclesByMode;
    mem::MicroOpEnergyModel(opts.tech).deposit(tallies, result.energy);
    return result;
}

} // namespace bfree::core
