#include "functional.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bfree::core {

NetworkWeights
random_weights(const dnn::Network &net, sim::Rng &rng, double scale)
{
    NetworkWeights all;
    all.reserve(net.layers().size());
    for (const dnn::Layer &l : net.layers()) {
        LayerWeights w;
        std::size_t count = 0;
        std::size_t biases = 0;
        switch (l.kind) {
          case dnn::LayerKind::Conv:
            count = std::size_t(l.outChannels) * l.input.c * l.kernelH
                    * l.kernelW;
            biases = l.outChannels;
            break;
          case dnn::LayerKind::Fc:
            count = std::size_t(l.inFeatures) * l.outFeatures;
            biases = l.outFeatures;
            break;
          case dnn::LayerKind::LstmCell:
            count = std::size_t(4) * (l.lstmInput + l.lstmHidden)
                    * l.lstmHidden;
            biases = std::size_t(4) * l.lstmHidden;
            break;
          case dnn::LayerKind::Attention:
            count = std::size_t(4) * l.dModel * l.dModel;
            biases = 0;
            break;
          default:
            break;
        }
        w.weights.resize(count);
        w.bias.resize(biases);
        for (float &v : w.weights)
            v = static_cast<float>(rng.uniformReal(-scale, scale));
        for (float &v : w.bias)
            v = static_cast<float>(rng.uniformReal(-scale, scale) * 0.1);
        all.push_back(std::move(w));
    }
    return all;
}

FunctionalExecutor::FunctionalExecutor(const tech::CacheGeometry &geom,
                                       const tech::TechParams &tech,
                                       bce::ExecTier tier)
    : geom(geom), tech(tech), subarray(geom, tech, account),
      bce(subarray, tech, account), divisionLut(4),
      sigmoidTable(lut::make_sigmoid_table()),
      tanhTable(lut::make_tanh_table()),
      expTable(lut::make_exp_table())
{
    bce.setTier(tier);
    bce.loadMultLutImage();
}

// Symmetric per-tensor quantization lives in dnn::SymQuant /
// dnn::choose_sym, shared with the detailed cache driver so both paths
// quantize (and so dequantize) bit-identically.
using dnn::SymQuant;
using dnn::choose_sym;

dnn::FloatTensor
FunctionalExecutor::runConv(const dnn::Layer &layer,
                            const dnn::FloatTensor &input,
                            const LayerWeights &w, unsigned bits)
{
    const dnn::FeatureShape out = layer.outputShape();
    const SymQuant qi = choose_sym(input.data(), input.size(), bits);
    const SymQuant qw =
        choose_sym(w.weights.data(), w.weights.size(), bits);

    bce.setMode(bce::BceMode::Conv);
    dnn::FloatTensor output({out.c, out.h, out.w});

    const std::size_t patch_len =
        std::size_t(layer.input.c) * layer.kernelH * layer.kernelW;

    if (bits <= 8) {
        // Quantize the whole filter bank once up front: q() is a pure
        // function, so hoisting it out of the spatial loops is
        // bit-identical to quantizing at every use. The filter layout
        // [outC][inC][kh][kw] already matches the im2col patch order,
        // so each filter is one contiguous span.
        std::vector<std::int8_t> qweights(w.weights.size());
        for (std::size_t i = 0; i < w.weights.size(); ++i)
            qweights[i] = static_cast<std::int8_t>(qw.q(w.weights[i]));

        // im2col with patch reuse: gather each input window once per
        // (oh, ow) and run it against every output channel, instead of
        // re-walking the window per (k, oh, ow). Out-of-bounds taps
        // gather a literal 0, which the LUT datapath multiplies for
        // free (zero operands short-circuit with no micro-ops).
        std::vector<std::int8_t> patch(patch_len);
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow) {
                std::size_t p = 0;
                for (unsigned c = 0; c < layer.input.c; ++c) {
                    for (unsigned r = 0; r < layer.kernelH; ++r) {
                        for (unsigned s = 0; s < layer.kernelW;
                             ++s, ++p) {
                            const int ih = static_cast<int>(
                                               oh * layer.strideH + r)
                                           - static_cast<int>(layer.padH);
                            const int iw = static_cast<int>(
                                               ow * layer.strideW + s)
                                           - static_cast<int>(layer.padW);
                            const bool inside =
                                ih >= 0 && iw >= 0
                                && ih < static_cast<int>(layer.input.h)
                                && iw < static_cast<int>(layer.input.w);
                            patch[p] =
                                inside ? static_cast<std::int8_t>(
                                             qi.q(input.at(c, ih, iw)))
                                       : std::int8_t{0};
                        }
                    }
                }
                for (unsigned k = 0; k < out.c; ++k) {
                    const std::int32_t acc = bce.dotProductSpan(
                        &qweights[std::size_t(k) * patch_len],
                        patch.data(), patch_len, bits);
                    output.at(k, oh, ow) =
                        static_cast<float>(acc * qw.scale * qi.scale)
                        + w.bias[k];
                }
            }
        }
        return output;
    }

    // 16-bit operands exceed the int8 patch element; run scalar
    // multiplies over an int32 patch with the same reuse structure.
    std::vector<std::int32_t> qweights(w.weights.size());
    for (std::size_t i = 0; i < w.weights.size(); ++i)
        qweights[i] = qw.q(w.weights[i]);

    std::vector<std::int32_t> patch(patch_len);
    for (unsigned oh = 0; oh < out.h; ++oh) {
        for (unsigned ow = 0; ow < out.w; ++ow) {
            std::size_t p = 0;
            for (unsigned c = 0; c < layer.input.c; ++c) {
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s, ++p) {
                        const int ih = static_cast<int>(
                                           oh * layer.strideH + r)
                                       - static_cast<int>(layer.padH);
                        const int iw = static_cast<int>(
                                           ow * layer.strideW + s)
                                       - static_cast<int>(layer.padW);
                        const bool inside =
                            ih >= 0 && iw >= 0
                            && ih < static_cast<int>(layer.input.h)
                            && iw < static_cast<int>(layer.input.w);
                        patch[p] =
                            inside ? qi.q(input.at(c, ih, iw)) : 0;
                    }
                }
            }
            for (unsigned k = 0; k < out.c; ++k) {
                std::int64_t acc = 0;
                const std::size_t base = std::size_t(k) * patch_len;
                for (std::size_t q = 0; q < patch_len; ++q)
                    acc += bce.multiply(qweights[base + q], patch[q],
                                        bits);
                output.at(k, oh, ow) =
                    static_cast<float>(acc * qw.scale * qi.scale)
                    + w.bias[k];
            }
        }
    }
    return output;
}

dnn::FloatTensor
FunctionalExecutor::runFc(const dnn::Layer &layer,
                          const dnn::FloatTensor &input,
                          const LayerWeights &w, unsigned bits)
{
    const SymQuant qi = choose_sym(input.data(), input.size(), bits);
    const SymQuant qw =
        choose_sym(w.weights.data(), w.weights.size(), bits);

    // FC layers run on the matmul-mode broadcast datapath.
    bce.setMode(bce::BceMode::Matmul);
    dnn::FloatTensor output({layer.outFeatures, std::size_t(1),
                             std::size_t(1)});
    std::vector<std::int8_t> qin(layer.inFeatures);
    for (unsigned i = 0; i < layer.inFeatures; ++i)
        qin[i] = static_cast<std::int8_t>(qi.q(input[i]));

    if (bits <= 8) {
        // The weight matrix is stored [outFeatures][inFeatures] — it
        // already is the transposed-B tile matmulTile wants, so the
        // whole layer is one blocked GEMM over the LUT datapath.
        const std::size_t k = layer.inFeatures;
        const std::size_t n = layer.outFeatures;
        std::vector<std::int8_t> qwt(n * k);
        for (std::size_t i = 0; i < qwt.size(); ++i)
            qwt[i] = static_cast<std::int8_t>(qw.q(w.weights[i]));

        std::vector<std::int32_t> accs(n, 0);
        bce.matmulTile(qin.data(), qwt.data(), accs.data(), 1, k, n,
                       bits);
        for (unsigned o = 0; o < layer.outFeatures; ++o)
            output[o] = static_cast<float>(accs[o] * qw.scale * qi.scale)
                        + w.bias[o];
        return output;
    }

    // 16-bit weights exceed the int8 span; broadcast them one at a
    // time as before.
    for (unsigned o = 0; o < layer.outFeatures; ++o) {
        std::int64_t acc = 0;
        const std::size_t row = std::size_t(o) * layer.inFeatures;
        for (unsigned i = 0; i < layer.inFeatures; i += 8) {
            const std::size_t n =
                std::min<std::size_t>(8, layer.inFeatures - i);
            std::int32_t lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            // Broadcast each weight against up to 8 input lanes.
            for (std::size_t j = 0; j < n; ++j) {
                const std::int32_t wq = qw.q(w.weights[row + i + j]);
                std::int32_t lane = 0;
                bce.broadcastMac(wq, &qin[i + j], 1, &lane, bits);
                lanes[j] = lane;
            }
            for (std::size_t j = 0; j < n; ++j)
                acc += lanes[j];
        }
        output[o] = static_cast<float>(acc * qw.scale * qi.scale)
                    + w.bias[o];
    }
    return output;
}

dnn::FloatTensor
FunctionalExecutor::runActivation(const dnn::Layer &layer,
                                  const dnn::FloatTensor &input)
{
    dnn::FloatTensor output(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i) {
        const float x = input[i];
        switch (layer.kind) {
          case dnn::LayerKind::Relu: {
            const std::int32_t vals[2] = {
                0, static_cast<std::int32_t>(std::lround(x * 256.0f))};
            output[i] =
                static_cast<float>(bce.maxReduce(vals, 2)) / 256.0f;
            break;
          }
          case dnn::LayerKind::Sigmoid:
            output[i] =
                static_cast<float>(bce.evaluatePwl(sigmoidTable, x));
            break;
          case dnn::LayerKind::Tanh:
            output[i] =
                static_cast<float>(bce.evaluatePwl(tanhTable, x));
            break;
          default:
            bfree_panic("unsupported activation in functional path");
        }
    }
    return output;
}

dnn::FloatTensor
FunctionalExecutor::runPool(const dnn::Layer &layer,
                            const dnn::FloatTensor &input)
{
    const dnn::FeatureShape out = layer.outputShape();
    dnn::FloatTensor output({out.c, out.h, out.w});
    std::vector<std::int32_t> window;
    window.reserve(std::size_t(layer.kernelH) * layer.kernelW);
    for (unsigned c = 0; c < out.c; ++c) {
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow) {
                window.clear();
                for (unsigned r = 0; r < layer.kernelH; ++r) {
                    for (unsigned s = 0; s < layer.kernelW; ++s) {
                        const int ih =
                            static_cast<int>(oh * layer.strideH + r)
                            - static_cast<int>(layer.padH);
                        const int iw =
                            static_cast<int>(ow * layer.strideW + s)
                            - static_cast<int>(layer.padW);
                        if (ih < 0 || iw < 0
                            || ih >= static_cast<int>(layer.input.h)
                            || iw >= static_cast<int>(layer.input.w))
                            continue;
                        window.push_back(static_cast<std::int32_t>(
                            std::lround(input.at(c, ih, iw) * 256.0f)));
                    }
                }
                if (layer.kind == dnn::LayerKind::MaxPool) {
                    output.at(c, oh, ow) =
                        static_cast<float>(
                            bce.maxReduce(window.data(), window.size()))
                        / 256.0f;
                } else {
                    // Average pooling: accumulate + LUT division.
                    output.at(c, oh, ow) =
                        static_cast<float>(bce.avgPool(window.data(),
                                                       window.size(),
                                                       divisionLut))
                        / 256.0f;
                }
            }
        }
    }
    return output;
}

dnn::FloatTensor
FunctionalExecutor::runSoftmax(const dnn::FloatTensor &input)
{
    std::vector<double> logits(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        logits[i] = input[i];
    lut::MicroOpCounts counts;
    const std::vector<double> probs =
        lut::lut_softmax(logits, expTable, divisionLut, &counts);
    dnn::FloatTensor output(input.shape());
    for (std::size_t i = 0; i < probs.size(); ++i)
        output[i] = static_cast<float>(probs[i]);
    return output;
}

dnn::FloatTensor
FunctionalExecutor::qMatmul(const dnn::FloatTensor &a, const float *w,
                            std::size_t k, std::size_t n, unsigned bits)
{
    if (a.rank() != 2 || a.dim(1) != k)
        bfree_panic("qMatmul: a must be [m][k]");
    const std::size_t m = a.dim(0);

    const SymQuant qa = choose_sym(a.data(), a.size(), bits);
    const SymQuant qw = choose_sym(w, k * n, bits);

    bce.setMode(bce::BceMode::Matmul);
    dnn::FloatTensor out({m, n});

    if (bits <= 8) {
        // Quantize A row-major and W transposed (both once — q() is
        // pure), then run the whole product as one blocked GEMM tile.
        std::vector<std::int8_t> qrows(m * k);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t p = 0; p < k; ++p)
                qrows[i * k + p] =
                    static_cast<std::int8_t>(qa.q(a.at(i, p)));
        std::vector<std::int8_t> qbt(n * k);
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t p = 0; p < k; ++p)
                qbt[j * k + p] =
                    static_cast<std::int8_t>(qw.q(w[p * n + j]));

        std::vector<std::int32_t> accs(m * n, 0);
        bce.matmulTile(qrows.data(), qbt.data(), accs.data(), m, k, n,
                       bits);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < n; ++j)
                out.at(i, j) = static_cast<float>(accs[i * n + j]
                                                  * qa.scale * qw.scale);
        return out;
    }

    std::vector<std::int8_t> qrow(k);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p)
            qrow[p] = static_cast<std::int8_t>(qa.q(a.at(i, p)));
        for (std::size_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::size_t p = 0; p < k; ++p) {
                const std::int32_t wq = qw.q(w[p * n + j]);
                std::int32_t lane = 0;
                bce.broadcastMac(wq, &qrow[p], 1, &lane, bits);
                acc += lane;
            }
            out.at(i, j) =
                static_cast<float>(acc * qa.scale * qw.scale);
        }
    }
    return out;
}

dnn::LstmState
FunctionalExecutor::runLstmStep(const dnn::Layer &layer,
                                const std::vector<float> &x,
                                const dnn::LstmState &prev,
                                const LayerWeights &w, unsigned bits)
{
    const unsigned in = layer.lstmInput;
    const unsigned hid = layer.lstmHidden;
    const unsigned cols = in + hid;
    if (x.size() != in || prev.h.size() != hid)
        bfree_fatal("runLstmStep: state size mismatch");
    if (w.weights.size() != std::size_t(4) * hid * cols
        || w.bias.size() != std::size_t(4) * hid)
        bfree_fatal("runLstmStep: weight size mismatch");

    // Concatenate [x, h] into one row vector and run the packed gate
    // matvec on the broadcast datapath: [1][cols] x [cols][4*hid].
    dnn::FloatTensor xh({std::size_t(1), cols});
    for (unsigned i = 0; i < in; ++i)
        xh.at(0, i) = x[i];
    for (unsigned i = 0; i < hid; ++i)
        xh.at(0, in + i) = prev.h[i];

    // The reference stores gate weights row-major [4*hid][cols];
    // transpose into [cols][4*hid] for qMatmul.
    std::vector<float> wt(std::size_t(cols) * 4 * hid);
    for (std::size_t g = 0; g < std::size_t(4) * hid; ++g)
        for (unsigned c = 0; c < cols; ++c)
            wt[std::size_t(c) * 4 * hid + g] =
                w.weights[g * cols + c];

    const dnn::FloatTensor gates =
        qMatmul(xh, wt.data(), cols, std::size_t(4) * hid, bits);

    dnn::LstmState next;
    next.h.resize(hid);
    next.c.resize(hid);
    for (unsigned j = 0; j < hid; ++j) {
        const double i_g = bce.evaluatePwl(
            sigmoidTable, gates.at(0, 0 * hid + j) + w.bias[0 * hid + j]);
        const double f_g = bce.evaluatePwl(
            sigmoidTable, gates.at(0, 1 * hid + j) + w.bias[1 * hid + j]);
        const double g_g = bce.evaluatePwl(
            tanhTable, gates.at(0, 2 * hid + j) + w.bias[2 * hid + j]);
        const double o_g = bce.evaluatePwl(
            sigmoidTable, gates.at(0, 3 * hid + j) + w.bias[3 * hid + j]);
        const double c_new = f_g * prev.c[j] + i_g * g_g;
        next.c[j] = static_cast<float>(c_new);
        next.h[j] = static_cast<float>(
            o_g * bce.evaluatePwl(tanhTable, c_new));
    }
    return next;
}

dnn::FloatTensor
FunctionalExecutor::runAttention(const dnn::Layer &layer,
                                 const dnn::FloatTensor &input,
                                 const LayerWeights &w, unsigned bits)
{
    const unsigned s = layer.seqLen;
    const unsigned d = layer.dModel;
    if (input.rank() != 2 || input.dim(0) != s || input.dim(1) != d)
        bfree_fatal("runAttention: input must be [seq][d]");
    const std::size_t dd = std::size_t(d) * d;
    if (w.weights.size() != 4 * dd)
        bfree_fatal("runAttention: weights must pack wq|wk|wv|wo");

    const float *wq = w.weights.data();
    const float *wk = w.weights.data() + dd;
    const float *wv = w.weights.data() + 2 * dd;
    const float *wo = w.weights.data() + 3 * dd;

    const dnn::FloatTensor q = qMatmul(input, wq, d, d, bits);
    const dnn::FloatTensor k = qMatmul(input, wk, d, d, bits);
    const dnn::FloatTensor v = qMatmul(input, wv, d, d, bits);

    // Scores: Q x K^T, scaled; softmax per row through the LUT path.
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    dnn::FloatTensor context({s, d});
    std::vector<double> row(s);
    for (unsigned i = 0; i < s; ++i) {
        // K^T as a [d][s] weight block for the broadcast datapath.
        for (unsigned j = 0; j < s; ++j) {
            float acc = 0.0f;
            for (unsigned p = 0; p < d; ++p)
                acc += q.at(i, p) * k.at(j, p);
            row[j] = acc * scale;
        }
        lut::MicroOpCounts counts;
        const std::vector<double> probs =
            lut::lut_softmax(row, expTable, divisionLut, &counts);
        for (unsigned p = 0; p < d; ++p) {
            double acc = 0.0;
            for (unsigned j = 0; j < s; ++j)
                acc += probs[j] * v.at(j, p);
            context.at(i, p) = static_cast<float>(acc);
        }
    }
    return qMatmul(context, wo, d, d, bits);
}

FunctionalResult
FunctionalExecutor::run(const dnn::Network &net,
                        const dnn::FloatTensor &input,
                        const NetworkWeights &weights, unsigned bits)
{
    if (weights.size() != net.layers().size())
        bfree_fatal("functional run: expected ", net.layers().size(),
                    " weight entries, got ", weights.size());

    dnn::FloatTensor act = input;
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
        const dnn::Layer &layer = net.layers()[i];
        switch (layer.kind) {
          case dnn::LayerKind::Conv:
            act = runConv(layer, act, weights[i], bits);
            break;
          case dnn::LayerKind::Fc: {
            // Flatten the activation into the FC's input vector.
            if (act.size() != layer.inFeatures)
                bfree_fatal("fc '", layer.name, "': flattened input of ",
                            act.size(), " != ", layer.inFeatures);
            dnn::FloatTensor flat({layer.inFeatures, std::size_t(1),
                                   std::size_t(1)});
            for (std::size_t j = 0; j < act.size(); ++j)
                flat[j] = act[j];
            act = runFc(layer, flat, weights[i], bits);
            break;
          }
          case dnn::LayerKind::Relu:
          case dnn::LayerKind::Sigmoid:
          case dnn::LayerKind::Tanh:
            act = runActivation(layer, act);
            break;
          case dnn::LayerKind::MaxPool:
          case dnn::LayerKind::AvgPool:
            act = runPool(layer, act);
            break;
          case dnn::LayerKind::Softmax:
            act = runSoftmax(act);
            break;
          default:
            bfree_fatal("functional path does not execute layer kind '",
                        dnn::layer_kind_name(layer.kind), "'");
        }
    }

    FunctionalResult r{std::move(act), bce.stats()};
    return r;
}

} // namespace bfree::core
