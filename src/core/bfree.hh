/**
 * @file
 * BFree public API: the accelerator facade.
 *
 * This is the header a downstream user includes. It wires together the
 * geometry, technology parameters, mapper and execution model, and
 * exposes:
 *
 *  - run():        per-inference latency/energy of a network on BFree
 *                  (Fig. 12/13/14, Table III);
 *  - area():       the Section V-B area accounting;
 *  - baselines:    Neural Cache / Eyeriss / CPU / GPU comparisons;
 *  - functional echos through core/functional.hh for bit-exact
 *    quantized inference through the LUT datapath.
 */

#ifndef BFREE_CORE_BFREE_HH
#define BFREE_CORE_BFREE_HH

#include "baselines/cpu_gpu.hh"
#include "baselines/eyeriss.hh"
#include "baselines/neural_cache.hh"
#include "core/functional.hh"
#include "core/network_plan.hh"
#include "dnn/model_zoo.hh"
#include "dnn/network.hh"
#include "map/exec_model.hh"
#include "tech/area_model.hh"
#include "verify/diagnostic.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::core {

/** Construction options of the accelerator facade. */
struct AcceleratorOptions
{
    tech::CacheGeometry geometry{};
    tech::TechParams tech{};
};

/**
 * Top-level accelerator facade.
 */
class BFreeAccelerator
{
  public:
    using Options = AcceleratorOptions;

    explicit BFreeAccelerator(Options options = {});

    /** Geometry of the modelled cache. */
    const tech::CacheGeometry &geometry() const { return opts.geometry; }

    /** Technology parameters. */
    const tech::TechParams &techParams() const { return opts.tech; }

    /**
     * Run @p net on BFree. @p config defaults to batch 1 on DRAM with
     * all slices and automatic mode selection.
     *
     * Every layer is compiled and statically verified first; a network
     * with any error-severity finding is rejected (result.rejected,
     * zero time/energy) with the findings in result.diagnostics.
     */
    map::RunResult run(const dnn::Network &net,
                       map::ExecConfig config = {}) const;

    /**
     * Statically verify @p net without executing it: compile every
     * layer and collect the verifier findings, locations prefixed with
     * the layer names. The core of `bfree_lint` / `bfree_cli --lint`.
     */
    verify::VerifyReport lint(const dnn::Network &net,
                              map::ExecConfig config = {}) const;

    /**
     * Run many (network, config) sweep points in parallel on the
     * work-stealing pool. Results are in job order and bit-identical
     * for any thread count; @p threads = 0 uses hardware concurrency.
     */
    std::vector<map::RunResult>
    runMany(const std::vector<map::ExecJob> &jobs,
            unsigned threads = 0) const;

    /** Run the Neural Cache baseline under the same configuration. */
    map::RunResult runNeuralCache(const dnn::Network &net,
                                  map::ExecConfig config = {}) const;

    /** Run the iso-area Eyeriss baseline (Fig. 13 setup). */
    map::RunResult runEyeriss(const dnn::Network &net) const;

    /** Run the calibrated CPU baseline. */
    baseline::BaselineResult runCpu(const dnn::Network &net,
                                    unsigned batch = 1) const;

    /** Run the calibrated GPU baseline. */
    baseline::BaselineResult runGpu(const dnn::Network &net,
                                    unsigned batch = 1) const;

    /**
     * Compile a functional execution plan for @p net: weights
     * quantized and frozen once, scratch arena sized. Amortize the
     * returned plan across runFunctional / runFunctionalBatch calls;
     * recompile when the network, weights or precision change.
     */
    NetworkPlan compilePlan(const dnn::Network &net,
                            const NetworkWeights &weights,
                            unsigned bits = 8) const;

    /** Run a compiled plan functionally on one input. */
    FunctionalResult runFunctional(const NetworkPlan &plan,
                                   const dnn::FloatTensor &input) const;

    /**
     * Run a compiled plan over many inputs on the work-stealing pool;
     * outputs, statistics and energy are bit-identical to a sequential
     * loop for any @p threads (0 = hardware concurrency).
     */
    BatchResult
    runFunctionalBatch(const NetworkPlan &plan,
                       const std::vector<dnn::FloatTensor> &inputs,
                       unsigned threads = 0) const;

    /** Area accounting (Section V-B). */
    tech::AreaReport area() const;

  private:
    Options opts;
};

} // namespace bfree::core

#endif // BFREE_CORE_BFREE_HH
