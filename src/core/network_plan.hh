/**
 * @file
 * Ahead-of-time execution plans for the functional LUT datapath.
 *
 * A NetworkPlan is compiled once per (network, weights, precision)
 * triple and then amortized across every subsequent inference. Compile
 * time does all the work that does not depend on the input:
 *
 *  - every layer's weights are pushed through dnn::SymQuant once and
 *    frozen in the exact layout the steady-state kernels consume
 *    (im2col filter-bank order for conv, the transposed-B GEMM tile
 *    for FC / LSTM / attention projections);
 *  - the symmetric weight scales are chosen (dnn::choose_sym reads only
 *    the peak magnitude, so the choice is layout-independent);
 *  - a dry planning pass sizes one dnn::TensorArena: two ping-ponged
 *    activation buffers plus the worst single layer's scratch. The
 *    steady-state run then makes zero heap allocations.
 *
 * Because SymQuant::q is a pure function, executing from the frozen
 * values is bit-identical to the legacy path that re-quantized on every
 * call — the parity tests assert this float-for-float. A plan is
 * immutable once compiled and safe to share across threads; it must be
 * recompiled whenever the network topology, the weight values, or the
 * precision changes (there is no partial invalidation — see DESIGN.md
 * section 11).
 */

#ifndef BFREE_CORE_NETWORK_PLAN_HH
#define BFREE_CORE_NETWORK_PLAN_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "dnn/im2col.hh"
#include "dnn/network.hh"
#include "dnn/quantize.hh"
#include "dnn/tensor_arena.hh"
#include "sim/random.hh"
#include "verify/diagnostic.hh"

namespace bfree::core {

/** Weights of one layer (flat, reference layout). */
struct LayerWeights
{
    std::vector<float> weights;
    std::vector<float> bias;
};

/** Per-layer weights for a whole network. */
using NetworkWeights = std::vector<LayerWeights>;

/** Draw reproducible random weights for every layer of @p net. */
NetworkWeights random_weights(const dnn::Network &net, sim::Rng &rng,
                              double scale = 0.5);

/** One layer frozen into a plan. */
struct PlannedLayer
{
    /** The layer descriptor, copied so the plan is self-contained. */
    dnn::Layer layer;

    /**
     * Frozen weight tensors. Conv / FC / LSTM layers have one entry
     * (conv in filter-bank order, FC and LSTM already in the
     * transposed-B tile layout the blocked GEMM consumes — the LSTM
     * row-major gate matrix IS that tile, which is what made the legacy
     * per-call transpose redundant). Attention has four entries: the
     * Q / K / V / O projections, each frozen transposed.
     */
    std::vector<dnn::QuantizedWeights> frozen;

    /** Bias terms, copied. */
    std::vector<float> bias;

    std::size_t inElems = 0;  ///< Activation elements consumed.
    std::size_t outElems = 0; ///< Activation elements produced.

    /** Arena scratch bytes this layer allocates while it runs. */
    std::size_t scratchBytes = 0;

    /**
     * How the layer's int8 patches are produced (conv at <= 8 bits
     * only; everything else is Legacy). Chosen at compile time by
     * dnn::resolve_frontend — geometry policy plus the
     * BFREE_FORCE_FRONTEND override — and baked into the plan, so a
     * compiled plan keeps running the mode it was sized for even if
     * the override changes afterwards.
     */
    dnn::FrontendMode frontend = dnn::FrontendMode::Legacy;
};

/** Compile-time accounting of a plan (also the --plan-stats payload). */
struct PlanStats
{
    /** Total arena reservation a steady-state run needs. */
    std::size_t arenaBytes = 0;
    /** The two ping-ponged activation buffers' share of the arena. */
    std::size_t activationBytes = 0;
    /** Worst single layer's scratch (the rest of the arena). */
    std::size_t peakScratchBytes = 0;
    /** Elements of the largest activation crossing a layer boundary. */
    std::size_t maxActivationElems = 0;
    /** Bytes of frozen quantized weights held by the plan. */
    std::size_t frozenWeightBytes = 0;
    /** Weight values pushed through SymQuant::q at compile time. */
    std::uint64_t frozenValues = 0;

    // Front-end mode accounting (conv layers at <= 8 bits).
    std::size_t legacyFrontLayers = 0; ///< Conv layers on the legacy path.
    std::size_t fusedFrontLayers = 0;  ///< Conv layers quantize-fused.
    std::size_t elidedFrontLayers = 0; ///< Conv layers with im2col elided.
    /**
     * Arena bytes of quantized input planes that fused layers no
     * longer allocate (the sum of each fused layer's plane padding —
     * the high-water mark shrinks by up to the largest single saving
     * when the fused layer was the scratch peak).
     */
    std::size_t savedPlaneBytes = 0;
};

/**
 * A compiled, immutable execution plan. Move-only; share by reference.
 */
class NetworkPlan
{
  public:
    NetworkPlan() = default;

    NetworkPlan(NetworkPlan &&o) noexcept { *this = std::move(o); }

    NetworkPlan &
    operator=(NetworkPlan &&o) noexcept
    {
        net_ = std::move(o.net_);
        bits_ = o.bits_;
        layers_ = std::move(o.layers_);
        stats_ = o.stats_;
        inElems_ = o.inElems_;
        outElems_ = o.outElems_;
        outShape_ = std::move(o.outShape_);
        diagnostics_ = std::move(o.diagnostics_);
        served_.store(o.served_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
        return *this;
    }

    /**
     * Compile @p net with @p weights at @p bits precision. Weight
     * layouts and sizes are validated here (fatal on mismatch), so the
     * steady-state path can run unchecked. With @p verify the whole
     * plan is additionally audited by verify::PlanVerifier and the
     * findings recorded in diagnostics() — a plan with
     * !diagnostics().ok() must not be served.
     */
    static NetworkPlan compile(const dnn::Network &net,
                               const NetworkWeights &weights,
                               unsigned bits = 8, bool verify = true);

    /**
     * The dry planning pass alone: shapes, per-layer scratch and the
     * arena size, without touching any weights. compile() uses this
     * same pass, so estimate(net, bits).arenaBytes always equals
     * compile(net, w, bits).stats().arenaBytes.
     */
    static PlanStats estimate(const dnn::Network &net, unsigned bits = 8);

    /**
     * Non-fatal estimate (benches / table probes): returns false when
     * @p net cannot be planned — a branched topology whose flattened
     * layer list does not chain shape-wise, or a layer kind the
     * functional path does not execute — instead of aborting.
     */
    static bool tryEstimate(const dnn::Network &net, unsigned bits,
                            PlanStats &out);

    const dnn::Network &network() const { return net_; }
    unsigned bits() const { return bits_; }

    /** Findings of the verify-on-compile audit (empty when compiled
     *  with verify = false). */
    const verify::VerifyReport &diagnostics() const
    {
        return diagnostics_;
    }
    const std::vector<PlannedLayer> &layers() const { return layers_; }
    const PlanStats &stats() const { return stats_; }

    /** Activation elements the input must supply. */
    std::size_t inputElems() const { return inElems_; }

    /** Activation elements the final layer produces. */
    std::size_t outputElems() const { return outElems_; }

    /** Tensor shape of the final output (legacy run() parity). */
    const std::vector<std::size_t> &outputShape() const
    {
        return outShape_;
    }

    /**
     * Inferences served from this plan so far — how many runs the
     * one-time quantization has been amortized over.
     */
    std::uint64_t
    runsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /** Record one served inference (thread-safe; called by executors). */
    void
    noteRun() const
    {
        served_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    dnn::Network net_{"", dnn::FeatureShape{}};
    unsigned bits_ = 8;
    std::vector<PlannedLayer> layers_;
    PlanStats stats_;
    std::size_t inElems_ = 0;
    std::size_t outElems_ = 0;
    std::vector<std::size_t> outShape_;
    verify::VerifyReport diagnostics_;

    /** Amortization counter; mutable telemetry, not plan state. */
    mutable std::atomic<std::uint64_t> served_{0};
};

} // namespace bfree::core

#endif // BFREE_CORE_NETWORK_PLAN_HH
