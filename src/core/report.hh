/**
 * @file
 * Report formatting: the tables and series the benches print.
 */

#ifndef BFREE_CORE_REPORT_HH
#define BFREE_CORE_REPORT_HH

#include <ostream>
#include <string>

#include "map/exec_model.hh"
#include "mem/energy_account.hh"

namespace bfree::core {

/** Format seconds with an auto-selected unit (s/ms/us/ns). */
std::string format_seconds(double seconds);

/** Format joules with an auto-selected unit (J/mJ/uJ/nJ). */
std::string format_joules(double joules);

/** Format a large count with engineering suffix (K/M/G). */
std::string format_count(double count);

/** Print the per-layer table of a run (name, mode, phases, energy). */
void print_layer_table(std::ostream &os, const map::RunResult &run,
                       std::size_t max_rows = 0);

/** Print the phase breakdown of a run as one row. */
void print_phase_row(std::ostream &os, const std::string &label,
                     const map::PhaseBreakdown &time);

/** Print the phase breakdown as percentage shares. */
void print_phase_shares(std::ostream &os, const std::string &label,
                        const map::PhaseBreakdown &time);

/** Print the energy account by category (optionally excluding DRAM). */
void print_energy_breakdown(std::ostream &os,
                            const mem::EnergyAccount &energy,
                            bool exclude_dram = false);

/** Print a one-line summary (time, energy) of a run. */
void print_summary(std::ostream &os, const map::RunResult &run);

/** Print a Table II-style description of a network: depth, parameter
 *  and MAC totals, then the operator listing. */
void describe_network(std::ostream &os, const dnn::Network &net,
                      std::size_t max_rows = 0);

/** Write the CSV header matching write_csv_rows. */
void write_csv_header(std::ostream &os);

/** Write one CSV row per layer of @p run. */
void write_csv_rows(std::ostream &os, const map::RunResult &run);

} // namespace bfree::core

#endif // BFREE_CORE_REPORT_HH
