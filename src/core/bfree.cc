#include "bfree.hh"

#include "map/kernel_compiler.hh"

namespace bfree::core {

BFreeAccelerator::BFreeAccelerator(Options options)
    : opts(std::move(options))
{}

map::RunResult
BFreeAccelerator::run(const dnn::Network &net, map::ExecConfig config) const
{
    verify::VerifyReport report = lint(net, config);
    if (!report.ok()) {
        map::RunResult rejected;
        rejected.network = net.name();
        rejected.batch = config.batch;
        rejected.diagnostics = std::move(report);
        rejected.rejected = true;
        return rejected;
    }

    map::ExecutionModel model(opts.geometry, opts.tech, config);
    map::RunResult result = model.run(net);
    result.diagnostics = std::move(report);
    return result;
}

verify::VerifyReport
BFreeAccelerator::lint(const dnn::Network &net,
                       map::ExecConfig config) const
{
    const map::KernelCompiler compiler(opts.geometry, config.mapper);
    verify::VerifyReport report;
    for (const dnn::Layer &layer : net.layers()) {
        const map::CompiledKernel kernel = compiler.compile(layer);
        report.merge(kernel.diagnostics, "layer '" + layer.name + "'");
    }
    return report;
}

std::vector<map::RunResult>
BFreeAccelerator::runMany(const std::vector<map::ExecJob> &jobs,
                          unsigned threads) const
{
    return map::run_sweep(opts.geometry, opts.tech, jobs, threads);
}

map::RunResult
BFreeAccelerator::runNeuralCache(const dnn::Network &net,
                                 map::ExecConfig config) const
{
    baseline::NeuralCacheModel model(opts.geometry, opts.tech, config);
    return model.run(net);
}

map::RunResult
BFreeAccelerator::runEyeriss(const dnn::Network &net) const
{
    baseline::EyerissModel model(
        opts.tech, tech::MainMemoryKind::DRAM,
        baseline::EyerissModel::isoArea(opts.geometry, opts.tech));
    return model.run(net);
}

baseline::BaselineResult
BFreeAccelerator::runCpu(const dnn::Network &net, unsigned batch) const
{
    baseline::ProcessorModel cpu(baseline::xeon_e5_2697());
    return cpu.run(net, batch);
}

baseline::BaselineResult
BFreeAccelerator::runGpu(const dnn::Network &net, unsigned batch) const
{
    baseline::ProcessorModel gpu(baseline::titan_v());
    return gpu.run(net, batch);
}

NetworkPlan
BFreeAccelerator::compilePlan(const dnn::Network &net,
                              const NetworkWeights &weights,
                              unsigned bits) const
{
    return NetworkPlan::compile(net, weights, bits);
}

FunctionalResult
BFreeAccelerator::runFunctional(const NetworkPlan &plan,
                                const dnn::FloatTensor &input) const
{
    FunctionalExecutor exec(opts.geometry, opts.tech);
    return exec.run(plan, input);
}

BatchResult
BFreeAccelerator::runFunctionalBatch(
    const NetworkPlan &plan, const std::vector<dnn::FloatTensor> &inputs,
    unsigned threads) const
{
    BatchOptions bo;
    bo.threads = threads;
    bo.geom = opts.geometry;
    bo.tech = opts.tech;
    return run_functional_batch(plan, inputs, bo);
}

tech::AreaReport
BFreeAccelerator::area() const
{
    return tech::compute_area(opts.geometry, opts.tech);
}

} // namespace bfree::core
