#include "bfree.hh"

namespace bfree::core {

BFreeAccelerator::BFreeAccelerator(Options options)
    : opts(std::move(options))
{}

map::RunResult
BFreeAccelerator::run(const dnn::Network &net, map::ExecConfig config) const
{
    map::ExecutionModel model(opts.geometry, opts.tech, config);
    return model.run(net);
}

std::vector<map::RunResult>
BFreeAccelerator::runMany(const std::vector<map::ExecJob> &jobs,
                          unsigned threads) const
{
    return map::run_sweep(opts.geometry, opts.tech, jobs, threads);
}

map::RunResult
BFreeAccelerator::runNeuralCache(const dnn::Network &net,
                                 map::ExecConfig config) const
{
    baseline::NeuralCacheModel model(opts.geometry, opts.tech, config);
    return model.run(net);
}

map::RunResult
BFreeAccelerator::runEyeriss(const dnn::Network &net) const
{
    baseline::EyerissModel model(
        opts.tech, tech::MainMemoryKind::DRAM,
        baseline::EyerissModel::isoArea(opts.geometry, opts.tech));
    return model.run(net);
}

baseline::BaselineResult
BFreeAccelerator::runCpu(const dnn::Network &net, unsigned batch) const
{
    baseline::ProcessorModel cpu(baseline::xeon_e5_2697());
    return cpu.run(net, batch);
}

baseline::BaselineResult
BFreeAccelerator::runGpu(const dnn::Network &net, unsigned batch) const
{
    baseline::ProcessorModel gpu(baseline::titan_v());
    return gpu.run(net, batch);
}

tech::AreaReport
BFreeAccelerator::area() const
{
    return tech::compute_area(opts.geometry, opts.tech);
}

} // namespace bfree::core
