#include "stats_export.hh"

namespace bfree::core {

RunStatsExport::RunStatsExport(const map::RunResult &run,
                               const std::string &name)
    : _root(std::make_unique<sim::StatGroup>(name))
{
    auto add_scalar = [this](sim::StatGroup &group,
                             const std::string &stat_name, double value,
                             const std::string &description) {
        auto s = std::make_unique<sim::Scalar>(group, stat_name,
                                               description);
        s->set(value);
        scalars.push_back(std::move(s));
    };

    add_scalar(*_root, "batch", run.batch, "batch size");
    add_scalar(*_root, "secondsPerInference", run.secondsPerInference(),
               "wall-clock seconds per inference");
    add_scalar(*_root, "joulesPerInference", run.joulesPerInference(),
               "energy per inference");
    add_scalar(*_root, "numLayers",
               static_cast<double>(run.layers.size()),
               "operators executed");

    // Phase timing.
    auto phases = std::make_unique<sim::StatGroup>(*_root, "time");
    add_scalar(*phases, "weightLoad", run.time.weightLoad,
               "weight streaming seconds");
    add_scalar(*phases, "inputLoad", run.time.inputLoad,
               "non-hidden activation streaming seconds");
    add_scalar(*phases, "compute", run.time.compute,
               "MAC datapath seconds");
    add_scalar(*phases, "special", run.time.special,
               "LUT special-function seconds");
    add_scalar(*phases, "requant", run.time.requant,
               "requantization seconds");
    add_scalar(*phases, "fill", run.time.fill,
               "pipeline fill seconds");
    groups.push_back(std::move(phases));

    // Energy by category.
    auto energy = std::make_unique<sim::StatGroup>(*_root, "energy");
    for (std::size_t c = 0; c < mem::num_energy_categories; ++c) {
        const auto cat = static_cast<mem::EnergyCategory>(c);
        add_scalar(*energy, mem::energy_category_name(cat),
                   run.energy.joules(cat), "joules");
    }
    groups.push_back(std::move(energy));

    // Per-layer vectors.
    auto layers = std::make_unique<sim::StatGroup>(*_root, "layers");
    auto times = std::make_unique<sim::Vector>(
        *layers, "seconds", "per-layer seconds", run.layers.size());
    auto macs = std::make_unique<sim::Vector>(
        *layers, "macs", "per-layer MACs", run.layers.size());
    auto joules = std::make_unique<sim::Vector>(
        *layers, "joules", "per-layer joules", run.layers.size());
    for (std::size_t i = 0; i < run.layers.size(); ++i) {
        times->add(i, run.layers[i].time.total());
        macs->add(i, static_cast<double>(run.layers[i].macs));
        joules->add(i, run.layers[i].energy.total());
    }
    vectors.push_back(std::move(times));
    vectors.push_back(std::move(macs));
    vectors.push_back(std::move(joules));
    groups.push_back(std::move(layers));
}

void
dump_run_stats(std::ostream &os, const map::RunResult &run,
               const std::string &name)
{
    RunStatsExport(run, name).dump(os);
}

} // namespace bfree::core
