#include "network_plan.hh"

#include <algorithm>
#include <sstream>
#include <string>

#include "bce/simd_kernels.hh"
#include "sim/logging.hh"
#include "verify/plan_verifier.hh"

namespace bfree::core {

NetworkWeights
random_weights(const dnn::Network &net, sim::Rng &rng, double scale)
{
    NetworkWeights all;
    all.reserve(net.layers().size());
    for (const dnn::Layer &l : net.layers()) {
        LayerWeights w;
        std::size_t count = 0;
        std::size_t biases = 0;
        switch (l.kind) {
          case dnn::LayerKind::Conv:
            count = std::size_t(l.outChannels) * l.input.c * l.kernelH
                    * l.kernelW;
            biases = l.outChannels;
            break;
          case dnn::LayerKind::Fc:
            count = std::size_t(l.inFeatures) * l.outFeatures;
            biases = l.outFeatures;
            break;
          case dnn::LayerKind::LstmCell:
            count = std::size_t(4) * (l.lstmInput + l.lstmHidden)
                    * l.lstmHidden;
            biases = std::size_t(4) * l.lstmHidden;
            break;
          case dnn::LayerKind::Attention:
            count = std::size_t(4) * l.dModel * l.dModel;
            biases = 0;
            break;
          default:
            break;
        }
        w.weights.resize(count);
        w.bias.resize(biases);
        for (float &v : w.weights)
            v = static_cast<float>(rng.uniformReal(-scale, scale));
        for (float &v : w.bias)
            v = static_cast<float>(rng.uniformReal(-scale, scale) * 0.1);
        all.push_back(std::move(w));
    }
    return all;
}

namespace {

using dnn::TensorArena;

/** Report a planning failure: fatal by default, or recorded in @p err
 *  (returning false) when the caller asked for a non-fatal probe. */
template <typename... Args>
bool
plan_fail(std::string *err, Args &&...args)
{
    if (err) {
        std::ostringstream os;
        (os << ... << args);
        *err = os.str();
        return false;
    }
    bfree_fatal(args...);
    return false;
}

/**
 * The dry planning pass: walk the layers tracking activation shape and
 * element counts, and record each layer's scratch requirement through
 * the exact same TensorArena::paddedBytes the runtime allocates with.
 * Fills layer/in/out/scratch fields of @p out (weights untouched) and
 * the whole-plan sizing in @p ps. Returns false (diagnostics in
 * @p err) when the network cannot be planned; with @p err null a
 * planning failure is fatal.
 */
bool
plan_shapes(const dnn::Network &net, unsigned bits,
            std::vector<PlannedLayer> &out, std::size_t &inElems,
            std::size_t &outElems, std::vector<std::size_t> &outShape,
            PlanStats &ps, std::string *err = nullptr)
{
    ps = PlanStats{};

    std::vector<std::size_t> shape = {net.input().c, net.input().h,
                                      net.input().w};
    std::size_t elems = net.input().elements();
    inElems = elems;
    ps.maxActivationElems = elems;

    out.clear();
    out.reserve(net.layers().size());
    for (const dnn::Layer &layer : net.layers()) {
        PlannedLayer pl;
        pl.layer = layer;
        pl.inElems = elems;

        switch (layer.kind) {
          case dnn::LayerKind::Conv: {
            if (elems != layer.input.elements())
                return plan_fail(err, "plan: conv '", layer.name,
                                 "' expects ", layer.input.elements(),
                                 " input elements, got ", elems);
            const dnn::FeatureShape o = layer.outputShape();
            const std::size_t patch_len = std::size_t(layer.input.c)
                                          * layer.kernelH * layer.kernelW;
            if (bits > 8) {
                // Wide precision: scalar multiplies over an int32
                // patch; no int8 front end exists to fuse or elide.
                pl.scratchBytes =
                    TensorArena::paddedBytes<std::int32_t>(patch_len);
                shape = {o.c, o.h, o.w};
                elems = o.elements();
                break;
            }
            // The 8-bit front end is chosen here, at plan time, and
            // its exact arena demand recorded through the same
            // paddedBytes the runtime allocates with.
            pl.frontend = dnn::resolve_frontend(layer, bits);
            const std::size_t planeBytes =
                TensorArena::paddedBytes<std::int8_t>(
                    layer.input.elements());
            const std::size_t patchBytes =
                TensorArena::paddedBytes<std::int8_t>(patch_len);
            switch (pl.frontend) {
              case dnn::FrontendMode::Fused:
                // Quantize straight into the patch: the quantized
                // plane allocation disappears.
                pl.scratchBytes = patchBytes;
                ps.fusedFrontLayers += 1;
                ps.savedPlaneBytes += planeBytes;
                break;
              case dnn::FrontendMode::Elided: {
                // Plane + a whole output ROW of patches, plus the
                // addressing state: the per-layer run-offset table and,
                // for padded layers, the staged zero-padded plane.
                // Buffers the view compactor touches carry its
                // whole-word copy slack, through the exact expressions
                // runConvInto allocates with.
                constexpr std::size_t slack =
                    bce::simd::SpanView::slackBytes;
                const dnn::ElisionLayout el =
                    dnn::elision_layout(layer);
                pl.scratchBytes =
                    TensorArena::paddedBytes<std::int8_t>(
                        layer.input.elements()
                        + (el.staged ? 0 : slack))
                    + TensorArena::paddedBytes<std::int8_t>(
                          std::size_t(o.w) * patch_len + slack)
                    + TensorArena::paddedBytes<std::int32_t>(el.nRuns)
                    + (el.staged
                           ? TensorArena::paddedBytes<std::int8_t>(
                                 el.stagingBytes + slack)
                           : 0);
                ps.elidedFrontLayers += 1;
                break;
              }
              case dnn::FrontendMode::Legacy:
                pl.scratchBytes = planeBytes + patchBytes;
                ps.legacyFrontLayers += 1;
                break;
            }
            shape = {o.c, o.h, o.w};
            elems = o.elements();
            break;
          }
          case dnn::LayerKind::Fc: {
            if (elems != layer.inFeatures)
                return plan_fail(err, "plan: fc '", layer.name,
                                 "': flattened input of ", elems,
                                 " != ", layer.inFeatures);
            pl.scratchBytes = TensorArena::paddedBytes<std::int8_t>(
                layer.inFeatures);
            if (bits <= 8)
                pl.scratchBytes +=
                    TensorArena::paddedBytes<std::int32_t>(
                        layer.outFeatures);
            shape = {layer.outFeatures, std::size_t(1), std::size_t(1)};
            elems = layer.outFeatures;
            break;
          }
          case dnn::LayerKind::Relu:
          case dnn::LayerKind::Sigmoid:
          case dnn::LayerKind::Tanh:
            // Element-wise: no scratch, shape preserved.
            break;
          case dnn::LayerKind::MaxPool:
          case dnn::LayerKind::AvgPool: {
            if (elems != layer.input.elements())
                return plan_fail(err, "plan: pool '", layer.name,
                                 "' expects ", layer.input.elements(),
                                 " input elements, got ", elems);
            const dnn::FeatureShape o = layer.outputShape();
            pl.scratchBytes = TensorArena::paddedBytes<std::int32_t>(
                std::size_t(layer.kernelH) * layer.kernelW);
            shape = {o.c, o.h, o.w};
            elems = o.elements();
            break;
          }
          case dnn::LayerKind::Softmax:
            pl.scratchBytes =
                TensorArena::paddedBytes<double>(elems);
            break;
          case dnn::LayerKind::LstmCell:
            // Standalone execution only (runLstmStep); the network
            // walk never runs it, so it claims no arena scratch.
            shape = {layer.lstmHidden, std::size_t(1), std::size_t(1)};
            elems = layer.lstmHidden;
            break;
          case dnn::LayerKind::Attention:
            shape = {layer.seqLen, layer.dModel};
            elems = std::size_t(layer.seqLen) * layer.dModel;
            break;
          default:
            return plan_fail(err, "plan does not cover layer kind '",
                             dnn::layer_kind_name(layer.kind), "'");
        }

        pl.outElems = elems;
        ps.maxActivationElems =
            std::max(ps.maxActivationElems, elems);
        ps.peakScratchBytes =
            std::max(ps.peakScratchBytes, pl.scratchBytes);
        out.push_back(std::move(pl));
    }

    outElems = elems;
    outShape = std::move(shape);
    ps.activationBytes =
        2 * TensorArena::paddedBytes<float>(ps.maxActivationElems);
    ps.arenaBytes = ps.activationBytes + ps.peakScratchBytes;
    return true;
}

} // namespace

PlanStats
NetworkPlan::estimate(const dnn::Network &net, unsigned bits)
{
    std::vector<PlannedLayer> layers;
    std::size_t in = 0, outn = 0;
    std::vector<std::size_t> shape;
    PlanStats ps;
    plan_shapes(net, bits, layers, in, outn, shape, ps);
    return ps;
}

bool
NetworkPlan::tryEstimate(const dnn::Network &net, unsigned bits,
                         PlanStats &out)
{
    std::vector<PlannedLayer> layers;
    std::size_t in = 0, outn = 0;
    std::vector<std::size_t> shape;
    std::string err;
    return plan_shapes(net, bits, layers, in, outn, shape, out, &err);
}

NetworkPlan
NetworkPlan::compile(const dnn::Network &net,
                     const NetworkWeights &weights, unsigned bits,
                     bool verify)
{
    if (weights.size() != net.layers().size())
        bfree_fatal("plan compile: expected ", net.layers().size(),
                    " weight entries, got ", weights.size());

    NetworkPlan plan;
    plan.net_ = net;
    plan.bits_ = bits;
    plan_shapes(net, bits, plan.layers_, plan.inElems_, plan.outElems_,
                plan.outShape_, plan.stats_);

    for (std::size_t i = 0; i < plan.layers_.size(); ++i) {
        PlannedLayer &pl = plan.layers_[i];
        const dnn::Layer &layer = pl.layer;
        const LayerWeights &w = weights[i];

        switch (layer.kind) {
          case dnn::LayerKind::Conv: {
            const std::size_t patch_len = std::size_t(layer.input.c)
                                          * layer.kernelH * layer.kernelW;
            const std::size_t count =
                std::size_t(layer.outChannels) * patch_len;
            if (w.weights.size() != count)
                bfree_fatal("plan: conv '", layer.name, "' expects ",
                            count, " weights, got ", w.weights.size());
            if (w.bias.size() != layer.outChannels)
                bfree_fatal("plan: conv '", layer.name, "' expects ",
                            layer.outChannels, " biases");
            // Filter-bank order [outC][inC][kh][kw] already matches the
            // im2col patch walk — freeze in place.
            pl.frozen.push_back(
                dnn::freeze_weights(w.weights.data(), count, bits));
            break;
          }
          case dnn::LayerKind::Fc: {
            const std::size_t count =
                std::size_t(layer.inFeatures) * layer.outFeatures;
            if (w.weights.size() != count)
                bfree_fatal("plan: fc '", layer.name, "' expects ",
                            count, " weights, got ", w.weights.size());
            if (w.bias.size() != layer.outFeatures)
                bfree_fatal("plan: fc '", layer.name, "' expects ",
                            layer.outFeatures, " biases");
            // [outFeatures][inFeatures] storage IS the transposed-B
            // GEMM tile — freeze in place.
            pl.frozen.push_back(
                dnn::freeze_weights(w.weights.data(), count, bits));
            break;
          }
          case dnn::LayerKind::LstmCell: {
            const unsigned cols = layer.lstmInput + layer.lstmHidden;
            const std::size_t count =
                std::size_t(4) * layer.lstmHidden * cols;
            if (w.weights.size() != count)
                bfree_fatal("plan: lstm '", layer.name, "' expects ",
                            count, " weights, got ", w.weights.size());
            if (w.bias.size() != std::size_t(4) * layer.lstmHidden)
                bfree_fatal("plan: lstm '", layer.name, "' expects ",
                            std::size_t(4) * layer.lstmHidden, " biases");
            // The row-major [4*hid][cols] gate matrix is already the
            // transposed tile of the [cols][4*hid] gate matmul: the
            // legacy path transposed it and the GEMM transposed it
            // back. Freeze in place, no transpose.
            pl.frozen.push_back(
                dnn::freeze_weights(w.weights.data(), count, bits));
            break;
          }
          case dnn::LayerKind::Attention: {
            const std::size_t dd =
                std::size_t(layer.dModel) * layer.dModel;
            if (w.weights.size() != 4 * dd)
                bfree_fatal("plan: attention '", layer.name,
                            "' weights must pack wq|wk|wv|wo");
            // Four independent d x d projections, each with its own
            // scale (matching the legacy per-projection qMatmul), each
            // frozen into the transposed tile.
            for (unsigned b = 0; b < 4; ++b)
                pl.frozen.push_back(dnn::freeze_weights_transposed(
                    w.weights.data() + b * dd, layer.dModel,
                    layer.dModel, bits));
            break;
          }
          default:
            if (!w.weights.empty() || !w.bias.empty())
                bfree_fatal("plan: layer '", layer.name,
                            "' takes no weights");
            break;
        }

        pl.bias = w.bias;
        for (const dnn::QuantizedWeights &f : pl.frozen) {
            plan.stats_.frozenWeightBytes += f.frozenBytes();
            plan.stats_.frozenValues += f.count();
        }
    }

    // Verify-on-compile, mirroring KernelCompiler: the whole-plan
    // auditor records its findings instead of aborting; serving
    // rejects a plan whose report is not ok().
    if (verify) {
        const verify::PlanVerifier verifier{tech::CacheGeometry{}};
        plan.diagnostics_ = verifier.verify(plan);
    }
    return plan;
}

} // namespace bfree::core
