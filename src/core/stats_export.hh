/**
 * @file
 * gem5-style statistics export of a run.
 *
 * Converts a RunResult into a StatGroup hierarchy (run-level scalars,
 * per-category energy, per-phase timing, per-layer vectors) and dumps
 * it in the kernel's "name value # description" format, so downstream
 * tooling that parses gem5 stats files can consume BFree runs.
 */

#ifndef BFREE_CORE_STATS_EXPORT_HH
#define BFREE_CORE_STATS_EXPORT_HH

#include <memory>
#include <ostream>
#include <vector>

#include "map/exec_model.hh"
#include "sim/stats.hh"

namespace bfree::core {

/**
 * Owns the statistics objects built from one RunResult.
 */
class RunStatsExport
{
  public:
    /** Build the stat hierarchy under a root group named @p name. */
    RunStatsExport(const map::RunResult &run,
                   const std::string &name = "bfree");

    /** The root group (dump with root().dumpAll(os)). */
    sim::StatGroup &root() { return *_root; }

    /** Dump everything to @p os. */
    void dump(std::ostream &os) const { _root->dumpAll(os); }

  private:
    std::unique_ptr<sim::StatGroup> _root;
    std::vector<std::unique_ptr<sim::StatGroup>> groups;
    std::vector<std::unique_ptr<sim::Scalar>> scalars;
    std::vector<std::unique_ptr<sim::Vector>> vectors;
};

/** One-call convenience: build and dump. */
void dump_run_stats(std::ostream &os, const map::RunResult &run,
                    const std::string &name = "bfree");

} // namespace bfree::core

#endif // BFREE_CORE_STATS_EXPORT_HH
