/**
 * @file
 * Functional quantized inference through the BFree LUT datapath.
 *
 * Every multiply in this executor goes through a real Bce instance —
 * the 49-entry LUT image in a Subarray (conv mode) or the hardwired ROM
 * (matmul mode) — so it demonstrates, end to end, that the LUT
 * decomposition computes exact integer products and that the PWL /
 * division tables approximate the nonlinearities well enough for
 * inference. The tests compare its output against the float reference
 * executors under quantization tolerance.
 *
 * Execution is plan-driven (core::NetworkPlan): weights are quantized
 * once at plan compile and the steady-state path serves all scratch
 * from one pre-sized TensorArena with zero heap allocations. The
 * legacy one-shot entry points remain and simply compile a throwaway
 * plan, so they are bit-identical to the plan path by construction.
 * run_functional_batch() amortizes one plan across many inputs on the
 * work-stealing pool with outputs, statistics and energy bit-identical
 * to the sequential loop at any thread count.
 */

#ifndef BFREE_CORE_FUNCTIONAL_HH
#define BFREE_CORE_FUNCTIONAL_HH

#include <vector>

#include "bce/bce.hh"
#include "core/network_plan.hh"
#include "dnn/network.hh"
#include "dnn/quantize.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"
#include "dnn/tensor_arena.hh"
#include "lut/division.hh"
#include "lut/pwl.hh"
#include "mem/subarray.hh"
#include "sim/random.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::core {

/** Result of a functional run. */
struct FunctionalResult
{
    dnn::FloatTensor output;
    bce::BceStats stats; ///< Aggregate BCE activity.
};

/**
 * Executes a network functionally on one Bce + Subarray pair.
 */
class FunctionalExecutor
{
  public:
    /**
     * @param tier Execution tier of the underlying BCE. Tiered (the
     *             default) serves steady-state MACs from memoized
     *             datapath tables; Legacy runs the full scalar
     *             decomposition. Both produce bit-identical outputs,
     *             statistics and energy.
     */
    FunctionalExecutor(const tech::CacheGeometry &geom = {},
                       const tech::TechParams &tech = {},
                       bce::ExecTier tier = bce::ExecTier::Tiered);

    /**
     * Run a compiled plan on @p input. The steady-state entry point:
     * no weight quantization, no heap allocation after the first call
     * (which sizes the arena and seeds the memo tables).
     */
    FunctionalResult run(const NetworkPlan &plan,
                         const dnn::FloatTensor &input);

    /**
     * The allocation-free core of run(): executes @p plan reading
     * @p inElems floats from @p input and writing @p outElems floats
     * to @p output (both caller-owned). All intermediate activations
     * ping-pong between two arena buffers.
     */
    void runInto(const NetworkPlan &plan, const float *input,
                 std::size_t inElems, float *output,
                 std::size_t outElems);

    /**
     * One-shot convenience: compile a throwaway plan for @p net and run
     * it. Bit-identical to the plan path (it IS the plan path); prefer
     * compiling once when running more than one input.
     */
    FunctionalResult run(const dnn::Network &net,
                         const dnn::FloatTensor &input,
                         const NetworkWeights &weights,
                         unsigned bits = 8);

    /**
     * One LSTM timestep from a compiled plan: gate matvecs on the
     * matmul-mode BCE against the frozen gate tile, sigmoid/tanh
     * through the PWL tables. @p layerIndex selects the LstmCell layer
     * inside the plan.
     */
    dnn::LstmState runLstmStep(const NetworkPlan &plan,
                               std::size_t layerIndex,
                               const std::vector<float> &x,
                               const dnn::LstmState &prev);

    /**
     * One-shot LSTM timestep; freezes the gate weights and delegates.
     * Weights are packed [i, f, g, o] x [input + hidden] as in
     * dnn::reference_lstm_step.
     */
    dnn::LstmState runLstmStep(const dnn::Layer &layer,
                               const std::vector<float> &x,
                               const dnn::LstmState &prev,
                               const LayerWeights &w, unsigned bits = 8);

    /**
     * Single-head self-attention from a compiled plan: Q/K/V/O
     * projections against the frozen tiles, the row softmax through
     * the exp table + LUT division.
     */
    dnn::FloatTensor runAttention(const NetworkPlan &plan,
                                  std::size_t layerIndex,
                                  const dnn::FloatTensor &input);

    /**
     * One-shot self-attention; freezes the four projections and
     * delegates. Weights are packed [wq | wk | wv | wo], each d x d.
     */
    dnn::FloatTensor runAttention(const dnn::Layer &layer,
                                  const dnn::FloatTensor &input,
                                  const LayerWeights &w,
                                  unsigned bits = 8);

    /**
     * Quantized matrix product through the broadcast datapath:
     * out[m][n] = a[m][k] * w[k][n], with w supplied row-major.
     * Freezes w transposed and delegates to qMatmulFrozen.
     */
    dnn::FloatTensor qMatmul(const dnn::FloatTensor &a, const float *w,
                             std::size_t k, std::size_t n,
                             unsigned bits);

    /**
     * The same product against an already-frozen transposed tile
     * @p wt (n x k, as produced by dnn::freeze_weights_transposed —
     * or any row-major [n][k] matrix frozen in place). Only the
     * activation side is quantized per call.
     */
    dnn::FloatTensor qMatmulFrozen(const dnn::FloatTensor &a,
                                   const dnn::QuantizedWeights &wt,
                                   std::size_t k, std::size_t n);

    /**
     * Return the datapath to conv mode (its construction state). The
     * batch runner parks the datapath after every input so each
     * input's stats delta is independent of its position in the batch
     * — the keystone of thread-count-invariant batch statistics.
     */
    void parkDatapath() { bce.setMode(bce::BceMode::Conv); }

    /** The scratch arena (sizing/zero-allocation introspection). */
    const dnn::TensorArena &arena() const { return arena_; }

    /** BCE statistics accumulated so far. */
    const bce::BceStats &stats() const { return bce.stats(); }

    /**
     * Energy accumulated by the functional datapath so far. Flushes
     * the BCE's deferred integer tallies into the account first, so
     * the returned reference is up to date.
     */
    const mem::EnergyAccount &
    energy()
    {
        bce.flushEnergy();
        return account;
    }

    /** Execution tier of the underlying BCE. */
    bce::ExecTier tier() const { return bce.tier(); }

  private:
    /** Conv over im2col patches, frozen filter bank, arena scratch. */
    void runConvInto(const PlannedLayer &pl, unsigned bits,
                     const float *in, float *out);

    void runFcInto(const PlannedLayer &pl, unsigned bits,
                   const float *in, float *out);

    void runActivationInto(const PlannedLayer &pl, const float *in,
                           float *out);

    void runPoolInto(const PlannedLayer &pl, const float *in,
                     float *out);

    void runSoftmaxInto(const PlannedLayer &pl, const float *in,
                        float *out);

    /** Shared LSTM step against a frozen gate tile. */
    dnn::LstmState lstmStepImpl(const dnn::Layer &layer,
                                const std::vector<float> &x,
                                const dnn::LstmState &prev,
                                const dnn::QuantizedWeights &gates,
                                const std::vector<float> &bias);

    /** Shared attention block against four frozen projections. */
    dnn::FloatTensor attentionImpl(const dnn::Layer &layer,
                                   const dnn::FloatTensor &input,
                                   const dnn::QuantizedWeights *proj);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    mem::EnergyAccount account;
    mem::Subarray subarray;
    bce::Bce bce;
    lut::DivisionLut divisionLut;
    lut::PwlTable sigmoidTable;
    lut::PwlTable tanhTable;
    lut::PwlTable expTable;
    dnn::TensorArena arena_;
};

/** Knobs for a batched plan run. */
struct BatchOptions
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned threads = 0;
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    bce::ExecTier tier = bce::ExecTier::Tiered;
};

/** Result of a batched plan run. */
struct BatchResult
{
    /** Per-input outputs, input order. */
    std::vector<dnn::FloatTensor> outputs;
    /** Summed per-input BCE activity, accumulated in input order —
     *  bit-identical for any thread count. */
    bce::BceStats stats;
    /** Datapath energy of the batch, converted from the summed integer
     *  tallies in one bulk deposit. Excludes the per-worker LUT-image
     *  load (a fixed per-executor setup cost, not batch work). */
    mem::EnergyAccount energy;
};

/**
 * Run @p plan over every input, fanning out across the work-stealing
 * pool in contiguous chunks (one long-lived executor per chunk, so the
 * memoized datapath tables are seeded once per worker, not per input).
 * Outputs, statistics and energy are bit-identical to a sequential
 * loop for any thread count.
 */
BatchResult run_functional_batch(const NetworkPlan &plan,
                                 const std::vector<dnn::FloatTensor> &inputs,
                                 const BatchOptions &opts = {});

/**
 * The dispatch hook the serving layer uses: the same batched run over
 * borrowed inputs (no copies — the caller keeps ownership, e.g. of
 * tensors still held by queued requests). Null pointers are fatal.
 * Identical determinism guarantee to the owning overload, which
 * delegates here.
 */
BatchResult
run_functional_batch(const NetworkPlan &plan,
                     const std::vector<const dnn::FloatTensor *> &inputs,
                     const BatchOptions &opts = {});

} // namespace bfree::core

#endif // BFREE_CORE_FUNCTIONAL_HH
