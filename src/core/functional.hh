/**
 * @file
 * Functional quantized inference through the BFree LUT datapath.
 *
 * Every multiply in this executor goes through a real Bce instance —
 * the 49-entry LUT image in a Subarray (conv mode) or the hardwired ROM
 * (matmul mode) — so it demonstrates, end to end, that the LUT
 * decomposition computes exact integer products and that the PWL /
 * division tables approximate the nonlinearities well enough for
 * inference. The tests compare its output against the float reference
 * executors under quantization tolerance.
 */

#ifndef BFREE_CORE_FUNCTIONAL_HH
#define BFREE_CORE_FUNCTIONAL_HH

#include <vector>

#include "bce/bce.hh"
#include "dnn/network.hh"
#include "dnn/quantize.hh"
#include "dnn/reference.hh"
#include "dnn/tensor.hh"
#include "lut/division.hh"
#include "lut/pwl.hh"
#include "mem/subarray.hh"
#include "sim/random.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::core {

/** Weights of one layer (flat, reference layout). */
struct LayerWeights
{
    std::vector<float> weights;
    std::vector<float> bias;
};

/** Per-layer weights for a whole network. */
using NetworkWeights = std::vector<LayerWeights>;

/** Draw reproducible random weights for every layer of @p net. */
NetworkWeights random_weights(const dnn::Network &net, sim::Rng &rng,
                              double scale = 0.5);

/** Result of a functional run. */
struct FunctionalResult
{
    dnn::FloatTensor output;
    bce::BceStats stats; ///< Aggregate BCE activity.
};

/**
 * Executes a network functionally on one Bce + Subarray pair.
 */
class FunctionalExecutor
{
  public:
    /**
     * @param tier Execution tier of the underlying BCE. Tiered (the
     *             default) serves steady-state MACs from memoized
     *             datapath tables; Legacy runs the full scalar
     *             decomposition. Both produce bit-identical outputs,
     *             statistics and energy.
     */
    FunctionalExecutor(const tech::CacheGeometry &geom = {},
                       const tech::TechParams &tech = {},
                       bce::ExecTier tier = bce::ExecTier::Tiered);

    /**
     * Run @p net on @p input with @p weights through the quantized LUT
     * datapath at @p bits precision.
     */
    FunctionalResult run(const dnn::Network &net,
                         const dnn::FloatTensor &input,
                         const NetworkWeights &weights,
                         unsigned bits = 8);

    /**
     * One LSTM timestep through the LUT datapath: gate matvecs on the
     * matmul-mode BCE, sigmoid/tanh through the PWL tables. Weights
     * are packed [i, f, g, o] x [input + hidden] as in
     * dnn::reference_lstm_step.
     */
    dnn::LstmState runLstmStep(const dnn::Layer &layer,
                               const std::vector<float> &x,
                               const dnn::LstmState &prev,
                               const LayerWeights &w, unsigned bits = 8);

    /**
     * Single-head self-attention through the LUT datapath: Q/K/V/O
     * projections and the score product on the matmul-mode BCE, the
     * row softmax through the exp table + LUT division. Weights are
     * packed [wq | wk | wv | wo], each d x d.
     */
    dnn::FloatTensor runAttention(const dnn::Layer &layer,
                                  const dnn::FloatTensor &input,
                                  const LayerWeights &w,
                                  unsigned bits = 8);

    /**
     * Quantized matrix product through the broadcast datapath:
     * out[m][n] = a[m][k] * w[k][n], with w supplied row-major.
     */
    dnn::FloatTensor qMatmul(const dnn::FloatTensor &a, const float *w,
                             std::size_t k, std::size_t n,
                             unsigned bits);

    /** BCE statistics accumulated so far. */
    const bce::BceStats &stats() const { return bce.stats(); }

    /**
     * Energy accumulated by the functional datapath so far. Flushes
     * the BCE's deferred integer tallies into the account first, so
     * the returned reference is up to date.
     */
    const mem::EnergyAccount &
    energy()
    {
        bce.flushEnergy();
        return account;
    }

    /** Execution tier of the underlying BCE. */
    bce::ExecTier tier() const { return bce.tier(); }

  private:
    /** Quantized conv over im2col patches on the conv-mode datapath. */
    dnn::FloatTensor runConv(const dnn::Layer &layer,
                             const dnn::FloatTensor &input,
                             const LayerWeights &w, unsigned bits);

    dnn::FloatTensor runFc(const dnn::Layer &layer,
                           const dnn::FloatTensor &input,
                           const LayerWeights &w, unsigned bits);

    dnn::FloatTensor runActivation(const dnn::Layer &layer,
                                   const dnn::FloatTensor &input);

    dnn::FloatTensor runPool(const dnn::Layer &layer,
                             const dnn::FloatTensor &input);

    dnn::FloatTensor runSoftmax(const dnn::FloatTensor &input);

    tech::CacheGeometry geom;
    tech::TechParams tech;
    mem::EnergyAccount account;
    mem::Subarray subarray;
    bce::Bce bce;
    lut::DivisionLut divisionLut;
    lut::PwlTable sigmoidTable;
    lut::PwlTable tanhTable;
    lut::PwlTable expTable;
};

} // namespace bfree::core

#endif // BFREE_CORE_FUNCTIONAL_HH
