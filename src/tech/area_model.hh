/**
 * @file
 * CACTI-lite area model.
 *
 * Computes sub-array / slice / cache silicon area from the bit-cell size
 * and peripheral overhead fractions, then layers the BFree additions on
 * top (LUT precharge circuitry, BCE, routers, controllers) to reproduce
 * the paper's Section V-B area accounting: +0.5% per sub-array for the
 * LUT precharge, +6% per 2.5 MB slice for the BCEs, +0.1% for
 * controllers, +5.6% for the overall cache.
 */

#ifndef BFREE_TECH_AREA_MODEL_HH
#define BFREE_TECH_AREA_MODEL_HH

#include "geometry.hh"
#include "tech_params.hh"

namespace bfree::tech {

/** Absolute areas (mm^2) and the derived overhead ratios. */
struct AreaReport
{
    double subarrayMm2 = 0.0;       ///< One unmodified 8 KB sub-array.
    double lutPrechargeMm2 = 0.0;   ///< Added LUT precharge per sub-array.
    double bcePerSubarrayMm2 = 0.0; ///< One BCE instance.
    double sliceBaseMm2 = 0.0;      ///< One 2.5 MB slice, unmodified.
    double sliceBfreeMm2 = 0.0;     ///< One slice including BFree logic.
    double cacheBaseMm2 = 0.0;      ///< Whole LLC, unmodified.
    double cacheBfreeMm2 = 0.0;     ///< Whole LLC including BFree logic.
    double controllerMm2 = 0.0;     ///< All controllers.

    /** LUT precharge overhead vs one sub-array (paper: 0.5%). */
    double lutPrechargeFraction = 0.0;

    /** BCE overhead vs one slice (paper: 6%). */
    double bceFractionOfSlice = 0.0;

    /** Total BFree overhead vs the base cache (paper: 5.6%). */
    double totalOverheadFraction = 0.0;

    /** Controller overhead vs the base cache (paper: 0.1%). */
    double controllerFraction = 0.0;
};

/** Compute the area report for a geometry/technology design point. */
AreaReport compute_area(const CacheGeometry &geom, const TechParams &tech);

/**
 * Area of one Eyeriss-style 8-bit MAC PE scaled to 16 nm, in mm^2.
 * Used to size the iso-area baseline in Fig. 13: the paper configures
 * Eyeriss with the same area as BFree's added custom logic in one slice,
 * arriving at a 12x12 PE array.
 */
double eyeriss_pe_area_mm2();

/**
 * Number of Eyeriss PEs that fit in the BFree custom-logic area of one
 * slice (paper: 144 = 12x12).
 */
unsigned iso_area_eyeriss_pes(const CacheGeometry &geom,
                              const TechParams &tech);

} // namespace bfree::tech

#endif // BFREE_TECH_AREA_MODEL_HH
