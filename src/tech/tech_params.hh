/**
 * @file
 * 16 nm technology parameters for the BFree architecture model.
 *
 * Every constant in this file is anchored either to a number published in
 * the paper (Section V-A/V-B gives the circuit-level characterisation
 * results) or to a standard planning number for a 16 nm FinFET process.
 * The architecture model downstream consumes only these scalars, which is
 * the same modelling altitude the paper's own evaluation used (SPICE +
 * Synopsys characterisation feeding a cycle-level simulator).
 */

#ifndef BFREE_TECH_TECH_PARAMS_HH
#define BFREE_TECH_TECH_PARAMS_HH

#include <cstdint>

namespace bfree::tech {

/**
 * Scalar technology/circuit parameters. Defaults model the paper's
 * TSMC 16 nm design point.
 */
struct TechParams
{
    // ------------------------------------------------------------------
    // Clocks
    // ------------------------------------------------------------------
    /** Sub-array (and therefore BFree PIM) clock in Hz. Paper: 1.5 GHz. */
    double subarrayClockHz = 1.5e9;

    /**
     * Neural Cache effective array clock in Hz. Multi-row activation
     * requires ~2/3 wordline underdrive and dual sense amplifiers, which
     * slows the array relative to the unmodified BFree sub-array
     * (Section V-D: "Neural Cache ... decreasing the sub-array's
     * frequency").
     */
    double neuralCacheClockHz = 0.75e9;

    // ------------------------------------------------------------------
    // Sub-array access energy (dynamic, per access)
    // ------------------------------------------------------------------
    /** Full-bitline sub-array read/write of one 64-bit row slice. Paper:
     *  8.6 pJ. */
    double subarrayAccessPj = 8.6;

    /** Bitline compute op (multi-row activation) for Neural Cache.
     *  Paper: 15.4 pJ. */
    double bitlineComputeOpPj = 15.4;

    /** Energy ratio of a decoupled-bitline LUT-row access relative to a
     *  full sub-array access. Paper: 231x lower. */
    double lutAccessEnergyRatio = 1.0 / 231.0;

    /** Latency ratio of a decoupled-bitline LUT access. Paper: 3x
     *  faster. */
    double lutAccessLatencyRatio = 1.0 / 3.0;

    /** BCE hardwired multiply-LUT (ROM) MAC energy. Paper: ~0.5 pJ. */
    double bceMacPj = 0.5;

    // ------------------------------------------------------------------
    // BCE / controller power (static + clocking, per instance)
    // ------------------------------------------------------------------
    /** BCE power in convolution mode (1 MUX, 1 adder, 2 shifters). */
    double bceConvModeMw = 0.4;

    /** BCE power in matrix-multiply mode (switch MUX, all adders). */
    double bceMatmulModeMw = 1.3;

    /** BCE power for the remaining (scalar/special-function) ops. */
    double bceOtherModeMw = 0.4;

    /** Cache-level controller power. Paper: 0.8 mW. */
    double cacheControllerMw = 0.8;

    /** Slice-level controller power. Paper: 1.4 mW. */
    double sliceControllerMw = 1.4;

    /** SRAM array leakage per MB (16 nm LLC planning number). */
    double sramLeakageMwPerMb = 100.0;

    // ------------------------------------------------------------------
    // Geometry / area
    // ------------------------------------------------------------------
    /** 6T bit-cell area at 16 nm, in um^2. */
    double bitcellAreaUm2 = 0.074;

    /** Sub-array peripheral area overhead (decoder, mux, SA, precharge)
     *  as a fraction of the raw cell array. */
    double peripheryAreaFraction = 0.35;

    /** LUT local-precharge circuitry area as a fraction of one
     *  sub-array. Paper: 0.5%. */
    double lutPrechargeAreaFraction = 0.005;

    /** BCE area overhead as a fraction of a 2.5 MB slice. Paper: 6%. */
    double bceAreaFractionOfSlice = 0.06;

    /** Controllers' area as a fraction of the whole cache. Paper: 0.1%. */
    double controllerAreaFractionOfCache = 0.001;

    /** Specialized-MAC alternative: area relative to BCE (paper: BCE is
     *  3% smaller) and energy relative to BCE (paper: BCE is 48% more
     *  energy efficient). */
    double specializedMacAreaVsBce = 1.03;
    double specializedMacEnergyVsBce = 1.48;

    /** Intra-slice routing/repeater area as a fraction of the sub-array
     *  silicon in a slice. */
    double sliceWiringAreaFraction = 0.15;

    /** Inter-slice ring, tag and global-control area as a fraction of
     *  the summed slice area. */
    double cacheGlobalAreaFraction = 0.15;

    // ------------------------------------------------------------------
    // Interconnect (slice H-tree)
    // ------------------------------------------------------------------
    /** Slice-internal global wire latency in ns per mm. This is loaded,
     *  mux-interrupted cache routing, not an optimally repeated
     *  point-to-point wire, hence much slower than raw repeated-wire
     *  delay. */
    double wireLatencyNsPerMm = 3.0;

    /** Wire energy in pJ per bit per mm (data + its share of address and
     *  control toggling). */
    double wireEnergyPjPerBitPerMm = 0.40;

    /** Data width of the slice data bus in bits. */
    unsigned sliceBusBits = 64;

    /** Bus driver/mux energy per access along the slice H-tree, in pJ. */
    double busDriverPj = 6.0;

    /** Decoder + timing circuitry latency per access, in ns. */
    double decodeTimingNs = 0.33;

    /** Decoder + timing circuitry energy per access, in pJ. */
    double decodeTimingPj = 1.0;

    /** Router traversal energy per 64-bit flit (systolic hop). */
    double routerHopPj = 0.35;

    /** Router traversal latency in cycles of the sub-array clock. */
    unsigned routerHopCycles = 1;

    /**
     * Input-streaming hop latency between adjacent LLC slices, in
     * sub-array clock cycles (ring segment + slice ingress). Also the
     * sharded detailed engine's cross-shard lookahead: a flit posted by
     * slice s at tick t cannot reach slice s+1 before
     * t + interSliceHopCycles.
     */
    unsigned interSliceHopCycles = 2;

    // ------------------------------------------------------------------
    // Sub-array timing
    // ------------------------------------------------------------------
    /** Sub-array random access latency in cycles of the sub-array
     *  clock (decode + bitline + sense). One PIM cycle. */
    unsigned subarrayAccessCycles = 1;

    /** Derived: one sub-array clock period in ns. */
    double
    subarrayPeriodNs() const
    {
        return 1e9 / subarrayClockHz;
    }

    /** Derived: decoupled LUT-row access energy in pJ. */
    double
    lutAccessPj() const
    {
        return subarrayAccessPj * lutAccessEnergyRatio;
    }

    /** Derived: decoupled LUT-row access latency in ns. */
    double
    lutAccessNs() const
    {
        return subarrayPeriodNs() * subarrayAccessCycles
               * lutAccessLatencyRatio;
    }

    /** Derived: BCE energy per cycle in a given mode, in pJ. */
    double
    bceEnergyPerCyclePj(double mode_mw) const
    {
        // mW * ns = pJ
        return mode_mw * subarrayPeriodNs();
    }
};

/**
 * Main-memory technology options used in Fig. 14.
 */
enum class MainMemoryKind
{
    DRAM,  ///< Commodity DDR: 20 GB/s.
    EDRAM, ///< Embedded DRAM: 64 GB/s.
    HBM,   ///< High-bandwidth memory: 100 GB/s.
};

/** Bandwidth/energy description of one main-memory option. */
struct MainMemoryParams
{
    MainMemoryKind kind = MainMemoryKind::DRAM;
    double bandwidthGBps = 20.0; ///< Sustained streaming bandwidth.
    double energyPjPerByte = 160.0; ///< Dynamic transfer energy.
    double staticPowerMw = 500.0;   ///< Background power of the channel.

    /** Name for reports. */
    const char *name() const;

    /** Time in seconds to stream @p bytes. */
    double
    streamSeconds(double bytes) const
    {
        return bytes / (bandwidthGBps * 1e9);
    }

    /** Dynamic energy in joules to stream @p bytes. */
    double
    streamJoules(double bytes) const
    {
        return bytes * energyPjPerByte * 1e-12;
    }
};

/** Canonical parameter set for a memory kind (paper Fig. 14 values). */
MainMemoryParams main_memory_params(MainMemoryKind kind);

} // namespace bfree::tech

#endif // BFREE_TECH_TECH_PARAMS_HH
