#include "access_breakdown.hh"

#include <cmath>

#include "sim/logging.hh"

namespace bfree::tech {

double
SliceAccessBreakdown::totalLatencyNs() const
{
    return interconnect.latencyNs + subarray.latencyNs
           + decodeTiming.latencyNs;
}

double
SliceAccessBreakdown::totalEnergyPj() const
{
    return interconnect.energyPj + subarray.energyPj
           + decodeTiming.energyPj;
}

double
SliceAccessBreakdown::latencyFraction(const AccessComponent &c) const
{
    return c.latencyNs / totalLatencyNs();
}

double
SliceAccessBreakdown::energyFraction(const AccessComponent &c) const
{
    return c.energyPj / totalEnergyPj();
}

double
slice_route_mm(const CacheGeometry &geom, const TechParams &tech)
{
    const AreaReport area = compute_area(geom, tech);
    const double side_mm = std::sqrt(area.sliceBaseMm2);
    // Average Manhattan route from the slice port at one edge to a
    // uniformly placed sub-array and the response path back: about one
    // side across plus half a side up, in each direction.
    return 2.0 * 1.0 * side_mm;
}

SliceAccessBreakdown
slice_access_breakdown(const CacheGeometry &geom, const TechParams &tech)
{
    SliceAccessBreakdown b;
    const double route = slice_route_mm(geom, tech);

    b.interconnect.name = "interconnect";
    b.interconnect.latencyNs = route * tech.wireLatencyNsPerMm;
    b.interconnect.energyPj =
        route * tech.wireLatencyNsPerMm > 0.0
            ? tech.sliceBusBits * route * tech.wireEnergyPjPerBitPerMm
                  + tech.busDriverPj
            : 0.0;

    b.subarray.name = "subarray";
    b.subarray.latencyNs =
        tech.subarrayPeriodNs() * tech.subarrayAccessCycles;
    b.subarray.energyPj = tech.subarrayAccessPj;

    b.decodeTiming.name = "decode+timing";
    b.decodeTiming.latencyNs = tech.decodeTimingNs;
    b.decodeTiming.energyPj = tech.decodeTimingPj;

    return b;
}

LutAccessCost
lut_access_cost(LutDesign design, const TechParams &tech)
{
    LutAccessCost c;
    c.design = design;
    const double sa_latency =
        tech.subarrayPeriodNs() * tech.subarrayAccessCycles;

    switch (design) {
      case LutDesign::StandaloneMacro:
        // A small dedicated array is fast and fairly low energy, but
        // replicating decoder/sense-amp/precharge per partition costs
        // real area and the extra macro perturbs the sub-array floorplan
        // (the paper rejects it for area/performance impact).
        c.name = "standalone macro";
        c.latencyNs = 0.5 * sa_latency;
        c.energyPj = 0.30 * tech.subarrayAccessPj;
        c.areaFraction = 0.08;
        break;
      case LutDesign::SharedBitline:
        // LUT rows stored like data: every lookup pays a full bitline
        // swing on the parasitic partition bitline.
        c.name = "shared bitline";
        c.latencyNs = sa_latency;
        c.energyPj = tech.subarrayAccessPj;
        c.areaFraction = 0.0;
        break;
      case LutDesign::DecoupledBitline:
        // Chosen design: local precharge drives only the 2 LUT rows.
        c.name = "decoupled bitline";
        c.latencyNs = tech.lutAccessNs();
        c.energyPj = tech.lutAccessPj();
        c.areaFraction = tech.lutPrechargeAreaFraction;
        break;
      default:
        bfree_panic("unknown LUT design");
    }
    return c;
}

std::array<LutAccessCost, 3>
lut_design_space(const TechParams &tech)
{
    return {lut_access_cost(LutDesign::StandaloneMacro, tech),
            lut_access_cost(LutDesign::SharedBitline, tech),
            lut_access_cost(LutDesign::DecoupledBitline, tech)};
}

} // namespace bfree::tech
