/**
 * @file
 * Analytical models behind the paper's motivation figures.
 *
 * Fig. 2 breaks one slice data access into interconnect, sub-array and
 * decode/timing components, showing that the interconnect between the
 * sub-array and the slice port dominates (>90% of latency and energy)
 * while the sub-array itself is ~6% of latency and ~9% of energy. This
 * is the argument for confining PIM traffic to the sub-array.
 *
 * Fig. 4(c) compares the three LUT integration strategies explored in
 * Section III-B: a standalone LUT macro, LUT rows sharing the partition
 * bitlines, and the chosen design with decoupled bitlines and a local
 * precharge (3x faster, 231x lower energy, +0.5% sub-array area).
 */

#ifndef BFREE_TECH_ACCESS_BREAKDOWN_HH
#define BFREE_TECH_ACCESS_BREAKDOWN_HH

#include <array>
#include <string>

#include "area_model.hh"
#include "geometry.hh"
#include "tech_params.hh"

namespace bfree::tech {

/** One component of the slice-access cost (Fig. 2). */
struct AccessComponent
{
    std::string name;
    double latencyNs = 0.0;
    double energyPj = 0.0;
};

/** Full breakdown of a single slice data access. */
struct SliceAccessBreakdown
{
    AccessComponent interconnect;
    AccessComponent subarray;
    AccessComponent decodeTiming;

    double totalLatencyNs() const;
    double totalEnergyPj() const;

    /** Fraction of the total latency spent in a component. */
    double latencyFraction(const AccessComponent &c) const;

    /** Fraction of the total energy spent in a component. */
    double energyFraction(const AccessComponent &c) const;
};

/**
 * Model one data access that traverses the slice H-tree to a sub-array
 * and back (Fig. 2).
 */
SliceAccessBreakdown slice_access_breakdown(const CacheGeometry &geom,
                                            const TechParams &tech);

/**
 * Average route length in mm between the slice port and a sub-array
 * (request plus response traversal).
 */
double slice_route_mm(const CacheGeometry &geom, const TechParams &tech);

/** The three LUT integration strategies of Section III-B. */
enum class LutDesign
{
    StandaloneMacro,   ///< Separate small array with own peripherals.
    SharedBitline,     ///< LUT rows on the full partition bitline.
    DecoupledBitline,  ///< Chosen design: local precharge, segmented BL.
};

/** Cost of one LUT entry lookup under a given strategy (Fig. 4(c)). */
struct LutAccessCost
{
    LutDesign design;
    std::string name;
    double latencyNs = 0.0;
    double energyPj = 0.0;
    /** Added area as a fraction of one sub-array. */
    double areaFraction = 0.0;
};

/** Evaluate one strategy. */
LutAccessCost lut_access_cost(LutDesign design, const TechParams &tech);

/** Evaluate all three strategies (ordering matches the enum). */
std::array<LutAccessCost, 3> lut_design_space(const TechParams &tech);

} // namespace bfree::tech

#endif // BFREE_TECH_ACCESS_BREAKDOWN_HH
