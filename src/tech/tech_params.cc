#include "tech_params.hh"

#include "sim/logging.hh"

namespace bfree::tech {

const char *
MainMemoryParams::name() const
{
    switch (kind) {
      case MainMemoryKind::DRAM:
        return "DRAM";
      case MainMemoryKind::EDRAM:
        return "eDRAM";
      case MainMemoryKind::HBM:
        return "HBM";
    }
    return "?";
}

MainMemoryParams
main_memory_params(MainMemoryKind kind)
{
    MainMemoryParams p;
    p.kind = kind;
    switch (kind) {
      case MainMemoryKind::DRAM:
        p.bandwidthGBps = 20.0;
        // Full-system DDR transfer energy (device + channel +
        // controller + refresh amortization). Calibrated so that the
        // paper's observations hold simultaneously: ~80% of BFree's
        // CNN energy is DRAM weight loading (Section V-D) and the
        // Table III BFree energies (e.g. BERT-base batch 1: 0.12 J,
        // dominated by streaming 87 MB of weights).
        p.energyPjPerByte = 1200.0;
        p.staticPowerMw = 500.0;
        break;
      case MainMemoryKind::EDRAM:
        p.bandwidthGBps = 64.0;
        p.energyPjPerByte = 400.0;
        p.staticPowerMw = 800.0;
        break;
      case MainMemoryKind::HBM:
        p.bandwidthGBps = 100.0;
        p.energyPjPerByte = 250.0;
        p.staticPowerMw = 1000.0;
        break;
      default:
        bfree_fatal("unknown main memory kind");
    }
    return p;
}

} // namespace bfree::tech
