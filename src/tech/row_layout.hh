/**
 * @file
 * The canonical sub-array row layout, shared by the kernel compiler,
 * the weight placement engine and the static verifiers.
 *
 * One 8 KB sub-array (1024 rows of 8 bytes) is carved up as:
 *
 *   rows [0, weight_base_row)        config-block region (64 bytes;
 *                                    the CB image sits at byte 0)
 *   rows [weight_base_row,
 *         first_lut_row)             weight region (8064 usable bytes
 *                                    per pass)
 *   rows [first_lut_row, total_rows) reserved LUT rows (64 bytes,
 *                                    decoupled bitlines)
 *
 * Every producer (KernelCompiler row ranges, place_weights extents)
 * and every checker (KernelVerifier, PlanVerifier) must derive its
 * bounds from these functions — duplicating the constants is exactly
 * the class of drift the verifiers exist to catch.
 */

#ifndef BFREE_TECH_ROW_LAYOUT_HH
#define BFREE_TECH_ROW_LAYOUT_HH

#include <cstdint>

#include "geometry.hh"

namespace bfree::tech {

/** Bytes reserved for the config block at the base of a sub-array. */
inline constexpr unsigned config_region_bytes = 64;

/** Rows in one sub-array (paper: 1024). */
inline unsigned
total_rows(const CacheGeometry &geom)
{
    return geom.rowsPerPartition * geom.partitionsPerSubarray;
}

/** First weight row: the row past the config-block region (8). */
inline unsigned
weight_base_row(const CacheGeometry &geom)
{
    return (config_region_bytes + geom.rowBytes() - 1) / geom.rowBytes();
}

/** First reserved LUT row (1016). */
inline unsigned
first_lut_row(const CacheGeometry &geom)
{
    return total_rows(geom) - geom.lutRowsPerSubarray();
}

/** Weight rows usable per pass in one sub-array (1008). */
inline unsigned
usable_weight_rows(const CacheGeometry &geom)
{
    return first_lut_row(geom) - weight_base_row(geom);
}

/** Weight bytes usable per pass in one sub-array (8064). */
inline std::uint64_t
usable_weight_bytes(const CacheGeometry &geom)
{
    return std::uint64_t(usable_weight_rows(geom)) * geom.rowBytes();
}

} // namespace bfree::tech

#endif // BFREE_TECH_ROW_LAYOUT_HH
