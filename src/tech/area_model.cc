#include "area_model.hh"

namespace bfree::tech {

AreaReport
compute_area(const CacheGeometry &geom, const TechParams &tech)
{
    AreaReport r;

    const double cells_per_subarray =
        static_cast<double>(geom.subarrayBytes()) * 8.0;
    const double cell_array_um2 = cells_per_subarray * tech.bitcellAreaUm2;
    r.subarrayMm2 =
        cell_array_um2 * (1.0 + tech.peripheryAreaFraction) * 1e-6;

    r.lutPrechargeMm2 = r.subarrayMm2 * tech.lutPrechargeAreaFraction;
    r.lutPrechargeFraction = tech.lutPrechargeAreaFraction;

    const double subarray_silicon_per_slice =
        r.subarrayMm2 * geom.subarraysPerSlice();
    r.sliceBaseMm2 =
        subarray_silicon_per_slice * (1.0 + tech.sliceWiringAreaFraction);

    // The paper characterises the synthesized BCE logic as 6% of a
    // 2.5 MB slice; invert that to a per-instance area.
    const double bce_total_per_slice =
        r.sliceBaseMm2 * tech.bceAreaFractionOfSlice;
    r.bcePerSubarrayMm2 = bce_total_per_slice / geom.subarraysPerSlice();
    r.bceFractionOfSlice = tech.bceAreaFractionOfSlice;

    const double added_per_slice =
        bce_total_per_slice
        + r.lutPrechargeMm2 * geom.subarraysPerSlice();
    r.sliceBfreeMm2 = r.sliceBaseMm2 + added_per_slice;

    r.cacheBaseMm2 = r.sliceBaseMm2 * geom.numSlices
                     * (1.0 + tech.cacheGlobalAreaFraction);
    r.controllerMm2 =
        r.cacheBaseMm2 * tech.controllerAreaFractionOfCache;
    r.controllerFraction = tech.controllerAreaFractionOfCache;

    const double added_total =
        added_per_slice * geom.numSlices + r.controllerMm2;
    r.cacheBfreeMm2 = r.cacheBaseMm2 + added_total;
    r.totalOverheadFraction = added_total / r.cacheBaseMm2;

    return r;
}

double
eyeriss_pe_area_mm2()
{
    // Eyeriss (65 nm) PE scaled to 16 nm: ~0.001 mm^2 for an 8-bit MAC
    // PE with its local scratch registers.
    return 0.001;
}

unsigned
iso_area_eyeriss_pes(const CacheGeometry &geom, const TechParams &tech)
{
    const AreaReport r = compute_area(geom, tech);
    const double custom_logic =
        r.sliceBaseMm2 * tech.bceAreaFractionOfSlice;
    return static_cast<unsigned>(custom_logic / eyeriss_pe_area_mm2());
}

} // namespace bfree::tech
