/**
 * @file
 * Cache organization of the modelled last-level cache.
 *
 * The paper models an Intel E5-class 35 MB L3: 14 slices of 2.5 MB, each
 * slice split into 4 banks of 10 sub-banks, each sub-bank holding 8
 * sub-arrays of 8 KB. A sub-array has 4 partitions of 256 rows x 64
 * cells with a 4:1 column mux. That yields 4480 sub-arrays in total, the
 * number the paper quotes when sizing BFree's parallelism.
 */

#ifndef BFREE_TECH_GEOMETRY_HH
#define BFREE_TECH_GEOMETRY_HH

#include <cstdint>

namespace bfree::tech {

/**
 * Static description of the cache organization. All counts are per the
 * enclosing level (e.g. banksPerSlice is banks in ONE slice).
 */
struct CacheGeometry
{
    unsigned numSlices = 14;
    unsigned banksPerSlice = 4;
    unsigned subBanksPerBank = 10;
    unsigned subarraysPerSubBank = 8;

    /** Partitions inside one sub-array (share timer & decoder). */
    unsigned partitionsPerSubarray = 4;

    /** Rows per partition. */
    unsigned rowsPerPartition = 256;

    /** Cells (bits) per row. */
    unsigned cellsPerRow = 64;

    /** Column multiplexing factor. */
    unsigned columnMux = 4;

    /** LUT rows reserved per partition (decoupled bitlines). */
    unsigned lutRowsPerPartition = 2;

    // ------------------------------------------------------------------
    // Derived quantities
    // ------------------------------------------------------------------
    /** Bytes in one row. */
    unsigned rowBytes() const { return cellsPerRow / 8; }

    /** Bytes in one partition. */
    std::uint64_t
    partitionBytes() const
    {
        return std::uint64_t(rowsPerPartition) * rowBytes();
    }

    /** Bytes in one sub-array (paper: 8 KB). */
    std::uint64_t
    subarrayBytes() const
    {
        return partitionBytes() * partitionsPerSubarray;
    }

    /** Sub-arrays in one slice. */
    unsigned
    subarraysPerSlice() const
    {
        return banksPerSlice * subBanksPerBank * subarraysPerSubBank;
    }

    /** Sub-arrays in the whole cache (paper: 4480). */
    unsigned
    totalSubarrays() const
    {
        return numSlices * subarraysPerSlice();
    }

    /** Bytes in one slice (paper: 2.5 MB). */
    std::uint64_t
    sliceBytes() const
    {
        return subarrayBytes() * subarraysPerSlice();
    }

    /** Bytes in the whole cache (paper: 35 MB). */
    std::uint64_t
    totalBytes() const
    {
        return sliceBytes() * numSlices;
    }

    /** LUT rows in one sub-array (paper: 8). */
    unsigned
    lutRowsPerSubarray() const
    {
        return lutRowsPerPartition * partitionsPerSubarray;
    }

    /** LUT capacity of one sub-array in bytes (paper: 64 entries). */
    unsigned
    lutBytesPerSubarray() const
    {
        return lutRowsPerSubarray() * rowBytes();
    }
};

} // namespace bfree::tech

#endif // BFREE_TECH_GEOMETRY_HH
