#include "eyeriss.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bfree::baseline {

EyerissModel::EyerissModel(const tech::TechParams &tech,
                           tech::MainMemoryKind memory,
                           EyerissParams params)
    : tech(tech), params(params),
      memParams(tech::main_memory_params(memory))
{}

EyerissParams
EyerissModel::isoArea(const tech::CacheGeometry &geom,
                      const tech::TechParams &tech)
{
    EyerissParams p;
    const unsigned pes = tech::iso_area_eyeriss_pes(geom, tech);
    const auto side = static_cast<unsigned>(std::sqrt(pes));
    p.peRows = side;
    p.peCols = side;
    p.clockHz = tech.subarrayClockHz; // iso-frequency comparison
    return p;
}

map::RunResult
EyerissModel::run(const dnn::Network &net) const
{
    map::RunResult result;
    result.network = net.name() + " (Eyeriss)";
    result.batch = 1;

    const double rate = params.pes() * params.utilization
                        * params.clockHz;

    for (const dnn::Layer &layer : net.layers()) {
        map::LayerResult lr;
        lr.name = layer.name;
        lr.kind = layer.kind;
        lr.macs = layer.macs();

        const double compute_s = static_cast<double>(layer.macs()) / rate;
        const double stream_bytes =
            static_cast<double>(layer.weightBytes())
            + static_cast<double>(layer.inputBytes())
            + static_cast<double>(layer.outputBytes());
        const double stream_s = memParams.streamSeconds(stream_bytes);

        // Double buffering overlaps the stream with compute; the
        // weight fill of the first tile is exposed.
        lr.time.compute = compute_s;
        lr.time.inputLoad = std::max(0.0, stream_s - compute_s);

        lr.energy.addJoules(mem::EnergyCategory::DramTransfer,
                            memParams.streamJoules(stream_bytes));
        lr.energy.addPj(mem::EnergyCategory::BceCompute,
                        static_cast<double>(layer.macs()) * params.macPj);
        lr.energy.addPj(mem::EnergyCategory::SubarrayAccess,
                        stream_bytes * params.bufferPjPerByte);
        lr.energy.addJoules(mem::EnergyCategory::Leakage,
                            params.leakageMw * 1e-3 * lr.time.total());

        result.time += lr.time;
        result.energy += lr.energy;
        result.layers.push_back(std::move(lr));
    }
    return result;
}

} // namespace bfree::baseline
