#include "bit_serial.hh"

#include "sim/logging.hh"

namespace bfree::baseline {

std::uint64_t
bit_serial_add_cycles(unsigned bits)
{
    // One cycle per bit position (sum + carry via multi-row
    // activation) plus the carry-out write.
    return std::uint64_t(bits) + 1;
}

std::uint64_t
bit_serial_mult_cycles(unsigned bits)
{
    // The Neural Cache micro-program: n predicated shifted additions
    // plus tag management and the final carry tail — n^2 + 5n - 2
    // single-bit cycles (102 at n = 8, the number the BFree paper
    // quotes in Section II-C).
    const std::uint64_t n = bits;
    return n * n + 5 * n - 2;
}

BitSerialArray::BitSerialArray(unsigned lanes, unsigned bits)
    : numLanes(lanes), numBits(bits), a(lanes, 0), b(lanes, 0)
{
    if (lanes == 0)
        bfree_fatal("bit-serial array needs at least one lane");
    if (bits == 0 || bits > 16)
        bfree_fatal("bit-serial operand width must be in [1, 16]");
}

void
BitSerialArray::loadA(const std::vector<std::uint16_t> &values)
{
    if (values.size() != numLanes)
        bfree_fatal("loadA: expected ", numLanes, " lane values");
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << numBits) - 1);
    for (unsigned l = 0; l < numLanes; ++l)
        a[l] = values[l] & mask;
}

void
BitSerialArray::loadB(const std::vector<std::uint16_t> &values)
{
    if (values.size() != numLanes)
        bfree_fatal("loadB: expected ", numLanes, " lane values");
    const std::uint16_t mask =
        static_cast<std::uint16_t>((1u << numBits) - 1);
    for (unsigned l = 0; l < numLanes; ++l)
        b[l] = values[l] & mask;
}

std::vector<std::uint32_t>
BitSerialArray::add()
{
    std::vector<std::uint32_t> result(numLanes, 0);
    std::vector<std::uint8_t> carry(numLanes, 0);

    // Bit position i of every lane computed in one cycle: the sum via
    // XOR of the two operand rows and the carry row, the carry via the
    // majority function — both available from one multi-row activation
    // with the NOR/AND sense amplifiers.
    for (unsigned i = 0; i < numBits; ++i) {
        for (unsigned l = 0; l < numLanes; ++l) {
            const unsigned abit = (a[l] >> i) & 1u;
            const unsigned bbit = (b[l] >> i) & 1u;
            const unsigned sum = abit ^ bbit ^ carry[l];
            carry[l] = static_cast<std::uint8_t>(
                (abit & bbit) | (abit & carry[l]) | (bbit & carry[l]));
            result[l] |= sum << i;
        }
        step();
    }
    // Carry-out row write.
    for (unsigned l = 0; l < numLanes; ++l)
        result[l] |= std::uint32_t(carry[l]) << numBits;
    step();

    return result;
}

std::vector<std::uint32_t>
BitSerialArray::multiply()
{
    const std::uint64_t start = cycles;
    std::vector<std::uint32_t> acc(numLanes, 0);

    // Shift-and-add with a predication tag per lane: for every bit of
    // B, the tag row selects the lanes whose partial product is added.
    for (unsigned i = 0; i < numBits; ++i) {
        // Tag load: read b_i into the tag latch (one activation).
        step();
        // Predicated shifted addition of A into the accumulator: one
        // cycle per bit position plus the carry row, exactly like
        // add() but gated by the tag.
        std::vector<std::uint8_t> carry(numLanes, 0);
        for (unsigned j = 0; j < numBits; ++j) {
            for (unsigned l = 0; l < numLanes; ++l) {
                const unsigned tag = (b[l] >> i) & 1u;
                const unsigned abit = ((a[l] >> j) & 1u) & tag;
                const unsigned accbit = (acc[l] >> (i + j)) & 1u;
                const unsigned sum = abit ^ accbit ^ carry[l];
                carry[l] = static_cast<std::uint8_t>(
                    (abit & accbit) | (abit & carry[l])
                    | (accbit & carry[l]));
                acc[l] =
                    (acc[l] & ~(1u << (i + j))) | (sum << (i + j));
            }
            step();
        }
        // Carry propagation into the bit above the partial's window.
        for (unsigned l = 0; l < numLanes; ++l) {
            unsigned pos = i + numBits;
            unsigned c = carry[l];
            while (c != 0 && pos < 2 * numBits) {
                const unsigned bit = (acc[l] >> pos) & 1u;
                acc[l] = (acc[l] & ~(1u << pos)) | ((bit ^ c) << pos);
                c = bit & c;
                ++pos;
            }
        }
        step(2); // carry-row writeback + tag clear
    }

    // Final tail: accumulator readout alignment (the remaining cycles
    // of the published n^2 + 5n - 2 micro-program).
    const std::uint64_t used = cycles - start;
    const std::uint64_t target = bit_serial_mult_cycles(numBits);
    if (target < used)
        bfree_panic("bit-serial micro-program exceeded the published "
                    "cycle count: ", used, " > ", target);
    step(target - used);

    return acc;
}

} // namespace bfree::baseline
