#include "neural_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bfree::baseline {

NeuralCacheModel::NeuralCacheModel(const tech::CacheGeometry &geom,
                                   const tech::TechParams &tech,
                                   map::ExecConfig config,
                                   NeuralCacheParams params)
    : geom(geom), tech(tech), cfg(config), params(params),
      memParams(tech::main_memory_params(config.memory))
{
    if (cfg.batch == 0)
        bfree_fatal("batch size must be positive");
}

map::LayerResult
NeuralCacheModel::runLayer(const dnn::Layer &layer, bool first_layer,
                           bool spill_to_dram) const
{
    map::LayerResult r;
    r.name = layer.name;
    r.kind = layer.kind;
    r.macs = layer.macs();

    const double f = tech.neuralCacheClockHz;
    const unsigned total_sa =
        cfg.mapper.slices * geom.subarraysPerSlice();

    // Neural Cache computes across all sub-arrays holding operands;
    // parallelism is bounded the same way as BFree's weight tiling.
    map::Mapper mapper(geom, cfg.mapper);
    map::LayerMapping m = mapper.map(layer);
    m.mode = map::ExecMode::ConvMode; // bit-serial, no matmul datapath
    r.mapping = m;
    const double active = std::max(1u, m.activeSubarrays);

    if (layer.isComputeLayer()) {
        // Bit-serial compute: PIM-OPC ~ 0.63 at 8-bit; 4-bit operands
        // roughly halve the cycle count (bit-serial cost scales with
        // operand width squared for multiplies; use the paper's
        // linear-width approximation).
        const double scale = layer.precisionBits / 8.0;
        const double cycles_per_mac =
            params.macCycles8bit * scale / params.parallelColumns;
        r.time.compute = static_cast<double>(layer.macs())
                         * cycles_per_mac / (active * f);

        // Explicit reduction: partial sums on separate bitlines are
        // read out and written back repeatedly; the round trips
        // serialize per sub-bank port.
        const double reduction_accesses =
            params.reductionAccessesPerOutput
            * static_cast<double>(layer.outputBytes());
        const double reduction_ports =
            static_cast<double>(cfg.mapper.slices)
            * geom.banksPerSlice * geom.subBanksPerBank;
        r.time.requant = reduction_accesses / (reduction_ports * f);

        r.energy.addPj(mem::EnergyCategory::SubarrayAccess,
                       reduction_accesses * tech.subarrayAccessPj
                           / geom.rowBytes());
    }

    // Special functions decompose into many boolean/arithmetic bitline
    // steps; charge 16 bitline ops per evaluation.
    r.time.special =
        16.0 * static_cast<double>(layer.specialOps()) / (active * f);

    // Input load: operands are written into the arrays and transposed
    // before compute (no systolic streaming). Even SRAM-resident
    // intermediates pay the transpose.
    double stream_bytes = 0.0;
    if (first_layer || spill_to_dram)
        stream_bytes += static_cast<double>(layer.inputBytes());
    if (spill_to_dram)
        stream_bytes += static_cast<double>(layer.outputBytes());

    const double dram_s = memParams.streamSeconds(stream_bytes);
    const double transpose_s =
        static_cast<double>(layer.inputBytes())
        / (params.portBytesPerCyclePerSlice * cfg.mapper.slices * f);
    r.time.inputLoad = dram_s + transpose_s;

    // Weight loading through the same channel as BFree.
    if (layer.isComputeLayer()) {
        r.time.weightLoad = memParams.streamSeconds(
            static_cast<double>(layer.weightBytes()));
    }

    // ------------------------------------------------------------------
    // Energy
    // ------------------------------------------------------------------
    mem::EnergyAccount &e = r.energy;
    e.addJoules(mem::EnergyCategory::DramTransfer,
                memParams.streamJoules(stream_bytes));

    if (layer.isComputeLayer()) {
        // Every compute cycle swings the bitlines of each active
        // sub-array.
        const double compute_cycles_total =
            r.time.compute * f * active;
        e.addPj(mem::EnergyCategory::BceCompute,
                compute_cycles_total * tech.bitlineComputeOpPj);
    }

    // Transpose writes and special-op accesses pay read/write energy.
    const double access_cycles_total =
        (r.time.inputLoad - dram_s + r.time.special) * f * active;
    e.addPj(mem::EnergyCategory::SubarrayAccess,
            std::max(0.0, access_cycles_total) * tech.subarrayAccessPj);

    // Leakage / controller static power over the layer runtime.
    const double cache_mb =
        static_cast<double>(geom.totalBytes()) / (1024.0 * 1024.0);
    const double leak_w = tech.sramLeakageMwPerMb * cache_mb * 1e-3
                          + memParams.staticPowerMw * 1e-3;
    e.addJoules(mem::EnergyCategory::Leakage,
                leak_w * r.time.total());

    (void)total_sa;
    return r;
}

map::RunResult
NeuralCacheModel::run(const dnn::Network &net) const
{
    map::RunResult result;
    result.network = net.name() + " (NeuralCache)";
    result.batch = cfg.batch;

    map::Mapper mapper(geom, cfg.mapper);
    const bool resident = mapper.weightsResident(net);
    const bool spill = cfg.batch > 1 && !resident;
    const double timesteps = static_cast<double>(net.timesteps);

    bool first = true;
    for (const dnn::Layer &layer : net.layers()) {
        map::LayerResult lr = runLayer(layer, first, spill);
        first = false;

        const double weight_load = lr.time.weightLoad;
        lr.time = lr.time.scaled(timesteps);
        lr.time.weightLoad = weight_load;
        if (timesteps != 1.0) {
            mem::EnergyAccount scaled;
            for (std::size_t c = 0; c < mem::num_energy_categories; ++c) {
                const auto cat = static_cast<mem::EnergyCategory>(c);
                scaled.addJoules(cat, lr.energy.joules(cat) * timesteps);
            }
            lr.energy = scaled;
        }

        lr.time.weightLoad /= static_cast<double>(cfg.batch);
        lr.energy.addJoules(
            mem::EnergyCategory::DramTransfer,
            memParams.streamJoules(
                static_cast<double>(lr.mapping.weightBytes))
                / static_cast<double>(cfg.batch));

        result.time += lr.time;
        result.energy += lr.energy;
        result.layers.push_back(std::move(lr));
    }
    return result;
}

} // namespace bfree::baseline
