/**
 * @file
 * Eyeriss-style systolic accelerator baseline (Chen et al., ISCA'16).
 *
 * For the Fig. 13 comparison the paper configures Eyeriss iso-area with
 * BFree's added custom logic in one 2.5 MB slice: scaling the Eyeriss
 * PE to 16 nm, that area fits a 12x12 array of 8-bit MAC PEs run at the
 * same frequency as the BFree sub-arrays. The model is a
 * row-stationary dataflow approximation: compute is
 * MACs / (PEs x utilization), double-buffered against the main-memory
 * stream of weights and input features.
 */

#ifndef BFREE_BASELINES_EYERISS_HH
#define BFREE_BASELINES_EYERISS_HH

#include "dnn/network.hh"
#include "map/exec_model.hh"
#include "tech/area_model.hh"
#include "tech/tech_params.hh"

namespace bfree::baseline {

/** Eyeriss model parameters. */
struct EyerissParams
{
    unsigned peRows = 12;
    unsigned peCols = 12;
    double clockHz = 1.5e9;

    /** Average PE array utilization under row-stationary mapping. */
    double utilization = 0.85;

    /** Energy of one 8-bit MAC including local register traffic. */
    double macPj = 2.0;

    /** Global buffer access energy per byte. */
    double bufferPjPerByte = 3.0;

    /** Static power of the accelerator. */
    double leakageMw = 50.0;

    unsigned pes() const { return peRows * peCols; }
};

/**
 * Analytic Eyeriss execution model.
 */
class EyerissModel
{
  public:
    EyerissModel(const tech::TechParams &tech,
                 tech::MainMemoryKind memory = tech::MainMemoryKind::DRAM,
                 EyerissParams params = {});

    /** Execute a network at batch 1; per-inference time and energy. */
    map::RunResult run(const dnn::Network &net) const;

    const EyerissParams &parameters() const { return params; }

    /**
     * Build the iso-area configuration for a geometry (the PE count
     * that fits in the BFree custom-logic area of one slice).
     */
    static EyerissParams isoArea(const tech::CacheGeometry &geom,
                                 const tech::TechParams &tech);

  private:
    tech::TechParams tech;
    EyerissParams params;
    tech::MainMemoryParams memParams;
};

} // namespace bfree::baseline

#endif // BFREE_BASELINES_EYERISS_HH
