/**
 * @file
 * CPU (Xeon E5-2697) and GPU (Titan V) baseline models.
 *
 * SUBSTITUTION (documented in DESIGN.md): the paper profiles real
 * hardware with PyTorch/TensorFlow, RAPL and nvidia-smi. Without that
 * silicon, these are analytical roofline models whose utilization and
 * power curves are calibrated against the paper's published
 * measurements (Table III and the Section V-D CNN ratios). The peak
 * rates come from the devices' data sheets; the workload-class
 * efficiency factors encode how far real framework execution lands
 * from peak — exactly the quantity the paper measured.
 */

#ifndef BFREE_BASELINES_CPU_GPU_HH
#define BFREE_BASELINES_CPU_GPU_HH

#include <string>

#include "dnn/network.hh"

namespace bfree::baseline {

/** Workload classes with distinct baseline efficiency behaviour. */
enum class WorkloadClass
{
    Cnn,         ///< Convolutional networks (im2col GEMMs).
    Rnn,         ///< Sequential recurrent models (matvec-bound).
    Transformer, ///< Large batched GEMMs.
};

/** Classify a network by its dominant layers. */
WorkloadClass classify(const dnn::Network &net);

/** Printable class name. */
const char *workload_class_name(WorkloadClass cls);

/** Result of a baseline run. */
struct BaselineResult
{
    std::string device;
    double secondsPerInference = 0.0;
    double joulesPerInference = 0.0;
    double utilization = 0.0; ///< Fraction of peak MAC rate achieved.
    double watts = 0.0;       ///< Average power during the run.
};

/** A processor's roofline description. */
struct ProcessorParams
{
    std::string name;
    double peakMacsPerSec = 0.0;
    double idleW = 0.0;   ///< Power at zero utilization.
    double slopeW = 0.0;  ///< Additional power at full utilization.

    /** Efficiency at batch 1 per workload class. */
    double cnnUtilB1 = 0.0;
    double rnnUtil = 0.0;
    double transformerUtilB1 = 0.0;

    /** Efficiency at batch 16 (geometric interpolation between). */
    double cnnUtilB16 = 0.0;
    double transformerUtilB16 = 0.0;

    /** Interpolated utilization for a class/batch. */
    double utilization(WorkloadClass cls, unsigned batch) const;
};

/** The paper's CPU: Intel Xeon E5-2697 (14 cores, 2.6 GHz, AVX2). */
ProcessorParams xeon_e5_2697();

/** The paper's GPU: NVIDIA Titan V (5120 cores, 12 GB HBM2). */
ProcessorParams titan_v();

/**
 * Run a network on a baseline processor model.
 */
class ProcessorModel
{
  public:
    explicit ProcessorModel(ProcessorParams params)
        : params(std::move(params))
    {}

    /** Per-inference time/energy at the given batch size. */
    BaselineResult run(const dnn::Network &net, unsigned batch) const;

    const ProcessorParams &parameters() const { return params; }

  private:
    ProcessorParams params;
};

} // namespace bfree::baseline

#endif // BFREE_BASELINES_CPU_GPU_HH
