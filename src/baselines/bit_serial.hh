/**
 * @file
 * Functional bit-serial bitline computing (Section II-B/II-C).
 *
 * Neural Cache stores operands transposed — one operand per bitline,
 * one bit per row — and computes with multi-row activation: asserting
 * two wordlines ANDs/NORs the cells onto the bitline, and a sequence
 * of such single-bit boolean steps implements addition and
 * multiplication across all 64/256 bitlines of a sub-array at once.
 *
 * This module implements that machine functionally at the level the
 * BFree paper reasons about it: per-cycle single-bit boolean
 * operations on a transposed register file, with the published cycle
 * counts — addition of n-bit operands in n + 1 cycles, multiplication
 * in n^2 + 5n - 2 cycles (102 for n = 8, hence PIM-OPC =
 * 64 / 102 ~ 0.63). Tests verify both exact arithmetic and that the
 * micro-program's cycle count equals the formula, which grounds the
 * NeuralCacheModel's throughput assumptions.
 */

#ifndef BFREE_BASELINES_BIT_SERIAL_HH
#define BFREE_BASELINES_BIT_SERIAL_HH

#include <cstdint>
#include <vector>

namespace bfree::baseline {

/** Published cycle count of an n-bit bit-serial addition. */
std::uint64_t bit_serial_add_cycles(unsigned bits);

/** Published cycle count of an n-bit bit-serial multiplication
 *  (102 for 8-bit, the paper's number). */
std::uint64_t bit_serial_mult_cycles(unsigned bits);

/**
 * A column group of the transposed array: each lane is one bitline
 * holding its operands bit-serially; every boolean step applies to
 * all lanes in the same cycle (that is the parallelism bitline
 * computing buys).
 */
class BitSerialArray
{
  public:
    /**
     * @param lanes Bitlines computing in parallel (64 per sub-array
     *              partition group in the paper's organization).
     * @param bits  Operand precision.
     */
    BitSerialArray(unsigned lanes, unsigned bits);

    unsigned lanes() const { return numLanes; }
    unsigned bits() const { return numBits; }

    /** Load operand A of every lane (transposed store; not counted
     *  as compute cycles). */
    void loadA(const std::vector<std::uint16_t> &values);

    /** Load operand B of every lane. */
    void loadB(const std::vector<std::uint16_t> &values);

    /**
     * Bit-serial addition across all lanes: result = A + B (modulo
     * 2^(bits+1), the carry-out occupies one extra row). Consumes
     * bit_serial_add_cycles(bits).
     */
    std::vector<std::uint32_t> add();

    /**
     * Bit-serial multiplication across all lanes: result = A * B
     * exactly (2*bits result rows). Consumes
     * bit_serial_mult_cycles(bits).
     */
    std::vector<std::uint32_t> multiply();

    /** Boolean single-bit steps executed so far (the cycle count). */
    std::uint64_t cyclesConsumed() const { return cycles; }

    /** Bitline activations so far (for energy accounting: every cycle
     *  swings every lane's bitline). */
    std::uint64_t
    bitlineActivations() const
    {
        return cycles * numLanes;
    }

  private:
    /** One multi-row-activation step: a boolean op on every lane. */
    void step(std::uint64_t n = 1) { cycles += n; }

    unsigned numLanes;
    unsigned numBits;
    std::vector<std::uint16_t> a;
    std::vector<std::uint16_t> b;
    std::uint64_t cycles = 0;
};

} // namespace bfree::baseline

#endif // BFREE_BASELINES_BIT_SERIAL_HH
