/**
 * @file
 * Neural Cache baseline model (Eckert et al., ISCA'18).
 *
 * Neural Cache repurposes the same LLC with bit-serial bitline
 * computing: operands are stored transposed (bit-serial) in the
 * columns, multi-row activation computes across all 64 bitlines of a
 * sub-array at once, and an 8-bit multiply takes 102 PIM cycles —
 * PIM-OPC = 64/102 ~ 0.63 MAC/cycle/sub-array (Section II-C of the
 * BFree paper).
 *
 * Differences from BFree captured by the model:
 *  - lower array clock (wordline underdrive for safe MRA);
 *  - explicit input-load phase (operands must be transposed into the
 *    arrays before compute starts; no systolic overlap);
 *  - explicit reduction phase (partial sums on different bitlines are
 *    read out and written back repeatedly);
 *  - every compute cycle swings all bitlines: 15.4 pJ per sub-array
 *    compute op vs 8.6 pJ per read/write.
 */

#ifndef BFREE_BASELINES_NEURAL_CACHE_HH
#define BFREE_BASELINES_NEURAL_CACHE_HH

#include "dnn/network.hh"
#include "map/exec_model.hh"
#include "mem/energy_account.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace bfree::baseline {

/** Neural Cache model parameters (with paper-anchored defaults). */
struct NeuralCacheParams
{
    /** PIM cycles for one 8-bit multiply-accumulate column. */
    unsigned macCycles8bit = 102;

    /** Bitlines computing in parallel per sub-array. */
    unsigned parallelColumns = 64;

    /**
     * Bytes per cycle each slice port sustains while writing operands
     * into the arrays in bit-serial (transposed) layout. Transposition
     * serializes on the port, which is why the input-load phase is
     * exposed (Fig. 12(c)).
     */
    double portBytesPerCyclePerSlice = 1.0;

    /** Read/write round trips per output element during the explicit
     *  partial-sum reduction phase. */
    double reductionAccessesPerOutput = 8.0;

    /** MACs per cycle per sub-array (PIM-OPC ~ 0.63). */
    double
    macsPerCycle() const
    {
        return static_cast<double>(parallelColumns) / macCycles8bit;
    }
};

/**
 * Analytic Neural Cache execution model, mirroring the structure of
 * the BFree ExecutionModel so the Fig. 12 comparison is apples to
 * apples (same DRAM channel, same geometry, same leakage).
 */
class NeuralCacheModel
{
  public:
    NeuralCacheModel(const tech::CacheGeometry &geom,
                     const tech::TechParams &tech,
                     map::ExecConfig config = {},
                     NeuralCacheParams params = {});

    /** Execute a network; per-inference time and energy. */
    map::RunResult run(const dnn::Network &net) const;

    const NeuralCacheParams &parameters() const { return params; }

  private:
    map::LayerResult runLayer(const dnn::Layer &layer, bool first_layer,
                              bool spill_to_dram) const;

    tech::CacheGeometry geom;
    tech::TechParams tech;
    map::ExecConfig cfg;
    NeuralCacheParams params;
    tech::MainMemoryParams memParams;
};

} // namespace bfree::baseline

#endif // BFREE_BASELINES_NEURAL_CACHE_HH
