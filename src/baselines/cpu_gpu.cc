#include "cpu_gpu.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace bfree::baseline {

WorkloadClass
classify(const dnn::Network &net)
{
    std::uint64_t conv_macs = 0;
    std::uint64_t attn_macs = 0;
    std::uint64_t lstm_macs = 0;
    std::uint64_t other_macs = 0;
    for (const dnn::Layer &l : net.layers()) {
        switch (l.kind) {
          case dnn::LayerKind::Conv:
            conv_macs += l.macs();
            break;
          case dnn::LayerKind::Attention:
            attn_macs += l.macs();
            break;
          case dnn::LayerKind::LstmCell:
            lstm_macs += l.macs();
            break;
          default:
            other_macs += l.macs();
        }
    }
    if (lstm_macs > conv_macs && lstm_macs > attn_macs)
        return WorkloadClass::Rnn;
    if (attn_macs > 0)
        return WorkloadClass::Transformer;
    return WorkloadClass::Cnn;
}

const char *
workload_class_name(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::Cnn:
        return "cnn";
      case WorkloadClass::Rnn:
        return "rnn";
      case WorkloadClass::Transformer:
        return "transformer";
    }
    return "?";
}

double
ProcessorParams::utilization(WorkloadClass cls, unsigned batch) const
{
    double u1 = 0.0;
    double u16 = 0.0;
    switch (cls) {
      case WorkloadClass::Cnn:
        u1 = cnnUtilB1;
        u16 = cnnUtilB16;
        break;
      case WorkloadClass::Rnn:
        // Sequential dependence: batching does not help the recurrence.
        return rnnUtil;
      case WorkloadClass::Transformer:
        u1 = transformerUtilB1;
        u16 = transformerUtilB16;
        break;
    }
    const double b = std::clamp<double>(batch, 1.0, 16.0);
    const double t = std::log2(b) / 4.0; // 0 at batch 1, 1 at batch 16
    return std::pow(u1, 1.0 - t) * std::pow(u16, t);
}

ProcessorParams
xeon_e5_2697()
{
    ProcessorParams p;
    p.name = "Intel Xeon E5-2697";
    // 14 cores x 2.6 GHz x 32 FLOP/cycle (2 AVX2 FMA ports) = 1.16
    // TFLOP/s = 582 GMAC/s peak.
    p.peakMacsPerSec = 582e9;
    p.idleW = 28.0;
    p.slopeW = 40.0;
    // Calibrated to the paper's measurements (Table III and Section
    // V-D speedup ratios).
    p.cnnUtilB1 = 0.010;
    p.cnnUtilB16 = 0.020;
    p.rnnUtil = 0.0025;
    p.transformerUtilB1 = 0.018;
    p.transformerUtilB16 = 0.157;
    return p;
}

ProcessorParams
titan_v()
{
    ProcessorParams p;
    p.name = "NVIDIA Titan V";
    // 5120 CUDA cores x 1.455 GHz x 2 FLOP = 14.9 TFLOP/s = 7.45
    // TMAC/s peak (FP32).
    p.peakMacsPerSec = 7.45e12;
    p.idleW = 30.0;
    p.slopeW = 225.0;
    p.cnnUtilB1 = 0.030;
    p.cnnUtilB16 = 0.074;
    p.rnnUtil = 0.0018;
    p.transformerUtilB1 = 0.0315;
    p.transformerUtilB16 = 0.392;
    return p;
}

BaselineResult
ProcessorModel::run(const dnn::Network &net, unsigned batch) const
{
    if (batch == 0)
        bfree_fatal("batch size must be positive");

    const WorkloadClass cls = classify(net);
    const double util = params.utilization(cls, batch);
    const double macs = static_cast<double>(net.totalMacs())
                        * static_cast<double>(net.timesteps);

    BaselineResult r;
    r.device = params.name;
    r.utilization = util;
    r.secondsPerInference = macs / (params.peakMacsPerSec * util);
    r.watts = params.idleW + params.slopeW * util;
    r.joulesPerInference = r.watts * r.secondsPerInference;
    return r;
}

} // namespace bfree::baseline
