/**
 * @file
 * Fig. 2 (slice access breakdown) and Fig. 4(c) (LUT design space).
 */

#include <gtest/gtest.h>

#include "tech/access_breakdown.hh"

using namespace bfree::tech;

namespace {

SliceAccessBreakdown
breakdown()
{
    return slice_access_breakdown(CacheGeometry{}, TechParams{});
}

} // namespace

TEST(Fig2, InterconnectDominatesLatency)
{
    const SliceAccessBreakdown b = breakdown();
    // Paper: interconnect > 90% of data-access latency.
    EXPECT_GT(b.latencyFraction(b.interconnect), 0.85);
}

TEST(Fig2, InterconnectDominatesEnergy)
{
    const SliceAccessBreakdown b = breakdown();
    EXPECT_GT(b.energyFraction(b.interconnect), 0.85);
}

TEST(Fig2, SubarrayIsSmallShare)
{
    const SliceAccessBreakdown b = breakdown();
    // Paper: sub-array access is ~6% of latency and ~9% of energy.
    EXPECT_GT(b.latencyFraction(b.subarray), 0.03);
    EXPECT_LT(b.latencyFraction(b.subarray), 0.12);
    EXPECT_GT(b.energyFraction(b.subarray), 0.05);
    EXPECT_LT(b.energyFraction(b.subarray), 0.14);
}

TEST(Fig2, TotalsAreSumOfComponents)
{
    const SliceAccessBreakdown b = breakdown();
    EXPECT_NEAR(b.totalLatencyNs(),
                b.interconnect.latencyNs + b.subarray.latencyNs
                    + b.decodeTiming.latencyNs,
                1e-12);
    EXPECT_NEAR(b.totalEnergyPj(),
                b.interconnect.energyPj + b.subarray.energyPj
                    + b.decodeTiming.energyPj,
                1e-12);
}

TEST(Fig2, SubarrayComponentsMatchTechParams)
{
    const TechParams t;
    const SliceAccessBreakdown b = breakdown();
    EXPECT_DOUBLE_EQ(b.subarray.energyPj, t.subarrayAccessPj);
    EXPECT_NEAR(b.subarray.latencyNs, t.subarrayPeriodNs(), 1e-9);
}

TEST(Fig2, SliceAccessLatencyIsL3Scale)
{
    const SliceAccessBreakdown b = breakdown();
    // A 2.5 MB slice access lands in the 5-20 ns L3 range.
    EXPECT_GT(b.totalLatencyNs(), 5.0);
    EXPECT_LT(b.totalLatencyNs(), 20.0);
}

TEST(Fig4, DecoupledIsThreeTimesFaster)
{
    const TechParams t;
    const LutAccessCost shared =
        lut_access_cost(LutDesign::SharedBitline, t);
    const LutAccessCost decoupled =
        lut_access_cost(LutDesign::DecoupledBitline, t);
    EXPECT_NEAR(shared.latencyNs / decoupled.latencyNs, 3.0, 1e-6);
}

TEST(Fig4, DecoupledIs231xMoreEnergyEfficient)
{
    const TechParams t;
    const LutAccessCost shared =
        lut_access_cost(LutDesign::SharedBitline, t);
    const LutAccessCost decoupled =
        lut_access_cost(LutDesign::DecoupledBitline, t);
    EXPECT_NEAR(shared.energyPj / decoupled.energyPj, 231.0, 0.5);
}

TEST(Fig4, DecoupledAreaCostIsHalfPercent)
{
    const TechParams t;
    const LutAccessCost decoupled =
        lut_access_cost(LutDesign::DecoupledBitline, t);
    EXPECT_DOUBLE_EQ(decoupled.areaFraction, 0.005);
}

TEST(Fig4, StandaloneMacroCostsTheMostArea)
{
    const TechParams t;
    const auto space = lut_design_space(t);
    EXPECT_GT(space[0].areaFraction, space[1].areaFraction);
    EXPECT_GT(space[0].areaFraction, space[2].areaFraction);
}

TEST(Fig4, SharedBitlinePaysFullAccessCost)
{
    const TechParams t;
    const LutAccessCost shared =
        lut_access_cost(LutDesign::SharedBitline, t);
    EXPECT_DOUBLE_EQ(shared.energyPj, t.subarrayAccessPj);
    EXPECT_DOUBLE_EQ(shared.areaFraction, 0.0);
}

TEST(Fig4, DesignSpaceCoversAllThree)
{
    const auto space = lut_design_space(TechParams{});
    EXPECT_EQ(space[0].design, LutDesign::StandaloneMacro);
    EXPECT_EQ(space[1].design, LutDesign::SharedBitline);
    EXPECT_EQ(space[2].design, LutDesign::DecoupledBitline);
    for (const auto &c : space) {
        EXPECT_GT(c.latencyNs, 0.0);
        EXPECT_GT(c.energyPj, 0.0);
        EXPECT_FALSE(c.name.empty());
    }
}
