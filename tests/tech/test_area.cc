/**
 * @file
 * Area model: Section V-B accounting (0.5% LUT precharge, 6% BCE per
 * slice, 5.6% total, 0.1% controllers, iso-area 12x12 Eyeriss).
 */

#include <gtest/gtest.h>

#include "tech/area_model.hh"

using namespace bfree::tech;

namespace {

AreaReport
default_report()
{
    return compute_area(CacheGeometry{}, TechParams{});
}

} // namespace

TEST(AreaModel, SubarrayAreaIsPlausible)
{
    const AreaReport r = default_report();
    // 64 Kb of 0.074 um^2 bit-cells plus periphery: around 0.006 mm^2.
    EXPECT_GT(r.subarrayMm2, 0.004);
    EXPECT_LT(r.subarrayMm2, 0.010);
}

TEST(AreaModel, LutPrechargeIsHalfPercent)
{
    const AreaReport r = default_report();
    EXPECT_DOUBLE_EQ(r.lutPrechargeFraction, 0.005);
    EXPECT_NEAR(r.lutPrechargeMm2 / r.subarrayMm2, 0.005, 1e-12);
}

TEST(AreaModel, BceIsSixPercentOfSlice)
{
    const AreaReport r = default_report();
    EXPECT_DOUBLE_EQ(r.bceFractionOfSlice, 0.06);
    const double bce_total =
        r.bcePerSubarrayMm2 * CacheGeometry{}.subarraysPerSlice();
    EXPECT_NEAR(bce_total / r.sliceBaseMm2, 0.06, 1e-9);
}

TEST(AreaModel, TotalOverheadNearPaper)
{
    const AreaReport r = default_report();
    // Paper: 5.6% overall cache area increase.
    EXPECT_GT(r.totalOverheadFraction, 0.045);
    EXPECT_LT(r.totalOverheadFraction, 0.068);
}

TEST(AreaModel, ControllerShareIsTenthOfPercent)
{
    const AreaReport r = default_report();
    EXPECT_DOUBLE_EQ(r.controllerFraction, 0.001);
}

TEST(AreaModel, BfreeCacheIsLargerThanBase)
{
    const AreaReport r = default_report();
    EXPECT_GT(r.cacheBfreeMm2, r.cacheBaseMm2);
    EXPECT_GT(r.sliceBfreeMm2, r.sliceBaseMm2);
    EXPECT_NEAR(r.cacheBfreeMm2,
                r.cacheBaseMm2 * (1.0 + r.totalOverheadFraction), 1e-9);
}

TEST(AreaModel, IsoAreaEyerissIsAbout144Pes)
{
    const unsigned pes = iso_area_eyeriss_pes(CacheGeometry{},
                                              TechParams{});
    // Paper: 12x12 array at iso-area with the BFree custom logic.
    EXPECT_GE(pes, 120u);
    EXPECT_LE(pes, 170u);
}

TEST(AreaModel, SpecializedMacComparison)
{
    const TechParams t;
    // Paper: BCE is 3% smaller and 48% more energy efficient than an
    // equivalently configurable specialized MAC unit.
    EXPECT_NEAR(t.specializedMacAreaVsBce, 1.03, 1e-12);
    EXPECT_NEAR(t.specializedMacEnergyVsBce, 1.48, 1e-12);
}

TEST(AreaModel, ScalesLinearlyWithSliceCount)
{
    CacheGeometry g;
    const AreaReport full = compute_area(g, TechParams{});
    g.numSlices = 7;
    const AreaReport half = compute_area(g, TechParams{});
    EXPECT_NEAR(full.cacheBaseMm2, 2.0 * half.cacheBaseMm2, 1e-9);
    // Per-slice quantities are unchanged.
    EXPECT_NEAR(full.sliceBaseMm2, half.sliceBaseMm2, 1e-12);
}
