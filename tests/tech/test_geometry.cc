/**
 * @file
 * Cache geometry: the paper's organization numbers must fall out.
 */

#include <gtest/gtest.h>

#include "tech/geometry.hh"

using bfree::tech::CacheGeometry;

TEST(Geometry, DefaultMatchesThePaper)
{
    CacheGeometry g;
    EXPECT_EQ(g.numSlices, 14u);
    EXPECT_EQ(g.subarrayBytes(), 8u * 1024u);          // 8 KB sub-array
    EXPECT_EQ(g.sliceBytes(), 2560u * 1024u);          // 2.5 MB slice
    EXPECT_EQ(g.totalBytes(), 35ull * 1024 * 1024);    // 35 MB LLC
    EXPECT_EQ(g.totalSubarrays(), 4480u);              // paper: 4480
    EXPECT_EQ(g.subarraysPerSlice(), 320u);
}

TEST(Geometry, SubBankHoldsEightSubarrays)
{
    CacheGeometry g;
    EXPECT_EQ(g.subarraysPerSubBank, 8u); // Fig. 8 chain length
    EXPECT_EQ(g.banksPerSlice * g.subBanksPerBank * g.subarraysPerSubBank,
              g.subarraysPerSlice());
}

TEST(Geometry, PartitionLayout)
{
    CacheGeometry g;
    EXPECT_EQ(g.partitionsPerSubarray, 4u);
    EXPECT_EQ(g.rowsPerPartition, 256u);
    EXPECT_EQ(g.cellsPerRow, 64u);
    EXPECT_EQ(g.rowBytes(), 8u);
    EXPECT_EQ(g.partitionBytes(), 2048u);
    EXPECT_EQ(g.partitionBytes() * g.partitionsPerSubarray,
              g.subarrayBytes());
}

TEST(Geometry, LutRegionIs64Entries)
{
    CacheGeometry g;
    // Two reserved rows per partition -> 8 rows -> 64 one-byte entries
    // (Section III-B).
    EXPECT_EQ(g.lutRowsPerSubarray(), 8u);
    EXPECT_EQ(g.lutBytesPerSubarray(), 64u);
}

TEST(Geometry, ScalesWithSliceCount)
{
    CacheGeometry g;
    g.numSlices = 1;
    EXPECT_EQ(g.totalBytes(), g.sliceBytes());
    EXPECT_EQ(g.totalSubarrays(), 320u);
}

TEST(Geometry, CustomRowWidthPropagates)
{
    CacheGeometry g;
    g.cellsPerRow = 128;
    EXPECT_EQ(g.rowBytes(), 16u);
    EXPECT_EQ(g.subarrayBytes(), 16u * 1024u);
}
