/**
 * @file
 * Main-memory channel models (Fig. 14's DRAM / eDRAM / HBM options).
 */

#include <gtest/gtest.h>

#include "mem/energy_account.hh"
#include "mem/main_memory.hh"
#include "tech/tech_params.hh"

using namespace bfree::tech;
using namespace bfree::mem;

TEST(MainMemoryParams, PaperBandwidths)
{
    EXPECT_DOUBLE_EQ(main_memory_params(MainMemoryKind::DRAM)
                         .bandwidthGBps,
                     20.0);
    EXPECT_DOUBLE_EQ(main_memory_params(MainMemoryKind::EDRAM)
                         .bandwidthGBps,
                     64.0);
    EXPECT_DOUBLE_EQ(main_memory_params(MainMemoryKind::HBM)
                         .bandwidthGBps,
                     100.0);
}

TEST(MainMemoryParams, StreamTimeIsBytesOverBandwidth)
{
    const MainMemoryParams dram =
        main_memory_params(MainMemoryKind::DRAM);
    // 20 GB at 20 GB/s = 1 s.
    EXPECT_NEAR(dram.streamSeconds(20e9), 1.0, 1e-12);
    // 1 MB at 20 GB/s = 50 us.
    EXPECT_NEAR(dram.streamSeconds(1e6), 50e-6, 1e-12);
}

TEST(MainMemoryParams, FasterMemoriesCostLessEnergyPerByte)
{
    const auto dram = main_memory_params(MainMemoryKind::DRAM);
    const auto edram = main_memory_params(MainMemoryKind::EDRAM);
    const auto hbm = main_memory_params(MainMemoryKind::HBM);
    EXPECT_GT(dram.energyPjPerByte, edram.energyPjPerByte);
    EXPECT_GT(edram.energyPjPerByte, hbm.energyPjPerByte);
}

TEST(MainMemoryParams, NamesAreStable)
{
    EXPECT_STREQ(main_memory_params(MainMemoryKind::DRAM).name(), "DRAM");
    EXPECT_STREQ(main_memory_params(MainMemoryKind::EDRAM).name(),
                 "eDRAM");
    EXPECT_STREQ(main_memory_params(MainMemoryKind::HBM).name(), "HBM");
}

TEST(MainMemoryChannel, StreamChargesEnergyAndTracksBytes)
{
    const auto params = main_memory_params(MainMemoryKind::DRAM);
    EnergyAccount account;
    MainMemory mem(params, account);
    const double seconds = mem.stream(1e6);
    EXPECT_NEAR(seconds, 50e-6, 1e-12);
    EXPECT_DOUBLE_EQ(mem.bytesTransferred(), 1e6);
    EXPECT_NEAR(account.joules(EnergyCategory::DramTransfer),
                1e6 * params.energyPjPerByte * 1e-12, 1e-12);
}

TEST(MainMemoryChannel, StreamsAccumulate)
{
    EnergyAccount account;
    MainMemory mem(main_memory_params(MainMemoryKind::HBM), account);
    mem.stream(1e6);
    mem.stream(2e6);
    EXPECT_DOUBLE_EQ(mem.bytesTransferred(), 3e6);
}

TEST(MainMemoryChannel, HigherBandwidthIsFaster)
{
    EnergyAccount a1;
    EnergyAccount a2;
    MainMemory dram(main_memory_params(MainMemoryKind::DRAM), a1);
    MainMemory hbm(main_memory_params(MainMemoryKind::HBM), a2);
    EXPECT_GT(dram.streamSeconds(1e9), hbm.streamSeconds(1e9));
}

TEST(TechParams, DerivedLutCosts)
{
    const TechParams t;
    EXPECT_NEAR(t.lutAccessPj(), 8.6 / 231.0, 1e-9);
    EXPECT_NEAR(t.lutAccessNs(), t.subarrayPeriodNs() / 3.0, 1e-9);
    EXPECT_NEAR(t.subarrayPeriodNs(), 1.0 / 1.5, 1e-9);
}

TEST(TechParams, BceEnergyPerCycle)
{
    const TechParams t;
    // mW x ns = pJ; conv mode: 0.4 mW at 1.5 GHz -> ~0.267 pJ/cycle.
    EXPECT_NEAR(t.bceEnergyPerCyclePj(t.bceConvModeMw), 0.4 / 1.5, 1e-9);
    EXPECT_NEAR(t.bceEnergyPerCyclePj(t.bceMatmulModeMw), 1.3 / 1.5,
                1e-9);
}
