/**
 * @file
 * Trace-replay determinism of the serving front-end: fixed-seed
 * Poisson and bursty traces must produce byte-identical batch logs,
 * outputs and stats dumps across repeated runs and across dispatch
 * thread counts (1 vs 8) — the property CI byte-diffs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/network_plan.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "sim/random.hh"

#include "serve/server.hh"
#include "serve/trace.hh"

using namespace bfree;
using namespace bfree::serve;

namespace {

dnn::Network
make_tiny_mlp()
{
    dnn::Network net("serve-mlp", {16, 1, 1});
    net.add(dnn::make_fc("fc1", 16, 32));
    net.add(dnn::make_activation("act1", dnn::LayerKind::Sigmoid,
                                 {32, 1, 1}));
    net.add(dnn::make_fc("fc2", 32, 10));
    net.add(dnn::make_activation("prob", dnn::LayerKind::Softmax,
                                 {10, 1, 1}));
    return net;
}

core::NetworkPlan
make_plan()
{
    const dnn::Network net = make_tiny_mlp();
    sim::Rng rng(11);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    return core::NetworkPlan::compile(net, weights, 8);
}

/** Bit-pattern checksum over every served output, id order. */
std::uint64_t
outputs_checksum(const ReplayReport &rep)
{
    std::uint64_t sum = 0;
    for (const dnn::FloatTensor &t : rep.outputs) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::uint32_t bits;
            std::memcpy(&bits, &t[i], sizeof bits);
            sum = sum * 1099511628211ull + bits;
        }
        sum = sum * 31 + t.size();
    }
    return sum;
}

std::string
stats_dump(const ServeEngine &engine)
{
    std::ostringstream os;
    engine.stats().dumpAll(os);
    return os.str();
}

ServeConfig
small_config(unsigned threads)
{
    ServeConfig cfg;
    cfg.queueDepth = 16;
    cfg.batcher.maxBatch = 4;
    cfg.batcher.windowTicks = 200;
    cfg.threads = threads;
    cfg.cyclesPerTick = 10;
    return cfg;
}

struct ReplayObservables
{
    std::string batchLog;
    std::uint64_t outputSum;
    std::string statsDump;
    sim::Tick endTick;
    std::uint64_t served;
};

ReplayObservables
observe(const core::NetworkPlan &plan, const ArrivalTrace &trace,
        unsigned threads)
{
    ServeEngine engine(plan, small_config(threads));
    const ReplayReport rep = engine.replay(trace);
    return {rep.batchLog, outputs_checksum(rep), stats_dump(engine),
            rep.endTick, rep.served.size()};
}

} // namespace

TEST(ServeReplay, PoissonTraceIsByteIdenticalAcrossRunsAndThreads)
{
    const core::NetworkPlan plan = make_plan();
    sim::Rng rng(1234);
    const ArrivalTrace trace =
        poisson_trace(rng, 40, /*meanGapTicks=*/300, /*deadline=*/5000);

    const ReplayObservables a = observe(plan, trace, 1);
    const ReplayObservables b = observe(plan, trace, 1); // re-run
    const ReplayObservables c = observe(plan, trace, 8); // more workers

    EXPECT_FALSE(a.batchLog.empty());
    EXPECT_GT(a.served, 0u);
    EXPECT_EQ(a.batchLog, b.batchLog);
    EXPECT_EQ(a.batchLog, c.batchLog);
    EXPECT_EQ(a.outputSum, b.outputSum);
    EXPECT_EQ(a.outputSum, c.outputSum);
    EXPECT_EQ(a.statsDump, b.statsDump);
    EXPECT_EQ(a.statsDump, c.statsDump);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.endTick, c.endTick);
}

TEST(ServeReplay, BurstyTraceIsByteIdenticalAcrossRunsAndThreads)
{
    const core::NetworkPlan plan = make_plan();
    sim::Rng rng(77);
    // Bursts larger than the queue bound force deterministic
    // admission rejections into the log as well.
    const ArrivalTrace trace =
        bursty_trace(rng, 60, /*burstSize=*/24,
                     /*meanBurstGapTicks=*/4000, /*deadline=*/2000);

    const ReplayObservables a = observe(plan, trace, 1);
    const ReplayObservables b = observe(plan, trace, 8);

    EXPECT_EQ(a.batchLog, b.batchLog);
    EXPECT_EQ(a.outputSum, b.outputSum);
    EXPECT_EQ(a.statsDump, b.statsDump);
    // A 24-deep burst against a 16-deep queue must reject someone.
    EXPECT_NE(a.batchLog.find("queue_full"), std::string::npos);
}

TEST(ServeReplay, SameSeedSameTraceDifferentSeedDifferentTrace)
{
    sim::Rng a(42), b(42), c(43);
    const ArrivalTrace ta = poisson_trace(a, 20, 100);
    const ArrivalTrace tb = poisson_trace(b, 20, 100);
    const ArrivalTrace tc = poisson_trace(c, 20, 100);
    ASSERT_EQ(ta.size(), tb.size());
    bool identical = true;
    for (std::size_t i = 0; i < ta.size(); ++i) {
        identical = identical && ta.arrivals[i].tick == tb.arrivals[i].tick
                    && ta.arrivals[i].inputSeed == tb.arrivals[i].inputSeed;
    }
    EXPECT_TRUE(identical);
    bool anyDiff = false;
    for (std::size_t i = 0; i < ta.size(); ++i)
        anyDiff = anyDiff || ta.arrivals[i].tick != tc.arrivals[i].tick;
    EXPECT_TRUE(anyDiff);
}

TEST(ServeReplay, DeadlineMissesAreCountedDeterministically)
{
    const core::NetworkPlan plan = make_plan();
    sim::Rng rng(5);
    // Offered load far above capacity with a tight deadline: queueing
    // delay guarantees some misses; the count must be stable.
    const ArrivalTrace trace =
        poisson_trace(rng, 30, /*meanGapTicks=*/20, /*deadline=*/400);

    ServeEngine e1(plan, small_config(1));
    ServeEngine e8(plan, small_config(8));
    e1.replay(trace);
    e8.replay(trace);
    EXPECT_GT(e1.stats().deadlineMisses.value(), 0.0);
    EXPECT_DOUBLE_EQ(e1.stats().deadlineMisses.value(),
                     e8.stats().deadlineMisses.value());
    EXPECT_DOUBLE_EQ(e1.stats().latencyPercentile(0.99),
                     e8.stats().latencyPercentile(0.99));
}

TEST(ServeReplay, LoneRequestDispatchesWhenItsWindowExpires)
{
    const core::NetworkPlan plan = make_plan();
    ArrivalTrace trace;
    trace.arrivals.push_back({.tick = 100, .inputSeed = 9,
                              .deadlineTicks = no_deadline});

    ServeConfig cfg = small_config(1);
    cfg.batcher.windowTicks = 50;
    ServeEngine engine(plan, cfg);
    const ReplayReport rep = engine.replay(trace);
    ASSERT_EQ(rep.served.size(), 1u);
    EXPECT_EQ(rep.served[0].enqueueTick, 100u);
    EXPECT_EQ(rep.served[0].dispatchTick, 150u); // 100 + window 50
    EXPECT_GT(rep.served[0].completeTick, rep.served[0].dispatchTick);
    EXPECT_EQ(engine.stats().batches.value(), 1.0);
}
