/**
 * @file
 * Batching must never change results: N requests served through the
 * continuous batcher produce outputs byte-identical to the same N
 * inputs pushed through run_functional_batch directly — whatever
 * batch compositions the schedule happened to form.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/functional.hh"
#include "core/network_plan.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "sim/random.hh"

#include "serve/server.hh"
#include "serve/trace.hh"

using namespace bfree;
using namespace bfree::serve;

namespace {

core::NetworkPlan
make_plan()
{
    dnn::Network net("parity-mlp", {16, 1, 1});
    net.add(dnn::make_fc("fc1", 16, 24));
    net.add(dnn::make_activation("act1", dnn::LayerKind::Relu,
                                 {24, 1, 1}));
    net.add(dnn::make_fc("fc2", 24, 8));
    net.add(dnn::make_activation("prob", dnn::LayerKind::Softmax,
                                 {8, 1, 1}));
    sim::Rng rng(3);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    return core::NetworkPlan::compile(net, weights, 8);
}

bool
bitwise_equal(const dnn::FloatTensor &a, const dnn::FloatTensor &b)
{
    if (a.size() != b.size())
        return false;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

} // namespace

TEST(ServeParity, BatcherOutputsMatchDirectBatchBitwise)
{
    const core::NetworkPlan plan = make_plan();

    // A trace that exercises several batch shapes: bursts (full
    // batches) and stragglers (window-expiry singles).
    sim::Rng rng(2024);
    ArrivalTrace trace = bursty_trace(rng, 25, /*burstSize=*/6,
                                      /*meanBurstGapTicks=*/2000);
    {
        sim::Rng tail(99);
        ArrivalTrace sparse = poisson_trace(tail, 5, 5000);
        const sim::Tick offset = trace.horizon() + 1000;
        for (Arrival a : sparse.arrivals) {
            a.tick += offset;
            trace.arrivals.push_back(a);
        }
    }

    ServeConfig cfg;
    cfg.queueDepth = 64; // roomy: every request must be admitted
    cfg.batcher.maxBatch = 4;
    cfg.batcher.windowTicks = 300;
    cfg.threads = 2;
    ServeEngine engine(plan, cfg);
    const ReplayReport rep = engine.replay(trace);

    ASSERT_EQ(rep.served.size(), trace.size());
    // Several distinct batch shapes actually occurred.
    EXPECT_GT(engine.stats().batches.value(), 1.0);
    EXPECT_LT(engine.stats().batches.value(),
              static_cast<double>(trace.size()));

    // The same inputs, regenerated from the trace seeds, through the
    // batch runner in one go.
    std::vector<dnn::FloatTensor> inputs;
    inputs.reserve(trace.size());
    for (const Arrival &a : trace.arrivals)
        inputs.push_back(make_request_input(plan, a.inputSeed));
    const core::BatchResult direct =
        core::run_functional_batch(plan, inputs, {});

    for (std::size_t id = 0; id < trace.size(); ++id) {
        EXPECT_TRUE(bitwise_equal(rep.outputs[id], direct.outputs[id]))
            << "output of request " << id
            << " diverged between the batcher and the direct batch";
    }
}

TEST(ServeParity, PointerBatchHookMatchesOwningOverload)
{
    const core::NetworkPlan plan = make_plan();
    sim::Rng rng(7);
    std::vector<dnn::FloatTensor> inputs;
    std::vector<const dnn::FloatTensor *> borrowed;
    for (int i = 0; i < 6; ++i) {
        dnn::FloatTensor t({16, 1, 1});
        t.fillUniform(rng, -1.0, 1.0);
        inputs.push_back(std::move(t));
    }
    for (const dnn::FloatTensor &t : inputs)
        borrowed.push_back(&t);

    const core::BatchResult owning =
        core::run_functional_batch(plan, inputs, {});
    const core::BatchResult byPtr =
        core::run_functional_batch(plan, borrowed, {});
    ASSERT_EQ(owning.outputs.size(), byPtr.outputs.size());
    for (std::size_t i = 0; i < owning.outputs.size(); ++i)
        EXPECT_TRUE(bitwise_equal(owning.outputs[i], byPtr.outputs[i]));
    EXPECT_EQ(owning.stats.cycles, byPtr.stats.cycles);
    EXPECT_EQ(owning.stats.macs, byPtr.stats.macs);
    EXPECT_DOUBLE_EQ(owning.energy.total(), byPtr.energy.total());
}
