/**
 * @file
 * Admission control and thread safety of the bounded request queue,
 * plus the ServeStats accounting of admission outcomes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "serve/queue.hh"
#include "serve/stats.hh"

using namespace bfree;
using namespace bfree::serve;

namespace {

Request
make_request(std::uint64_t id, sim::Tick deadline = no_deadline)
{
    Request r;
    r.id = id;
    r.deadlineTicks = deadline;
    return r;
}

} // namespace

TEST(ServeQueue, AdmitsUpToBoundThenRejectsFull)
{
    RequestQueue q(2);
    Request a = make_request(0);
    Request b = make_request(1);
    Request c = make_request(2);
    EXPECT_EQ(q.tryEnqueue(a, 10), AdmitResult::Admitted);
    EXPECT_EQ(q.tryEnqueue(b, 11), AdmitResult::Admitted);
    EXPECT_EQ(q.tryEnqueue(c, 12), AdmitResult::RejectedQueueFull);
    EXPECT_EQ(q.depth(), 2u);
    // The rejected request keeps its identity for the caller.
    EXPECT_EQ(c.id, 2u);

    // Draining one slot re-opens admission.
    std::vector<Request> out;
    EXPECT_EQ(q.popUpTo(1, out), 1u);
    EXPECT_EQ(q.tryEnqueue(c, 13), AdmitResult::Admitted);
    EXPECT_EQ(q.depth(), 2u);
}

TEST(ServeQueue, StampsEnqueueTickAndKeepsFifoOrder)
{
    RequestQueue q(8);
    for (std::uint64_t i = 0; i < 4; ++i) {
        Request r = make_request(i);
        ASSERT_EQ(q.tryEnqueue(r, 100 + i), AdmitResult::Admitted);
    }
    EXPECT_EQ(q.oldestEnqueueTick(), 100u);
    std::vector<Request> out;
    EXPECT_EQ(q.popUpTo(8, out), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i].id, i);
        EXPECT_EQ(out[i].enqueueTick, 100 + i);
    }
    EXPECT_EQ(q.oldestEnqueueTick(), sim::max_tick);
}

TEST(ServeQueue, ZeroDeadlineIsRejectedAtAdmission)
{
    // A zero-tick deadline cannot be met (service takes >= 1 tick);
    // admitting it would manufacture a guaranteed SLO miss.
    RequestQueue q(8);
    Request r = make_request(0, /*deadline=*/0);
    EXPECT_EQ(q.tryEnqueue(r, 5), AdmitResult::RejectedZeroDeadline);
    EXPECT_EQ(q.depth(), 0u);
    // Any non-zero deadline is admission-eligible.
    Request tight = make_request(1, /*deadline=*/1);
    EXPECT_EQ(q.tryEnqueue(tight, 5), AdmitResult::Admitted);
}

TEST(ServeQueue, ClosedQueueRejectsButStillDrains)
{
    RequestQueue q(8);
    Request a = make_request(0);
    ASSERT_EQ(q.tryEnqueue(a, 1), AdmitResult::Admitted);
    q.close();
    EXPECT_TRUE(q.closed());
    Request b = make_request(1);
    EXPECT_EQ(q.tryEnqueue(b, 2), AdmitResult::RejectedClosed);
    std::vector<Request> out;
    EXPECT_EQ(q.popUpTo(8, out), 1u);
    EXPECT_EQ(out[0].id, 0u);
}

TEST(ServeQueueDeath, ZeroDepthBoundIsFatal)
{
    EXPECT_DEATH(RequestQueue q(0), "depth bound");
}

TEST(ServeQueue, ConcurrentProducersNeverExceedTheBound)
{
    // Live multi-producer use (the replay engine itself is
    // single-driver): hammer admission and draining from several
    // threads. Run under TSan in CI; the invariants here are the
    // bound and conservation of requests.
    constexpr std::size_t bound = 16;
    constexpr unsigned producers = 4;
    constexpr std::uint64_t perProducer = 500;
    RequestQueue q(bound);

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::vector<std::thread> threads;
    threads.reserve(producers + 1);
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < perProducer; ++i) {
                Request r = make_request(p * perProducer + i);
                if (q.tryEnqueue(r, i) == AdmitResult::Admitted)
                    accepted.fetch_add(1);
                else
                    rejected.fetch_add(1);
            }
        });
    }
    std::atomic<bool> stop{false};
    std::uint64_t drained = 0;
    threads.emplace_back([&] {
        std::vector<Request> out;
        while (!stop.load() || q.depth() > 0) {
            out.clear();
            q.popUpTo(4, out);
            drained += out.size();
            EXPECT_LE(q.depth(), bound);
        }
    });
    for (unsigned p = 0; p < producers; ++p)
        threads[p].join();
    stop.store(true);
    threads.back().join();

    EXPECT_EQ(accepted.load() + rejected.load(),
              producers * perProducer);
    EXPECT_EQ(drained, accepted.load());
    EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeStats, AdmissionOutcomesLandInTheirCounters)
{
    ServeStats stats;
    stats.recordAdmission(AdmitResult::Admitted);
    stats.recordAdmission(AdmitResult::Admitted);
    stats.recordAdmission(AdmitResult::RejectedQueueFull);
    stats.recordAdmission(AdmitResult::RejectedZeroDeadline);
    stats.recordAdmission(AdmitResult::RejectedClosed);
    EXPECT_DOUBLE_EQ(stats.offered.value(), 5.0);
    EXPECT_DOUBLE_EQ(stats.admitted.value(), 2.0);
    EXPECT_DOUBLE_EQ(stats.rejectedFull.value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.rejectedZeroDeadline.value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.rejectedClosed.value(), 1.0);
}

TEST(ServeStats, CompletionFeedsLatencyHistogramsAndSloCounters)
{
    ServeStats stats;
    Request r;
    r.enqueueTick = 100;
    r.dispatchTick = 150;
    r.completeTick = 300;
    r.deadlineTicks = 120; // missed: 200 ticks total latency
    stats.recordCompletion(r);

    Request ok = r;
    ok.deadlineTicks = 500; // met
    stats.recordCompletion(ok);

    EXPECT_DOUBLE_EQ(stats.completed.value(), 2.0);
    EXPECT_DOUBLE_EQ(stats.deadlineMisses.value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.queueWaitTicks.samples(), 2.0);
    EXPECT_DOUBLE_EQ(stats.latencyTicks.mean(), 200.0);
    EXPECT_GT(stats.latencyPercentile(0.5), 0.0);

    // The dump carries the histogram lines and the derived formulas —
    // the block the CI 1-vs-8-thread byte-diff covers.
    std::ostringstream os;
    stats.dumpAll(os);
    const std::string dump = os.str();
    EXPECT_NE(dump.find("serve.latency_ticks.samples"),
              std::string::npos);
    EXPECT_NE(dump.find("serve.latency_p99_ticks"), std::string::npos);
    EXPECT_NE(dump.find("serve.deadline_miss_rate"), std::string::npos);
}

TEST(ServeStats, MergeFoldsShardsAssociatively)
{
    // Two shards' serve stats fold into one group; scalar totals and
    // histogram sample counts add.
    ServeStats a, b;
    Request r;
    r.enqueueTick = 0;
    r.dispatchTick = 10;
    r.completeTick = 20;
    a.recordCompletion(r);
    b.recordCompletion(r);
    b.recordDispatch(3);
    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(a.completed.value(), 2.0);
    EXPECT_DOUBLE_EQ(a.latencyTicks.samples(), 2.0);
    EXPECT_DOUBLE_EQ(a.batches.value(), 1.0);
    EXPECT_DOUBLE_EQ(a.batchedRequests.value(), 3.0);
}
