/**
 * @file
 * Batch-forming policy of the continuous batcher: full-batch release,
 * window expiry (including the lone-request case), in-flight
 * suppression and arrival merging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/batcher.hh"
#include "serve/queue.hh"

using namespace bfree;
using namespace bfree::serve;

namespace {

void
admit(RequestQueue &q, std::uint64_t id, sim::Tick now)
{
    Request r;
    r.id = id;
    ASSERT_EQ(q.tryEnqueue(r, now), AdmitResult::Admitted);
}

std::vector<std::uint64_t>
ids_of(const std::vector<Request> &batch)
{
    std::vector<std::uint64_t> ids;
    for (const Request &r : batch)
        ids.push_back(r.id);
    return ids;
}

} // namespace

TEST(ServeBatcher, FullBatchReleasesImmediately)
{
    RequestQueue q(32);
    ContinuousBatcher b(q, {.maxBatch = 4, .windowTicks = 100});
    for (std::uint64_t i = 0; i < 4; ++i)
        admit(q, i, 10);
    EXPECT_EQ(b.nextDispatchTick(10), 10u);
    const std::vector<Request> batch = b.tryForm(10);
    EXPECT_EQ(ids_of(batch), (std::vector<std::uint64_t>{0, 1, 2, 3}));
    for (const Request &r : batch)
        EXPECT_EQ(r.dispatchTick, 10u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeBatcher, WindowExpiryReleasesASingleRequest)
{
    // The satellite edge case: the batching window expires with one
    // request waiting — it must go out alone, not starve.
    RequestQueue q(32);
    ContinuousBatcher b(q, {.maxBatch = 8, .windowTicks = 10});
    admit(q, 7, 5);
    EXPECT_EQ(b.nextDispatchTick(5), 15u);
    EXPECT_TRUE(b.tryForm(14).empty()); // window still open
    const std::vector<Request> batch = b.tryForm(15);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].id, 7u);
    EXPECT_EQ(batch[0].dispatchTick, 15u);
}

TEST(ServeBatcher, OversizeQueueDrainsInFifoChunks)
{
    RequestQueue q(32);
    ContinuousBatcher b(q, {.maxBatch = 3, .windowTicks = 100});
    for (std::uint64_t i = 0; i < 7; ++i)
        admit(q, i, 0);
    EXPECT_EQ(ids_of(b.tryForm(0)), (std::vector<std::uint64_t>{0, 1, 2}));
    b.noteDispatch(5);
    EXPECT_TRUE(b.tryForm(2).empty()); // in flight
    EXPECT_EQ(ids_of(b.tryForm(5)), (std::vector<std::uint64_t>{3, 4, 5}));
    b.noteDispatch(9);
    // The tail request is partial: released only by its window.
    EXPECT_TRUE(b.tryForm(9).empty());
    EXPECT_EQ(b.nextDispatchTick(9), 100u); // enqueue 0 + window 100
    EXPECT_EQ(ids_of(b.tryForm(100)), (std::vector<std::uint64_t>{6}));
}

TEST(ServeBatcher, InFlightSuppressionMergesArrivalsIntoNextBatch)
{
    // Arrivals during an in-flight batch accumulate and all merge
    // into the batch formed at the completion tick — the continuous
    // part of continuous batching.
    RequestQueue q(32);
    ContinuousBatcher b(q, {.maxBatch = 8, .windowTicks = 5});
    admit(q, 0, 0);
    const std::vector<Request> first = b.tryForm(5); // window expiry
    ASSERT_EQ(first.size(), 1u);
    b.noteDispatch(50);
    EXPECT_TRUE(b.busy(20));

    admit(q, 1, 10);
    admit(q, 2, 20);
    admit(q, 3, 49);
    // Even though request 1's window expired at 15, nothing releases
    // before the in-flight batch completes at 50.
    EXPECT_TRUE(b.tryForm(20).empty());
    EXPECT_EQ(b.nextDispatchTick(20), 50u);
    EXPECT_EQ(ids_of(b.tryForm(50)), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ServeBatcher, EmptyQueueHasNoDispatchTick)
{
    RequestQueue q(32);
    ContinuousBatcher b(q, {.maxBatch = 4, .windowTicks = 10});
    EXPECT_EQ(b.nextDispatchTick(0), sim::max_tick);
    EXPECT_TRUE(b.tryForm(0).empty());
}

TEST(ServeBatcherDeath, ZeroMaxBatchIsFatal)
{
    RequestQueue q(4);
    EXPECT_DEATH(ContinuousBatcher(q, {.maxBatch = 0, .windowTicks = 1}),
                 "maxBatch");
}
