/**
 * @file
 * Table II: the rebuilt networks must land on the paper's layer /
 * parameter / MAC numbers.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"

using namespace bfree::dnn;

namespace {

double
rel(double got, double expected)
{
    return got / expected;
}

} // namespace

TEST(Vgg16, TableTwoNumbers)
{
    const Network net = make_vgg16();
    EXPECT_EQ(net.reportedDepth, 16u);
    EXPECT_EQ(net.computeLayerCount(), 16u); // 13 conv + 3 FC
    // Params: 138 M; Mults: 15.5 G.
    EXPECT_NEAR(rel(static_cast<double>(net.totalParams()), 138e6), 1.0,
                0.03);
    EXPECT_NEAR(rel(static_cast<double>(net.totalMacs()), 15.5e9), 1.0,
                0.03);
}

TEST(Vgg16, FirstAndLastLayers)
{
    const Network net = make_vgg16();
    EXPECT_EQ(net.layers().front().name, "conv1_1");
    EXPECT_EQ(net.layers().front().outChannels, 64u);
    EXPECT_EQ(net.layers().back().kind, LayerKind::Softmax);
    EXPECT_EQ(net.input(), (FeatureShape{3, 224, 224}));
}

TEST(InceptionV3, TableTwoNumbers)
{
    const Network net = make_inception_v3();
    EXPECT_EQ(net.reportedDepth, 48u);
    // Params: 24 M; Mults: 4.7 G (Table II). The flattened operator
    // count exceeds the reported depth for branched topologies.
    EXPECT_NEAR(rel(static_cast<double>(net.totalParams()), 24e6), 1.0,
                0.10);
    EXPECT_NEAR(rel(static_cast<double>(net.totalMacs()), 4.7e9), 1.0,
                0.25);
    EXPECT_GT(net.computeLayerCount(), net.reportedDepth);
}

TEST(InceptionV3, EndsAt8x8x2048)
{
    const Network net = make_inception_v3();
    // The classifier consumes 2048 features.
    bool found_fc = false;
    for (const Layer &l : net.layers()) {
        if (l.kind == LayerKind::Fc) {
            EXPECT_EQ(l.inFeatures, 2048u);
            EXPECT_EQ(l.outFeatures, 1000u);
            found_fc = true;
        }
    }
    EXPECT_TRUE(found_fc);
}

TEST(Lstm, TableTwoNumbers)
{
    const Network net = make_lstm();
    EXPECT_EQ(net.reportedDepth, 1u);
    EXPECT_EQ(net.timesteps, 300u);
    // Params: 4.3 M; Mults: 4.35 M per timestep.
    EXPECT_NEAR(rel(static_cast<double>(net.totalParams()), 4.3e6), 1.0,
                0.05);
    EXPECT_NEAR(rel(static_cast<double>(net.totalMacs()), 4.35e6), 1.0,
                0.05);
}

TEST(BertBase, TableTwoNumbers)
{
    const Network net = make_bert_base();
    EXPECT_EQ(net.reportedDepth, 12u);
    // Params: 87 M (encoder); Mults: 11.1 G at sequence length 128.
    EXPECT_NEAR(rel(static_cast<double>(net.totalParams()), 87e6), 1.0,
                0.06);
    EXPECT_NEAR(rel(static_cast<double>(net.totalMacs()), 11.1e9), 1.0,
                0.03);
}

TEST(BertLarge, TableTwoNumbers)
{
    const Network net = make_bert_large();
    EXPECT_EQ(net.reportedDepth, 24u);
    // Params: 324 M; Mults: 39.5 G.
    EXPECT_NEAR(rel(static_cast<double>(net.totalParams()), 324e6), 1.0,
                0.10);
    EXPECT_NEAR(rel(static_cast<double>(net.totalMacs()), 39.5e9), 1.0,
                0.03);
}

TEST(BertBase, EncoderStructure)
{
    const Network net = make_bert_base();
    unsigned attention = 0;
    unsigned layer_norm = 0;
    for (const Layer &l : net.layers()) {
        if (l.kind == LayerKind::Attention)
            ++attention;
        if (l.kind == LayerKind::LayerNorm)
            ++layer_norm;
    }
    EXPECT_EQ(attention, 12u);
    EXPECT_EQ(layer_norm, 24u); // two per encoder block
}

TEST(TinyCnn, IsRunnableScale)
{
    const Network net = make_tiny_cnn();
    EXPECT_LT(net.totalMacs(), 100000u);
    EXPECT_EQ(net.layers().back().kind, LayerKind::Softmax);
    EXPECT_EQ(net.input(), (FeatureShape{1, 8, 8}));
}

TEST(Networks, WeightBytesFollowPrecision)
{
    Network net = make_vgg16();
    const auto bytes8 = net.totalWeightBytes();
    net.setUniformPrecision(4);
    EXPECT_LT(net.totalWeightBytes(), bytes8);
    EXPECT_NEAR(static_cast<double>(net.totalWeightBytes())
                    / static_cast<double>(bytes8),
                0.5, 0.01);
}
