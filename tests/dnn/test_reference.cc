/**
 * @file
 * Float reference executors: hand-checked values and invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dnn/reference.hh"
#include "sim/random.hh"

using namespace bfree::dnn;

TEST(ReferenceConv, IdentityKernel)
{
    // A 1x1 conv with weight 1 copies the input.
    const Layer l = make_conv("c", {1, 3, 3}, 1, 1, 1, 0);
    FloatTensor in({1, 3, 3});
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<float>(i);
    const FloatTensor out =
        reference_conv(l, in, {1.0f}, {0.0f});
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(ReferenceConv, HandComputed3x3)
{
    const Layer l = make_conv("c", {1, 3, 3}, 1, 3, 1, 0);
    FloatTensor in({1, 3, 3});
    for (std::size_t i = 0; i < 9; ++i)
        in[i] = static_cast<float>(i + 1); // 1..9
    std::vector<float> w(9, 1.0f);
    const FloatTensor out = reference_conv(l, in, w, {2.0f});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 45.0f + 2.0f); // sum(1..9) + bias
}

TEST(ReferenceConv, PaddingContributesZeros)
{
    const Layer l = make_conv("c", {1, 2, 2}, 1, 3, 1, 1);
    FloatTensor in({1, 2, 2}, 1.0f);
    std::vector<float> w(9, 1.0f);
    const FloatTensor out = reference_conv(l, in, w, {0.0f});
    ASSERT_EQ(out.shape(), (std::vector<std::size_t>{1, 2, 2}));
    // Every output sees all four ones (3x3 window covers the 2x2 map).
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], 4.0f);
}

TEST(ReferenceFc, MatVec)
{
    const Layer l = make_fc("fc", 3, 2);
    FloatTensor in({3, 1, 1});
    in[0] = 1.0f;
    in[1] = 2.0f;
    in[2] = 3.0f;
    const std::vector<float> w = {1, 0, 0, /*row0*/ 0, 1, 1 /*row1*/};
    const FloatTensor out = reference_fc(l, in, w, {10.0f, 20.0f});
    EXPECT_FLOAT_EQ(out[0], 11.0f);
    EXPECT_FLOAT_EQ(out[1], 25.0f);
}

TEST(ReferencePool, MaxAndAvg)
{
    const Layer mp = make_pool("m", LayerKind::MaxPool, {1, 2, 2}, 2, 2);
    const Layer ap = make_pool("a", LayerKind::AvgPool, {1, 2, 2}, 2, 2);
    FloatTensor in({1, 2, 2});
    in[0] = 1.0f;
    in[1] = 5.0f;
    in[2] = -3.0f;
    in[3] = 2.0f;
    EXPECT_FLOAT_EQ(reference_max_pool(mp, in)[0], 5.0f);
    EXPECT_FLOAT_EQ(reference_avg_pool(ap, in)[0], 1.25f);
}

TEST(ReferenceActivation, KnownPoints)
{
    FloatTensor in({3, 1, 1});
    in[0] = -1.0f;
    in[1] = 0.0f;
    in[2] = 2.0f;
    const FloatTensor relu =
        reference_activation(LayerKind::Relu, in);
    EXPECT_FLOAT_EQ(relu[0], 0.0f);
    EXPECT_FLOAT_EQ(relu[2], 2.0f);

    const FloatTensor sig =
        reference_activation(LayerKind::Sigmoid, in);
    EXPECT_NEAR(sig[1], 0.5f, 1e-6);

    const FloatTensor th = reference_activation(LayerKind::Tanh, in);
    EXPECT_NEAR(th[2], std::tanh(2.0f), 1e-6);
}

TEST(ReferenceSoftmax, SumsToOneAndOrders)
{
    FloatTensor in({4, 1, 1});
    in[0] = 0.1f;
    in[1] = 3.0f;
    in[2] = -1.0f;
    in[3] = 0.5f;
    const FloatTensor out = reference_softmax(in);
    float sum = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i)
        sum += out[i];
    EXPECT_NEAR(sum, 1.0f, 1e-6);
    EXPECT_GT(out[1], out[3]);
    EXPECT_GT(out[3], out[2]);
}

TEST(ReferenceLstm, GatesBoundTheState)
{
    const Layer cell = make_lstm_cell("cell", 4, 8);
    bfree::sim::Rng rng(5);
    std::vector<float> weights(4 * (4 + 8) * 8);
    std::vector<float> bias(4 * 8);
    for (float &v : weights)
        v = static_cast<float>(rng.uniformReal(-0.5, 0.5));
    for (float &v : bias)
        v = static_cast<float>(rng.uniformReal(-0.1, 0.1));

    LstmState state;
    state.h.assign(8, 0.0f);
    state.c.assign(8, 0.0f);
    std::vector<float> x = {0.3f, -0.2f, 0.9f, -0.7f};

    for (int t = 0; t < 10; ++t) {
        state = reference_lstm_step(cell, x, state, weights, bias);
        for (float h : state.h)
            EXPECT_LT(std::abs(h), 1.0f); // |h| < 1 by construction
    }
}

TEST(ReferenceLstm, ForgetEverythingGivesTanhOfInputGate)
{
    // With all-zero weights and biases, gates are sigmoid(0) = 0.5 and
    // g = tanh(0) = 0, so c stays 0 and h stays 0.
    const Layer cell = make_lstm_cell("cell", 2, 4);
    std::vector<float> weights(4 * (2 + 4) * 4, 0.0f);
    std::vector<float> bias(4 * 4, 0.0f);
    LstmState state;
    state.h.assign(4, 0.0f);
    state.c.assign(4, 0.0f);
    state = reference_lstm_step(cell, {1.0f, -1.0f}, state, weights,
                                bias);
    for (float c : state.c)
        EXPECT_FLOAT_EQ(c, 0.0f);
    for (float h : state.h)
        EXPECT_FLOAT_EQ(h, 0.0f);
}

TEST(ReferenceMatmul, SmallKnown)
{
    FloatTensor a({2, 2});
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    FloatTensor b({2, 2});
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    const FloatTensor c = reference_matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(ReferenceAttention, UniformValuesAveraged)
{
    // With identity-free projections set so V rows are constant, the
    // attention output rows equal that constant row regardless of the
    // scores.
    const Layer attn = make_attention("a", 4, 8, 1);
    FloatTensor in({4, 8});
    bfree::sim::Rng rng(9);
    in.fillUniform(rng, -1.0, 1.0);

    std::vector<float> wq(64), wk(64), wv(64, 0.0f), wo(64, 0.0f);
    for (float &v : wq)
        v = static_cast<float>(rng.uniformReal(-0.3, 0.3));
    for (float &v : wk)
        v = static_cast<float>(rng.uniformReal(-0.3, 0.3));
    // V projects everything to zero; O is identity.
    for (unsigned i = 0; i < 8; ++i)
        wo[i * 8 + i] = 1.0f;

    const FloatTensor out = reference_attention(attn, in, wq, wk, wv, wo);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], 0.0f, 1e-6);
}

TEST(ReferenceAttention, RowsAreConvexCombinationsOfV)
{
    const Layer attn = make_attention("a", 3, 4, 1);
    FloatTensor in({3, 4});
    bfree::sim::Rng rng(13);
    in.fillUniform(rng, -1.0, 1.0);

    std::vector<float> identity(16, 0.0f);
    for (unsigned i = 0; i < 4; ++i)
        identity[i * 4 + i] = 1.0f;

    // Q=K=V=O=I: output rows are softmax-weighted averages of input
    // rows, so each output element is bounded by the input extremes.
    const FloatTensor out =
        reference_attention(attn, in, identity, identity, identity,
                            identity);
    float lo = 1e9f;
    float hi = -1e9f;
    for (std::size_t i = 0; i < in.size(); ++i) {
        lo = std::min(lo, in[i]);
        hi = std::max(hi, in[i]);
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out[i], lo - 1e-5f);
        EXPECT_LE(out[i], hi + 1e-5f);
    }
}
