/**
 * @file
 * Tensor quantization and the mixed-precision policy of Fig. 14.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "dnn/quantize.hh"
#include "sim/random.hh"

using namespace bfree::dnn;

TEST(QuantizeTensor, RoundTripErrorWithinScale)
{
    bfree::sim::Rng rng(21);
    FloatTensor t({4, 6, 6});
    t.fillUniform(rng, -2.0, 2.0);
    const QuantizedTensor q = quantize_tensor(t, 8);
    const FloatTensor back = dequantize_tensor(q);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_NEAR(back[i], t[i], q.qp.scale);
}

TEST(QuantizeTensor, FourBitCoarser)
{
    bfree::sim::Rng rng(22);
    FloatTensor t({64});
    t.fillUniform(rng, -1.0, 1.0);
    const QuantizedTensor q8 = quantize_tensor(t, 8);
    const QuantizedTensor q4 = quantize_tensor(t, 4);
    EXPECT_GT(q4.qp.scale, q8.qp.scale);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_LE(q4.values[i], 7);
        EXPECT_GE(q4.values[i], -8);
    }
}

TEST(QuantizeWeights, FlatVectorPath)
{
    std::vector<float> w = {-1.5f, 0.0f, 0.75f, 1.5f};
    bfree::lut::QuantParams qp;
    const std::vector<std::int8_t> q = quantize_weights(w, qp, 8);
    ASSERT_EQ(q.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(bfree::lut::dequantize(q[i], qp), w[i], qp.scale);
}

TEST(MixedPrecision, FirstAndLastStayEightBit)
{
    Network net = make_vgg16();
    apply_mixed_precision(net);

    // Find first/last compute layers.
    const Layer *first = nullptr;
    const Layer *last = nullptr;
    for (const Layer &l : net.layers()) {
        if (!l.isComputeLayer())
            continue;
        if (first == nullptr)
            first = &l;
        last = &l;
    }
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->precisionBits, 8u);
    EXPECT_EQ(last->precisionBits, 8u);
}

TEST(MixedPrecision, MostMacsRunAtFourBit)
{
    Network net = make_vgg16();
    EXPECT_DOUBLE_EQ(fraction_macs_at_4bit(net), 0.0);
    apply_mixed_precision(net);
    // Paper: "most of the layers are executed using 4-bit precision".
    EXPECT_GT(fraction_macs_at_4bit(net), 0.7);
}

TEST(MixedPrecision, HalvesWeightTraffic)
{
    Network net = make_vgg16();
    const auto before = net.totalWeightBytes();
    apply_mixed_precision(net);
    EXPECT_LT(net.totalWeightBytes(), before);
}

TEST(MixedPrecision, NonComputeLayersUntouched)
{
    Network net = make_vgg16();
    apply_mixed_precision(net);
    for (const Layer &l : net.layers()) {
        if (!l.isComputeLayer()) {
            EXPECT_EQ(l.precisionBits, 8u) << l.name;
        }
    }
}
