/**
 * @file
 * TensorArena: alignment, marker rewind, high-water accounting and the
 * overflow panic that backs the zero-allocation steady-state contract.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "dnn/tensor_arena.hh"

using bfree::dnn::TensorArena;

TEST(TensorArena, PaddedBytesRoundsToAlignment)
{
    EXPECT_EQ(TensorArena::paddedBytes<float>(0), 0u);
    EXPECT_EQ(TensorArena::paddedBytes<float>(1), TensorArena::alignment);
    EXPECT_EQ(TensorArena::paddedBytes<float>(16), 64u);
    EXPECT_EQ(TensorArena::paddedBytes<float>(17), 128u);
    EXPECT_EQ(TensorArena::paddedBytes<std::int8_t>(64), 64u);
    EXPECT_EQ(TensorArena::paddedBytes<std::int8_t>(65), 128u);
    EXPECT_EQ(TensorArena::paddedBytes<double>(8), 64u);
}

TEST(TensorArena, AllocationsAreCacheLineAligned)
{
    TensorArena arena;
    arena.reserve(1024);
    const auto aligned = [](const void *p) {
        return reinterpret_cast<std::uintptr_t>(p)
                   % TensorArena::alignment
               == 0;
    };
    EXPECT_TRUE(aligned(arena.alloc<std::int8_t>(3)));
    EXPECT_TRUE(aligned(arena.alloc<float>(5)));
    EXPECT_TRUE(aligned(arena.alloc<double>(7)));
    EXPECT_EQ(arena.used(), 3 * TensorArena::alignment);
}

TEST(TensorArena, MarkReleaseRewindsAndReusesSpace)
{
    TensorArena arena;
    arena.reserve(4 * TensorArena::alignment);

    float *base = arena.alloc<float>(16);
    const TensorArena::Marker m = arena.mark();

    float *scratch1 = arena.alloc<float>(16);
    arena.release(m);
    float *scratch2 = arena.alloc<float>(16);

    // The released region is handed out again: ping-pong reuse.
    EXPECT_EQ(scratch1, scratch2);
    EXPECT_NE(base, scratch1);
    EXPECT_EQ(arena.used(), 2 * TensorArena::alignment);
}

TEST(TensorArena, HighWaterAndAllocCountAccumulate)
{
    TensorArena arena;
    arena.reserve(8 * TensorArena::alignment);

    arena.alloc<float>(16); // 1 line
    const TensorArena::Marker m = arena.mark();
    arena.alloc<float>(48); // +3 lines -> high water 4
    arena.release(m);
    arena.alloc<float>(16); // back to 2 lines used

    EXPECT_EQ(arena.used(), 2 * TensorArena::alignment);
    EXPECT_EQ(arena.highWater(), 4 * TensorArena::alignment);
    EXPECT_EQ(arena.allocCount(), 3u);

    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    // reset keeps capacity and the high-water mark.
    EXPECT_EQ(arena.highWater(), 4 * TensorArena::alignment);
    EXPECT_EQ(arena.capacity(), 8 * TensorArena::alignment);
}

TEST(TensorArena, ReserveWithinCapacityKeepsBlock)
{
    TensorArena arena;
    arena.reserve(1024);
    float *p = arena.alloc<float>(4);
    *p = 1.0f;
    arena.reset();
    arena.reserve(512); // no-op: within capacity
    EXPECT_EQ(arena.alloc<float>(4), p);
}

TEST(TensorArenaDeath, OverflowPanicsInsteadOfSpilling)
{
    TensorArena arena;
    arena.reserve(TensorArena::alignment);
    arena.alloc<std::int8_t>(TensorArena::alignment);
    EXPECT_DEATH(arena.alloc<std::int8_t>(1), "arena");
}
