/**
 * @file
 * im2col: the matrix formulation computes exactly the same convolution
 * (Section IV-B), and the storage expansion factor behaves as Fig. 9(c)
 * describes.
 */

#include <gtest/gtest.h>

#include "dnn/im2col.hh"
#include "dnn/reference.hh"
#include "sim/random.hh"

using namespace bfree::dnn;

namespace {

/** Conv parameters for the equivalence sweep. */
struct ConvCase
{
    unsigned in_c, in_hw, out_c, kernel, stride, pad;
};

class Im2ColEquivalence : public ::testing::TestWithParam<ConvCase>
{};

} // namespace

TEST_P(Im2ColEquivalence, MatmulEqualsDirectConv)
{
    const ConvCase p = GetParam();
    const Layer l = make_conv("c", {p.in_c, p.in_hw, p.in_hw}, p.out_c,
                              p.kernel, p.stride, p.pad);

    bfree::sim::Rng rng(71);
    FloatTensor input({p.in_c, p.in_hw, p.in_hw});
    input.fillUniform(rng, -1.0, 1.0);
    std::vector<float> weights(std::size_t(p.out_c) * p.in_c * p.kernel
                               * p.kernel);
    for (float &w : weights)
        w = static_cast<float>(rng.uniformReal(-1.0, 1.0));
    std::vector<float> bias(p.out_c, 0.0f);

    const FloatTensor direct = reference_conv(l, input, weights, bias);

    const FloatTensor unrolled = im2col(l, input);
    const FloatTensor wmat = weights_to_matrix(l, weights);
    const FloatTensor product = reference_matmul(unrolled, wmat);

    // product is [outH*outW][outC]; direct is [outC][outH][outW].
    const FeatureShape out = l.outputShape();
    for (unsigned k = 0; k < out.c; ++k)
        for (unsigned oh = 0; oh < out.h; ++oh)
            for (unsigned ow = 0; ow < out.w; ++ow)
                EXPECT_NEAR(product.at(std::size_t(oh) * out.w + ow, k),
                            direct.at(k, oh, ow), 1e-3)
                    << k << "," << oh << "," << ow;
}

INSTANTIATE_TEST_SUITE_P(
    ConvShapes, Im2ColEquivalence,
    ::testing::Values(ConvCase{1, 6, 2, 3, 1, 0},
                      ConvCase{3, 8, 4, 3, 1, 1},
                      ConvCase{2, 9, 3, 3, 2, 1},
                      ConvCase{4, 7, 2, 5, 1, 2},
                      ConvCase{1, 5, 1, 1, 1, 0},
                      ConvCase{2, 10, 5, 2, 2, 0}));

TEST(Im2Col, MatrixShape)
{
    const Layer l = make_conv("c", {3, 8, 8}, 16, 3, 1, 1);
    FloatTensor input({3, 8, 8}, 1.0f);
    const FloatTensor m = im2col(l, input);
    EXPECT_EQ(m.dim(0), 64u);     // 8x8 output positions
    EXPECT_EQ(m.dim(1), 27u);     // 3x3x3 receptive field
}

TEST(Im2Col, StorageExpansionForUnitStride3x3)
{
    // Unit-stride 3x3 conv replicates each input ~9x (Fig. 9(c)'s
    // redundant copies).
    const Layer l = make_conv("c", {16, 32, 32}, 16, 3, 1, 1);
    EXPECT_NEAR(storage_expansion(l), 9.0, 0.5);
}

TEST(Im2Col, NoExpansionFor1x1)
{
    const Layer l = make_conv("c", {16, 32, 32}, 16, 1, 1, 0);
    EXPECT_NEAR(storage_expansion(l), 1.0, 1e-6);
}

TEST(Im2Col, StrideReducesExpansion)
{
    const Layer s1 = make_conv("c", {16, 32, 32}, 16, 3, 1, 1);
    const Layer s2 = make_conv("c", {16, 32, 32}, 16, 3, 2, 1);
    EXPECT_GT(storage_expansion(s1), storage_expansion(s2));
}

TEST(Im2Col, UnrolledBytesFollowPrecision)
{
    Layer l = make_conv("c", {3, 8, 8}, 4, 3, 1, 1);
    l.precisionBits = 8;
    const auto b8 = unrolled_input_bytes(l);
    EXPECT_EQ(b8, 64ull * 27);
    l.precisionBits = 16;
    EXPECT_EQ(unrolled_input_bytes(l), 2 * b8);
}
